#!/usr/bin/env python3
"""CI gate: per-span wall-time budgets for the profiled audit smoke.

Reads the profiler report that ``python -m repro --profile <cmd>`` prints
to stderr (``{"scopes": {name: {calls, total_s, ...}}, ...}``) and fails
when any budgeted span's *total* wall time exceeds its allowance, or when
a required span is missing entirely (a silent rename would otherwise turn
the budget into a no-op).

Budgets are deliberately generous — an order of magnitude above the
container this was calibrated on — so the gate catches accidental
quadratic blowups and dropped memoization, not CI-runner jitter.

Usage::

    python -m repro --profile audit --faults --quick 2> report.json
    python scripts/check_span_budgets.py report.json [--budget NAME=SECONDS]

``--budget`` entries extend or override the defaults; exit codes follow
the repo CLI convention (0 ok, 1 gate failed, 2 usage).
"""

from __future__ import annotations

import argparse
import json
import sys

#: span name -> max allowed total_s across the whole profiled run.  The
#: quick faulted audit measures ~0.006 s / ~0.045 s / ~0.05 s for these
#: on the reference container; budgets sit ~100x above that.
DEFAULT_BUDGETS: dict[str, float] = {
    "obs.audit.sweep": 30.0,
    "obs.audit.faulted_sweep": 60.0,
    "executor.run_token": 60.0,
    #: The event-driven serving engine: the quick serve-sim smoke runs
    #: the full engine comparison in well under a second on the
    #: reference container; the budget guards against the run-length
    #: advance silently degenerating back into a per-step loop.
    "serving.run": 60.0,
    #: One multi-model co-residency run (scalar loop + swap pricing).
    #: The quick --models smoke runs nine of these (3 mixes x 3
    #: schedulers) plus the dedicated baselines in a few seconds on the
    #: reference container.
    "serving.multimodel.run": 120.0,
    #: One fleet simulation (N replicas on a shared clock).  The quick
    #: fleet-sim smoke runs six of these (uniform-6 x five scenarios +
    #: baseline) in ~20 s total on the reference container; the budget
    #: guards against the per-replica event loop going quadratic in
    #: replicas or queue depth.
    "fleet.run": 300.0,
    #: The whole speculation sweep (every context x alpha cell, one plan
    #: per cell).  The quick spec-sim smoke runs its 2x1 grid in ~2 s on
    #: the reference container; the budget guards against the sweep
    #: re-planning per cell instead of reusing the cached search, or the
    #: pricer degenerating into per-token scalar pricing.
    "spec.run": 120.0,
}

#: Spans that must appear in the report at all — the profiled command is
#: expected to exercise them, so absence means the instrumentation (or
#: the sweep itself) silently vanished.
REQUIRED_SPANS = ("obs.audit.sweep", "obs.audit.faulted_sweep")


def check(
    report: dict,
    budgets: dict[str, float],
    required: tuple[str, ...] = REQUIRED_SPANS,
) -> list[str]:
    """Return a list of human-readable violations (empty = pass)."""
    scopes = report.get("scopes")
    if not isinstance(scopes, dict):
        return ["report has no 'scopes' section — was --profile passed?"]
    problems = []
    for name in required:
        if name not in scopes:
            problems.append(f"required span {name!r} missing from report")
    for name, budget in sorted(budgets.items()):
        scope = scopes.get(name)
        if scope is None:
            continue  # only REQUIRED_SPANS must exist
        total = float(scope["total_s"])
        if total > budget:
            problems.append(
                f"span {name!r} spent {total:.3f}s, budget {budget:.3f}s "
                f"({scope['calls']} calls, max {float(scope['max_s']):.4f}s)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="profiler report JSON (or '-' for stdin)")
    parser.add_argument(
        "--budget", action="append", default=[], metavar="NAME=SECONDS",
        help="extend/override a span budget (repeatable)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="replace the default required-span set (repeatable) — use "
        "when gating a report from a command that doesn't run the audit "
        "sweeps, e.g. --require serving.run for the serve-sim smoke",
    )
    args = parser.parse_args(argv)

    budgets = dict(DEFAULT_BUDGETS)
    for entry in args.budget:
        name, sep, value = entry.partition("=")
        try:
            if not sep:
                raise ValueError
            budgets[name] = float(value)
        except ValueError:
            print(f"budgets: bad --budget {entry!r} (want NAME=SECONDS)",
                  file=sys.stderr)
            return 2

    try:
        if args.report == "-":
            report = json.load(sys.stdin)
        else:
            with open(args.report, encoding="utf-8") as fh:
                report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"budgets: cannot read report: {exc}", file=sys.stderr)
        return 2

    required = tuple(args.require) if args.require else REQUIRED_SPANS
    problems = check(report, budgets, required)
    if problems:
        for problem in problems:
            print(f"budgets: FAIL: {problem}", file=sys.stderr)
        return 1
    scopes = report["scopes"]
    for name in sorted(budgets):
        if name in scopes:
            print(f"budgets: ok: {name} {float(scopes[name]['total_s']):.3f}s "
                  f"<= {budgets[name]:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
