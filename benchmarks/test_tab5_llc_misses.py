"""Table 5 — last-level cache misses under default vs controlled threading.

Paper: loads 10B -> 6B, stores 19B -> 12B (~38% fewer in both classes).
"""

import pytest

from repro.bench import paper_data, run_tab5_llc_misses


@pytest.mark.paper
def test_tab5_llc_misses(benchmark):
    result = benchmark.pedantic(run_tab5_llc_misses, rounds=1, iterations=1)
    print("Table 5 — LLC misses (billions)")
    for mode in ("default", "controlled"):
        print(
            f"  {mode:10s} load {result[mode]['load']/1e9:6.2f}B "
            f"store {result[mode]['store']/1e9:6.2f}B "
            f"(paper {paper_data.TAB5[mode]['load']/1e9:.0f}B / "
            f"{paper_data.TAB5[mode]['store']/1e9:.0f}B)"
        )
    print(f"  reduction {result['reduction']:.0%} (paper ~38%)")
    assert 0.2 < result["reduction"] < 0.6
    # Magnitudes within ~3x of the measured counters.
    assert 2e9 < result["default"]["load"] < 30e9
    assert 4e9 < result["default"]["store"] < 60e9
