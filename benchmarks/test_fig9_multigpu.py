"""Figure 9 — multi-GPU weak scaling (pipeline parallelism).

Paper: OPT-13B / LLaMA-13B, s=256, n=64, batch doubles with GPU count;
LM-Offload beats FlexGen by up to 327% (avg 112%) and the gap widens as
GPUs are added.
"""

import pytest

from repro.bench import format_table, paper_data, run_fig9_multigpu


@pytest.mark.paper
def test_fig9_multigpu(benchmark):
    rows = benchmark.pedantic(run_fig9_multigpu, rounds=1, iterations=1)
    print(format_table(rows, "Figure 9 — weak scaling (tokens/s)"))
    print(f"paper: max gain {paper_data.FIG9['max_gain']}x, avg {paper_data.FIG9['avg_gain']}x")
    for model in ("opt-13b", "llama-13b"):
        gains = [r["gain"] for r in rows if r["model"] == model]
        # The gap grows with GPU count (paper's headline observation).
        assert gains[-1] > gains[0]
        assert gains[-1] > 1.3
        # LM-Offload never loses.
        assert all(g >= 0.99 for g in gains)
    # Weak scaling: LM-Offload throughput grows with GPUs.
    for model in ("opt-13b", "llama-13b"):
        lm = [r["lm_offload"] for r in rows if r["model"] == model]
        assert lm[-1] > 1.8 * lm[0]
