"""Table 3 — FlexGen vs ZeRO-Inference vs LM-Offload across four models
and five generation lengths, plus the §5.2 headline speedups.

Paper headline: LM-Offload beats FlexGen by up to 2.95x (avg 2.34x) and
ZeRO-Inference by up to 2.88x (avg 1.57x).
"""

import statistics

import pytest

from repro.bench import format_table, paper_data, run_tab3_overall


@pytest.mark.paper
def test_tab3_overall(benchmark):
    rows = benchmark.pedantic(run_tab3_overall, rounds=1, iterations=1)
    print(format_table(rows, "Table 3 — overall comparison"))

    lm = {(r["model"], r["len"]): r["tput"] for r in rows if r["framework"] == "lm-offload"}
    fg = {(r["model"], r["len"]): r["tput"] for r in rows if r["framework"] == "flexgen"}
    zr = {(r["model"], r["len"]): r["tput"] for r in rows if r["framework"] == "zero-inference"}

    fg_gains = [lm[k] / fg[k] for k in lm]
    zr_gains = [lm[k] / zr[k] for k in lm]
    print(
        f"vs FlexGen: max {max(fg_gains):.2f} avg {statistics.mean(fg_gains):.2f} "
        f"(paper {paper_data.HEADLINE['flexgen']['max']}/{paper_data.HEADLINE['flexgen']['avg']})"
    )
    print(
        f"vs ZeRO:    max {max(zr_gains):.2f} avg {statistics.mean(zr_gains):.2f} "
        f"(paper {paper_data.HEADLINE['zero-inference']['max']}/{paper_data.HEADLINE['zero-inference']['avg']})"
    )

    # Shape: LM-Offload beats FlexGen in every configuration (paper: all
    # norm-tputs < 1), by a substantial average factor.
    assert all(g > 1.0 for g in fg_gains)
    assert 1.4 < statistics.mean(fg_gains) < 3.0
    # Shape: LM-Offload beats ZeRO in most configurations; ZeRO takes a
    # few (paper: OPT-30B n=128 by 7%).
    assert sum(g > 1.0 for g in zr_gains) >= len(zr_gains) // 2
    # ZeRO's batches are far smaller (paper: ~24x on average).
    zr_batches = [r["bsz"] for r in rows if r["framework"] == "zero-inference"]
    lm_batches = [r["bsz"] for r in rows if r["framework"] == "lm-offload"]
    assert statistics.mean(lm_batches) > 10 * statistics.mean(zr_batches)
