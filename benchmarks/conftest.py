"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures through
:mod:`repro.bench` and prints the rows next to the paper's reference
values, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the whole
evaluation section.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: regenerates a table/figure from the paper"
    )


@pytest.fixture(autouse=True)
def _print_spacing():
    print()
    yield
