"""Figure 8 — six-task execution times, default vs controlled threading.

Paper (OPT-30B, n=8): compute task -32%, average across tasks -19%,
end-to-end -38%; default (56 intra, 112 inter) vs tuned (16, 12).
"""

import pytest

from repro.bench import format_table, paper_data, run_fig8_parallelism_control


@pytest.mark.paper
def test_fig8_parallelism_control(benchmark):
    result = benchmark.pedantic(run_fig8_parallelism_control, rounds=1, iterations=1)
    rows = [
        {
            "task": k,
            "default_s": result["default_tasks_s"][k],
            "controlled_s": result["controlled_tasks_s"][k],
        }
        for k in result["default_tasks_s"]
    ]
    print(format_table(rows, "Figure 8 — per-task seconds (one decode token)"))
    print(f"chosen plan: {result['plan']}")
    print(
        f"reductions: compute {result['compute_reduction']:.0%} "
        f"(paper {paper_data.FIG8['compute_reduction']:.0%}), "
        f"avg {result['avg_task_reduction']:.0%} "
        f"(paper {paper_data.FIG8['avg_task_reduction']:.0%}), "
        f"end-to-end {result['end_to_end_reduction']:.0%} "
        f"(paper {paper_data.FIG8['end_to_end_reduction']:.0%})"
    )
    assert 0.15 < result["compute_reduction"] < 0.6
    assert result["end_to_end_reduction"] > 0.15
    # The compute task benefits the most (paper's observation).
    deltas = {
        k: result["default_tasks_s"][k] - result["controlled_tasks_s"][k]
        for k in result["default_tasks_s"]
    }
    assert max(deltas, key=deltas.get) == "compute"
