"""What-if hardware sweep (extension bench).

Not a paper figure — this exercises the performance model the way its
abstract promises: answering deployment questions cheaply.  Asserted
shapes: faster interconnects shift the optimum toward GPU attention with a
quantized cache; more GPU memory raises residency and throughput.
"""

import pytest

from repro.bench import format_table
from repro.bench.whatif import run_whatif, whatif_rows
from repro.models import get_model
from repro.perfmodel import Workload


@pytest.mark.paper
def test_whatif_hardware(benchmark):
    workload = Workload(get_model("opt-30b"), 64, 8, 64, 10)
    results = benchmark.pedantic(
        lambda: run_whatif(workload), rounds=1, iterations=1
    )
    print(format_table(whatif_rows(results), "What-if hardware sweep"))
    by = {r.variant: r for r in results}
    assert by["h100-like"].throughput > by["baseline-a100-pcie4"].throughput
    assert by["a100-80gb"].throughput > by["baseline-a100-pcie4"].throughput
    assert by["pcie3-x16"].throughput <= by["baseline-a100-pcie4"].throughput
    # Decision flips with the interconnect.
    assert by["pcie3-x16"].attention_on_cpu
    assert not by["pcie5-x16"].attention_on_cpu
