"""Figure 3 — throughput under offloading x quantization strategies.

Paper values (OPT-30B, s=64, n=128, bsz=64, bls=640): CPU-attention 41,
CPU+quant best 32, GPU-attention 46, GPU+W4 35, GPU+KV4 82, GPU+W4KV4 55
tokens/s.
"""

import pytest

from repro.bench import format_table, paper_data, run_fig3_quant_strategies


@pytest.mark.paper
def test_fig3_quant_strategies(benchmark):
    rows = benchmark.pedantic(run_fig3_quant_strategies, rounds=1, iterations=1)
    print(format_table(rows, "Figure 3 — offloading x quantization (tokens/s)"))
    print(f"paper reference: {paper_data.FIG3_TPUT}")
    tput = {r["strategy"]: r["tokens_per_s"] for r in rows}
    # Shape assertions (Observations 1 & 2).
    assert tput["cpu/kv4"] < tput["cpu/none"]
    assert tput["gpu/kv4"] > tput["gpu/none"] > tput["gpu/w4"]
    assert tput["gpu/w4+kv4"] < tput["gpu/kv4"]
