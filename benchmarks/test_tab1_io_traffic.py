"""Table 1 — I/O traffic for one generated token, with/without attention
offloading.

Paper: with offloading, weights 16.32 GB / KV 0 / activation 0.38 GB;
without, weights 38.88 GB / KV 78.72 GB in + 0.8 GB out.
"""

import pytest

from repro.bench import format_table, paper_data, run_tab1_io_traffic


@pytest.mark.paper
def test_tab1_io_traffic(benchmark):
    rows = benchmark.pedantic(run_tab1_io_traffic, rounds=1, iterations=1)
    print(format_table(rows, "Table 1 — I/O traffic (GB per token)"))
    print(f"paper reference: {paper_data.TAB1_TRAFFIC_GB}")
    data = {(r["case"], r["direction"], r["tensor"]): r["gb_per_token"] for r in rows}
    assert data[("with_offload", "cpu->gpu", "kv_cache")] == 0.0
    assert data[("without_offload", "cpu->gpu", "kv_cache")] > 50
    # Attention offloading reduces the weight stream (more GPU residency).
    assert (
        data[("with_offload", "cpu->gpu", "weights")]
        < data[("without_offload", "cpu->gpu", "weights")]
    )
    # Activations are negligible either way (paper: ~0.38 GB).
    assert data[("with_offload", "cpu->gpu", "activation")] < 1.0
