"""Ablation benches for the design choices DESIGN.md calls out.

1. Per-tensor quantization decisions vs blanket quantization.
2. Kahn-derived inter-op parallelism vs fixed settings.
3. Volume-proportional I/O thread split vs uniform split.
4. Quantizer group-size sensitivity (accuracy vs metadata overhead).
5. Codec kernel rates: FlexGen-like vs ideal (the tradeoff's origin).
"""

import numpy as np
import pytest

from repro.bench.experiments import Q4, motivating_workload, _default_ctx
from repro.hardware import single_a100
from repro.offload.planner import PolicyPlanner
from repro.parallel import ContentionModel, CpuTopology, build_default_profiles
from repro.parallel.controller import ParallelismController
from repro.perfmodel import CostModel, HardwareParams
from repro.perfmodel.constants import EngineCalibration
from repro.quant import QuantConfig
from repro.quant.error import empirical_error
from repro.runtime.graph import build_attention_graph


@pytest.fixture(scope="module")
def setup():
    platform = single_a100()
    hw = HardwareParams.from_platform(platform)
    ctx = _default_ctx(platform)
    return platform, hw, ctx


@pytest.mark.paper
def test_ablation_per_tensor_vs_blanket_quant(benchmark, setup):
    """LM-Offload decides per tensor; blanket 'compress everything' loses
    (this is Observation 2 turned into an ablation)."""
    _, hw, ctx = setup
    planner = PolicyPlanner(hw=hw, cpu_ctx=ctx, quant_aware=True)
    workload = motivating_workload()

    def run():
        best, best_tput = planner.search(workload)
        blanket, blanket_tput = planner.search_fixed(workload, False, Q4, Q4)
        return best_tput, blanket_tput

    best_tput, blanket_tput = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"per-tensor decision: {best_tput:.1f} tok/s; blanket W4+KV4: {blanket_tput:.1f} tok/s")
    # Blanket compression is strictly dominated: the KV4-only strategy the
    # per-tensor search finds avoids the weight-codec tax.
    assert best_tput > blanket_tput * 1.05


@pytest.mark.paper
def test_ablation_kahn_interop_vs_fixed(benchmark):
    """Algorithm 3's Kahn-derived plan vs naive fixed settings."""
    platform = single_a100()
    topo = CpuTopology.from_device(platform.cpu)
    contention = ContentionModel(topo, platform.cache)
    controller = ParallelismController(
        topology=topo, contention=contention,
        profiles=build_default_profiles(contention),
        io_volumes={"load_weight": 30e6},
    )
    graph = build_attention_graph(4)

    def run():
        from repro.parallel.bundling import bundle_operators
        from repro.parallel.speedup import ParallelismSetting

        bundled, _ = bundle_operators(graph)
        plan = controller.plan(graph)
        fixed = {
            (i, c): controller.compute_seconds(bundled, ParallelismSetting(i, c))
            for i, c in [(56, 112), (1, 1), (56, 1), (1, 112)]
        }
        return plan.predicted_compute_seconds, fixed

    planned, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"Algorithm 3 plan: {planned*1e3:.2f} ms; fixed settings:")
    for (i, c), t in fixed.items():
        print(f"  intra={i:3d} inter={c:3d}: {t*1e3:.2f} ms")
    assert all(planned <= t * 1.001 for t in fixed.values())


@pytest.mark.paper
def test_ablation_io_thread_split(benchmark):
    """Volume-proportional thread split vs uniform split of the same pool."""
    platform = single_a100()
    topo = CpuTopology.from_device(platform.cpu)
    contention = ContentionModel(topo, platform.cache)
    volumes = {
        "load_weight": 35e6, "load_cache": 5e6, "store_cache": 1e6,
        "load_activation": 0.1e6, "store_activation": 0.1e6,
    }
    controller = ParallelismController(
        topology=topo, contention=contention,
        profiles=build_default_profiles(contention), io_volumes=volumes,
    )

    def run():
        free = 10
        proportional = controller.split_io_threads(free)
        uniform = {t: free // 5 for t in proportional}
        def worst(assign):
            return max(
                controller.io_task_seconds(t, assign[t], wire_seconds=0.0)
                for t in assign
            )
        return worst(proportional), worst(uniform)

    prop, uni = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"worst staging time: proportional {prop*1e3:.2f} ms, uniform {uni*1e3:.2f} ms")
    assert prop < uni


@pytest.mark.paper
def test_ablation_group_size(benchmark, rng=np.random.default_rng(5)):
    """Quantizer group size: error shrinks, metadata grows."""
    data = rng.standard_normal((128, 1024)).astype(np.float32)

    def run():
        out = []
        for g in (16, 64, 256, 1024):
            cfg = QuantConfig(bits=4, group_size=g)
            err = empirical_error(data, cfg)
            out.append((g, err["mean_abs"], cfg.total_bytes(data.size)))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("group | mean_abs_err | stored bytes")
    for g, err, size in rows:
        print(f"{g:5d} | {err:.5f} | {size:.0f}")
    errors = [r[1] for r in rows]
    sizes = [r[2] for r in rows]
    assert errors == sorted(errors)            # bigger groups -> more error
    assert sizes == sorted(sizes, reverse=True)  # bigger groups -> less metadata


@pytest.mark.paper
def test_ablation_codec_rates(benchmark, setup):
    """The quantization tradeoff exists *because* codec kernels are slow:
    at ideal kernel rates weight quantization flips to beneficial."""
    _, hw, ctx = setup
    from repro.offload.policy import OffloadPolicy

    workload = motivating_workload()
    policy = OffloadPolicy(
        wg=0.55, hg=0.0, attention_on_cpu=False,
        gpu_batch_size=64, num_gpu_batches=10,
    )

    def run():
        out = {}
        for label, cal in [
            ("flexgen-codec", EngineCalibration.paper_defaults()),
            ("ideal-codec", EngineCalibration.ideal_kernels()),
        ]:
            plain = CostModel(workload, policy, hw, ctx, cal).breakdown().total_seconds
            quant = CostModel(
                workload, policy.with_(weight_quant=Q4), hw, ctx, cal
            ).breakdown().total_seconds
            out[label] = plain / quant  # >1 means quantization helps
        return out

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"W4 end-to-end gain: {gains}")
    assert gains["flexgen-codec"] < 1.0 < gains["ideal-codec"]
