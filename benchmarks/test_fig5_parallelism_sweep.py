"""Figure 5 — throughput vs intra-op and inter-op thread counts.

Paper shapes: intra-op throughput rises and stabilises past ~8 threads;
inter-op throughput peaks at an interior optimum (12 on the authors'
machine) and degrades toward the default (112).  Our contention model
places the interior optimum lower (2-8); see EXPERIMENTS.md.
"""

import pytest

from repro.bench import format_table, paper_data, run_fig5_parallelism_sweep


@pytest.mark.paper
def test_fig5_parallelism_sweep(benchmark):
    sweep = benchmark.pedantic(run_fig5_parallelism_sweep, rounds=1, iterations=1)
    print(format_table(sweep["intra"], "Figure 5a — intra-op sweep (inter=112)"))
    print(format_table(sweep["inter"], "Figure 5b — inter-op sweep (intra=56)"))
    print(
        f"paper: saturation ~{paper_data.FIG5_INTRA_SATURATION_THREADS} intra, "
        f"optimum {paper_data.FIG5_INTER_OPTIMUM} inter"
    )
    intra = {r["threads"]: r["tokens_per_s"] for r in sweep["intra"]}
    inter = {r["threads"]: r["tokens_per_s"] for r in sweep["inter"]}
    assert intra[4] > intra[1]
    best_inter = max(inter, key=inter.get)
    assert 1 < best_inter < 112
    assert inter[best_inter] > inter[112]
