"""Figure 4 — inference-time breakdown into quantize / dequantize / other.

Paper: with attention offloading the (de)quantization overhead is zero;
without it, the codec takes a large slice (the W4 bar is dominated by
dequantization).
"""

import pytest

from repro.bench import format_table, run_fig4_breakdown


@pytest.mark.paper
def test_fig4_breakdown(benchmark):
    rows = benchmark.pedantic(run_fig4_breakdown, rounds=1, iterations=1)
    print(format_table(rows, "Figure 4 — time breakdown (seconds)"))
    by = {r["strategy"]: r for r in rows}
    # No codec time without quantization.
    assert by["cpu/none"]["quantize_s"] == 0.0
    assert by["gpu/none"]["dequantize_s"] == 0.0
    # W4 without attention offloading is dequantization-heavy.
    w4 = by["gpu/w4"]
    assert w4["dequantize_s"] > 0.2 * w4["total_s"]
    # KV4's codec cost is much smaller relative to its win.
    kv4 = by["gpu/kv4"]
    assert kv4["dequantize_s"] + kv4["quantize_s"] < 0.5 * kv4["total_s"]
