"""Figure 7 — benefit of the performance model alone (parallelism control
disabled): LM-Offload vs FlexGen on the 30B models.

Paper: +90%..+121% across all configurations, consistent as model size
grows.
"""

import pytest

from repro.bench import format_table, paper_data, run_fig7_effective_quantization


@pytest.mark.paper
def test_fig7_effective_quantization(benchmark):
    rows = benchmark.pedantic(
        run_fig7_effective_quantization, rounds=1, iterations=1
    )
    print(format_table(rows, "Figure 7 — quant-aware planning only (tokens/s)"))
    print(f"paper gain range: {paper_data.FIG7_GAIN_RANGE}")
    gains = [r["gain"] for r in rows]
    # Every configuration gains substantially...
    assert all(g > 1.3 for g in gains)
    # ...and the benefit is consistent across lengths and both models
    # (paper: "remains consistent as the model size increases").
    assert max(gains) / min(gains) < 1.5
