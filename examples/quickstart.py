"""Quickstart: plan and run LM-Offload on OPT-30B, compare baselines.

Run:  python examples/quickstart.py
"""

from repro import (
    FlexGenEngine,
    LMOffloadEngine,
    Workload,
    ZeroInferenceEngine,
    get_model,
    single_a100,
)


def main() -> None:
    # The paper's motivating workload: OPT-30B, prompt 64, generate 8
    # tokens for a zig-zag block of 640 sequences (64 x 10 batches).
    workload = Workload(
        model=get_model("opt-30b"),
        prompt_len=64,
        gen_len=8,
        gpu_batch_size=64,
        num_gpu_batches=10,
    )
    print(f"workload: {workload.describe()}")
    fp = workload.footprint()
    print(
        f"weights {fp.total_weight_bytes/1e9:.0f} GB, "
        f"peak KV cache {fp.peak_kv_bytes/1e9:.0f} GB "
        f"-> far beyond one A100-40GB, so offloading is mandatory.\n"
    )

    for engine in (
        FlexGenEngine(single_a100()),
        ZeroInferenceEngine(single_a100()),
        LMOffloadEngine(single_a100()),
    ):
        report = engine.run(workload)
        print(f"{report.engine:15s} {report.throughput:7.1f} tokens/s")
        print(f"  policy: {report.policy.describe()}")
        print(
            f"  memory: GPU {report.gpu_bytes/1e9:.1f} GB, "
            f"host {report.cpu_bytes/1e9:.1f} GB"
        )
        if report.parallelism is not None:
            print(f"  threads: {report.parallelism.describe()}")
        print(f"  bottleneck task: {report.breakdown.bottleneck}")
        print()


if __name__ == "__main__":
    main()
