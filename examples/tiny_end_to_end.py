"""Real end-to-end generation through the offloading runtime.

A tiny NumPy transformer generates text while its weights live in a
simulated host-memory pool, stream through a simulated PCIe link, and are
(optionally) group-wise quantized for real — the same code paths the
analytic engines cost at 30B+ scale.

Run:  python examples/tiny_end_to_end.py
"""

import numpy as np

from repro import (
    FunctionalEngine,
    OffloadPolicy,
    QuantConfig,
    Transformer,
    TransformerWeights,
    get_model,
    small_test_platform,
)
from repro.models import ByteTokenizer


def main() -> None:
    rng = np.random.default_rng(42)
    config = get_model("tiny-4l")
    weights = TransformerWeights.random(config, rng)
    tokenizer = ByteTokenizer()
    prompts = ["offloading is", "tensors move"]
    prompt_ids = tokenizer.encode_batch(prompts, length=12)

    print(f"model: {config.name} ({config.total_weights/1e6:.1f}M transformer params)")
    reference = Transformer(weights).generate(prompt_ids.copy(), 16)

    policies = {
        "all-on-gpu": OffloadPolicy(
            wg=1.0, hg=1.0, attention_on_cpu=True,
            gpu_batch_size=2, num_gpu_batches=1,
        ),
        "half-offloaded": OffloadPolicy(
            wg=0.5, hg=1.0, attention_on_cpu=True,
            gpu_batch_size=2, num_gpu_batches=1,
        ),
        "offloaded+W8": OffloadPolicy(
            wg=0.0, hg=1.0, attention_on_cpu=True,
            weight_quant=QuantConfig(bits=8, group_size=32),
            gpu_batch_size=2, num_gpu_batches=1,
        ),
        "offloaded+W4": OffloadPolicy(
            wg=0.0, hg=1.0, attention_on_cpu=True,
            weight_quant=QuantConfig(bits=4, group_size=32),
            gpu_batch_size=2, num_gpu_batches=1,
        ),
    }

    for name, policy in policies.items():
        engine = FunctionalEngine(
            weights=weights, policy=policy, platform=small_test_platform()
        )
        result = engine.generate(prompt_ids.copy(), 16)
        agreement = (result.token_ids == reference).mean()
        weights_gb = result.traffic_by_category.get("weights", 0.0) / 1e6
        print(
            f"{name:16s} sim {result.simulated_seconds*1e3:7.2f} ms  "
            f"weights moved {weights_gb:7.2f} MB  "
            f"token agreement vs fp32 reference {agreement:.0%}"
        )
        print(f"  text[0]: {tokenizer.decode(result.token_ids[0])!r}")


if __name__ == "__main__":
    main()
