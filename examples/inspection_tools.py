"""Inspection toolkit tour: quality evaluation, Chrome traces, block
execution, sparkline sweeps.

Run:  python examples/inspection_tools.py
"""

import numpy as np

from repro import QuantConfig, TransformerWeights, get_model
from repro.bench import run_fig5_parallelism_sweep, sweep_summary
from repro.core import BlockRunner, LMOffloadEngine
from repro.hardware import single_a100
from repro.models.quality import bits_sweep
from repro.offload import OffloadPolicy
from repro.perfmodel import CostModel, Workload
from repro.trace import trace_decode_schedule


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== 1. Quantization quality (tiny executable model) ===")
    weights = TransformerWeights.random(get_model("tiny-4l"), rng)
    prompt = rng.integers(0, 256, size=(4, 10))
    for bits, report in bits_sweep(weights, prompt, bits_options=(8, 4, 2)).items():
        print(
            f"  {bits}-bit weights: logit MAE {report.logit_mae:.4f}, "
            f"top-1 agreement {report.top1_agreement:.0%}, "
            f"KL {report.kl_divergence:.4f}"
        )

    print("\n=== 2. Zig-zag block execution (Algorithm 1, functional) ===")
    policy = OffloadPolicy(
        wg=0.0, hg=1.0, attention_on_cpu=True, gpu_batch_size=2, num_gpu_batches=2
    )
    runner = BlockRunner(weights=weights, policy=policy)
    result = runner.generate_block(prompt, 6)
    print(
        f"  block of 4 sequences generated 6 tokens each; weights moved "
        f"{result.traffic_by_category['weights']/1e6:.1f} MB "
        f"(one fetch per layer sweep, shared by both batches)"
    )

    print("\n=== 3. Chrome trace of the overlapped schedule ===")
    workload = Workload(get_model("opt-30b"), 64, 8, 64, 10)
    engine = LMOffloadEngine(single_a100())
    pol, ctx, _ = engine.plan(workload)
    cost = CostModel(workload, pol, engine.hw, ctx, engine.config.calibration)
    costs = [cost.decode_task_costs(t) for t in range(2)]
    builder = trace_decode_schedule(costs, num_layers=6, num_gpu_batches=pol.num_gpu_batches)
    builder.save("decode_trace.json")
    print(f"  wrote decode_trace.json with {builder.num_slices} slices "
          f"(open in chrome://tracing)")

    print("\n=== 4. Threading sweeps at a glance ===")
    sweep = run_fig5_parallelism_sweep()
    print("  " + sweep_summary(sweep["intra"], "threads", "tokens_per_s", "intra-op"))
    print("  " + sweep_summary(sweep["inter"], "threads", "tokens_per_s", "inter-op"))


if __name__ == "__main__":
    main()
