"""Performance-model-guided policy exploration (paper §3).

Shows (1) the throughput of every offloading x quantization strategy at
its best placement, and (2) the three decision procedures of §3.2's
"How to use the models".

Run:  python examples/policy_search.py
"""

from repro import (
    CpuExecutionContext,
    HardwareParams,
    OffloadPolicy,
    QuantConfig,
    Workload,
    get_model,
    single_a100,
)
from repro.bench import format_table, run_fig3_quant_strategies
from repro.parallel import ContentionModel, CpuTopology
from repro.perfmodel import PerformanceAnalyzer


def main() -> None:
    print("=== Strategy space (Figure 3 reproduction) ===")
    rows = run_fig3_quant_strategies()
    print(format_table(rows))
    print()

    platform = single_a100()
    hw = HardwareParams.from_platform(platform)
    topo = CpuTopology.from_device(platform.cpu)
    ctx = CpuExecutionContext.pytorch_default(topo, ContentionModel(topo, platform.cache))
    workload = Workload(get_model("opt-30b"), 64, 128, 64, 10)
    analyzer = PerformanceAnalyzer(workload, hw, ctx, quant=QuantConfig(bits=4))

    cpu_base = OffloadPolicy(
        wg=0.55, hg=0.0, attention_on_cpu=True, gpu_batch_size=64, num_gpu_batches=10
    )
    gpu_base = OffloadPolicy(
        wg=0.55, hg=0.0, attention_on_cpu=False, gpu_batch_size=64, num_gpu_batches=10
    )

    print("=== §3.2 decision procedures ===")
    d = analyzer.weight_quant_benefit(gpu_base)
    print(
        f"1. Quantize weights (GPU attention)?  {'yes' if d.beneficial else 'no'} "
        f"({d.seconds_without:.0f}s -> {d.seconds_with:.0f}s)"
    )
    d = analyzer.kv_quant_benefit(gpu_base)
    print(
        f"2. Quantize KV cache (GPU attention)? {'yes' if d.beneficial else 'no'} "
        f"({d.seconds_without:.0f}s -> {d.seconds_with:.0f}s, {d.speedup:.2f}x)"
    )
    d = analyzer.kv_quant_benefit(cpu_base)
    print(
        f"   ... with attention offloaded?      {'yes' if d.beneficial else 'no'} "
        f"(Observation 1: the CPU pays the codec every token)"
    )
    d = analyzer.attention_offload_benefit(cpu_base)
    print(
        f"3. Offload attention to the CPU?      {'yes' if d.beneficial else 'no'} "
        f"(each placement at its own best quantization)"
    )


if __name__ == "__main__":
    main()
