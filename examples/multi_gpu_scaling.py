"""Multi-GPU weak scaling (paper §5.5 / Figure 9).

Pipeline-parallel inference of OPT-13B and LLaMA-13B across 1-4 simulated
V100s on the POWER9 platform; the batch doubles with the GPU count.

Run:  python examples/multi_gpu_scaling.py
"""

from repro.bench import format_table, run_fig9_multigpu


def main() -> None:
    rows = run_fig9_multigpu()
    print(format_table(rows, "Weak scaling: FlexGen vs LM-Offload (tokens/s)"))
    print()
    for model in ("opt-13b", "llama-13b"):
        gains = [r["gain"] for r in rows if r["model"] == model]
        print(
            f"{model}: gain grows {gains[0]:.2f}x -> {gains[-1]:.2f}x as GPUs "
            f"1 -> 4 (shared host-DRAM feed saturates FlexGen's uncompressed "
            f"streams first)"
        )


if __name__ == "__main__":
    main()
