"""Thread-level parallelism control (paper §4, Algorithm 3).

Walks through: the attention op-dependency graph and its Kahn levels, the
threading sweeps of Figure 5, Algorithm 3's chosen plan, and the Figure 8
per-task comparison against PyTorch defaults.

Run:  python examples/parallelism_tuning.py
"""

from repro.bench import (
    format_table,
    run_fig5_parallelism_sweep,
    run_fig8_parallelism_control,
)
from repro.parallel.bundling import bundle_operators
from repro.runtime.graph import build_attention_graph, kahn_levels, max_concurrency


def main() -> None:
    print("=== Attention op graph (Figure 6) ===")
    graph = build_attention_graph(num_batches=4)
    for i, level in enumerate(kahn_levels(graph)):
        print(f"  level {i}: {len(level):2d} ops  e.g. {level[0]}")
    print(f"  max concurrency (inter-op estimate): {max_concurrency(graph)}")
    bundled, bundles = bundle_operators(graph)
    fused = [b for b in bundles if b.size > 1]
    print(f"  bundling fused {len(fused)} small-op chains "
          f"({graph.num_ops} -> {bundled.num_ops} scheduled units)\n")

    print("=== Threading sweeps (Figure 5) ===")
    sweep = run_fig5_parallelism_sweep()
    print(format_table(sweep["intra"], "intra-op sweep (inter = default 112)"))
    print(format_table(sweep["inter"], "inter-op sweep (intra = default 56)"))
    print()

    print("=== Algorithm 3 vs PyTorch defaults (Figure 8) ===")
    result = run_fig8_parallelism_control()
    print(f"  chosen plan: {result['plan']}")
    for task in result["default_tasks_s"]:
        d = result["default_tasks_s"][task]
        c = result["controlled_tasks_s"][task]
        if d > 0:
            print(f"  {task:18s} {d:7.3f}s -> {c:7.3f}s  ({1 - c / d:+.0%})")
    print(f"  end-to-end reduction: {result['end_to_end_reduction']:.0%}")


if __name__ == "__main__":
    main()
