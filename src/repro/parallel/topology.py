"""CPU topology: sockets, cores, SMT — the resource Algorithm 3 divides."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.device import DeviceSpec


@dataclass(frozen=True)
class CpuTopology:
    """Physical layout of the CPU the parallelism controller manages.

    The paper's single-GPU platform: 2 sockets x 28 cores x 2 SMT =
    112 hardware threads, 56 physical cores.
    """

    sockets: int
    cores_per_socket: int
    smt: int = 2

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0 or self.smt <= 0:
            raise ConfigError("topology: all dimensions must be positive")

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        return self.physical_cores * self.smt

    def crosses_socket(self, threads: int) -> bool:
        """True if a gang of ``threads`` must span more than one socket
        (first-touch placement fills one socket before spilling)."""
        return threads > self.cores_per_socket * self.smt

    def oversubscribed(self, threads: int) -> bool:
        """More software threads than hardware threads."""
        return threads > self.hardware_threads

    @classmethod
    def from_device(cls, cpu: DeviceSpec) -> "CpuTopology":
        """Derive the topology from a platform CPU spec."""
        if not cpu.is_cpu:
            raise ConfigError("from_device expects a CPU DeviceSpec")
        if cpu.cores % cpu.sockets:
            raise ConfigError("cores must divide evenly across sockets")
        return cls(
            sockets=cpu.sockets,
            cores_per_socket=cpu.cores // cpu.sockets,
            smt=cpu.smt,
        )
