"""Offline operator profiles (paper §4.2, last paragraph).

The paper avoids measuring operator times during inference: it profiles
each compute-task operator once, offline, across intra-op thread counts,
and reuses that table online.  We reproduce the same structure —
:class:`ProfileTable` maps ``(op kind, threads) -> seconds`` — and provide
:func:`build_default_profiles`, which generates the table from the
contention model (playing the role of the offline measurement run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.parallel.speedup import ContentionModel


@dataclass(frozen=True)
class OpProfile:
    """Serial execution characteristics of one operator kind.

    ``serial_seconds`` is the single-thread time for one invocation at the
    profiled workload shape; ``compute_fraction`` steers the speedup blend
    (GEMM-ish ops scale further than bandwidth-bound ones).
    """

    kind: str
    serial_seconds: float
    compute_fraction: float = 0.25
    bytes_touched: float = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.serial_seconds <= 0:
            raise ConfigError(f"profile {self.kind}: serial_seconds must be > 0")


@dataclass
class ProfileTable:
    """``(kind, threads) -> seconds`` lookup built by offline profiling."""

    entries: dict[tuple[str, int], float] = field(default_factory=dict)
    profiles: dict[str, OpProfile] = field(default_factory=dict)

    def record(self, kind: str, threads: int, seconds: float) -> None:
        if seconds <= 0:
            raise ConfigError("profiled seconds must be > 0")
        self.entries[(kind, threads)] = seconds

    def lookup(self, kind: str, threads: int) -> float:
        """Profiled time; falls back to the nearest profiled thread count
        (profiling enumerates a subset of counts, like real sweeps do)."""
        if (kind, threads) in self.entries:
            return self.entries[(kind, threads)]
        candidates = [t for (k, t) in self.entries if k == kind]
        if not candidates:
            raise KeyError(f"no profile for op kind {kind!r}")
        nearest = min(candidates, key=lambda t: (abs(t - threads), t))
        return self.entries[(kind, nearest)]

    def kinds(self) -> list[str]:
        return sorted({k for (k, _) in self.entries})


#: Serial times (seconds) of the decode-attention operators for the paper's
#: motivating shape (OPT-30B, gpu_batch 64).  Magnitudes are derived from
#: the op FLOP/byte counts on the Xeon 6330; only ratios matter for the
#: controller's decisions.
DEFAULT_OP_PROFILES: dict[str, OpProfile] = {
    "q_proj": OpProfile("q_proj", 3.0e-3, compute_fraction=0.55),
    "k_proj": OpProfile("k_proj", 3.0e-3, compute_fraction=0.55),
    "v_proj": OpProfile("v_proj", 3.0e-3, compute_fraction=0.55),
    "concat_kv": OpProfile("concat_kv", 4.0e-4, compute_fraction=0.05),
    "scores": OpProfile("scores", 6.0e-3, compute_fraction=0.15,
                        bytes_touched=8 * 1024 * 1024),
    "softmax": OpProfile("softmax", 1.5e-3, compute_fraction=0.10),
    "context": OpProfile("context", 6.0e-3, compute_fraction=0.15,
                         bytes_touched=8 * 1024 * 1024),
    "out_proj": OpProfile("out_proj", 3.0e-3, compute_fraction=0.55),
    "generic": OpProfile("generic", 1.0e-3, compute_fraction=0.25),
}


def build_default_profiles(
    model: ContentionModel,
    thread_counts: list[int] | None = None,
    profiles: dict[str, OpProfile] | None = None,
) -> ProfileTable:
    """Run the 'offline profiling' pass: evaluate each op kind at each
    thread count in isolation (co_runners=1, no contention) and tabulate."""
    counts = thread_counts or [1, 2, 4, 8, 12, 16, 24, 32, 48, 56, 64, 96, 112]
    profs = profiles or DEFAULT_OP_PROFILES
    table = ProfileTable(profiles=dict(profs))
    for prof in profs.values():
        for t in counts:
            speedup = model.intra_speedup(t, prof.compute_fraction)
            table.record(prof.kind, t, prof.serial_seconds / speedup)
    return table
