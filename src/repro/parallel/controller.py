"""Algorithm 3: thread-level parallelism management.

The controller decides, for the decode phase:

* ``intra_op`` threads for compute-task operators (one shared value — the
  paper applies the same intra-op parallelism to all compute ops to avoid
  cache misses from reconfiguration and scheduling overhead);
* ``inter_op`` slots for the compute task, estimated from the max
  concurrency level of the (bundled) op dependency graph via Kahn's
  algorithm, capped so at least five threads remain;
* a thread budget for each of the five load/store tasks, proportional to
  its data-transfer volume.

The throughput estimate uses *offline profiles* (``ProfileTable``) for
compute ops plus interconnect-derived times for the I/O tasks — no online
measurement, exactly as §4.2 prescribes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError, ScheduleError
from repro.obs.profiling import span
from repro.obs.registry import MetricsRegistry
from repro.parallel.bundling import bundle_operators
from repro.parallel.profiles import ProfileTable
from repro.parallel.speedup import ContentionModel, ParallelismSetting
from repro.parallel.topology import CpuTopology
from repro.runtime.graph import OpGraph, max_concurrency

#: The five I/O tasks that must always keep a thread available (Alg. 3
#: reserves >= 5 free threads for them).
IO_TASKS = (
    "load_weight",
    "load_cache",
    "load_activation",
    "store_cache",
    "store_activation",
)


@dataclass(frozen=True)
class ParallelismPlan:
    """The controller's output: a full thread assignment."""

    compute: ParallelismSetting
    io_threads: dict[str, int]
    inter_op_total: int
    predicted_compute_seconds: float
    predicted_step_seconds: float

    @property
    def total_compute_threads(self) -> int:
        return self.compute.total_threads

    def describe(self) -> str:
        io = " ".join(f"{k.split('_')[0]}_{k.split('_')[1][:3]}={v}" for k, v in sorted(self.io_threads.items()))
        return (
            f"intra={self.compute.intra_op} inter={self.compute.inter_op} "
            f"(+5 io => inter_total={self.inter_op_total}) [{io}]"
        )


def schedule_makespan(
    graph: OpGraph,
    slots: int,
    op_seconds,
) -> float:
    """Greedy list-schedule of ``graph`` onto ``slots`` parallel executors.

    ``op_seconds(node_name) -> float`` gives each op's execution time
    (already contention-adjusted).  Returns the makespan.  This is the
    "estimate execution time" step Algorithm 3 performs per candidate
    setting.
    """
    if slots < 1:
        raise ConfigError("slots must be >= 1")
    graph.validate()
    base_indegree, successors = graph.adjacency()
    indegree = dict(base_indegree)
    ready = sorted(n for n, d in indegree.items() if d == 0)
    # Min-heaps: executors by free time, running ops by completion time.
    executors = [0.0] * slots
    heapq.heapify(executors)
    running: list[tuple[float, str]] = []
    finished = 0
    clock = 0.0
    while ready or running:
        while ready:
            name = ready.pop(0)
            start = max(heapq.heappop(executors), clock)
            end = start + op_seconds(name)
            heapq.heappush(executors, end)
            heapq.heappush(running, (end, name))
        if not running:
            break
        clock, done = heapq.heappop(running)
        finished += 1
        newly = []
        for succ in successors[done]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                newly.append(succ)
        ready.extend(sorted(newly))
    if finished != graph.num_ops:
        raise ScheduleError("schedule did not complete every op")
    return max(clock, max(executors))


@dataclass
class ParallelismController:
    """Searches (intra, inter) per Algorithm 3.

    Parameters
    ----------
    topology:
        The CPU being divided.
    contention:
        Mechanism model used for co-runner adjustments.
    profiles:
        Offline per-op profile table.
    io_wire_seconds:
        Pure interconnect time of each I/O task for one decode step (its
        lower bound, reached with enough staging threads).
    io_volumes:
        Bytes each I/O task moves per decode step (drives the proportional
        thread split).
    staging_bw_per_thread:
        Host-side bytes/s one staging thread can feed into the DMA engine
        (memcpy into pinned buffers + (de)quantization work).
    reserve_io_threads:
        Minimum free threads (Alg. 3 uses 5, one per I/O task).
    bundle_small_ops:
        Fuse small operators before the concurrency analysis (§1).
    metrics:
        Optional time-series sink for the Algorithm 3 search itself: each
        candidate ``intra`` the sweep evaluates lands one point in
        ``curve.search.step_s`` / ``curve.search.compute_s`` keyed by the
        candidate's intra-op width (the search's own virtual axis), so the
        cost landscape the controller walked is inspectable after the
        fact.  ``None`` (default) is structurally inert.
    """

    topology: CpuTopology
    contention: ContentionModel
    profiles: ProfileTable
    io_volumes: dict[str, float] = field(default_factory=dict)
    staging_bw_per_thread: float = 6e9
    reserve_io_threads: int = 5
    bundle_small_ops: bool = True
    metrics: MetricsRegistry | None = None

    def io_task_seconds(self, task: str, threads: int, wire_seconds: float) -> float:
        """Effective I/O task time: max of wire time and host staging time."""
        volume = self.io_volumes.get(task, 0.0)
        if volume <= 0:
            return wire_seconds
        staging = volume / (self.staging_bw_per_thread * max(1, threads))
        return max(wire_seconds, staging)

    def split_io_threads(self, free_threads: int) -> dict[str, int]:
        """Volume-proportional thread assignment (>=1 each) to the 5 tasks."""
        if free_threads < len(IO_TASKS):
            raise ConfigError(
                f"need >= {len(IO_TASKS)} free threads, got {free_threads}"
            )
        volumes = {t: max(self.io_volumes.get(t, 0.0), 0.0) for t in IO_TASKS}
        total = sum(volumes.values())
        out = {t: 1 for t in IO_TASKS}
        remaining = free_threads - len(IO_TASKS)
        if total > 0 and remaining > 0:
            # Largest-remainder apportionment of the leftover threads.
            quotas = {t: remaining * v / total for t, v in volumes.items()}
            floors = {t: int(q) for t, q in quotas.items()}
            for t, f in floors.items():
                out[t] += f
            leftover = remaining - sum(floors.values())
            by_frac = sorted(
                IO_TASKS, key=lambda t: quotas[t] - floors[t], reverse=True
            )
            for t in by_frac[:leftover]:
                out[t] += 1
        return out

    def plan(
        self,
        graph: OpGraph,
        io_wire_seconds: dict[str, float] | None = None,
        max_intra: int | None = None,
    ) -> ParallelismPlan:
        """Run Algorithm 3 and return the best thread assignment found."""
        with span("parallel.controller.plan"):
            return self._plan(graph, io_wire_seconds, max_intra)

    def _plan(
        self,
        graph: OpGraph,
        io_wire_seconds: dict[str, float] | None = None,
        max_intra: int | None = None,
    ) -> ParallelismPlan:
        wire = {t: 0.0 for t in IO_TASKS}
        if io_wire_seconds:
            wire.update(io_wire_seconds)
        work_graph = graph
        if self.bundle_small_ops:
            work_graph, _ = bundle_operators(graph)
        width = max_concurrency(work_graph)
        max_thrs = self.topology.hardware_threads
        hi = min(max_intra or max_thrs, max_thrs - self.reserve_io_threads)

        best: ParallelismPlan | None = None
        for intra in range(1, hi + 1):
            # Inter-op from the Kahn max-concurrency level, capped so the
            # compute gang leaves the reserved I/O threads free (Line 3-7).
            inter = min(width, (max_thrs - self.reserve_io_threads) // intra)
            if inter < 1:
                continue
            free = max_thrs - inter * intra
            if free < self.reserve_io_threads:
                continue
            setting = ParallelismSetting(intra_op=intra, inter_op=inter)
            compute_s = self.compute_seconds(work_graph, setting)
            io_threads = self.split_io_threads(free)
            io_s = {
                t: self.io_task_seconds(t, io_threads[t], wire[t]) for t in IO_TASKS
            }
            # The six tasks overlap (Eq. 2): the decode step costs the max.
            step = max(compute_s, *io_s.values())
            if self.metrics is not None:
                self.metrics.timeseries("curve.search.step_s").sample(
                    float(intra), step
                )
                self.metrics.timeseries("curve.search.compute_s").sample(
                    float(intra), compute_s
                )
            # Lexicographic preference: minimise the overlapped step time,
            # then the compute task itself (ties are common when an I/O
            # task is the bottleneck regardless of threading).
            if best is None or (step, compute_s) < (
                best.predicted_step_seconds,
                best.predicted_compute_seconds,
            ):
                best = ParallelismPlan(
                    compute=setting,
                    io_threads=io_threads,
                    inter_op_total=inter + len(IO_TASKS),
                    predicted_compute_seconds=compute_s,
                    predicted_step_seconds=step,
                )
        if best is None:
            raise ConfigError("no feasible parallelism setting exists")
        return best

    #: Seconds of serial execution per unit of OpNode.work.  The default is
    #: calibrated so a work-1.0 projection op matches the q_proj profile.
    unit_work_seconds: float = 3.0e-3

    def compute_seconds(self, graph: OpGraph, setting: ParallelismSetting) -> float:
        """Contention-adjusted makespan of the compute task under ``setting``.

        Per-op times combine (a) the *offline profiled* intra-op scaling of
        the op's kind with (b) the contention model's co-runner adjustments
        (granted threads, oversubscription thrash, LLC slowdown) — the
        online step never measures anything, per §4.2.
        """
        co = min(setting.inter_op, max_concurrency(graph))

        def op_time(name: str) -> float:
            node = graph.node(name)
            # The offline profile supplies the op's serial time; the
            # contention model adjusts for co-runners (fair-shared threads,
            # bandwidth split, LLC thrash).  The speedup path is identical
            # to CpuExecutionContext.parallel_efficiency so the controller
            # optimises exactly the metric the engine later runs under.
            serial = node.work * self.unit_work_seconds
            speedup = self.contention.effective_op_speedup(
                setting, co, op_bytes=node.bytes_touched or 4e6
            )
            return serial / speedup

        return schedule_makespan(graph, setting.inter_op, op_time)
