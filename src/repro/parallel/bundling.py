"""Operator bundling (paper §1: "we bundle small operators when throttling
parallelism to avoid cache thrashing").

Bundling merges chains of small dependent operators into a single scheduled
unit so that (a) the scheduler launches fewer concurrent gangs and (b) the
bundle's intermediate data stays cache-resident instead of being evicted
between separately-scheduled ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.graph import OpGraph, OpNode


@dataclass(frozen=True)
class OperatorBundle:
    """A fused group of ops scheduled as one unit."""

    name: str
    members: tuple[str, ...]
    work: float
    bytes_touched: float

    @property
    def size(self) -> int:
        return len(self.members)


def bundle_operators(
    graph: OpGraph, *, small_work_threshold: float = 1.0
) -> tuple[OpGraph, list[OperatorBundle]]:
    """Fuse every *small* op (work < threshold) into its unique successor or
    predecessor chain, returning a new graph of bundles.

    The fusion rule is conservative and deterministic: a small op with
    exactly one successor is merged into that successor (its work and bytes
    add; bytes use max since the fused op streams through once).  This is
    exactly the "concat_kv -> scores" and "softmax -> context" fusion the
    attention graph of Figure 6 admits.
    """
    g = graph.networkx()
    # Union-find over ops -> bundle representative.
    parent: dict[str, str] = {n: n for n in g.nodes}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for name in list(g.nodes):
        node = graph.node(name)
        succs = list(g.successors(name))
        if node.work < small_work_threshold and len(succs) == 1:
            parent[find(name)] = find(succs[0])

    groups: dict[str, list[str]] = {}
    for name in g.nodes:
        groups.setdefault(find(name), []).append(name)

    # Build bundle descriptors for every group.
    bundles: list[OperatorBundle] = []
    rep_to_bundle: dict[str, str] = {}
    for rep, members_list in groups.items():
        members = tuple(sorted(members_list))
        work = sum(graph.node(m).work for m in members)
        nbytes = max(graph.node(m).bytes_touched for m in members)
        bname = f"bundle[{'+'.join(members)}]" if len(members) > 1 else members[0]
        bundles.append(
            OperatorBundle(name=bname, members=members, work=work, bytes_touched=nbytes)
        )
        rep_to_bundle[rep] = bname

    # Collect inter-group edges, then insert bundles in a topological order
    # of the quotient graph (so add_op always sees its deps).
    import networkx as nx

    quotient = nx.DiGraph()
    quotient.add_nodes_from(rep_to_bundle)
    for u, v in g.edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            quotient.add_edge(ru, rv)

    by_rep = {find(b.members[0]): b for b in bundles}
    bundled = OpGraph()
    for rep in nx.topological_sort(quotient):
        bundle = by_rep[rep]
        # The bundle inherits the kind of its terminal (largest-work) op.
        terminal = max(bundle.members, key=lambda m: graph.node(m).work)
        deps = sorted(rep_to_bundle[p] for p in quotient.predecessors(rep))
        bundled.add_op(
            OpNode(
                name=bundle.name,
                work=bundle.work,
                bytes_touched=bundle.bytes_touched,
                kind=graph.node(terminal).kind,
            ),
            deps=deps,
        )
    bundled.validate()
    bundles.sort(key=lambda b: b.name)
    return bundled, bundles
