"""CPU thread-level parallelism model and the paper's control algorithm.

The paper's §4 shows that PyTorch's default threading (intra-op = all 56
cores, inter-op = all 112 hardware threads) is far from optimal for the six
offloading tasks, and contributes Algorithm 3 to pick a better split.  This
package models the *mechanisms* behind Figure 5's curves —

* intra-op speedup saturating near 8 threads (memory-bandwidth ceiling),
* inter-op throughput peaking near 12 co-running ops then degrading
  (LLC thrash + NUMA crossing + oversubscription),

— and implements Algorithm 3 on top of them.
"""

from repro.parallel.topology import CpuTopology
from repro.parallel.speedup import ContentionModel, ParallelismSetting
from repro.parallel.profiles import OpProfile, ProfileTable, build_default_profiles
from repro.parallel.controller import ParallelismController, ParallelismPlan
from repro.parallel.bundling import bundle_operators, OperatorBundle
from repro.parallel.llc import LLCModel, LLCMissReport

__all__ = [
    "CpuTopology",
    "ContentionModel",
    "ParallelismSetting",
    "OpProfile",
    "ProfileTable",
    "build_default_profiles",
    "ParallelismController",
    "ParallelismPlan",
    "bundle_operators",
    "OperatorBundle",
    "LLCModel",
    "LLCMissReport",
]
