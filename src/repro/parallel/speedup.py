"""Contention-aware thread speedup model.

This is the mechanism layer behind the paper's Figure 5:

* **Intra-op** speedup is a harmonic blend of a compute part (scales with
  granted cores, SMT threads counting fractionally) and a memory part
  (scales only until the socket's bandwidth saturates — roughly 6 streaming
  threads on the Xeon 6330), so memory-intensive attention operators
  flatten out near 8 threads.
* **Inter-op** co-running ops contend for the shared LLC (modelled through
  :class:`~repro.hardware.cache.CacheHierarchy`) and, past one socket's
  span, pay a NUMA penalty — so throughput peaks near the op graph's max
  concurrency (12 in Figure 6) and then degrades.

All calibration constants live in :class:`CalibrationConstants`, with
defaults chosen to land the paper's qualitative numbers; the ablation
benches perturb them to show the conclusions are not knife-edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.cache import CacheHierarchy
from repro.parallel.topology import CpuTopology


@dataclass(frozen=True)
class ParallelismSetting:
    """A (intra-op, inter-op) thread configuration."""

    intra_op: int
    inter_op: int

    def __post_init__(self) -> None:
        if self.intra_op < 1 or self.inter_op < 1:
            raise ConfigError("intra_op and inter_op must be >= 1")

    @property
    def total_threads(self) -> int:
        """Worst-case thread demand if every inter-op slot is busy."""
        return self.intra_op * self.inter_op


@dataclass(frozen=True)
class CalibrationConstants:
    """Tunable mechanism parameters (defaults calibrated to Figure 5/8).

    Attributes
    ----------
    compute_fraction:
        Fraction of an attention op's serial time that is compute-bound
        (the rest is memory-bound).  Decode attention is GEMV-like, so low.
    bw_saturation_threads:
        Streaming threads that saturate one socket's memory bandwidth.
    smt_efficiency:
        Marginal contribution of an SMT sibling vs a physical core.
    numa_bw_factor:
        Memory-speedup multiplier once a gang spans sockets (remote
        accesses under first-touch placement).
    oversub_exponent:
        Strength of the slowdown when a gang requests more threads than it
        is granted (scheduling overhead; paper §4.2: "the overhead of
        thread scheduling can easily kill the performance").
    llc_penalty:
        Max fractional slowdown attributable to LLC thrash from co-runners.
    op_stream_bytes:
        Per-thread streaming footprint charged against the LLC.
    """

    compute_fraction: float = 0.40
    bw_saturation_threads: float = 6.0
    smt_efficiency: float = 0.30
    numa_bw_factor: float = 0.85
    oversub_exponent: float = 0.12
    llc_penalty: float = 1.2
    op_stream_bytes: float = 256 * 1024
    #: How many co-running ops are simultaneously in their memory-bound
    #: phase (ops alternate compute/memory phases, so the full co-runner
    #: count never hits the memory system at once).
    mem_active_window: int = 8


class ContentionModel:
    """Effective speedups/slowdowns for thread gangs on a CPU."""

    def __init__(
        self,
        topology: CpuTopology,
        cache: CacheHierarchy | None = None,
        constants: CalibrationConstants | None = None,
    ) -> None:
        self.topology = topology
        self.cache = cache or CacheHierarchy()
        self.c = constants or CalibrationConstants()
        # Algorithm 3 evaluates every op of every candidate setting through
        # effective_op_speedup, but only a handful of distinct
        # (intra, co_runners, op_bytes, compute_fraction) tuples occur —
        # memoise them (the model's constants are frozen dataclasses).
        self._speedup_memo: dict[tuple, float] = {}

    # -- intra-op ---------------------------------------------------------

    def compute_scale(self, threads: int) -> float:
        """Compute-bound scaling: cores linearly, SMT fractionally."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        topo = self.topology
        phys = min(threads, topo.physical_cores)
        smt_extra = max(0, min(threads, topo.hardware_threads) - topo.physical_cores)
        scale = phys + self.c.smt_efficiency * smt_extra
        if topo.oversubscribed(threads):
            scale *= (topo.hardware_threads / threads) ** self.c.oversub_exponent
        return scale

    def bandwidth_scale(self, threads: int) -> float:
        """Memory-bound scaling: saturates at one socket's bandwidth.

        Under the paper's NUMA-first-touch setup the data lives on one
        socket, so a gang spanning sockets makes *remote* accesses and the
        effective bandwidth drops by the NUMA factor (§4.1: "the
        cross-socket memory accesses become more often due to the NUMA
        effect").
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        sat = self.c.bw_saturation_threads
        scale = min(float(threads), sat)
        if self.topology.crosses_socket(threads) and self.topology.sockets > 1:
            scale *= self.c.numa_bw_factor
        return scale

    def intra_speedup(self, threads: int, compute_fraction: float | None = None) -> float:
        """Overall speedup of one op at ``threads`` (harmonic blend)."""
        cf = self.c.compute_fraction if compute_fraction is None else compute_fraction
        if not 0.0 <= cf <= 1.0:
            raise ValueError("compute_fraction must be in [0, 1]")
        comp = self.compute_scale(threads)
        mem = self.bandwidth_scale(threads)
        return 1.0 / (cf / comp + (1.0 - cf) / mem)

    # -- inter-op ---------------------------------------------------------

    def granted_threads(self, intra: int, co_runners: int) -> int:
        """Hardware threads actually available per op when ``co_runners``
        gangs share the machine."""
        if co_runners < 1:
            raise ValueError("co_runners must be >= 1")
        fair = self.topology.hardware_threads // co_runners
        return max(1, min(intra, fair))

    def thrash_factor(self, requested: int, granted: int) -> float:
        """<1 when an op requested more threads than it was granted."""
        if requested <= granted:
            return 1.0
        return (granted / requested) ** self.c.oversub_exponent

    def bw_share_factor(self, granted: int, co_runners: int) -> float:
        """<= 1: scale-back when co-running gangs oversubscribe the
        machine's aggregate memory bandwidth.

        Each op's gang can individually pull ``bandwidth_scale(granted)``
        thread-equivalents of bandwidth, but the machine only supplies
        ``bw_saturation_threads`` per socket; when total demand exceeds the
        cap every op gets its fair share.
        """
        if co_runners < 1:
            raise ValueError("co_runners must be >= 1")
        per_op = self.bandwidth_scale(granted)
        cap = self.c.bw_saturation_threads * self.topology.sockets
        active = min(co_runners, self.c.mem_active_window)
        demand = per_op * active
        if demand <= cap:
            return 1.0
        return cap / demand

    def cache_slowdown(self, op_bytes: float, intra: int, co_runners: int) -> float:
        """>= 1: LLC-thrash slowdown for one op among ``co_runners``.

        The pressure charged to the LLC is the op's resident tile plus a
        per-active-thread streaming footprint.
        """
        total_threads = min(
            intra * co_runners, self.topology.hardware_threads * 4
        )
        working_set = op_bytes * co_runners + total_threads * self.c.op_stream_bytes
        base = self.cache.miss_ratio(op_bytes + intra * self.c.op_stream_bytes, 1)
        now = self.cache.miss_ratio(working_set, 1)
        return 1.0 + self.c.llc_penalty * max(0.0, now - base)

    def effective_op_speedup(
        self,
        setting: ParallelismSetting,
        co_runners: int,
        op_bytes: float = 4 * 1024 * 1024,
        compute_fraction: float | None = None,
    ) -> float:
        """Speedup of one op under ``setting`` with ``co_runners`` peers.

        Combines: granted-thread intra speedup, oversubscription thrash,
        and LLC-contention slowdown.
        """
        key = (setting.intra_op, co_runners, op_bytes, compute_fraction)
        memo = self._speedup_memo.get(key)
        if memo is not None:
            return memo
        granted = self.granted_threads(setting.intra_op, co_runners)
        cf = self.c.compute_fraction if compute_fraction is None else compute_fraction
        comp = self.compute_scale(granted)
        mem = self.bandwidth_scale(granted) * self.bw_share_factor(granted, co_runners)
        base = 1.0 / (cf / comp + (1.0 - cf) / mem)
        # Oversubscription thrash: the *demanded* software parallelism
        # (co-running gangs x requested intra threads) versus hardware
        # threads.  PyTorch's default (112 x 56) pays heavily here; a
        # controlled setting keeps demand <= hardware and pays nothing.
        demand = co_runners * setting.intra_op
        thrash = 1.0
        if demand > self.topology.hardware_threads:
            thrash = (self.topology.hardware_threads / demand) ** self.c.oversub_exponent
        cache = self.cache_slowdown(op_bytes, granted, co_runners)
        result = base * thrash / cache
        self._speedup_memo[key] = result
        return result
