"""Last-level-cache miss estimation (paper Table 5).

The paper measures LLC misses with hardware counters under (a) default
PyTorch threading and (b) LM-Offload's controlled threading, observing a
~38 % reduction in both load and store misses.  The mechanism: the default
setting co-schedules many fine-grained operators, each with dozens of
threads, so the combined working set and per-thread streaming footprints
thrash the shared LLC; the controlled setting co-runs fewer, bundled ops
with small gangs.

:class:`LLCModel` turns a threading setting plus per-step traffic volumes
into estimated miss counts using the platform's
:class:`~repro.hardware.cache.CacheHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import CacheHierarchy
from repro.parallel.speedup import CalibrationConstants, ParallelismSetting


@dataclass(frozen=True)
class LLCMissReport:
    """Estimated LLC miss counts for one inference run."""

    load_misses: float
    store_misses: float

    @property
    def total(self) -> float:
        return self.load_misses + self.store_misses

    def reduction_vs(self, other: "LLCMissReport") -> float:
        """Fractional reduction of total misses relative to ``other``."""
        if other.total == 0:
            raise ValueError("baseline report has zero misses")
        return 1.0 - self.total / other.total


@dataclass
class LLCModel:
    """Working-set-pressure LLC miss estimator.

    Parameters
    ----------
    cache:
        The socket's cache hierarchy.
    op_tile_bytes:
        Resident tile of one scheduled operator.
    store_rfo_factor:
        Stores cost extra misses via read-for-ownership; hardware counters
        on the paper's platform show store misses ~1.9x load misses.
    constants:
        Shares ``op_stream_bytes`` with the speedup model so the two views
        of contention stay consistent.
    """

    cache: CacheHierarchy
    op_tile_bytes: float = 2 * 1024 * 1024
    store_rfo_factor: float = 1.9
    constants: CalibrationConstants = CalibrationConstants()

    def pressure_working_set(self, setting: ParallelismSetting, co_running_ops: int) -> float:
        """Combined LLC-resident footprint of everything running at once."""
        total_threads = co_running_ops * setting.intra_op
        return (
            co_running_ops * self.op_tile_bytes
            + total_threads * self.constants.op_stream_bytes
        )

    def miss_ratio(self, setting: ParallelismSetting, co_running_ops: int) -> float:
        """Effective miss ratio under ``setting``."""
        if co_running_ops < 1:
            raise ValueError("co_running_ops must be >= 1")
        ws = self.pressure_working_set(setting, co_running_ops)
        return self.cache.miss_ratio(ws, 1)

    def estimate(
        self,
        setting: ParallelismSetting,
        co_running_ops: int,
        load_traffic: float,
        store_traffic: float,
    ) -> LLCMissReport:
        """Miss counts for ``load_traffic``/``store_traffic`` bytes."""
        if load_traffic < 0 or store_traffic < 0:
            raise ValueError("traffic must be non-negative")
        ratio = self.miss_ratio(setting, co_running_ops)
        line = self.cache.line_bytes
        # Store misses are not capped at one per line: a missing store
        # costs a read-for-ownership *and* a later writeback eviction, so
        # the counter the paper reads exceeds the line count (Table 5's
        # store misses are ~1.9x its load misses on identical traffic).
        return LLCMissReport(
            load_misses=load_traffic / line * ratio,
            store_misses=store_traffic / line * ratio * self.store_rfo_factor,
        )
