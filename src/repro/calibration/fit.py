"""Least-squares fitting of :class:`EngineCalibration` to observations.

The fit works in log-space on a chosen subset of rate parameters (so the
optimiser can scale rates by orders of magnitude while keeping them
positive) and minimises relative throughput error across observations:

    residual_i = log(predicted_tput_i / observed_tput_i)

This mirrors how the paper's authors must have set their model constants:
pick the rates that make the model's predictions match a few measured
configurations, then trust the model elsewhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.errors import ConfigError
from repro.offload.policy import OffloadPolicy
from repro.perfmodel.constants import AttentionRates, CodecRates, EngineCalibration
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload

#: Parameters that may be fitted, addressed as dotted paths.
FITTABLE = (
    "pcie_efficiency",
    "attention.cpu_bw_per_thread",
    "attention.cpu_bw_ceiling",
    "codec.gpu_weight_copy_bw",
    "codec.gpu_kv_copy_bw",
    "codec.cpu_kv_copy_bw",
)


@dataclass(frozen=True)
class CalibrationObservation:
    """One measured datapoint: a configuration and its tokens/s."""

    workload: Workload
    policy: OffloadPolicy
    observed_tput: float

    def __post_init__(self) -> None:
        if self.observed_tput <= 0:
            raise ConfigError("observed_tput must be positive")


@dataclass(frozen=True)
class FitResult:
    calibration: EngineCalibration
    multipliers: dict[str, float]
    residual_rms: float
    predicted: tuple[float, ...]


def _get(cal: EngineCalibration, path: str) -> float:
    obj = cal
    for part in path.split("."):
        obj = getattr(obj, part)
    return float(obj)


def _apply(cal: EngineCalibration, updates: dict[str, float]) -> EngineCalibration:
    """Return a calibration with dotted-path fields multiplied."""
    codec_changes: dict[str, float] = {}
    attn_changes: dict[str, float] = {}
    top_changes: dict[str, float] = {}
    for path, mult in updates.items():
        value = _get(cal, path) * mult
        if path.startswith("codec."):
            codec_changes[path.split(".", 1)[1]] = value
        elif path.startswith("attention."):
            attn_changes[path.split(".", 1)[1]] = value
        else:
            top_changes[path] = value
    codec = dataclasses.replace(cal.codec, **codec_changes) if codec_changes else cal.codec
    attn = (
        dataclasses.replace(cal.attention, **attn_changes)
        if attn_changes
        else cal.attention
    )
    return dataclasses.replace(cal, codec=codec, attention=attn, **top_changes)


def predict_throughput(
    observation: CalibrationObservation,
    hw: HardwareParams,
    ctx: CpuExecutionContext,
    calibration: EngineCalibration,
) -> float:
    model = CostModel(
        observation.workload, observation.policy, hw, ctx, calibration
    )
    return model.breakdown().throughput(observation.workload)


def fit_calibration(
    observations: Sequence[CalibrationObservation],
    hw: HardwareParams,
    ctx: CpuExecutionContext,
    base: EngineCalibration | None = None,
    parameters: Sequence[str] = ("pcie_efficiency", "attention.cpu_bw_per_thread"),
    bounds_log10: float = 1.0,
) -> FitResult:
    """Fit the selected parameters to the observations.

    Parameters
    ----------
    observations:
        Measured (workload, policy, tokens/s) points; at least as many as
        fitted parameters is recommended.
    parameters:
        Dotted paths from :data:`FITTABLE` to adjust.
    bounds_log10:
        Each multiplier is constrained to ``[10^-b, 10^b]``.
    """
    if not observations:
        raise ConfigError("need at least one observation")
    for p in parameters:
        if p not in FITTABLE:
            raise ConfigError(f"unknown fittable parameter {p!r}; see FITTABLE")
    base = base or EngineCalibration.paper_defaults()
    # pcie_efficiency must stay <= 1; bound its multiplier accordingly.
    uppers = []
    for p in parameters:
        if p == "pcie_efficiency":
            uppers.append(min(bounds_log10, float(np.log10(1.0 / _get(base, p)))))
        else:
            uppers.append(bounds_log10)

    def residuals(log_mults: np.ndarray) -> np.ndarray:
        updates = {p: 10.0 ** m for p, m in zip(parameters, log_mults)}
        cal = _apply(base, updates)
        out = []
        for obs in observations:
            pred = predict_throughput(obs, hw, ctx, cal)
            out.append(np.log(pred / obs.observed_tput))
        return np.asarray(out)

    result = least_squares(
        residuals,
        x0=np.zeros(len(parameters)),
        bounds=(-bounds_log10 * np.ones(len(parameters)), np.asarray(uppers)),
        xtol=1e-10,
        ftol=1e-10,
    )
    multipliers = {p: float(10.0 ** m) for p, m in zip(parameters, result.x)}
    fitted = _apply(base, multipliers)
    preds = tuple(
        predict_throughput(obs, hw, ctx, fitted) for obs in observations
    )
    rms = float(np.sqrt(np.mean(result.fun**2)))
    return FitResult(
        calibration=fitted,
        multipliers=multipliers,
        residual_rms=rms,
        predicted=preds,
    )
