"""Calibration fitting: tune the engine's effective rates to measurements.

The cost model's accuracy hinges on a handful of effective rates
(:class:`~repro.perfmodel.constants.EngineCalibration`).  On a new machine
you would measure a few (workload, policy) -> tokens/s points and fit those
rates; :func:`fit_calibration` does exactly that with
:func:`scipy.optimize.least_squares` over log-space multipliers.
"""

from repro.calibration.fit import CalibrationObservation, FitResult, fit_calibration

__all__ = ["CalibrationObservation", "FitResult", "fit_calibration"]
