"""Pipeline-parallel offloaded inference across multiple GPUs.

The paper's §5.5 setup: the POWER9 + 4x V100 node, OPT-13B / LLaMA-13B,
prompt 256, generation 64, *weak scaling* (the inference batch doubles
with the GPU count), LM-Offload vs FlexGen.

Model: the transformer stack is split into one contiguous stage per GPU.
During decode, every token flows through the stages in order; the
steady-state per-token latency is the **slowest stage** (plus a one-off
pipeline-fill latency of the other stages).  All stages feed their
offloaded tensors from the *shared* host memory, so the aggregate feed
bandwidth is capped by the host DRAM: with ``G`` GPUs each stage's
achievable interconnect rate is ``min(link, cpu_mem_bdw / G)``.

That shared-feed cap is exactly why the paper's gap *grows* with GPU
count: FlexGen streams uncompressed weights and hits the DRAM wall at
small ``G``, while LM-Offload's quantized streams stay under it longer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hardware.platform import Platform, power9_4xv100
from repro.models.config import ModelConfig
from repro.offload.policy import OffloadPolicy
from repro.parallel.speedup import ContentionModel
from repro.parallel.topology import CpuTopology
from repro.perfmodel.constants import EngineCalibration
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.units import dtype_bytes


@dataclass(frozen=True)
class PipelineReport:
    """Weak-scaling datapoint for one (engine, #GPUs)."""

    engine: str
    num_gpus: int
    workload: Workload
    per_token_seconds: float
    fill_seconds: float
    total_seconds: float
    stage_layers: tuple[int, ...]

    @property
    def throughput(self) -> float:
        return self.workload.block_size * self.workload.gen_len / self.total_seconds


def _split_layers(total: int, stages: int) -> tuple[int, ...]:
    """Contiguous near-equal layer split."""
    base, extra = divmod(total, stages)
    return tuple(base + (1 if i < extra else 0) for i in range(stages))


@dataclass
class PipelineParallelRunner:
    """Runs one engine pipeline-parallel over 1..4 V100s.

    Each stage picks its best policy from the engine's menu:

    * FlexGen considers CPU or GPU attention, never quantization, and runs
      default threading;
    * LM-Offload additionally considers weight/KV quantization and uses
      the parallelism controller's threading.

    Shared resources are modelled explicitly: all stages split the one
    host CPU (``cpu_share = 1/G``) and the host DRAM feed
    (per-stage link = ``min(NVLink, cpu_mem_bdw / G)``), which is the
    mechanism behind the paper's widening gap.
    """

    engine_name: str
    calibration: EngineCalibration = field(
        default_factory=EngineCalibration.paper_defaults
    )
    use_quant: bool = False
    parallelism_control: bool = False

    def _stage_contexts(
        self, platform: Platform, num_gpus: int
    ) -> list[CpuExecutionContext]:
        topo = CpuTopology.from_device(platform.cpu)
        contention = ContentionModel(topo, platform.cache)
        default = CpuExecutionContext.pytorch_default(topo, contention)
        default.cpu_share = 1.0 / num_gpus
        contexts = [default]
        if self.parallelism_control:
            from repro.parallel.controller import ParallelismController
            from repro.parallel.profiles import build_default_profiles
            from repro.runtime.graph import build_attention_graph

            controller = ParallelismController(
                topology=topo,
                contention=contention,
                profiles=build_default_profiles(contention),
            )
            plan = controller.plan(build_attention_graph(4))
            controlled = CpuExecutionContext.from_plan(topo, contention, plan)
            controlled.cpu_share = 1.0 / num_gpus
            contexts.append(controlled)
        return contexts

    def _candidate_policies(self, workload: Workload) -> list[OffloadPolicy]:
        from repro.quant.config import QuantConfig

        q4 = QuantConfig(bits=4, group_size=64)
        base = dict(
            wg=0.0, cg=0.0, hg=1.0,
            gpu_batch_size=workload.gpu_batch_size,
            num_gpu_batches=workload.num_gpu_batches,
        )
        candidates = [
            OffloadPolicy(attention_on_cpu=True, **base),
            OffloadPolicy(attention_on_cpu=False, **base),
        ]
        if self.use_quant:
            candidates += [
                OffloadPolicy(attention_on_cpu=True, weight_quant=q4, **base),
                OffloadPolicy(attention_on_cpu=False, weight_quant=q4, **base),
                OffloadPolicy(attention_on_cpu=False, kv_quant=q4, **base),
                OffloadPolicy(
                    attention_on_cpu=False, weight_quant=q4, kv_quant=q4, **base
                ),
            ]
        return candidates

    def run(self, model: ModelConfig, num_gpus: int, workload: Workload) -> PipelineReport:
        """Evaluate the pipeline at ``num_gpus`` stages."""
        if num_gpus < 1:
            raise ConfigError("num_gpus must be >= 1")
        platform = power9_4xv100(num_gpus)
        contexts = self._stage_contexts(platform, num_gpus)
        stage_layers = _split_layers(model.num_layers, num_gpus)

        stage_times: list[float] = []
        for gi, layers in enumerate(stage_layers):
            stage_model = dataclasses.replace(
                model, name=f"{model.name}-stage{gi}", num_layers=layers
            )
            stage_workload = Workload(
                model=stage_model,
                prompt_len=workload.prompt_len,
                gen_len=workload.gen_len,
                gpu_batch_size=workload.gpu_batch_size,
                num_gpu_batches=workload.num_gpu_batches,
            )
            hw = HardwareParams.from_platform(platform, gpu_name=f"gpu{gi}")
            # Shared host DRAM feeds every stage: cap the per-stage link.
            shared = min(hw.pcie_bdw, hw.cpu_mem_bdw / num_gpus)
            hw = dataclasses.replace(hw, pcie_bdw=shared)
            iters = layers * workload.num_gpu_batches
            mid_token = max(0, (workload.gen_len - 1) // 2)
            best: float | None = None
            for ctx in contexts:
                for policy in self._candidate_policies(stage_workload):
                    try:
                        cost = CostModel(
                            stage_workload, policy, hw, ctx, self.calibration
                        )
                        cost.check_feasible()
                    except Exception:
                        continue
                    t = cost.step_seconds(cost.decode_task_costs(mid_token)) * iters
                    if best is None or t < best:
                        best = t
            if best is None:
                raise ConfigError(
                    f"no feasible stage policy for {stage_model.name} on {num_gpus} GPUs"
                )
            stage_times.append(best)

        per_token = max(stage_times)
        # Inter-stage activation handoff rides NVLink; tiny but charged.
        link = platform.link_between("gpu0", "gpu1") if num_gpus > 1 else None
        if link is not None:
            act = (
                workload.block_size
                * model.hidden_size
                * dtype_bytes("fp16")
            )
            per_token += (num_gpus - 1) * link.transfer_time(act) / num_gpus
        fill = sum(stage_times) - per_token
        total = fill + per_token * workload.gen_len
        return PipelineReport(
            engine=self.engine_name,
            num_gpus=num_gpus,
            workload=workload,
            per_token_seconds=per_token,
            fill_seconds=max(fill, 0.0),
            total_seconds=total,
            stage_layers=stage_layers,
        )


def weak_scaling_sweep(
    model: ModelConfig,
    base_batch: int = 32,
    gen_len: int = 64,
    prompt_len: int = 256,
    gpu_counts: tuple[int, ...] = (1, 2, 4),
) -> dict[str, list[PipelineReport]]:
    """Figure 9's sweep: batch doubles with GPU count, both engines."""
    flexgen = PipelineParallelRunner(engine_name="flexgen", use_quant=False)
    lm = PipelineParallelRunner(
        engine_name="lm-offload", use_quant=True, parallelism_control=True
    )
    out: dict[str, list[PipelineReport]] = {"flexgen": [], "lm-offload": []}
    for g in gpu_counts:
        workload = Workload(
            model=model,
            prompt_len=prompt_len,
            gen_len=gen_len,
            gpu_batch_size=base_batch * g,
            num_gpu_batches=4,
        )
        out["flexgen"].append(flexgen.run(model, g, workload))
        out["lm-offload"].append(lm.run(model, g, workload))
    return out
