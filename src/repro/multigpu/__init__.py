"""Multi-GPU pipeline parallelism (paper §5.5, Figure 9)."""

from repro.multigpu.pipeline_parallel import (
    PipelineParallelRunner,
    PipelineReport,
    weak_scaling_sweep,
)

__all__ = ["PipelineParallelRunner", "PipelineReport", "weak_scaling_sweep"]
