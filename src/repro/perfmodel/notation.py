"""Table 2's notation as typed parameter bundles.

:class:`Workload` is the (model, s, n, batch geometry) tuple; ``bls`` is
derived.  :class:`HardwareParams` carries the six hardware rates the
equations consume, extractable from any :class:`~repro.hardware.Platform`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.footprint import ModelFootprint


@dataclass(frozen=True)
class Workload:
    """One inference job: model + sequence shape + batch geometry."""

    model: ModelConfig
    prompt_len: int
    gen_len: int
    gpu_batch_size: int
    num_gpu_batches: int = 1

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ConfigError("prompt_len and gen_len must be positive")
        if self.gpu_batch_size <= 0 or self.num_gpu_batches <= 0:
            raise ConfigError("batch geometry must be positive")

    @property
    def block_size(self) -> int:
        """``bls`` — sequences per zig-zag block."""
        return self.gpu_batch_size * self.num_gpu_batches

    def footprint(
        self,
        weight_dtype: str = "fp16",
        kv_dtype: str = "fp16",
        act_dtype: str = "fp16",
    ) -> ModelFootprint:
        """Byte calculator bound to this workload.

        Cached per dtype combination — the footprint is pure in the
        (frozen) workload fields and the planner requests it tens of
        thousands of times per search.
        """
        cache = self.__dict__.get("_footprint_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_footprint_cache", cache)
        key = (weight_dtype, kv_dtype, act_dtype)
        fp = cache.get(key)
        if fp is None:
            fp = cache[key] = ModelFootprint(
                config=self.model,
                prompt_len=self.prompt_len,
                gen_len=self.gen_len,
                block_size=self.block_size,
                weight_dtype=weight_dtype,
                kv_dtype=kv_dtype,
                act_dtype=act_dtype,
            )
        return fp

    def with_batches(self, gpu_batch_size: int, num_gpu_batches: int) -> "Workload":
        return Workload(
            model=self.model,
            prompt_len=self.prompt_len,
            gen_len=self.gen_len,
            gpu_batch_size=gpu_batch_size,
            num_gpu_batches=num_gpu_batches,
        )

    def describe(self) -> str:
        return (
            f"{self.model.name} s={self.prompt_len} n={self.gen_len} "
            f"bsz={self.gpu_batch_size}x{self.num_gpu_batches} (bls={self.block_size})"
        )


@dataclass(frozen=True)
class HardwareParams:
    """The hardware symbols of Table 2 (rates in FLOP/s, B/s, Hz)."""

    gpu_flops: float
    gpu_mem_bdw: float
    gpu_freq: float
    cpu_flops: float
    cpu_mem_bdw: float
    cpu_freq: float
    pcie_bdw: float
    disk_bdw: float = 2e9
    gpu_mem_capacity: float = 40e9
    cpu_mem_capacity: float = 240e9

    def __post_init__(self) -> None:
        for name in (
            "gpu_flops", "gpu_mem_bdw", "gpu_freq",
            "cpu_flops", "cpu_mem_bdw", "cpu_freq", "pcie_bdw", "disk_bdw",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"hardware parameter {name} must be > 0")

    @classmethod
    def from_platform(cls, platform: Platform, gpu_name: str | None = None) -> "HardwareParams":
        """Extract the Table 2 rates from a platform preset."""
        gpu = platform.device(gpu_name) if gpu_name else platform.gpus[0]
        cpu = platform.cpu
        link = platform.link_between(cpu.name, gpu.name)
        try:
            disk_bdw = platform.link_between("disk", cpu.name).bandwidth
        except ConfigError:
            disk_bdw = 2e9
        return cls(
            gpu_flops=gpu.peak_flops,
            gpu_mem_bdw=gpu.mem_bandwidth,
            gpu_freq=gpu.freq,
            cpu_flops=cpu.peak_flops,
            cpu_mem_bdw=cpu.mem_bandwidth,
            cpu_freq=cpu.freq,
            pcie_bdw=link.bandwidth,
            disk_bdw=disk_bdw,
            gpu_mem_capacity=gpu.memory_capacity,
            cpu_mem_capacity=cpu.memory_capacity,
        )
