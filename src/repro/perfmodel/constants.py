"""Effective-rate calibration for the cost model.

The paper's Eqs. 12-24 divide element counts by "cpu_flops", "gpu_mem_bdw"
etc.  Taken as *peak* rates those equations predict negligible overheads —
yet the paper *measures* large ones (Fig. 4 shows (de)quantization taking
tens of percent of inference time).  The resolution is that the authors'
constants are **effective kernel rates**: FlexGen's group-wise codec is a
chain of small PyTorch ops (pad, view, min/max, sub, mul, clamp, byte
packing), which achieves a small fraction of peak, especially for weights
(six-plus small matrices per layer -> per-kernel launch overhead) compared
with the KV cache (two large contiguous tensors per layer).

All such effective rates live here, grouped and documented, so the
calibration is explicit, testable and ablatable.

``EngineCalibration.paper_defaults()`` is tuned so the reproduced
experiment *shapes* match the paper (see EXPERIMENTS.md for the
paper-vs-measured comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CodecRates:
    """Effective rates of Algorithm 2's phases on each device.

    Units: ``*_scan_eps`` in elements/s (min/max pass), ``*_norm_flops`` in
    FLOP/s for the 3-FLOP normalisation (Eqs. 10-11), ``*_copy_bw`` in
    bytes/s for the pack/copy post-processing.
    """

    # CPU-side (one-time weight quantization at init; Eqs. 13-15).
    cpu_scan_eps: float = 2e9
    cpu_norm_flops: float = 40e9
    cpu_copy_bw: float = 8e9
    # GPU-side weight dequantization (Eq. 16): many small per-matrix
    # kernels -> low effective bandwidth.
    gpu_weight_norm_flops: float = 60e9
    gpu_weight_copy_bw: float = 8e9
    # GPU-side KV-cache codec (Eqs. 20-24): large contiguous tensors.
    gpu_kv_scan_eps: float = 100e9
    gpu_kv_norm_flops: float = 1e12
    gpu_kv_copy_bw: float = 60e9
    # CPU-side KV codec, paid when attention runs on the CPU over a
    # compressed host-resident cache (mechanism behind Observation 1).
    cpu_kv_scan_eps: float = 10e9
    cpu_kv_norm_flops: float = 200e9
    cpu_kv_copy_bw: float = 25e9


@dataclass(frozen=True)
class AttentionRates:
    """Effective per-thread CPU rates for the offloaded attention kernels.

    Decode attention is a batched GEMV over the KV cache: strided access,
    low arithmetic intensity.  A single Xeon thread sustains roughly
    1.5 GB/s through that access pattern in PyTorch (far under the 20 GB/s
    STREAM figure), which — multiplied by the contention model's gang
    speedup — lands end-to-end CPU-attention throughput at the paper's
    measured scale.
    """

    cpu_bw_per_thread: float = 0.8e9
    cpu_flops_per_thread: float = 10e9
    #: Machine ceilings for the attention kernel class: no threading plan
    #: can push the strided KV-gather access pattern past ~10.5 GB/s on
    #: the paper's Xeon (DRAM random-ish access), nor past the SIMD FLOP
    #: ceiling.  This is what bounds the benefit of parallelism control
    #: (the paper measures -32% on the compute task, not unbounded gains).
    cpu_bw_ceiling: float = 10.5e9
    cpu_flops_ceiling: float = 150e9


@dataclass(frozen=True)
class EngineCalibration:
    """Top-level calibration bundle for :class:`~repro.perfmodel.CostModel`.

    ``pcie_efficiency`` covers pageable-memory copies and non-contiguous
    tensor slices: FlexGen-style runtimes achieve roughly a quarter of the
    PCIe 4.0 x16 spec rate in practice, which is what the paper's absolute
    numbers imply (Table 1 traffic / measured step times).
    """

    codec: CodecRates = field(default_factory=CodecRates)
    attention: AttentionRates = field(default_factory=AttentionRates)
    pcie_efficiency: float = 0.27
    #: Effective fraction of GPU peak achieved by the dense decode GEMMs
    #: (GEMV-shaped, memory bound — the roofline handles most of this, the
    #: factor covers kernel inefficiency on thin batches).
    gpu_dense_efficiency: float = 0.85

    @classmethod
    def paper_defaults(cls) -> "EngineCalibration":
        """The calibration used by every benchmark in this repository."""
        return cls()

    @classmethod
    def deepspeed_defaults(cls) -> "EngineCalibration":
        """ZeRO-Inference's runtime characteristics.

        DeepSpeed streams through pre-pinned buffers (near-spec PCIe) and
        de-quantizes weights with fused CUDA kernels (two passes over the
        fp16 output instead of FlexGen's chain of small PyTorch ops).  The
        paper's ZeRO throughput numbers — e.g. 110 tokens/s for OPT-30B at
        batch 64, gen-len 128 — are only reachable with these rates.
        """
        return cls(
            codec=CodecRates(
                gpu_weight_norm_flops=5e12,
                gpu_weight_copy_bw=150e9,
                gpu_kv_scan_eps=500e9,
                gpu_kv_norm_flops=5e12,
                gpu_kv_copy_bw=300e9,
            ),
            pcie_efficiency=0.65,
        )

    @classmethod
    def ideal_kernels(cls) -> "EngineCalibration":
        """Near-peak kernel rates (ablation: how conclusions shift if the
        codec were free)."""
        return cls(
            codec=CodecRates(
                cpu_scan_eps=2e10,
                cpu_norm_flops=4e11,
                cpu_copy_bw=8e10,
                gpu_weight_norm_flops=6e12,
                gpu_weight_copy_bw=8e11,
                gpu_kv_scan_eps=1e12,
                gpu_kv_norm_flops=1e13,
                gpu_kv_copy_bw=6e11,
                cpu_kv_scan_eps=4e10,
                cpu_kv_norm_flops=8e11,
                cpu_kv_copy_bw=1e11,
            ),
            pcie_efficiency=1.0,
            gpu_dense_efficiency=1.0,
        )
