"""(De)quantization overhead equations (paper §3.2, Eqs. 12-24).

Structure follows the paper exactly:

* quantization = min/max scan + normalisation (Eq. 10) + post-processing
  copy (Eqs. 12-15, 20-23);
* de-quantization = normalisation (Eq. 11) + copy — the scan was paid at
  quantization time (Eqs. 16, 24);
* weight quantization happens once on the CPU at initialisation (Eq. 3)
  and de-quantization on the GPU per use (Eq. 4);
* KV-cache quantization happens per token (Eqs. 5-7), on the GPU when
  attention runs there, or on the CPU when a compressed host cache is
  consumed by offloaded attention.

The rates dividing each phase are **effective kernel rates** from
:class:`~repro.perfmodel.constants.CodecRates` — see that module for why
peak rates would contradict the paper's own measurements.

Conventions: returned times are per transformer layer for the whole block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.constants import CodecRates
from repro.perfmodel.notation import Workload
from repro.units import dtype_bytes

#: FLOPs per element of min-max (de)normalisation (Eqs. 10-11).
NORM_FLOPS_PER_ELEMENT = 3


@dataclass(frozen=True)
class WeightQuantOverheads:
    """Per-layer weight (de)quantization costs (Eqs. 12-16)."""

    minmax_seconds: float        # Eq. 13
    norm_seconds: float          # Eq. 14
    postprocess_seconds: float   # Eq. 15
    de_norm_seconds: float       # Eq. 16 via Eq. 14 on the GPU
    de_postprocess_seconds: float  # Eq. 16 via Eq. 15 on the GPU

    @property
    def quantize_seconds(self) -> float:
        """Eq. 12 — paid once, folded into T_init (Eq. 3)."""
        return self.minmax_seconds + self.norm_seconds + self.postprocess_seconds

    @property
    def dequantize_seconds(self) -> float:
        """Eq. 16 — paid per use, folded into load_weight (Eq. 4)."""
        return self.de_norm_seconds + self.de_postprocess_seconds


def weight_quant_overheads(
    workload: Workload,
    wc: float,
    rates: CodecRates | None = None,
    src_dtype: str = "fp16",
) -> WeightQuantOverheads:
    """Eqs. 12-16 for one layer with ``wc`` of its weights offloaded."""
    if not 0.0 <= wc <= 1.0:
        raise ValueError("wc must be in [0, 1]")
    r = rates or CodecRates()
    elements = workload.model.weights_per_layer * wc
    nbytes = elements * dtype_bytes(src_dtype)
    return WeightQuantOverheads(
        minmax_seconds=elements / r.cpu_scan_eps,
        norm_seconds=elements * NORM_FLOPS_PER_ELEMENT / r.cpu_norm_flops,
        postprocess_seconds=nbytes / r.cpu_copy_bw,
        de_norm_seconds=elements * NORM_FLOPS_PER_ELEMENT / r.gpu_weight_norm_flops,
        de_postprocess_seconds=nbytes / r.gpu_weight_copy_bw,
    )


@dataclass(frozen=True)
class KVQuantOverheads:
    """Per-layer KV-cache (de)quantization costs (Eqs. 17-24).

    * ``prefill_quant_seconds`` — Eq. 20 (folds into T_pf, Eq. 5);
    * ``new_quant_seconds`` — per-token new entries (folds into
      store_cache, Eq. 7);
    * ``old_dequant_seconds`` — streamed/consumed old cache (folds into
      load_cache, Eq. 6, or the CPU compute task under attention
      offloading).
    """

    prefill_quant_seconds: float
    new_quant_seconds: float
    old_dequant_seconds: float


def _quant_seconds(
    elements: float, nbytes: float, scan_eps: float, norm_flops: float, copy_bw: float
) -> float:
    """Eqs. 21-23 pattern: scan + normalise + copy."""
    return (
        elements / scan_eps
        + elements * NORM_FLOPS_PER_ELEMENT / norm_flops
        + nbytes / copy_bw
    )


def _dequant_seconds(
    elements: float, nbytes: float, norm_flops: float, copy_bw: float
) -> float:
    """Eq. 24 pattern: normalise + copy (the scan was already paid)."""
    return elements * NORM_FLOPS_PER_ELEMENT / norm_flops + nbytes / copy_bw


def kv_quant_overheads(
    workload: Workload,
    rates: CodecRates | None = None,
    device: str = "gpu",
    kv_dtype: str = "fp16",
    token_idx: int | None = None,
) -> KVQuantOverheads:
    """Eqs. 20-24 for one layer of the whole block.

    ``device`` selects where the codec runs ("gpu" normally; "cpu" when
    offloaded attention consumes a compressed host cache).  ``token_idx``
    picks the exact old-cache size for decode token ``t`` (0-based); ``None``
    uses Eq. 18's ``s + n/2`` average.
    """
    r = rates or CodecRates()
    if device == "gpu":
        scan, norm, copy = r.gpu_kv_scan_eps, r.gpu_kv_norm_flops, r.gpu_kv_copy_bw
    elif device == "cpu":
        scan, norm, copy = r.cpu_kv_scan_eps, r.cpu_kv_norm_flops, r.cpu_kv_copy_bw
    else:
        raise ValueError(f"device must be 'gpu' or 'cpu', got {device!r}")

    fp = workload.footprint(kv_dtype=kv_dtype)
    width = dtype_bytes(kv_dtype)
    pf_bytes = fp.prefill_kv_bytes_per_layer
    new_bytes = fp.kv_bytes_per_token_per_layer
    if token_idx is None:
        old_bytes = fp.avg_old_kv_bytes_per_layer
    else:
        old_bytes = fp.kv_bytes_per_layer_at(token_idx)

    return KVQuantOverheads(
        prefill_quant_seconds=_quant_seconds(
            pf_bytes / width, pf_bytes, scan, norm, copy
        ),
        new_quant_seconds=_quant_seconds(
            new_bytes / width, new_bytes, scan, norm, copy
        ),
        old_dequant_seconds=_dequant_seconds(
            old_bytes / width, old_bytes, norm, copy
        ),
    )


@dataclass(frozen=True)
class KVQuantOverheadsVec:
    """Eqs. 20-24 evaluated for a whole batch of decode tokens at once.

    ``prefill_quant_seconds`` and ``new_quant_seconds`` do not depend on
    the token index and stay scalars; ``old_dequant_seconds`` is an array
    aligned with the ``token_indices`` passed to
    :func:`kv_quant_overheads_vec` (the old cache grows by one token per
    step, Eq. 18).
    """

    prefill_quant_seconds: float
    new_quant_seconds: float
    old_dequant_seconds: np.ndarray


def kv_quant_overheads_vec(
    workload: Workload,
    token_indices: np.ndarray,
    rates: CodecRates | None = None,
    device: str = "gpu",
    kv_dtype: str = "fp16",
) -> KVQuantOverheadsVec:
    """Vectorized :func:`kv_quant_overheads` over all ``token_indices``.

    The old-cache size is affine in the token index, so the per-token
    dequantization cost is evaluated for every token in one NumPy pass.
    Element-for-element this matches the scalar reference (same formulas,
    float64 arithmetic).
    """
    r = rates or CodecRates()
    if device == "gpu":
        scan, norm, copy = r.gpu_kv_scan_eps, r.gpu_kv_norm_flops, r.gpu_kv_copy_bw
    elif device == "cpu":
        scan, norm, copy = r.cpu_kv_scan_eps, r.cpu_kv_norm_flops, r.cpu_kv_copy_bw
    else:
        raise ValueError(f"device must be 'gpu' or 'cpu', got {device!r}")

    fp = workload.footprint(kv_dtype=kv_dtype)
    width = dtype_bytes(kv_dtype)
    pf_bytes = fp.prefill_kv_bytes_per_layer
    new_bytes = fp.kv_bytes_per_token_per_layer
    tokens = np.asarray(token_indices, dtype=np.float64)
    # fp.kv_bytes_per_layer_at is pure arithmetic in the token index, so
    # feeding it the whole index array yields the per-token byte vector.
    old_bytes = fp.kv_bytes_per_layer_at(tokens)

    return KVQuantOverheadsVec(
        prefill_quant_seconds=_quant_seconds(
            pf_bytes / width, pf_bytes, scan, norm, copy
        ),
        new_quant_seconds=_quant_seconds(
            new_bytes / width, new_bytes, scan, norm, copy
        ),
        old_dequant_seconds=_dequant_seconds(
            old_bytes / width, old_bytes, norm, copy
        ),
    )
