"""Speculative decoding on top of the Eq. 1/2 cost model (SpecOffload-style).

The paper's cost model prices every decode step as one target-model
forward, but under offloading the GPU sits idle while weights and KV
stream over PCIe — Eq. 2's step time is ``max(h2d, d2h, compute)``, and
in the long-context regime ``h2d`` (the KV load) dominates by an order
of magnitude.  SpecOffload's observation (PAPERS.md) is that this idle
compute can *draft*: a small model proposes a token tree while the
transfers run, and the target model then scores the whole tree in one
batched verify pass whose KV/weight traffic it was paying anyway.
TriForce supplies the knob set we parameterize: tree size, max width,
a KV-retrieval budget for the draft's attention, and the acceptance
rate ``alpha``.

Two pieces live here:

* :class:`SpecConfig` — the speculation knobs plus the closed-form tree
  math: greedy level widths, and the expected number of accepted draft
  tokens per verify step (monotone nondecreasing in ``alpha``, bounded
  by the tree depth).
* :class:`SpecStepPricer` — the per-step price transform.  Given the
  base (non-speculative) task costs of a decode step it prices every
  tree-depth *prefix* and keeps the best expected per-token time:

  ``price_L = max(h2d + retrieval, d2h * g_L, compute + verify_L + draft_L) / g_L``

  where ``g_L = 1 + E[accepted | first L levels]`` tokens emerge per
  step.  The ``min`` over prefixes (including the empty one — the base
  price itself) means speculation engages exactly where it pays: the
  modeled per-token latency never exceeds the non-speculative engine's,
  and in compute-bound regimes the pricer degenerates to the base cost.

Where each term lands, and why:

* **verify** — the target scores all ``nodes_L`` draft tokens in the
  pass it already runs: extra *flops* only (the weights and the context
  KV cross the wire once regardless), charged at the placement's
  flop rate.
* **draft** — ``draft_compute_ratio`` of a target forward per node,
  with attention truncated to ``kv_retrieval_budget`` context; pure GPU
  time, riding in the compute term where the transfer window hides it.
* **retrieval** — the draft's KV lookup streams ``min(ctx, budget)``
  tokens of cache over the *same* PCIe link the target's loads use, so
  it adds to ``h2d``.  This is what a degraded link squeezes: PCIe
  faults inflate every transfer term while the tokens-per-step gain
  stays fixed, so the absolute tokens/s benefit of speculation shrinks
  (the metamorphic fault tests pin this direction).
* **stores** — every accepted token writes KV and activations back, so
  ``d2h`` scales with ``g_L``.

All terms are per zig-zag iteration, matching
:meth:`~repro.perfmodel.latency.CostModel.decode_task_costs`; callers
multiply by ``l x k`` exactly as they do for the base price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.perfmodel.latency import CostModel


@dataclass(frozen=True)
class SpecConfig:
    """Speculation knobs (TriForce/SpecOffload parameter set).

    ``tree_size`` counts *all* nodes including the root (the token the
    target would emit anyway): ``tree_size=1`` means no draft nodes at
    all — speculation disabled, and the engine is byte-identical to the
    plain LM-Offload engine (the degenerate-parity tests pin this).
    """

    #: Total tree nodes including the root; ``tree_size - 1`` drafts.
    tree_size: int = 8
    #: Max sibling candidates per tree level.
    max_width: int = 2
    #: Per-candidate acceptance probability (target agrees with draft).
    alpha: float = 0.7
    #: Draft forward cost as a fraction of a target forward (same batch).
    draft_compute_ratio: float = 0.05
    #: Max context tokens the draft attends over (TriForce's retrieval
    #: cache); also sizes the per-step KV retrieval transfer.
    kv_retrieval_budget: int = 4096

    def __post_init__(self) -> None:
        if self.tree_size < 1:
            raise ConfigError(
                f"spec: tree_size must be >= 1 (got {self.tree_size}); "
                "1 means speculation disabled"
            )
        if self.max_width < 1:
            raise ConfigError(
                f"spec: max_width must be >= 1 (got {self.max_width})"
            )
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError(
                f"spec: alpha must be in [0, 1] (got {self.alpha}); it is "
                "the per-candidate acceptance probability"
            )
        if self.draft_compute_ratio < 0.0:
            raise ConfigError(
                f"spec: draft_compute_ratio must be >= 0 "
                f"(got {self.draft_compute_ratio})"
            )
        if self.kv_retrieval_budget < 1:
            raise ConfigError(
                f"spec: kv_retrieval_budget must be >= 1 "
                f"(got {self.kv_retrieval_budget})"
            )

    @property
    def enabled(self) -> bool:
        """Whether any draft node exists at all."""
        return self.tree_size > 1

    def level_widths(self) -> tuple[int, ...]:
        """Draft nodes per tree level, filled greedily at ``max_width``.

        ``tree_size=8, max_width=2`` -> ``(2, 2, 2, 1)``; a chain
        (``max_width=1``) gives ``tree_size - 1`` levels of one node.
        """
        widths: list[int] = []
        remaining = self.tree_size - 1
        while remaining > 0:
            w = min(self.max_width, remaining)
            widths.append(w)
            remaining -= w
        return tuple(widths)

    @property
    def tree_depth(self) -> int:
        """Max draft tokens a single step can accept (= #levels)."""
        return len(self.level_widths())

    def level_advance_probs(self, alpha: float | None = None) -> tuple[float, ...]:
        """P(some candidate at level ``i`` is accepted), per level."""
        a = self.alpha if alpha is None else a_checked(alpha)
        return tuple(1.0 - (1.0 - a) ** w for w in self.level_widths())

    def expected_accepted(self, alpha: float | None = None) -> float:
        """Expected accepted draft tokens per verify step (full tree).

        Acceptance must survive every level up to depth ``i`` for the
        ``i``-th draft token to land, so this is the sum of prefix
        products of the per-level advance probabilities.  Monotone
        nondecreasing in ``alpha`` and bounded by :attr:`tree_depth`
        (both pinned by the property tests).
        """
        expected = 0.0
        survive = 1.0
        for p in self.level_advance_probs(alpha):
            survive *= p
            expected += survive
        return expected

    def tokens_per_step(self, alpha: float | None = None) -> float:
        """Expected tokens emitted per verify step (root + accepted)."""
        return 1.0 + self.expected_accepted(alpha)

    def describe(self) -> str:
        return (
            f"tree={self.tree_size}(w<={self.max_width},d={self.tree_depth}) "
            f"alpha={self.alpha:g} draft={self.draft_compute_ratio:g} "
            f"budget={self.kv_retrieval_budget}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tree_size": self.tree_size,
            "max_width": self.max_width,
            "alpha": self.alpha,
            "draft_compute_ratio": self.draft_compute_ratio,
            "kv_retrieval_budget": self.kv_retrieval_budget,
            "tree_depth": self.tree_depth,
            "expected_accepted": self.expected_accepted(),
        }


def a_checked(alpha: float) -> float:
    if not 0.0 <= alpha <= 1.0:
        raise ConfigError(f"spec: alpha must be in [0, 1] (got {alpha})")
    return alpha


class SpecStepPricer:
    """Transforms base decode-step costs into speculative per-token prices.

    Bound to one :class:`~repro.perfmodel.latency.CostModel` (so it sees
    the planned policy, hardware rates and calibration the base price was
    computed under) plus a :class:`SpecConfig`.  The scalar path is the
    vectorized path on a single row, so the oracle's ``vec == scalar``
    discipline holds by construction.
    """

    def __init__(self, model: CostModel, spec: SpecConfig) -> None:
        self.model = model
        self.spec = spec
        w, p, cal = model.w, model.p, model.cal
        self._b = p.gpu_batch_size
        self._h1 = w.model.hidden_size
        self._k = p.num_gpu_batches
        # Flop rate of the placement that runs verify attention.
        if p.attention_on_cpu:
            rates = cal.attention
            self._attn_flop_rate = (
                min(rates.cpu_flops_per_thread * model._eff, rates.cpu_flops_ceiling)
                * model.ctx.cpu_share
            )
        else:
            self._attn_flop_rate = model.hw.gpu_flops * cal.gpu_dense_efficiency
        # The draft always computes on the GPU (it soaks the idle compute
        # the transfer window leaves), whatever the target's placement.
        self._gpu_flop_rate = model.hw.gpu_flops * cal.gpu_dense_efficiency
        self._dense_flops = 2.0 * w.model.weights_per_layer * self._b
        # Retrieval share: the budgeted KV slice the draft reads crosses
        # PCIe for the non-GPU-resident share (all of it when attention
        # lives on the CPU — the cache is host-side then).
        self._stored = model.kv_store_bytes_per_token()
        self._streamed = 1.0 if p.attention_on_cpu else (1.0 - p.cg)

    def _ctx_lengths(self, token_indices: np.ndarray) -> np.ndarray:
        return self.model.w.prompt_len + 1.0 + token_indices

    def _prefix_prices(
        self, token_indices: np.ndarray, costs: np.ndarray
    ) -> list[tuple[float, np.ndarray]]:
        """``(tokens_per_step, per-token seconds)`` for each tree prefix
        of depth 1..tree_depth (the shared core of pricing and summary)."""
        spec = self.spec
        toks = np.asarray(token_indices, dtype=np.float64)
        ctx = self._ctx_lengths(toks)
        h2d = costs[:, 0] + costs[:, 1] + costs[:, 2]
        d2h = costs[:, 3] + costs[:, 4]
        compute = costs[:, 5]

        ctx_r = np.minimum(ctx, float(spec.kv_retrieval_budget))
        # One retrieval-cache build per verify step, on the shared link.
        retrieval = (
            ctx_r * self._stored * self._streamed / self._k / self.model.pcie_bw
        )
        h2d_spec = h2d + retrieval
        # Verify: extra flops per draft node at the target's attention
        # placement (weights/KV already in flight for the root token).
        t_verify_node = (
            4.0 * self._b * ctx * self._h1 / self._attn_flop_rate
            + self._dense_flops / self._gpu_flop_rate
        )
        # Draft: a ratio-scaled forward per node over the budgeted context.
        t_draft_node = (
            spec.draft_compute_ratio
            * (4.0 * self._b * ctx_r * self._h1 + self._dense_flops)
            / self._gpu_flop_rate
        )

        prices: list[tuple[float, np.ndarray]] = []
        g = 1.0
        survive = 1.0
        nodes = 0
        for w_i, p_i in zip(spec.level_widths(), spec.level_advance_probs()):
            survive *= p_i
            g += survive
            nodes += w_i
            step = np.maximum(
                np.maximum(h2d_spec, d2h * g),
                compute + nodes * (t_verify_node + t_draft_node),
            )
            prices.append((g, step / g))
        return prices

    def step_seconds_vec(
        self,
        token_indices: np.ndarray,
        costs: np.ndarray,
        base: np.ndarray,
    ) -> np.ndarray:
        """Speculative per-token step seconds for each decode token.

        ``costs`` is the ``(n, 6)`` base task-cost matrix
        (:data:`~repro.runtime.tasks.TASK_FIELD_NAMES` order) and
        ``base`` the matching resource-grouped step seconds; both per
        iteration.  Returns per-iteration *per-token* seconds, the
        elementwise min over all tree prefixes (prefix 0 = ``base``
        itself, so the result never exceeds the base price and is
        bitwise equal to it when no prefix wins).
        """
        if not self.spec.enabled:
            return base
        best = base.copy()
        for _, price in self._prefix_prices(token_indices, costs):
            np.minimum(best, price, out=best)
        return best

    def step_seconds(
        self, token_idx: int, costs: Any, base: float
    ) -> float:
        """Scalar twin of :meth:`step_seconds_vec` (one row through the
        identical code path, so vec and scalar prices agree bitwise)."""
        row = np.array([costs.as_tuple()], dtype=np.float64)
        out = self.step_seconds_vec(
            np.array([float(token_idx)]), row, np.array([base])
        )
        return float(out[0])

    def summary(self, token_idx: int, costs: Any, base: float) -> dict[str, Any]:
        """Introspection for benches: which tree prefix wins at this step."""
        best, chosen, g_chosen = base, 0, 1.0
        if self.spec.enabled:
            row = np.array([costs.as_tuple()], dtype=np.float64)
            toks = np.array([float(token_idx)])
            for depth, (g, price) in enumerate(
                self._prefix_prices(toks, row), start=1
            ):
                if float(price[0]) < best:
                    best, chosen, g_chosen = float(price[0]), depth, g
        return {
            "base_s": base,
            "spec_s": best,
            "speedup": base / best if best > 0 else 1.0,
            "chosen_depth": chosen,
            "tokens_per_step": g_chosen,
        }
