"""LM-Offload's analytic performance model (paper §3.2, Eqs. 1-24).

Layout:

* :mod:`repro.perfmodel.notation` — :class:`Workload` and
  :class:`HardwareParams`, binding Table 2's symbols to platform presets.
* :mod:`repro.perfmodel.quant_model` — the (de)quantization overhead
  equations for weights (Eqs. 12-16) and KV cache (Eqs. 17-24).
* :mod:`repro.perfmodel.latency` — the six task costs under a policy, the
  overlapped per-token step (Eq. 2) and end-to-end latency (Eq. 1).
* :mod:`repro.perfmodel.analyzer` — the three decision procedures of
  "How to use the models": weight-quant benefit, KV-quant benefit, and
  attention-offload benefit.
* :mod:`repro.perfmodel.speculation` — extension beyond the paper:
  draft-tree speculative-decoding cost terms (SpecOffload/TriForce) and
  the per-step price transform the fourth engine plugs into the serving
  oracle.
"""

from repro.perfmodel.notation import HardwareParams, Workload
from repro.perfmodel.quant_model import (
    WeightQuantOverheads,
    KVQuantOverheads,
    weight_quant_overheads,
    kv_quant_overheads,
)
from repro.perfmodel.latency import CostModel, LatencyBreakdown, CpuExecutionContext
from repro.perfmodel.analyzer import QuantDecision, PerformanceAnalyzer
from repro.perfmodel.speculation import SpecConfig, SpecStepPricer

__all__ = [
    "SpecConfig",
    "SpecStepPricer",
    "HardwareParams",
    "Workload",
    "WeightQuantOverheads",
    "KVQuantOverheads",
    "weight_quant_overheads",
    "kv_quant_overheads",
    "CostModel",
    "LatencyBreakdown",
    "CpuExecutionContext",
    "QuantDecision",
    "PerformanceAnalyzer",
]
