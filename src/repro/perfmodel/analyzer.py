"""The paper's "How to use the models" decision procedures (§3.2 end).

Three questions, each answered by comparing modelled times:

1. Is weight quantization beneficial?  Compare plain ``load_weight``
   against Eq. 3's one-time cost plus Eq. 4's per-use dequant with the
   compressed wire time.
2. Is KV-cache quantization beneficial?  Compare plain
   ``load_cache + store_cache`` against Eq. 6 + Eq. 7.
3. Is attention offloading (with the best quantization choice) beneficial?
   Compare the end-to-end models of both placements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.offload.policy import OffloadPolicy
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.quant.config import QuantConfig


@dataclass(frozen=True)
class QuantDecision:
    """Outcome of one benefit comparison."""

    beneficial: bool
    seconds_with: float
    seconds_without: float

    @property
    def speedup(self) -> float:
        if self.seconds_with <= 0:
            return float("inf")
        return self.seconds_without / self.seconds_with


class PerformanceAnalyzer:
    """Answers the three §3.2 questions for a given workload/hardware."""

    def __init__(
        self,
        workload: Workload,
        hw: HardwareParams,
        cpu_ctx: CpuExecutionContext,
        quant: QuantConfig | None = None,
    ) -> None:
        self.workload = workload
        self.hw = hw
        self.ctx = cpu_ctx
        self.quant = quant or QuantConfig(bits=4, group_size=64)

    def _total(self, policy: OffloadPolicy) -> float:
        model = CostModel(self.workload, policy, self.hw, self.ctx)
        return model.breakdown().total_seconds

    def weight_quant_benefit(self, base: OffloadPolicy) -> QuantDecision:
        """Question 1: quantize the offloaded weights?

        Includes the amortised Eq. 3 initialisation cost, the Eq. 4 per-use
        dequant, and the reduced wire time.
        """
        without = self._total(base.with_(weight_quant=None))
        with_q = self._total(base.with_(weight_quant=self.quant))
        return QuantDecision(
            beneficial=with_q < without, seconds_with=with_q, seconds_without=without
        )

    def kv_quant_benefit(self, base: OffloadPolicy) -> QuantDecision:
        """Question 2: quantize the KV cache crossing the interconnect?

        Trivially non-beneficial when attention is offloaded (Eqs. 6-7
        collapse: load_cache = store_cache = 0), which is Observation 1.
        """
        without = self._total(base.with_(kv_quant=None))
        with_q = self._total(base.with_(kv_quant=self.quant))
        return QuantDecision(
            beneficial=with_q < without, seconds_with=with_q, seconds_without=without
        )

    def attention_offload_benefit(self, base: OffloadPolicy) -> QuantDecision:
        """Question 3: offload attention to the CPU?

        Each placement is evaluated at its *own* best quantization choice
        (that is the point of having the model: the placements favour
        different quantization strategies).
        """
        on_cpu = base.with_(attention_on_cpu=True, cg=0.0)
        on_gpu = base.with_(attention_on_cpu=False)
        best_cpu = min(
            self._total(on_cpu.with_(weight_quant=wq, kv_quant=None))
            for wq in (None, self.quant)
        )
        best_gpu = min(
            self._total(on_gpu.with_(weight_quant=wq, kv_quant=kq))
            for wq in (None, self.quant)
            for kq in (None, self.quant)
        )
        return QuantDecision(
            beneficial=best_cpu < best_gpu,
            seconds_with=best_cpu,
            seconds_without=best_gpu,
        )
