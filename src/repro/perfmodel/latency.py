"""Six-task cost model and end-to-end latency (paper Eqs. 1-9).

:class:`CostModel` binds (workload, policy, hardware, CPU execution
context, calibration) and produces:

* per-iteration :class:`~repro.runtime.tasks.TaskCosts` for prefill and for
  each decode token (the KV cache grows, so decode costs are per-token);
* the overlapped per-token step time — both the paper's literal Eq. 2 (max
  over the six tasks) and the resource-grouped variant (tasks sharing a
  PCIe direction serialize) that the discrete-event executor validates;
* an end-to-end :class:`LatencyBreakdown` (Eq. 1) with the quantization
  overhead split (Figure 4) and the I/O traffic (Table 1).

Policy semantics (how quantization composes with placement):

* ``wg`` weights stay resident on the GPU in fp16; the offloaded remainder
  is stored (compressed, if ``weight_quant``) in host memory, streamed per
  layer, and de-quantized on the GPU per use (Eq. 4).
* With GPU attention, ``cg`` of the KV cache is GPU-resident and the rest
  streams over PCIe.  ``kv_quant`` compresses both shares: the streamed
  share pays wire-time at the compressed size plus GPU (de)quant charged
  to load/store_cache (Eqs. 6-7); the resident share pays (de)quant on the
  compute stream when used.
* With CPU attention the cache never crosses PCIe (Observation 1:
  ``load_cache = store_cache = 0``); ``kv_quant`` then forces the *CPU* to
  de-quantize the old cache and quantize the new entries every token,
  which is the mechanism making quantization counter-productive under
  attention offloading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PolicyError
from repro.offload.policy import OffloadPolicy
from repro.parallel.bundling import bundle_operators
from repro.parallel.controller import ParallelismPlan, schedule_makespan
from repro.parallel.speedup import ContentionModel, ParallelismSetting
from repro.parallel.topology import CpuTopology
from repro.perfmodel.constants import EngineCalibration
from repro.perfmodel.notation import HardwareParams, Workload
from repro.perfmodel.quant_model import (
    KVQuantOverheadsVec,
    kv_quant_overheads,
    kv_quant_overheads_vec,
    weight_quant_overheads,
)
from repro.runtime.graph import build_attention_graph, max_concurrency
from repro.runtime.tasks import TASK_FIELD_NAMES, TaskCosts
from repro.units import dtype_bytes


@dataclass
class CpuExecutionContext:
    """How the CPU is being used: threading plus staging throughput.

    ``parallel_efficiency()`` is the aggregate speedup (vs one thread) the
    compute task achieves under the active threading setting, derived from
    the contention-adjusted list schedule of the attention op graph.  The
    default PyTorch setting and LM-Offload's controlled setting differ
    exactly here.
    """

    topology: CpuTopology
    contention: ContentionModel
    setting: ParallelismSetting
    io_staging_threads: dict[str, int] = field(default_factory=dict)
    staging_bw_per_thread: float = 6e9
    use_fine_grained_graph: bool = False
    #: Fraction of the CPU available to this engine instance (multi-GPU
    #: pipeline stages share one host CPU: each of G stages gets ~1/G).
    cpu_share: float = 1.0

    @classmethod
    def pytorch_default(
        cls, topology: CpuTopology, contention: ContentionModel
    ) -> "CpuExecutionContext":
        """PyTorch defaults (§4.1): intra = physical cores, inter = all
        hardware threads, running the fine-grained (unbundled) op graph.

        Weight/activation staging gets one thread per task — the default
        runtime copies weights into transfer buffers on the issuing thread,
        so that flow is staging-bound rather than wire-bound (this is the
        load_weight improvement Figure 8 attributes to parallelism
        control).  Cache flows go through multi-threaded torch copies and
        get a small pool by default.
        """
        return cls(
            topology=topology,
            contention=contention,
            setting=ParallelismSetting(
                intra_op=topology.physical_cores, inter_op=topology.hardware_threads
            ),
            io_staging_threads={
                "load_weight": 1,
                "load_activation": 1,
                "store_activation": 1,
                "load_cache": 4,
                "store_cache": 4,
            },
            use_fine_grained_graph=True,
        )

    @classmethod
    def from_plan(
        cls,
        topology: CpuTopology,
        contention: ContentionModel,
        plan: ParallelismPlan,
        staging_bw_per_thread: float = 6e9,
    ) -> "CpuExecutionContext":
        """Adopt a :class:`ParallelismController` plan (bundled graph)."""
        return cls(
            topology=topology,
            contention=contention,
            setting=plan.compute,
            io_staging_threads=dict(plan.io_threads),
            staging_bw_per_thread=staging_bw_per_thread,
            use_fine_grained_graph=False,
        )

    def parallel_efficiency(self, num_batches: int = 4) -> float:
        """Aggregate compute-task speedup vs 1 thread under this setting.

        Cached per ``num_batches`` — the schedule simulation is pure in the
        (frozen) setting and contention constants.
        """
        cache = getattr(self, "_eff_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_eff_cache", cache)
        if num_batches in cache:
            return cache[num_batches]
        graph = build_attention_graph(
            num_batches, fine_grained=self.use_fine_grained_graph
        )
        if not self.use_fine_grained_graph:
            graph, _ = bundle_operators(graph)
        co = min(self.setting.inter_op, max_concurrency(graph))

        def op_time(name: str) -> float:
            node = graph.node(name)
            speedup = self.contention.effective_op_speedup(
                self.setting, co, op_bytes=node.bytes_touched or 4e6
            )
            return node.work / speedup

        makespan = schedule_makespan(graph, self.setting.inter_op, op_time)
        cache[num_batches] = graph.total_work() / makespan
        return cache[num_batches]

    def staging_seconds(self, task: str, nbytes: float) -> float:
        """Host-side staging time for an I/O task (0 if no thread info)."""
        threads = self.io_staging_threads.get(task, 0)
        if threads <= 0 or nbytes <= 0:
            return 0.0
        return nbytes / (self.staging_bw_per_thread * threads)


@dataclass(frozen=True)
class LatencyBreakdown:
    """End-to-end timing decomposition (Eq. 1) plus reporting extras."""

    t_init: float
    t_prefill: float
    t_decode: float
    task_totals: dict[str, float]
    quant_overheads: dict[str, float]
    io_traffic: dict[tuple[str, str, str], float]
    bottleneck: str

    @property
    def total_seconds(self) -> float:
        return self.t_init + self.t_prefill + self.t_decode

    @property
    def total_quant_seconds(self) -> float:
        """All (de)quantization time (Figure 4's quant+dequant bars)."""
        return sum(self.quant_overheads.values())

    def throughput(self, workload: Workload) -> float:
        """Generated tokens per second (the paper's tput metric)."""
        return workload.block_size * workload.gen_len / self.total_seconds


class CostModel:
    """The full analytic model for one (workload, policy, hardware) triple."""

    def __init__(
        self,
        workload: Workload,
        policy: OffloadPolicy,
        hw: HardwareParams,
        cpu_ctx: CpuExecutionContext,
        calibration: EngineCalibration | None = None,
        weights_preloaded: bool = True,
    ) -> None:
        if policy.gpu_batch_size * policy.num_gpu_batches != workload.block_size:
            raise PolicyError(
                "policy batch geometry disagrees with the workload block size"
            )
        self.w = workload
        self.p = policy
        self.hw = hw
        self.ctx = cpu_ctx
        self.cal = calibration or EngineCalibration.paper_defaults()
        self.weights_preloaded = weights_preloaded
        self.fp = workload.footprint()
        self._eff = cpu_ctx.parallel_efficiency()
        #: Memo for policy-fixed sub-quantities (byte sizes, per-iteration
        #: task constants) — each is pure in the frozen inputs, and the
        #: planner asks for them thousands of times per candidate.
        self._memo: dict[str, float] = {}
        #: Cached feasibility verdict: ``None`` until checked, then ``True``
        #: or the :class:`PolicyError` to re-raise.  Lets ``evaluate()`` and
        #: ``breakdown()`` share one memory check instead of recomputing.
        self._feasible: bool | PolicyError | None = None

    # -- effective rates -----------------------------------------------------

    @property
    def pcie_bw(self) -> float:
        """Achieved PCIe bytes/s per direction."""
        return self.hw.pcie_bdw * self.cal.pcie_efficiency

    # -- stored byte sizes -----------------------------------------------------

    def offloaded_weight_bytes_per_layer(self) -> float:
        """Stored bytes of the CPU-resident weight share of one layer."""
        if "offloaded_weight_bytes" not in self._memo:
            n = self.w.model.weights_per_layer * self.p.wc
            if n == 0:
                value = 0.0
            elif self.p.weight_quant is not None:
                value = self.p.weight_quant.total_bytes(n)
            else:
                value = n * dtype_bytes("fp16")
            self._memo["offloaded_weight_bytes"] = value
        return self._memo["offloaded_weight_bytes"]

    def resident_weight_bytes_per_layer(self) -> float:
        """GPU-resident weight bytes (compressed when the policy stores the
        resident share quantized, as ZeRO-Inference's 4-bit mode does)."""
        if "resident_weight_bytes" not in self._memo:
            n = self.w.model.weights_per_layer * self.p.wg
            if self.p.quantize_resident_weights and self.p.weight_quant is not None:
                value = self.p.weight_quant.total_bytes(n)
            else:
                value = n * dtype_bytes("fp16")
            self._memo["resident_weight_bytes"] = value
        return self._memo["resident_weight_bytes"]

    def _resident_weight_dequant_iter(self) -> float:
        """Per-iteration dequant of compressed resident weights (on the
        compute stream — the weights are unpacked at point of use)."""
        if "resident_weight_dequant" not in self._memo:
            if not (self.p.quantize_resident_weights and self.p.weight_quant):
                value = 0.0
            elif self.p.wg == 0:
                value = 0.0
            else:
                over = weight_quant_overheads(self.w, self.p.wg, self.cal.codec)
                value = over.dequantize_seconds / self.p.num_gpu_batches
            self._memo["resident_weight_dequant"] = value
        return self._memo["resident_weight_dequant"]

    def kv_store_bytes_per_token(self) -> float:
        """Stored bytes of one token's KV entries (whole block, one layer)."""
        if "kv_store_bytes" not in self._memo:
            elements = self.fp.kv_elements_per_token_per_layer
            if self.p.kv_quant is not None:
                value = self.p.kv_quant.total_bytes(elements)
            else:
                value = elements * dtype_bytes("fp16")
            self._memo["kv_store_bytes"] = value
        return self._memo["kv_store_bytes"]

    # -- memory feasibility --------------------------------------------------

    def gpu_bytes_required(self) -> float:
        """Peak GPU bytes under this policy."""
        if "gpu_bytes" not in self._memo:
            self._memo["gpu_bytes"] = self._gpu_bytes_required()
        return self._memo["gpu_bytes"]

    def _gpu_bytes_required(self) -> float:
        l = self.w.model.num_layers
        weights = self.resident_weight_bytes_per_layer() * l
        # Uncompressed working weights: current + prefetch when layers
        # stream from the host; a single dequantization buffer when all
        # weights are resident (ZeRO-Inference's mode).
        working_layers = 2 if self.p.wc > 0 else 1
        working = working_layers * self.w.model.weights_per_layer * dtype_bytes("fp16")
        kv = 0.0
        if not self.p.attention_on_cpu:
            kv_total = (
                (self.w.prompt_len + self.w.gen_len)
                * self.kv_store_bytes_per_token()
                * l
            )
            kv = self.p.cg * kv_total
            # Working buffer for one layer's (dequantized) cache slice.
            kv += (
                (self.w.prompt_len + self.w.gen_len)
                * self.fp.kv_elements_per_token_per_layer
                * dtype_bytes("fp16")
                / self.p.num_gpu_batches
            )
        act = self.fp.activation_bytes_per_layer * (2 + 2 * self.p.hg)
        return weights + working + kv + act

    def cpu_bytes_required(self) -> float:
        """Peak host bytes under this policy."""
        if "cpu_bytes" not in self._memo:
            self._memo["cpu_bytes"] = self._cpu_bytes_required()
        return self._memo["cpu_bytes"]

    def _cpu_bytes_required(self) -> float:
        l = self.w.model.num_layers
        weights = self.offloaded_weight_bytes_per_layer() * l
        if self.p.wc > 0 and self.p.wd > 0:
            # Disk-resident weights only occupy a 2-layer staging window
            # in host memory, not their full footprint.
            disk_share = self.p.wd / self.p.wc
            resident = weights * (1.0 - disk_share)
            staging = 2 * self.offloaded_weight_bytes_per_layer()
            weights = resident + min(staging, weights * disk_share)
        kv_total = (
            (self.w.prompt_len + self.w.gen_len) * self.kv_store_bytes_per_token() * l
        )
        kv = kv_total if self.p.attention_on_cpu else (1.0 - self.p.cg) * kv_total
        act = self.fp.activation_bytes_per_layer * 2 * (1.0 - self.p.hg)
        return weights + kv + act

    def check_feasible(self) -> None:
        """Raise :class:`PolicyError` when the policy overflows a memory.

        The verdict is computed once per model instance and replayed on
        subsequent calls, so ``evaluate()`` + ``breakdown()`` pay for a
        single memory-requirement pass.
        """
        if self._feasible is True:
            return
        if self._feasible is not None:
            raise self._feasible
        gpu_need = self.gpu_bytes_required()
        if gpu_need > self.hw.gpu_mem_capacity:
            self._feasible = PolicyError(
                f"policy needs {gpu_need/1e9:.1f} GB GPU memory "
                f"(capacity {self.hw.gpu_mem_capacity/1e9:.1f} GB): {self.p.describe()}"
            )
            raise self._feasible
        cpu_need = self.cpu_bytes_required()
        if cpu_need > self.hw.cpu_mem_capacity:
            self._feasible = PolicyError(
                f"policy needs {cpu_need/1e9:.1f} GB host memory "
                f"(capacity {self.hw.cpu_mem_capacity/1e9:.1f} GB): {self.p.describe()}"
            )
            raise self._feasible
        self._feasible = True

    # -- kernel building blocks -----------------------------------------------

    def _load_weight_iter(self) -> float:
        """Per-iteration load_weight incl. Eq. 4 dequant, host staging, and
        the disk leg for any disk-resident share (third tier)."""
        if "load_weight_iter" not in self._memo:
            self._memo["load_weight_iter"] = self._load_weight_iter_impl()
        return self._memo["load_weight_iter"]

    def _load_weight_iter_impl(self) -> float:
        per_iter = self.offloaded_weight_bytes_per_layer() / self.p.num_gpu_batches
        wire = per_iter / self.pcie_bw
        stage = self.ctx.staging_seconds("load_weight", per_iter)
        t = max(wire, stage)
        if self.p.wd > 0 and self.p.wc > 0:
            # The disk-resident slice of the offloaded share must first
            # reach host memory at disk bandwidth (pipelined with PCIe, so
            # the slower leg dominates).
            disk_per_iter = per_iter * (self.p.wd / self.p.wc)
            t = max(t, disk_per_iter / self.hw.disk_bdw)
        if self.p.weight_quant is not None and self.p.wc > 0:
            over = weight_quant_overheads(self.w, self.p.wc, self.cal.codec)
            t += over.dequantize_seconds / self.p.num_gpu_batches
        return t

    def _attention_flops_bytes(self, ctx_len: int, tokens: int) -> tuple[float, float]:
        """FLOPs and fp16 bytes of attention for one batch iteration."""
        h1 = self.w.model.hidden_size
        b = self.p.gpu_batch_size
        flops = 4.0 * b * tokens * ctx_len * h1
        kv_bytes = 2.0 * b * ctx_len * h1 * dtype_bytes("fp16")
        return flops, kv_bytes

    def _cpu_attention_seconds(self, ctx_len: int, tokens: int) -> float:
        """Offloaded attention under the active threading setting."""
        flops, nbytes = self._attention_flops_bytes(ctx_len, tokens)
        rates = self.cal.attention
        share = self.ctx.cpu_share
        flop_rate = min(
            rates.cpu_flops_per_thread * self._eff, rates.cpu_flops_ceiling
        ) * share
        bw_rate = min(
            rates.cpu_bw_per_thread * self._eff, rates.cpu_bw_ceiling
        ) * share
        return max(flops / flop_rate, nbytes / bw_rate)

    def _gpu_attention_seconds(self, ctx_len: int, tokens: int) -> float:
        flops, nbytes = self._attention_flops_bytes(ctx_len, tokens)
        eff = self.cal.gpu_dense_efficiency
        return max(flops / (self.hw.gpu_flops * eff), nbytes / self.hw.gpu_mem_bdw)

    def _gpu_dense_seconds(self, tokens: int) -> float:
        """Projections + MLP on the GPU for one batch iteration."""
        n_weights = self.w.model.weights_per_layer
        flops = 2.0 * n_weights * tokens * self.p.gpu_batch_size
        nbytes = n_weights * dtype_bytes("fp16")
        eff = self.cal.gpu_dense_efficiency
        return max(flops / (self.hw.gpu_flops * eff), nbytes / self.hw.gpu_mem_bdw)

    # -- the six tasks -------------------------------------------------------

    def decode_task_costs(self, token_idx: int) -> TaskCosts:
        """Per-iteration task costs for decode token ``token_idx`` (0-based,
        counting tokens produced after prefill)."""
        w, p = self.w, self.p
        ctx_len = w.prompt_len + 1 + token_idx
        k = p.num_gpu_batches

        load_weight = self._load_weight_iter()

        act_bytes = self.fp.activation_bytes_per_layer
        # Activations cross PCIe for the offloaded share; CPU attention
        # additionally ships the attention output up every layer.
        act_flow = act_bytes * max(1.0 - p.hg, 1.0 if p.attention_on_cpu else 0.0)
        load_act = act_flow / k / self.pcie_bw
        store_act = act_flow / k / self.pcie_bw

        if p.attention_on_cpu:
            load_cache = 0.0
            store_cache = 0.0
            # _cpu_attention_seconds already costs one gpu_batch iteration.
            cpu_attn = self._cpu_attention_seconds(ctx_len, 1)
            if p.kv_quant is not None:
                over = kv_quant_overheads(
                    w, self.cal.codec, device="cpu", token_idx=token_idx
                )
                cpu_attn += (over.old_dequant_seconds + over.new_quant_seconds) / k
            compute = max(cpu_attn, self._gpu_dense_seconds(1))
        else:
            stored = self.kv_store_bytes_per_token()
            streamed_share = 1.0 - p.cg
            old_bytes = ctx_len * stored * streamed_share / k
            new_bytes = stored * streamed_share / k
            load_cache = max(
                old_bytes / self.pcie_bw,
                self.ctx.staging_seconds("load_cache", old_bytes),
            )
            store_cache = max(
                new_bytes / self.pcie_bw,
                self.ctx.staging_seconds("store_cache", new_bytes),
            )
            compute = self._gpu_attention_seconds(ctx_len, 1) + self._gpu_dense_seconds(1)
            if p.kv_quant is not None:
                over = kv_quant_overheads(
                    w, self.cal.codec, device="gpu", token_idx=token_idx
                )
                # Streamed share: codec charged to the cache tasks (Eqs. 6-7).
                load_cache += over.old_dequant_seconds * streamed_share / k
                store_cache += over.new_quant_seconds * streamed_share / k
                # Resident share: codec runs when the cache is used/updated.
                compute += (
                    over.old_dequant_seconds + over.new_quant_seconds
                ) * p.cg / k

        compute += self._resident_weight_dequant_iter()
        return TaskCosts(
            load_weight=load_weight,
            load_cache=load_cache,
            load_activation=load_act,
            store_cache=store_cache,
            store_activation=store_act,
            compute=compute,
        )

    def _kv_overheads_vec(
        self, token_indices: np.ndarray
    ) -> KVQuantOverheadsVec | None:
        """Per-token KV codec overheads on the device the policy runs the
        codec on, for all ``token_indices`` at once (``None`` without
        ``kv_quant``)."""
        if self.p.kv_quant is None:
            return None
        device = "cpu" if self.p.attention_on_cpu else "gpu"
        return kv_quant_overheads_vec(
            self.w, token_indices, self.cal.codec, device=device
        )

    def decode_task_costs_vec(
        self,
        token_indices: np.ndarray,
        kv_over: KVQuantOverheadsVec | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`decode_task_costs` over many decode tokens.

        Every per-token cost is affine in the context length, so the whole
        decode trajectory evaluates in one NumPy pass.  Returns an
        ``(len(token_indices), 6)`` float64 matrix whose columns follow
        :data:`~repro.runtime.tasks.TASK_FIELD_NAMES`; row ``i`` matches
        ``decode_task_costs(token_indices[i]).as_tuple()`` (same formulas,
        same operation order).  ``kv_over`` optionally reuses
        already-computed codec overheads for the same token indices so
        :meth:`breakdown` prices the codec exactly once.
        """
        w, p = self.w, self.p
        tokens = np.asarray(token_indices, dtype=np.float64)
        ctx_len = w.prompt_len + 1 + tokens
        k = p.num_gpu_batches
        n = tokens.shape[0]
        if p.kv_quant is not None and kv_over is None:
            kv_over = self._kv_overheads_vec(tokens)

        out = np.empty((n, 6), dtype=np.float64)
        out[:, 0] = self._load_weight_iter()

        act_bytes = self.fp.activation_bytes_per_layer
        act_flow = act_bytes * max(1.0 - p.hg, 1.0 if p.attention_on_cpu else 0.0)
        out[:, 2] = act_flow / k / self.pcie_bw  # load_activation
        out[:, 4] = act_flow / k / self.pcie_bw  # store_activation

        b = p.gpu_batch_size
        h1 = w.model.hidden_size
        flops = 4.0 * b * 1 * ctx_len * h1
        kv_bytes = 2.0 * b * ctx_len * h1 * dtype_bytes("fp16")

        if p.attention_on_cpu:
            out[:, 1] = 0.0  # load_cache
            out[:, 3] = 0.0  # store_cache
            rates = self.cal.attention
            share = self.ctx.cpu_share
            flop_rate = min(
                rates.cpu_flops_per_thread * self._eff, rates.cpu_flops_ceiling
            ) * share
            bw_rate = min(
                rates.cpu_bw_per_thread * self._eff, rates.cpu_bw_ceiling
            ) * share
            cpu_attn = np.maximum(flops / flop_rate, kv_bytes / bw_rate)
            if kv_over is not None:
                cpu_attn = cpu_attn + (
                    kv_over.old_dequant_seconds + kv_over.new_quant_seconds
                ) / k
            compute = np.maximum(cpu_attn, self._gpu_dense_seconds(1))
        else:
            stored = self.kv_store_bytes_per_token()
            streamed_share = 1.0 - p.cg
            old_bytes = ctx_len * stored * streamed_share / k
            new_bytes = stored * streamed_share / k
            load_cache = np.maximum(
                old_bytes / self.pcie_bw,
                self._staging_seconds_vec("load_cache", old_bytes),
            )
            store_cache = max(
                new_bytes / self.pcie_bw,
                self.ctx.staging_seconds("store_cache", new_bytes),
            )
            eff = self.cal.gpu_dense_efficiency
            gpu_attn = np.maximum(
                flops / (self.hw.gpu_flops * eff), kv_bytes / self.hw.gpu_mem_bdw
            )
            compute = gpu_attn + self._gpu_dense_seconds(1)
            if kv_over is not None:
                load_cache = (
                    load_cache
                    + kv_over.old_dequant_seconds * streamed_share / k
                )
                store_cache = (
                    store_cache + kv_over.new_quant_seconds * streamed_share / k
                )
                compute = compute + (
                    kv_over.old_dequant_seconds + kv_over.new_quant_seconds
                ) * p.cg / k
            out[:, 1] = load_cache
            out[:, 3] = store_cache

        out[:, 5] = compute + self._resident_weight_dequant_iter()
        return out

    def _staging_seconds_vec(self, task: str, nbytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`CpuExecutionContext.staging_seconds`."""
        threads = self.ctx.io_staging_threads.get(task, 0)
        if threads <= 0:
            return np.zeros_like(nbytes)
        return nbytes / (self.ctx.staging_bw_per_thread * threads)

    def prefill_task_costs(self) -> TaskCosts:
        """Per-iteration costs of the prefill pass (all prompt tokens)."""
        w, p = self.w, self.p
        s = w.prompt_len
        k = p.num_gpu_batches
        load_weight = self._load_weight_iter()
        # Prefill attention/MLP always run on the GPU (paper Fig. 2, 1.2).
        compute = self._gpu_attention_seconds(s, s) + self._gpu_dense_seconds(s)
        resident = 0.0 if p.attention_on_cpu else p.cg
        pf_bytes = (s + 1) * self.kv_store_bytes_per_token() * (1.0 - resident)
        store_cache = pf_bytes / k / self.pcie_bw
        if p.kv_quant is not None:
            over = kv_quant_overheads(w, self.cal.codec, device="gpu")
            compute += over.prefill_quant_seconds / k  # Eq. 5
        compute += self._resident_weight_dequant_iter()
        act_flow = self.fp.prefill_activation_bytes_per_layer * (1.0 - p.hg)
        return TaskCosts(
            load_weight=load_weight,
            load_cache=0.0,
            load_activation=act_flow / k / self.pcie_bw,
            store_cache=store_cache,
            store_activation=act_flow / k / self.pcie_bw,
            compute=compute,
        )

    # -- aggregation ---------------------------------------------------------

    @staticmethod
    def step_seconds(costs: TaskCosts, literal_eq2: bool = False) -> float:
        """Per-iteration overlapped time.

        ``literal_eq2=True`` reproduces Eq. 2 exactly (max over six tasks).
        The default groups tasks by physical resource — the three H2D loads
        share a PCIe direction and serialize — matching the discrete-event
        executor.
        """
        if literal_eq2:
            return costs.step_time()
        h2d = costs.load_weight + costs.load_cache + costs.load_activation
        d2h = costs.store_cache + costs.store_activation
        return max(h2d, d2h, costs.compute)

    @staticmethod
    def step_seconds_vec(costs: np.ndarray, literal_eq2: bool = False) -> np.ndarray:
        """Vectorized :meth:`step_seconds` over an ``(n, 6)`` cost matrix
        (columns in :data:`~repro.runtime.tasks.TASK_FIELD_NAMES` order)."""
        if literal_eq2:
            return costs.max(axis=1)
        h2d = costs[:, 0] + costs[:, 1] + costs[:, 2]
        d2h = costs[:, 3] + costs[:, 4]
        return np.maximum(np.maximum(h2d, d2h), costs[:, 5])

    def t_init_seconds(self) -> float:
        """Eq. 3: disk -> host weight load + one-time weight quantization."""
        t = 0.0
        if not self.weights_preloaded:
            t += self.fp.total_weight_bytes / self.hw.disk_bdw
        if self.p.weight_quant is not None and self.p.wc > 0:
            over = weight_quant_overheads(self.w, self.p.wc, self.cal.codec)
            t += over.quantize_seconds * self.w.model.num_layers
        return t

    def decode_seconds(
        self, literal_eq2: bool = False, vectorized: bool = True
    ) -> float:
        """Total decode time across (n-1) tokens (Eq. 1's third term).

        ``vectorized=False`` runs the scalar per-token reference loop; the
        default evaluates every token in one NumPy pass (same formulas —
        the equivalence tests pin the two together).
        """
        iters = self.w.model.num_layers * self.p.num_gpu_batches
        if not vectorized:
            return sum(
                self.step_seconds(self.decode_task_costs(t), literal_eq2) * iters
                for t in range(self.w.gen_len - 1)
            )
        tokens = np.arange(self.w.gen_len - 1, dtype=np.float64)
        costs = self.decode_task_costs_vec(tokens)
        return float(self.step_seconds_vec(costs, literal_eq2).sum() * iters)

    def breakdown(
        self, literal_eq2: bool = False, vectorized: bool = True
    ) -> LatencyBreakdown:
        """Assemble Eq. 1 end to end, with reporting detail.

        The default path prices all decode tokens (task costs *and* KV
        codec overheads) in one vectorized pass; ``vectorized=False`` keeps
        the scalar per-token reference for equivalence testing.
        """
        self.check_feasible()
        w, p = self.w, self.p
        iters = w.model.num_layers * p.num_gpu_batches

        pf = self.prefill_task_costs()
        t_prefill = self.step_seconds(pf, literal_eq2) * iters

        if not vectorized:
            task_totals = {key: v * iters for key, v in pf.as_dict().items()}
            t_decode = 0.0
            for t in range(w.gen_len - 1):
                dc = self.decode_task_costs(t)
                t_decode += self.step_seconds(dc, literal_eq2) * iters
                for key, v in dc.as_dict().items():
                    task_totals[key] += v * iters
            mid = self.decode_task_costs(max(0, (w.gen_len - 1) // 2))
            quant_overheads = self._quant_overhead_totals(vectorized=False)
        else:
            tokens = np.arange(w.gen_len - 1, dtype=np.float64)
            kv_over = self._kv_overheads_vec(tokens)
            costs = self.decode_task_costs_vec(tokens, kv_over=kv_over)
            t_decode = float(
                self.step_seconds_vec(costs, literal_eq2).sum() * iters
            )
            col_totals = costs.sum(axis=0)
            task_totals = {
                name: pf_v * iters + col * iters
                for name, pf_v, col in zip(
                    TASK_FIELD_NAMES, pf.as_tuple(), col_totals
                )
            }
            mid_idx = max(0, (w.gen_len - 1) // 2)
            if costs.shape[0] > 0:
                mid = TaskCosts(*costs[mid_idx])
            else:
                mid = self.decode_task_costs(0)
            quant_overheads = self._quant_overhead_totals(kv_over=kv_over)

        return LatencyBreakdown(
            t_init=self.t_init_seconds(),
            t_prefill=t_prefill,
            t_decode=t_decode,
            task_totals=task_totals,
            quant_overheads=quant_overheads,
            io_traffic=self._traffic_totals(),
            bottleneck=mid.bottleneck().value,
        )

    def _quant_overhead_totals(
        self,
        vectorized: bool = True,
        kv_over: KVQuantOverheadsVec | None = None,
    ) -> dict[str, float]:
        """Total quant/dequant seconds over the whole run (Figure 4).

        ``kv_over`` reuses the per-token codec overheads already computed
        by :meth:`breakdown`'s vectorized pass (they are the same Eqs.
        20-24 quantities the decode tasks fold in), so the token loop runs
        zero times instead of twice.
        """
        w, p = self.w, self.p
        l = w.model.num_layers
        out = {
            "weight_quant_init": 0.0,
            "weight_dequant": 0.0,
            "kv_prefill_quant": 0.0,
            "kv_new_quant": 0.0,
            "kv_old_dequant": 0.0,
        }
        if p.weight_quant is not None and p.wc > 0:
            over = weight_quant_overheads(w, p.wc, self.cal.codec)
            out["weight_quant_init"] = over.quantize_seconds * l
            out["weight_dequant"] = over.dequantize_seconds * l * w.gen_len
        if p.quantize_resident_weights and p.weight_quant is not None and p.wg > 0:
            over = weight_quant_overheads(w, p.wg, self.cal.codec)
            out["weight_quant_init"] += over.quantize_seconds * l
            out["weight_dequant"] += over.dequantize_seconds * l * w.gen_len
        if p.kv_quant is not None:
            pf = kv_quant_overheads(w, self.cal.codec, device="gpu")
            out["kv_prefill_quant"] = pf.prefill_quant_seconds * l
            if not vectorized and kv_over is None:
                device = "cpu" if p.attention_on_cpu else "gpu"
                for t in range(w.gen_len - 1):
                    tok = kv_quant_overheads(
                        w, self.cal.codec, device=device, token_idx=t
                    )
                    out["kv_new_quant"] += tok.new_quant_seconds * l
                    out["kv_old_dequant"] += tok.old_dequant_seconds * l
            else:
                if kv_over is None:
                    kv_over = self._kv_overheads_vec(
                        np.arange(w.gen_len - 1, dtype=np.float64)
                    )
                out["kv_new_quant"] = (
                    kv_over.new_quant_seconds * l * (w.gen_len - 1)
                )
                out["kv_old_dequant"] = float(
                    kv_over.old_dequant_seconds.sum() * l
                )
        return out

    def _traffic_totals(self) -> dict[tuple[str, str, str], float]:
        """Whole-run I/O traffic by (src, dst, category) — Table 1's data."""
        w, p = self.w, self.p
        l = w.model.num_layers
        n = w.gen_len
        traffic: dict[tuple[str, str, str], float] = {}

        weights_per_token = self.offloaded_weight_bytes_per_layer() * l
        traffic[("cpu", "gpu", "weights")] = weights_per_token * n
        if p.wc > 0 and p.wd > 0:
            traffic[("disk", "cpu", "weights")] = (
                weights_per_token * (p.wd / p.wc) * n
            )

        act_bytes = self.fp.activation_bytes_per_layer
        act_flow = act_bytes * l * n * max(
            1.0 - p.hg, 1.0 if p.attention_on_cpu else 0.0
        )
        traffic[("cpu", "gpu", "activation")] = act_flow
        traffic[("gpu", "cpu", "activation")] = act_flow

        if p.attention_on_cpu:
            traffic[("cpu", "gpu", "kv_cache")] = 0.0
            traffic[("gpu", "cpu", "kv_cache")] = 0.0
        else:
            stored = self.kv_store_bytes_per_token()
            share = 1.0 - p.cg
            old_total = sum((w.prompt_len + 1 + t) * stored for t in range(n - 1))
            traffic[("cpu", "gpu", "kv_cache")] = old_total * share * l
            new_total = stored * (n - 1) + (w.prompt_len + 1) * stored
            traffic[("gpu", "cpu", "kv_cache")] = new_total * share * l
        return traffic
