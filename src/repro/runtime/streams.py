"""The standard stream set used by the offloading executor.

Mirrors the CUDA-stream layout FlexGen uses: one H2D copy stream, one D2H
copy stream, the GPU compute stream, and the CPU worker pool (which runs
offloaded attention and host-side staging).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import EventSim, Resource

STREAM_NAMES = ("h2d", "d2h", "compute", "cpu")


@dataclass
class StreamSet:
    """Named handles over an :class:`EventSim`'s resources."""

    sim: EventSim

    def __post_init__(self) -> None:
        for name in STREAM_NAMES:
            self.sim.resource(name)

    @property
    def h2d(self) -> Resource:
        return self.sim.resource("h2d")

    @property
    def d2h(self) -> Resource:
        return self.sim.resource("d2h")

    @property
    def compute(self) -> Resource:
        return self.sim.resource("compute")

    @property
    def cpu(self) -> Resource:
        return self.sim.resource("cpu")

    @classmethod
    def fresh(cls) -> "StreamSet":
        return cls(sim=EventSim())
