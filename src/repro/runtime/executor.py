"""Overlapped zig-zag execution of the six tasks (paper Algorithm 1).

:class:`OverlappedExecutor` plays Algorithm 1's triple loop
(token x layer x batch) through the discrete-event simulator, enforcing the
real dependencies:

* ``compute(i, j, k)`` needs this layer's weights loaded, batch ``k``'s
  cache/activation loaded, and the previous compute done (the compute
  resource is serial);
* stores of batch ``k`` follow its compute;
* loads for batch ``k+1`` can overlap batch ``k``'s compute — that overlap
  is the whole point of the schedule and what Eq. 2's ``max`` captures.

For long generations, simulating a *window* of tokens and extrapolating is
exact in the steady state (every iteration has identical costs within one
token when costs come from the average-KV model), so the executor exposes
both full and windowed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.obs.profiling import span
from repro.runtime.events import EventSim
from repro.runtime.streams import StreamSet
from repro.runtime.tasks import TASK_RESOURCE, TaskCosts, TaskKind


@dataclass(frozen=True)
class LayerTiming:
    """Timing summary of one (token, layer) sweep across the block."""

    start: float
    end: float
    per_task_busy: dict[str, float]

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclass
class OverlappedExecutor:
    """Event-driven schedule of Algorithm 1.

    Parameters
    ----------
    num_layers:
        ``l``.
    num_gpu_batches:
        Batches per zig-zag block (the ``k`` loop).
    """

    num_layers: int
    num_gpu_batches: int
    streams: StreamSet = field(default_factory=StreamSet.fresh)

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.num_gpu_batches <= 0:
            raise ScheduleError("num_layers and num_gpu_batches must be positive")

    def run_token(
        self, costs: TaskCosts, start_at: float = 0.0
    ) -> LayerTiming:
        """Simulate one decode token: all layers x all batches.

        ``costs`` are per-(layer, batch)-iteration durations.  Returns the
        token's timing; the sim clock persists across calls so consecutive
        tokens pipeline naturally.
        """
        with span("executor.run_token"):
            return self._run_token(costs, start_at)

    def _run_token(self, costs: TaskCosts, start_at: float = 0.0) -> LayerTiming:
        sim = self.streams.sim
        busy_before = {
            name: sim.resource(name).busy_time for name in ("h2d", "d2h", "compute")
        }
        token_start = max(start_at, 0.0)

        # Completion times of the previous iteration's tasks.
        weight_ready = token_start  # load_weight(j+1) is prefetched during j
        prev_compute_done = token_start
        compute_done: dict[int, float] = {}

        for layer in range(self.num_layers):
            layer_weight_ready = weight_ready
            for k in range(self.num_gpu_batches):
                # Alg. 1 issues load_weight(i, j+1, k) inside the batch
                # loop: the next layer's weights stream in one slice per
                # batch iteration, so `costs.load_weight` is per-iteration
                # (per-layer bytes / num_gpu_batches).  H2D is FIFO, so
                # the stream's own serialization orders the slices.
                weight_ready = sim.run_task("h2d", costs.load_weight)
                # Load cache+activation for this batch (next-batch prefetch
                # in Alg. 1; equivalently modelled as load-before-compute
                # on the same H2D stream).
                cache_ready = sim.run_task("h2d", costs.load_cache)
                act_ready = sim.run_task("h2d", costs.load_activation)
                ready = max(layer_weight_ready, cache_ready, act_ready)
                start, end = sim.resource("compute").run(costs.compute, ready)
                compute_done[k] = end
                # Store the previous batch's outputs (overlaps this compute).
                sim.run_task("d2h", costs.store_cache, ready_at=prev_compute_done)
                sim.run_task("d2h", costs.store_activation, ready_at=prev_compute_done)
                prev_compute_done = end
        token_end = sim.makespan
        busy = {
            name: sim.resource(name).busy_time - busy_before[name]
            for name in busy_before
        }
        return LayerTiming(start=token_start, end=token_end, per_task_busy=busy)

    def steady_state_token_time(self, costs: TaskCosts, warmup: int = 2) -> float:
        """Per-token time after pipeline warm-up.

        Runs ``warmup + 1`` identical tokens and returns the marginal cost
        of the last one — this is what Eq. 2 predicts as
        ``max(six tasks) * l * K`` in the steady state.
        """
        last_end = 0.0
        marginal = 0.0
        for i in range(warmup + 1):
            timing = self.run_token(costs, start_at=last_end)
            marginal = timing.end - last_end
            last_end = timing.end
        return marginal
