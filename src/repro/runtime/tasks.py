"""The six decode-phase tasks and their cost containers (paper Alg. 1).

Every (token, layer, batch) iteration launches six asynchronous tasks.
:class:`TaskCosts` holds their per-iteration durations; Eq. 2 says the
overlapped iteration time is the max of the six, which :meth:`TaskCosts.step_time`
implements.  The executor (:mod:`repro.runtime.executor`) checks that the
event-driven schedule converges to the same steady state.

``TaskCosts`` sits on the planner's hot path (tens of thousands of
instances per policy search), so its accessors are explicit tuples/dicts
rather than :func:`dataclasses.fields` reflection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TaskKind(enum.Enum):
    """The six tasks of Algorithm 1."""

    LOAD_WEIGHT = "load_weight"
    LOAD_CACHE = "load_cache"
    LOAD_ACTIVATION = "load_activation"
    STORE_CACHE = "store_cache"
    STORE_ACTIVATION = "store_activation"
    COMPUTE = "compute"


#: Which simulated resource executes each task kind.
TASK_RESOURCE = {
    TaskKind.LOAD_WEIGHT: "h2d",
    TaskKind.LOAD_CACHE: "h2d",
    TaskKind.LOAD_ACTIVATION: "h2d",
    TaskKind.STORE_CACHE: "d2h",
    TaskKind.STORE_ACTIVATION: "d2h",
    TaskKind.COMPUTE: "compute",
}

#: Field order of :class:`TaskCosts` — also the column order of the
#: vectorized cost matrices in :mod:`repro.perfmodel.latency`.
TASK_FIELD_NAMES = (
    "load_weight",
    "load_cache",
    "load_activation",
    "store_cache",
    "store_activation",
    "compute",
)


@dataclass(frozen=True)
class TaskCosts:
    """Durations (seconds) of the six tasks for one decode iteration.

    ``compute`` already folds in whatever runs on the compute resource
    (GPU MLP + GPU attention, or the max of pipelined CPU attention and
    GPU MLP when attention is offloaded — see the engine).
    """

    load_weight: float = 0.0
    load_cache: float = 0.0
    load_activation: float = 0.0
    store_cache: float = 0.0
    store_activation: float = 0.0
    compute: float = 0.0

    def __post_init__(self) -> None:
        if (
            self.load_weight < 0
            or self.load_cache < 0
            or self.load_activation < 0
            or self.store_cache < 0
            or self.store_activation < 0
            or self.compute < 0
        ):
            for name, value in zip(TASK_FIELD_NAMES, self.as_tuple()):
                if value < 0:
                    raise ValueError(f"task cost {name} must be non-negative")

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        """The six durations in :data:`TASK_FIELD_NAMES` order."""
        return (
            self.load_weight,
            self.load_cache,
            self.load_activation,
            self.store_cache,
            self.store_activation,
            self.compute,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "load_weight": self.load_weight,
            "load_cache": self.load_cache,
            "load_activation": self.load_activation,
            "store_cache": self.store_cache,
            "store_activation": self.store_activation,
            "compute": self.compute,
        }

    def get(self, kind: TaskKind) -> float:
        return getattr(self, kind.value)

    def step_time(self) -> float:
        """Eq. 2: overlapped per-iteration latency = max of the six tasks."""
        return max(self.as_tuple())

    def bottleneck(self) -> TaskKind:
        """Which task dominates the overlapped iteration."""
        values = self.as_tuple()
        return TaskKind(TASK_FIELD_NAMES[values.index(max(values))])

    def serial_time(self) -> float:
        """Sum of the six (what a non-overlapped runtime would pay)."""
        return sum(self.as_tuple())

    def scaled(self, factor: float) -> "TaskCosts":
        """Uniformly scale every task (used for what-if analysis)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return TaskCosts(*(v * factor for v in self.as_tuple()))

    @staticmethod
    def elementwise_max(a: "TaskCosts", b: "TaskCosts") -> "TaskCosts":
        return TaskCosts(
            *(max(x, y) for x, y in zip(a.as_tuple(), b.as_tuple()))
        )
