"""The six decode-phase tasks and their cost containers (paper Alg. 1).

Every (token, layer, batch) iteration launches six asynchronous tasks.
:class:`TaskCosts` holds their per-iteration durations; Eq. 2 says the
overlapped iteration time is the max of the six, which :meth:`TaskCosts.step_time`
implements.  The executor (:mod:`repro.runtime.executor`) checks that the
event-driven schedule converges to the same steady state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields


class TaskKind(enum.Enum):
    """The six tasks of Algorithm 1."""

    LOAD_WEIGHT = "load_weight"
    LOAD_CACHE = "load_cache"
    LOAD_ACTIVATION = "load_activation"
    STORE_CACHE = "store_cache"
    STORE_ACTIVATION = "store_activation"
    COMPUTE = "compute"


#: Which simulated resource executes each task kind.
TASK_RESOURCE = {
    TaskKind.LOAD_WEIGHT: "h2d",
    TaskKind.LOAD_CACHE: "h2d",
    TaskKind.LOAD_ACTIVATION: "h2d",
    TaskKind.STORE_CACHE: "d2h",
    TaskKind.STORE_ACTIVATION: "d2h",
    TaskKind.COMPUTE: "compute",
}


@dataclass(frozen=True)
class TaskCosts:
    """Durations (seconds) of the six tasks for one decode iteration.

    ``compute`` already folds in whatever runs on the compute resource
    (GPU MLP + GPU attention, or the max of pipelined CPU attention and
    GPU MLP when attention is offloaded — see the engine).
    """

    load_weight: float = 0.0
    load_cache: float = 0.0
    load_activation: float = 0.0
    store_cache: float = 0.0
    store_activation: float = 0.0
    compute: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"task cost {f.name} must be non-negative")

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def get(self, kind: TaskKind) -> float:
        return getattr(self, kind.value)

    def step_time(self) -> float:
        """Eq. 2: overlapped per-iteration latency = max of the six tasks."""
        return max(self.as_dict().values())

    def bottleneck(self) -> TaskKind:
        """Which task dominates the overlapped iteration."""
        name = max(self.as_dict().items(), key=lambda kv: kv[1])[0]
        return TaskKind(name)

    def serial_time(self) -> float:
        """Sum of the six (what a non-overlapped runtime would pay)."""
        return sum(self.as_dict().values())

    def scaled(self, factor: float) -> "TaskCosts":
        """Uniformly scale every task (used for what-if analysis)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return TaskCosts(**{k: v * factor for k, v in self.as_dict().items()})

    @staticmethod
    def elementwise_max(a: "TaskCosts", b: "TaskCosts") -> "TaskCosts":
        return TaskCosts(
            **{k: max(v, b.as_dict()[k]) for k, v in a.as_dict().items()}
        )
