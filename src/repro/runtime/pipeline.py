"""The full decode loop: prefill + n decode tokens through the executor.

:class:`DecodeLoop` stitches per-token :class:`~repro.runtime.tasks.TaskCosts`
(which change every token because the KV cache grows) into an end-to-end
:class:`GenerationTrace`.  It is the event-driven counterpart of the
closed-form Eq. 1/2 model in :mod:`repro.perfmodel.latency`; the two agree
in the steady state and tests enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ScheduleError
from repro.obs.profiling import span
from repro.obs.registry import MetricsRegistry
from repro.runtime.executor import OverlappedExecutor
from repro.runtime.streams import StreamSet
from repro.runtime.tasks import TaskCosts


@dataclass(frozen=True)
class GenerationTrace:
    """Timeline of one block's generation run."""

    prefill_seconds: float
    decode_seconds: float
    per_token_seconds: tuple[float, ...]
    per_task_busy: dict[str, float]

    @property
    def total_seconds(self) -> float:
        return self.prefill_seconds + self.decode_seconds

    def throughput(self, block_size: int, gen_len: int) -> float:
        """Generated tokens per second for the whole block (paper metric)."""
        if self.total_seconds <= 0:
            raise ScheduleError("empty trace")
        return block_size * gen_len / self.total_seconds


@dataclass
class DecodeLoop:
    """Runs prefill + decode through an :class:`OverlappedExecutor`.

    Parameters
    ----------
    num_layers, num_gpu_batches:
        Schedule geometry.
    metrics:
        Optional time-series sink: each token's marginal time lands in
        ``curve.token_s`` at the virtual clock it completed (the prefill
        pass in ``curve.prefill_s`` at its own end).  ``None`` (default)
        is structurally inert — the trace is identical either way.
    """

    num_layers: int
    num_gpu_batches: int
    metrics: MetricsRegistry | None = None

    def run(
        self,
        prefill_costs: TaskCosts,
        decode_costs: Callable[[int], TaskCosts] | Sequence[TaskCosts],
        gen_len: int,
    ) -> GenerationTrace:
        """Simulate one full generation.

        ``decode_costs`` gives per-iteration task costs for each decode
        token index (callable or pre-built sequence); token 0's output is
        produced by the prefill pass, so ``gen_len - 1`` decode steps run
        (matching Eq. 1's ``(n - 1)`` factor).
        """
        if gen_len <= 0:
            raise ScheduleError("gen_len must be positive")
        with span("pipeline.decode_loop"):
            return self._run(prefill_costs, decode_costs, gen_len)

    def _run(
        self,
        prefill_costs: TaskCosts,
        decode_costs: Callable[[int], TaskCosts] | Sequence[TaskCosts],
        gen_len: int,
    ) -> GenerationTrace:
        executor = OverlappedExecutor(
            num_layers=self.num_layers,
            num_gpu_batches=self.num_gpu_batches,
            streams=StreamSet.fresh(),
        )
        # Prefill: one pass over layers x batches at prefill costs.
        prefill = executor.run_token(prefill_costs, start_at=0.0)
        if self.metrics is not None:
            self.metrics.timeseries("curve.prefill_s").sample(
                prefill.end, prefill.elapsed
            )
        per_token: list[float] = []
        clock = prefill.end
        for t in range(gen_len - 1):
            costs = decode_costs(t) if callable(decode_costs) else decode_costs[t]
            timing = executor.run_token(costs, start_at=clock)
            per_token.append(timing.end - clock)
            clock = timing.end
            if self.metrics is not None:
                self.metrics.timeseries("curve.token_s").sample(
                    clock, per_token[-1]
                )
        sim = executor.streams.sim
        busy = {name: sim.resource(name).busy_time for name in ("h2d", "d2h", "compute")}
        return GenerationTrace(
            prefill_seconds=prefill.elapsed,
            decode_seconds=clock - prefill.end,
            per_token_seconds=tuple(per_token),
            per_task_busy=busy,
        )
