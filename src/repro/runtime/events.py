"""A minimal discrete-event simulator for resource-serialized tasks.

The offloading runtime's concurrency structure is simple: a handful of
serially-executing resources (H2D link, D2H link, GPU stream, CPU pool)
process tasks with precedence constraints.  :class:`EventSim` tracks each
resource's timeline and resolves task completion times; it is sufficient to
reproduce Algorithm 1's overlap behaviour and validate the closed-form
Eq. 2 model against an explicit schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Resource:
    """A resource that executes one task at a time, FIFO."""

    name: str
    free_at: float = 0.0
    busy_time: float = 0.0
    tasks_run: int = 0

    def run(self, duration: float, ready_at: float = 0.0) -> tuple[float, float]:
        """Execute a task of ``duration`` not before ``ready_at``.

        Returns (start, end) and advances the resource timeline.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.free_at, ready_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.tasks_run += 1
        return start, end


@dataclass
class EventSim:
    """A clock plus named resources."""

    resources: dict[str, Resource] = field(default_factory=dict)

    def resource(self, name: str) -> Resource:
        if name not in self.resources:
            self.resources[name] = Resource(name=name)
        return self.resources[name]

    def run_task(self, resource: str, duration: float, ready_at: float = 0.0) -> float:
        """Schedule and return the completion time."""
        _, end = self.resource(resource).run(duration, ready_at)
        return end

    @property
    def makespan(self) -> float:
        """Latest completion across all resources."""
        return max((r.free_at for r in self.resources.values()), default=0.0)

    def utilization(self, name: str) -> float:
        """Busy fraction of a resource over the makespan."""
        span = self.makespan
        if span == 0:
            return 0.0
        return self.resources[name].busy_time / span

    def reset(self) -> None:
        for r in self.resources.values():
            r.free_at = 0.0
            r.busy_time = 0.0
            r.tasks_run = 0
