"""Operator dependency graphs and Kahn concurrency analysis (paper Fig. 6).

Algorithm 3's first step is: *"Estimate inter_op_p_comp using the max
concurrency level"* of the compute task's dependency graph, computed with
Kahn's topological sort.  We implement the graph on top of
:mod:`networkx` and expose:

* :func:`kahn_levels` — partition nodes into dependency levels (every node's
  predecessors live in strictly earlier levels);
* :func:`max_concurrency` — the widest level, i.e. the largest number of
  operators that can execute simultaneously;
* :func:`build_attention_graph` — the decode-phase attention graph, with
  one Q/K/V/score/context chain per co-scheduled batch (batches are
  mutually independent, which is where most of the width comes from).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ScheduleError


@dataclass(frozen=True)
class OpNode:
    """One operator in the compute task.

    ``work`` is abstract serial work (seconds at 1 thread, or any consistent
    unit); ``bytes_touched`` feeds the cache model.
    """

    name: str
    work: float = 1.0
    bytes_touched: float = 0.0
    kind: str = "generic"


class OpGraph:
    """A DAG of :class:`OpNode` with convenience analysis methods."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._nodes: dict[str, OpNode] = {}
        #: Memo for structure-derived analyses (acyclicity, adjacency,
        #: Kahn levels).  Algorithm 3 re-analyses the same graph for every
        #: candidate thread setting; the structure only changes on
        #: ``add_op``, which clears this.
        self._analysis_cache: dict = {}

    def add_op(self, node: OpNode, deps: list[str] | None = None) -> OpNode:
        """Insert ``node``; ``deps`` are names of prerequisite ops."""
        if node.name in self._nodes:
            raise ScheduleError(f"duplicate op {node.name!r}")
        self._nodes[node.name] = node
        self._g.add_node(node.name)
        for dep in deps or []:
            if dep not in self._nodes:
                raise ScheduleError(f"op {node.name!r} depends on unknown {dep!r}")
            self._g.add_edge(dep, node.name)
        self._analysis_cache.clear()
        return node

    def node(self, name: str) -> OpNode:
        return self._nodes[name]

    @property
    def num_ops(self) -> int:
        return len(self._nodes)

    def ops(self) -> list[OpNode]:
        return [self._nodes[n] for n in self._g.nodes]

    def predecessors(self, name: str) -> list[str]:
        return list(self._g.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return list(self._g.successors(name))

    def validate(self) -> None:
        """Raise :class:`ScheduleError` if the graph has a cycle."""
        if self._analysis_cache.get("acyclic"):
            return
        if not nx.is_directed_acyclic_graph(self._g):
            cycle = nx.find_cycle(self._g)
            raise ScheduleError(f"dependency cycle: {cycle}")
        self._analysis_cache["acyclic"] = True

    def adjacency(self) -> tuple[dict[str, int], dict[str, list[str]]]:
        """Plain-dict ``(indegree, successors)`` snapshot of the structure.

        Schedulers that sweep many candidate settings over one graph walk
        the edges thousands of times; plain dicts avoid repeated networkx
        view construction.  Callers must copy ``indegree`` before mutating.
        """
        cached = self._analysis_cache.get("adjacency")
        if cached is None:
            indegree = {n: self._g.in_degree(n) for n in self._g.nodes}
            successors = {n: list(self._g.successors(n)) for n in self._g.nodes}
            cached = self._analysis_cache["adjacency"] = (indegree, successors)
        return cached

    def total_work(self) -> float:
        return sum(op.work for op in self._nodes.values())

    def critical_path_work(self) -> float:
        """Longest work-weighted path — the lower bound on any schedule."""
        self.validate()
        best: dict[str, float] = {}
        for name in nx.topological_sort(self._g):
            incoming = [best[p] for p in self._g.predecessors(name)]
            best[name] = (max(incoming) if incoming else 0.0) + self._nodes[name].work
        return max(best.values(), default=0.0)

    def networkx(self) -> nx.DiGraph:
        """The underlying graph (read-only use)."""
        return self._g


def kahn_levels(graph: OpGraph) -> list[list[str]]:
    """Kahn's algorithm, batched: peel zero-indegree frontiers level by level.

    Returns the list of levels; ops within a level are mutually
    independent given all earlier levels have completed.
    """
    graph.validate()
    cached = graph._analysis_cache.get("kahn_levels")
    if cached is not None:
        return cached
    base_indegree, successors = graph.adjacency()
    indegree = dict(base_indegree)
    frontier = sorted(n for n, d in indegree.items() if d == 0)
    levels: list[list[str]] = []
    while frontier:
        levels.append(frontier)
        nxt: list[str] = []
        for name in frontier:
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    nxt.append(succ)
        frontier = sorted(nxt)
    total = sum(len(level) for level in levels)
    if total != graph.num_ops:
        raise ScheduleError("graph has a cycle (Kahn did not consume all ops)")
    graph._analysis_cache["kahn_levels"] = levels
    return levels


def max_concurrency(graph: OpGraph) -> int:
    """Width of the widest Kahn level — Algorithm 3's inter-op estimate."""
    levels = kahn_levels(graph)
    return max((len(level) for level in levels), default=0)


def build_attention_graph(
    num_batches: int = 4,
    *,
    per_batch_work: dict[str, float] | None = None,
    bytes_per_op: float = 0.0,
    fine_grained: bool = False,
) -> OpGraph:
    """Decode-phase attention dependency graph (paper Figure 6).

    Per batch, the chain is::

        q_proj ─┐
        k_proj ─┼─> concat_kv ─> scores(QK^T) ─> softmax ─> context(PV) ─> out_proj
        v_proj ─┘

    with Q/K/V projections mutually independent (width 3 per batch).  The
    ``num_batches`` co-scheduled GPU batches of the zig-zag block are fully
    independent, so the overall width is ``3 * num_batches`` — 12 for the
    paper's 4-batch default, matching the inter-op optimum of Figure 5.

    ``fine_grained=True`` splits scores/softmax/context into per-half-head
    sub-ops, doubling the width — this is the *unbundled* graph the default
    PyTorch scheduler effectively runs (see :mod:`repro.parallel.bundling`).
    """
    if num_batches <= 0:
        raise ScheduleError("num_batches must be positive")
    work = {
        "q_proj": 1.0,
        "k_proj": 1.0,
        "v_proj": 1.0,
        "concat_kv": 0.1,
        "scores": 2.0,
        "softmax": 0.5,
        "context": 2.0,
        "out_proj": 1.0,
    }
    if per_batch_work:
        work.update(per_batch_work)
    graph = OpGraph()
    for b in range(num_batches):
        def add(op: str, deps: list[str], w: float | None = None) -> str:
            name = f"b{b}.{op}"
            graph.add_op(
                OpNode(
                    name=name,
                    work=work.get(op, 1.0) if w is None else w,
                    bytes_touched=bytes_per_op,
                    kind=op,
                ),
                deps=[f"b{b}.{d}" for d in deps],
            )
            return op

        if fine_grained:
            # Unbundled execution also splits each projection into two
            # half-hidden sub-ops (what PyTorch's scheduler sees when the
            # framework does not fuse), doubling the level-0 width.
            for proj in ("q_proj", "k_proj", "v_proj"):
                for half in (0, 1):
                    graph.add_op(
                        OpNode(f"b{b}.{proj}.{half}", work=work[proj] / 2,
                               bytes_touched=bytes_per_op / 2, kind=proj),
                        deps=[],
                    )
            graph.add_op(
                OpNode(f"b{b}.concat_kv", work=work["concat_kv"],
                       bytes_touched=bytes_per_op, kind="concat_kv"),
                deps=[f"b{b}.k_proj.{h}" for h in (0, 1)]
                + [f"b{b}.v_proj.{h}" for h in (0, 1)],
            )
        else:
            add("q_proj", [])
            add("k_proj", [])
            add("v_proj", [])
            add("concat_kv", ["k_proj", "v_proj"])
        if fine_grained:
            # Split the attention body into two half-head sub-ops each.
            for half in (0, 1):
                graph.add_op(
                    OpNode(f"b{b}.scores.{half}", work=work["scores"] / 2,
                           bytes_touched=bytes_per_op / 2, kind="scores"),
                    deps=[f"b{b}.q_proj.{half}", f"b{b}.concat_kv"],
                )
                graph.add_op(
                    OpNode(f"b{b}.softmax.{half}", work=work["softmax"] / 2,
                           bytes_touched=bytes_per_op / 2, kind="softmax"),
                    deps=[f"b{b}.scores.{half}"],
                )
                graph.add_op(
                    OpNode(f"b{b}.context.{half}", work=work["context"] / 2,
                           bytes_touched=bytes_per_op / 2, kind="context"),
                    deps=[f"b{b}.softmax.{half}", f"b{b}.concat_kv"],
                )
            graph.add_op(
                OpNode(f"b{b}.out_proj", work=work["out_proj"],
                       bytes_touched=bytes_per_op, kind="out_proj"),
                deps=[f"b{b}.context.0", f"b{b}.context.1"],
            )
        else:
            add("scores", ["q_proj", "concat_kv"])
            add("softmax", ["scores"])
            add("context", ["softmax", "concat_kv"])
            add("out_proj", ["context"])
    graph.validate()
    return graph
