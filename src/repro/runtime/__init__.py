"""Asynchronous execution runtime: op graphs, six tasks, event simulation.

This reproduces FlexGen's execution substrate that LM-Offload inherits
(paper Algorithm 1): a zig-zag block schedule in which six tasks per
(token, layer, batch) — ``load_weight``, ``store_activation``,
``store_cache``, ``load_cache``, ``load_activation``, ``compute`` — are
launched asynchronously and overlap, so per-layer decode latency is the max
of the six (Eq. 2).

:mod:`repro.runtime.graph` also provides the operator dependency graph of
the attention computation (paper Figure 6) and the Kahn-levels concurrency
analysis that Algorithm 3 uses to pick inter-op parallelism.
"""

from repro.runtime.graph import OpGraph, OpNode, kahn_levels, max_concurrency
from repro.runtime.graph import build_attention_graph
from repro.runtime.tasks import TaskKind, TaskCosts
from repro.runtime.events import EventSim, Resource
from repro.runtime.streams import StreamSet
from repro.runtime.executor import OverlappedExecutor, LayerTiming
from repro.runtime.pipeline import DecodeLoop, GenerationTrace

__all__ = [
    "OpGraph",
    "OpNode",
    "kahn_levels",
    "max_concurrency",
    "build_attention_graph",
    "TaskKind",
    "TaskCosts",
    "EventSim",
    "Resource",
    "StreamSet",
    "OverlappedExecutor",
    "LayerTiming",
    "DecodeLoop",
    "GenerationTrace",
]
