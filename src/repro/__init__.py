"""LM-Offload reproduction: performance model-guided LLM inference with
tensor offloading, quantization and parallelism control (IPDPS 2025).

Quick start::

    from repro import LMOffloadEngine, Workload, get_model, single_a100

    engine = LMOffloadEngine(single_a100())
    workload = Workload(get_model("opt-30b"), prompt_len=64, gen_len=32,
                        gpu_batch_size=64, num_gpu_batches=10)
    report = engine.run(workload)
    print(report.throughput, "tokens/s under policy", report.policy.describe())

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.hardware` — simulated platforms (A100 + Xeon, POWER9 + V100).
- :mod:`repro.models` — model zoo + executable NumPy transformer.
- :mod:`repro.quant` — group-wise quantization (real bit packing).
- :mod:`repro.offload` — tensor placement, transfer, policies, LP planner.
- :mod:`repro.runtime` — six-task overlapped schedule, op graphs, events.
- :mod:`repro.parallel` — CPU contention model + Algorithm 3 controller.
- :mod:`repro.perfmodel` — the paper's Eqs. 1-24.
- :mod:`repro.core` — LM-Offload engine (+ functional NumPy engine).
- :mod:`repro.baselines` — FlexGen and ZeRO-Inference.
- :mod:`repro.multigpu` — pipeline-parallel weak scaling.
- :mod:`repro.bench` — per-table/figure experiment runners.
"""

from repro.baselines import FlexGenEngine, SpecOffloadEngine, ZeroInferenceEngine
from repro.core import EngineConfig, FunctionalEngine, InferenceReport, LMOffloadEngine
from repro.hardware import Platform, power9_4xv100, single_a100, small_test_platform
from repro.models import ModelFootprint, Transformer, TransformerWeights, get_model
from repro.offload import OffloadPolicy
from repro.perfmodel import CostModel, CpuExecutionContext, HardwareParams, Workload
from repro.perfmodel.speculation import SpecConfig, SpecStepPricer
from repro.quant import QuantConfig, compress, decompress

__version__ = "1.0.0"

__all__ = [
    "FlexGenEngine",
    "SpecOffloadEngine",
    "ZeroInferenceEngine",
    "SpecConfig",
    "SpecStepPricer",
    "EngineConfig",
    "FunctionalEngine",
    "InferenceReport",
    "LMOffloadEngine",
    "Platform",
    "power9_4xv100",
    "single_a100",
    "small_test_platform",
    "ModelFootprint",
    "Transformer",
    "TransformerWeights",
    "get_model",
    "OffloadPolicy",
    "CostModel",
    "CpuExecutionContext",
    "HardwareParams",
    "Workload",
    "QuantConfig",
    "compress",
    "decompress",
    "__version__",
]
