"""Bundled, named chaos scenarios (`python -m repro chaos` runs these).

Every scenario is a pure function of ``(horizon_s, seed)``: windows sit
at fixed fractions of ``horizon_s``, and any stochastic structure (flap
timing) comes from the shared seeded-stream helper — same seed, same
schedule, byte for byte.  Pass the *serving makespan* you expect, not the
arrival horizon: the chaos bench uses each engine's fault-free makespan
so an offloaded engine that serves a 6 s trace over minutes still gets
fault windows its step boundaries actually sample.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.util.rng import seeded_rng


def _window(horizon_s: float, lo: float, hi: float) -> tuple[float, float]:
    """(start, duration) for the fractional window [lo, hi) of the horizon."""
    return lo * horizon_s, (hi - lo) * horizon_s


def pcie_degrade(horizon_s: float, seed: int = 0) -> FaultSchedule:
    """PCIe loses 60% of its bandwidth for the middle half of the run.

    The paper's placement is a function of the wire (Eqs. 3-8): losing
    the wire mid-run is the canonical "the hardware lied" event, and the
    one the acceptance criteria require LM-Offload to replan through.
    """
    start, dur = _window(horizon_s, 0.25, 0.75)
    return FaultSchedule(
        name="pcie-degrade",
        seed=seed,
        faults=(
            FaultSpec(FaultKind.PCIE_DEGRADE, start, dur, severity=0.6),
        ),
    )


def flaky_pcie(horizon_s: float, seed: int = 0) -> FaultSchedule:
    """Short seeded link flaps plus transient transfer errors.

    Flap windows are drawn from the seeded stream (count and placement
    vary with the seed) but never overlap by construction; a transient
    window over the middle half makes steps abort and retry.
    """
    rng = seeded_rng(seed, "faults", "flaky-pcie")
    faults: list[FaultSpec] = []
    t = 0.15 * horizon_s
    flap_len = max(0.01 * horizon_s, 1e-3)
    while t < 0.85 * horizon_s and len(faults) < 8:
        faults.append(
            FaultSpec(FaultKind.LINK_FLAP, float(t), flap_len, severity=0.95)
        )
        # Exponential gap, floored so consecutive flaps cannot overlap.
        t += flap_len + float(rng.exponential(0.12 * horizon_s)) + 1e-6
    start, dur = _window(horizon_s, 0.25, 0.75)
    faults.append(
        FaultSpec(FaultKind.TRANSIENT_ERROR, start, dur, severity=0.35)
    )
    return FaultSchedule(name="flaky-pcie", seed=seed, faults=tuple(faults))


def cpu_throttle(horizon_s: float, seed: int = 0) -> FaultSchedule:
    """Thermal throttling + half the cores taken offline mid-run.

    Algorithm 3's thread allocation is a function of core count and
    frequency; this scenario moves both at once.
    """
    start, dur = _window(horizon_s, 0.3, 0.8)
    return FaultSchedule(
        name="cpu-throttle",
        seed=seed,
        faults=(
            FaultSpec(FaultKind.CPU_THROTTLE, start, dur, severity=0.5),
            FaultSpec(FaultKind.CORE_LOSS, start, dur, severity=0.5),
        ),
    )


def mem_crunch(horizon_s: float, seed: int = 0) -> FaultSchedule:
    """Host memory pool shrinks 70% (co-tenant pressure) mid-run.

    Offloading engines park weights/KV in host memory; losing it is the
    fault that used to surface as `MemoryCapacityError` — now it must
    route through the memory prescreen and the degradation ladder.
    """
    start, dur = _window(horizon_s, 0.3, 0.8)
    return FaultSchedule(
        name="mem-crunch",
        seed=seed,
        faults=(
            FaultSpec(FaultKind.HOST_MEM_SHRINK, start, dur, severity=0.7),
        ),
    )


def gpu_brownout(horizon_s: float, seed: int = 0) -> FaultSchedule:
    """GPU clocks drop 60% (power cap) for the middle half of the run."""
    start, dur = _window(horizon_s, 0.25, 0.75)
    return FaultSchedule(
        name="gpu-brownout",
        seed=seed,
        faults=(
            FaultSpec(FaultKind.GPU_THROTTLE, start, dur, severity=0.6),
        ),
    )


def multi_fault(horizon_s: float, seed: int = 0) -> FaultSchedule:
    """Staggered compound failure: wire, then CPU, with flaky transfers."""
    pcie_start, pcie_dur = _window(horizon_s, 0.2, 0.6)
    cpu_start, cpu_dur = _window(horizon_s, 0.4, 0.9)
    err_start, err_dur = _window(horizon_s, 0.3, 0.7)
    return FaultSchedule(
        name="multi-fault",
        seed=seed,
        faults=(
            FaultSpec(FaultKind.PCIE_DEGRADE, pcie_start, pcie_dur, severity=0.5),
            FaultSpec(FaultKind.CPU_THROTTLE, cpu_start, cpu_dur, severity=0.4),
            FaultSpec(FaultKind.TRANSIENT_ERROR, err_start, err_dur, severity=0.25),
        ),
    )


SCENARIOS: dict[str, Callable[[float, int], FaultSchedule]] = {
    "pcie-degrade": pcie_degrade,
    "flaky-pcie": flaky_pcie,
    "cpu-throttle": cpu_throttle,
    "mem-crunch": mem_crunch,
    "gpu-brownout": gpu_brownout,
    "multi-fault": multi_fault,
}

#: Canonical sweep order for consumers that iterate every bundled
#: scenario (the chaos bench and the faulted drift audit).  An explicit
#: tuple — not dict iteration order — so serialized artifacts stay
#: byte-stable even if the registry above is reorganized.
SCENARIO_SWEEP_ORDER: tuple[str, ...] = (
    "pcie-degrade",
    "flaky-pcie",
    "cpu-throttle",
    "mem-crunch",
    "gpu-brownout",
    "multi-fault",
)
assert set(SCENARIO_SWEEP_ORDER) == set(SCENARIOS)


def make_scenario(name: str, horizon_s: float, seed: int = 0) -> FaultSchedule:
    """Build a bundled scenario by name."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown chaos scenario {name!r}; bundled scenarios: "
            + ", ".join(sorted(SCENARIOS))
        ) from None
    return builder(horizon_s, seed)
