"""Retry semantics: capped exponential backoff with seeded jitter.

The serving simulator retries aborted steps under this policy.  Delays
are **monotone non-decreasing in the attempt number and capped** — the
jitter multiplies *inside* the cap, so a jittered early delay can never
exceed a later one (property-tested in ``tests/test_faults.py``):

    delay(k, u) = min(cap, base * 2^(k-1) * (1 + jitter * u)),  u in [0, 1)

An optional ``max_elapsed_s`` cap bounds the *total* retry horizon: when
set, a delay is further clamped so ``elapsed + delay <= max_elapsed_s``
(floored at zero — the per-request budget still terminates the loop).
The serving layer wires a request deadline through this, so backoff can
never schedule a retry past the point where the request would be dropped
anyway — the wait that the drop check would charge is not taken first.

Per-request budgets are separate from the backoff sequence: the backoff
exponent tracks *consecutive system-level* aborts (and resets on any
successful step), while each request carries its own lifetime abort count
against ``retry_limit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, RetryExhaustedError


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape + per-request budget."""

    base_s: float = 0.5
    cap_s: float = 8.0
    jitter: float = 0.1
    limit: int = 3
    #: Total elapsed-time ceiling for the backoff sequence: ``delay`` is
    #: additionally clamped so ``elapsed_s + delay`` never exceeds this.
    #: ``None`` (the default) disables the cap.
    max_elapsed_s: float | None = None

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ConfigError(
                f"retry policy: backoff base must be > 0 (got {self.base_s}); "
                "a zero base retries in a tight loop and the simulated clock "
                "never advances past a persistent fault"
            )
        if self.cap_s < self.base_s:
            raise ConfigError(
                f"retry policy: backoff cap ({self.cap_s}) must be >= base "
                f"({self.base_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"retry policy: jitter must be in [0, 1] (got {self.jitter})"
            )
        if self.limit < 0:
            raise ConfigError(
                f"retry policy: retry limit must be >= 0 (got {self.limit})"
            )
        if self.max_elapsed_s is not None and self.max_elapsed_s <= 0:
            raise ConfigError(
                f"retry policy: max_elapsed_s must be positive when set "
                f"(got {self.max_elapsed_s}); use None for no elapsed cap"
            )

    def delay(self, attempt: int, u: float = 0.0, elapsed_s: float = 0.0) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``u`` is the jitter draw in ``[0, 1)`` — pass a seeded uniform for
        reproducible jitter, 0 for the deterministic floor.  ``elapsed_s``
        is how long the oldest affected request has already been in flight;
        with ``max_elapsed_s`` set the delay is clamped so the total never
        exceeds the cap (and never below zero — a zero delay is safe
        because the per-request budget still terminates retrying).
        """
        if attempt < 1:
            raise ConfigError(f"retry attempt must be >= 1 (got {attempt})")
        raw = self.base_s * (2.0 ** (attempt - 1)) * (1.0 + self.jitter * u)
        capped = min(self.cap_s, raw)
        if self.max_elapsed_s is not None:
            capped = min(capped, max(0.0, self.max_elapsed_s - elapsed_s))
        return capped

    def check_budget(self, rid: int, attempts: int) -> None:
        """Raise :class:`RetryExhaustedError` when ``attempts`` exceeds the
        per-request budget."""
        if attempts > self.limit:
            raise RetryExhaustedError(rid, attempts, self.limit)
