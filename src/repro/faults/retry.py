"""Retry semantics: capped exponential backoff with seeded jitter.

The serving simulator retries aborted steps under this policy.  Delays
are **monotone non-decreasing in the attempt number and capped** — the
jitter multiplies *inside* the cap, so a jittered early delay can never
exceed a later one (property-tested in ``tests/test_faults.py``):

    delay(k, u) = min(cap, base * 2^(k-1) * (1 + jitter * u)),  u in [0, 1)

Per-request budgets are separate from the backoff sequence: the backoff
exponent tracks *consecutive system-level* aborts (and resets on any
successful step), while each request carries its own lifetime abort count
against ``retry_limit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, RetryExhaustedError


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape + per-request budget."""

    base_s: float = 0.5
    cap_s: float = 8.0
    jitter: float = 0.1
    limit: int = 3

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ConfigError(
                f"retry policy: backoff base must be > 0 (got {self.base_s}); "
                "a zero base retries in a tight loop and the simulated clock "
                "never advances past a persistent fault"
            )
        if self.cap_s < self.base_s:
            raise ConfigError(
                f"retry policy: backoff cap ({self.cap_s}) must be >= base "
                f"({self.base_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"retry policy: jitter must be in [0, 1] (got {self.jitter})"
            )
        if self.limit < 0:
            raise ConfigError(
                f"retry policy: retry limit must be >= 0 (got {self.limit})"
            )

    def delay(self, attempt: int, u: float = 0.0) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``u`` is the jitter draw in ``[0, 1)`` — pass a seeded uniform for
        reproducible jitter, 0 for the deterministic floor.
        """
        if attempt < 1:
            raise ConfigError(f"retry attempt must be >= 1 (got {attempt})")
        raw = self.base_s * (2.0 ** (attempt - 1)) * (1.0 + self.jitter * u)
        return min(self.cap_s, raw)

    def check_budget(self, rid: int, attempts: int) -> None:
        """Raise :class:`RetryExhaustedError` when ``attempts`` exceeds the
        per-request budget."""
        if attempts > self.limit:
            raise RetryExhaustedError(rid, attempts, self.limit)
