"""Graceful-degradation ladder + fault-event bookkeeping.

When the drift watchdog detects that the effective platform has moved
beyond tolerance, the engine replans against the degraded specs.  If the
replan cannot cover the serving loop's batch ceiling any more, the loop
walks this ladder, applying progressively more drastic mitigations until
one plans — the order mirrors how a production offloading stack would
shed capability:

1. ``nominal``          — replan only; keep the configured batch ceiling.
2. ``shrink-batch``     — halve the ceiling (less KV/activation memory,
   shorter steps; cheapest lever, no quality impact).
3. ``aggressive-quant`` — constrain the policy search to quantized
   W/KV candidates only (trades accuracy headroom for memory/wire).
4. ``cpu-attention``    — force attention onto the CPU so the KV cache
   never crosses the degraded interconnect; quarter the ceiling.
5. ``backpressure``     — stop admitting; hold the queue until the
   platform recovers (or requests time out / are dropped INFEASIBLE).

Each transition is recorded in :class:`FaultStats`, which also tallies
aborts, backoffs, replans and shed requests for the metrics layer
(availability, degraded-time fraction) and the Chrome-trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DegradationRung:
    """One rung: which mitigations are in force."""

    name: str
    #: Divide the serving loop's configured batch ceiling by this.
    batch_divisor: int = 1
    #: Constrain the policy search to quantized W/KV candidates only.
    force_quant: bool = False
    #: Force CPU attention (KV never crosses the interconnect).
    force_cpu_attention: bool = False
    #: When False, admission stops entirely (backpressure).
    admit: bool = True


LADDER: tuple[DegradationRung, ...] = (
    DegradationRung("nominal"),
    DegradationRung("shrink-batch", batch_divisor=2),
    DegradationRung("aggressive-quant", batch_divisor=2, force_quant=True),
    DegradationRung(
        "cpu-attention",
        batch_divisor=4,
        force_quant=True,
        force_cpu_attention=True,
    ),
    DegradationRung(
        "backpressure",
        batch_divisor=4,
        force_quant=True,
        force_cpu_attention=True,
        admit=False,
    ),
)


@dataclass
class FaultStats:
    """Everything the fault layer did to one serving run (JSON-ready).

    Times are virtual-clock seconds; intervals are ``(start, end)``.
    """

    schedule_name: str
    #: Aborted steps: (start, end, kind, batch).
    aborts: list[tuple[float, float, str, int]] = field(default_factory=list)
    #: Backoff waits: (start, end, attempt).
    backoffs: list[tuple[float, float, int]] = field(default_factory=list)
    #: Replans: (t, cause, drift_vs_base).  cause is "drift" | "recovery".
    replans: list[tuple[float, str, float]] = field(default_factory=list)
    #: Ladder transitions: (t, from_rung, to_rung, reason).
    transitions: list[tuple[float, str, str, str]] = field(default_factory=list)
    #: Requests shed (requeued) because the running batch stopped fitting:
    #: (t, rid).
    sheds: list[tuple[float, int]] = field(default_factory=list)
    #: Wall-clock (virtual) seconds lost to aborted work + backoff waits.
    lost_s: float = 0.0
    #: Seconds spent with a degraded platform applied or a rung above
    #: nominal engaged.
    degraded_s: float = 0.0
    #: Rung in force when the run ended.
    final_rung: str = "nominal"

    @property
    def total_retries(self) -> int:
        return len(self.aborts)

    def availability(self, makespan_s: float) -> float:
        """Fraction of the run not lost to aborts/backoff."""
        if makespan_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.lost_s / makespan_s)

    def degraded_fraction(self, makespan_s: float) -> float:
        if makespan_s <= 0:
            return 0.0
        return min(1.0, self.degraded_s / makespan_s)

    def fill_registry(self, reg, makespan_s: float) -> None:
        """Record this run's fault bookkeeping into a metrics registry.

        ``reg`` is a :class:`~repro.obs.registry.MetricsRegistry`
        (duck-typed; faults stays import-light).  Series land under the
        ``faults.`` prefix so they compose with the serving series in one
        registry.
        """
        reg.counter("faults.aborted_steps").inc(len(self.aborts))
        reg.counter("faults.backoffs").inc(len(self.backoffs))
        reg.counter("faults.replans").inc(len(self.replans))
        for _, cause, _ in self.replans:
            reg.counter(f"faults.replans_by_cause.{cause}").inc()
        reg.counter("faults.rung_transitions").inc(len(self.transitions))
        reg.counter("faults.shed_requests").inc(len(self.sheds))
        for start, end, _ in self.backoffs:
            reg.histogram("faults.backoff_s").observe(end - start)
        reg.gauge("faults.lost_s").set(self.lost_s)
        reg.gauge("faults.availability").set(self.availability(makespan_s))
        reg.gauge("faults.degraded_time_fraction").set(
            self.degraded_fraction(makespan_s)
        )

    def to_dict(self, makespan_s: float) -> dict:
        return {
            "schedule": self.schedule_name,
            "aborted_steps": len(self.aborts),
            "backoffs": len(self.backoffs),
            "replans": len(self.replans),
            "replan_causes": [
                {"t_s": round(t, 6), "cause": cause, "drift": round(d, 6)}
                for t, cause, d in self.replans
            ],
            "rung_transitions": [
                {"t_s": round(t, 6), "from": a, "to": b, "reason": r}
                for t, a, b, r in self.transitions
            ],
            "shed_requests": len(self.sheds),
            "final_rung": self.final_rung,
            "lost_s": round(self.lost_s, 6),
            "availability": round(self.availability(makespan_s), 6),
            "degraded_time_fraction": round(
                self.degraded_fraction(makespan_s), 6
            ),
        }
