"""Fault injection + graceful degradation for the serving/hardware layers.

The paper's planner (and the `repro.serving` simulator built on it)
assumes the hardware description is frozen; this package makes that
assumption explicit and then lets you break it, deterministically:

* :mod:`spec` — :class:`FaultSpec`/:class:`FaultSchedule`: seeded,
  validated perturbation windows over virtual time (PCIe degradation,
  link flaps, CPU throttling/core loss, GPU throttling, host-memory
  shrinkage, transient transfer errors);
* :mod:`overlay` — non-destructive application of a schedule to a
  :class:`~repro.hardware.Platform` (``Platform.with_faults(schedule, t)``)
  plus the :func:`relative_drift` watchdog metric;
* :mod:`retry` — capped-exponential, seeded-jitter :class:`RetryPolicy`
  (monotone, capped, budget-checked);
* :mod:`degrade` — the degradation :data:`LADDER`
  (shrink batch -> quantize harder -> CPU attention -> backpressure) and
  the :class:`FaultStats` event record;
* :mod:`scenarios` — bundled named scenarios for ``python -m repro chaos``.

Replica-level kinds (``REPLICA_CRASH``/``REPLICA_RESTART``, grouped in
:data:`REPLICA_KINDS`) extend the vocabulary to whole-replica outages with
fault-domain correlation; only :mod:`repro.serving.fleet` consumes them.
"""

from repro.faults.degrade import LADDER, DegradationRung, FaultStats
from repro.faults.overlay import degraded_platform, relative_drift
from repro.faults.retry import RetryPolicy
from repro.faults.scenarios import SCENARIOS, make_scenario
from repro.faults.spec import (
    CAPABILITY_KINDS,
    REPLICA_KINDS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    zero_schedule,
)

__all__ = [
    "CAPABILITY_KINDS",
    "REPLICA_KINDS",
    "DegradationRung",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "FaultStats",
    "LADDER",
    "RetryPolicy",
    "SCENARIOS",
    "degraded_platform",
    "make_scenario",
    "relative_drift",
    "zero_schedule",
]
