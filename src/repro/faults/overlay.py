"""Non-destructive fault overlay: base platform + faults -> degraded view.

The overlay never mutates the base :class:`~repro.hardware.Platform` or
its frozen :class:`DeviceSpec`/:class:`Link` records — it builds a new
platform whose specs carry the composed degradation at one instant.  The
same base platform therefore serves every instant of a simulation, and
recovery is just "stop overlaying".

Composition rules (per device/link, multiplicative across kinds):

* ``PCIE_DEGRADE`` / ``LINK_FLAP``  -> link ``bandwidth  *= (1 - severity)``
* ``CPU_THROTTLE``                  -> cpu ``freq, peak_flops *= (1 - severity)``
* ``CORE_LOSS``                     -> cpu ``cores = max(1, floor(cores * (1 - severity)))``
  (and ``peak_flops`` scales with the surviving-core fraction)
* ``GPU_THROTTLE``                  -> gpu ``peak_flops, freq *= (1 - severity)``
* ``HOST_MEM_SHRINK``               -> cpu ``memory_capacity *= (1 - severity)``

``TRANSIENT_ERROR`` faults change behaviour (step aborts), not specs, and
are ignored here — as are the replica-level kinds (``REPLICA_CRASH`` /
``REPLICA_RESTART``), which take whole replicas out of a fleet rather
than degrading any device.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

from repro.errors import FaultError
from repro.faults.spec import (
    CAPABILITY_KINDS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)
from repro.hardware.platform import Platform
from repro.perfmodel.notation import HardwareParams


def _surviving(severity: float) -> float:
    return 1.0 - severity


def _resolve_links(base: Platform, fault: FaultSpec) -> list[int]:
    """Indices into ``base.links`` that ``fault`` targets."""
    if fault.link is not None:
        a, b = fault.link
        idx = [i for i, l in enumerate(base.links) if l.connects(a, b)]
        if not idx:
            raise FaultError(
                fault.kind.value,
                f"no link between {a!r} and {b!r} on platform {base.name!r}",
            )
        return idx
    # Default: every CPU<->GPU link (the offloading wire).
    cpu = base.cpu.name
    gpus = {g.name for g in base.gpus}
    idx = [
        i
        for i, l in enumerate(base.links)
        if (l.src == cpu and l.dst in gpus) or (l.dst == cpu and l.src in gpus)
    ]
    if not idx:
        raise FaultError(
            fault.kind.value, f"platform {base.name!r} has no CPU<->GPU link"
        )
    return idx


def _resolve_devices(base: Platform, fault: FaultSpec) -> list[str]:
    """Device names that ``fault`` targets."""
    if fault.device is not None:
        if fault.device not in base.devices:
            raise FaultError(
                fault.kind.value,
                f"unknown device {fault.device!r} on platform {base.name!r}",
            )
        return [fault.device]
    if fault.kind is FaultKind.GPU_THROTTLE:
        return [g.name for g in base.gpus]
    return [base.cpu.name]


def degraded_platform(
    base: Platform,
    faults: FaultSchedule | Iterable[FaultSpec],
    t: float,
) -> Platform:
    """The platform as the faults leave it at virtual time ``t``.

    Returns ``base`` itself (same object) when no capability fault is
    active — callers can use identity to detect "nothing changed".
    """
    if isinstance(faults, FaultSchedule):
        active = faults.capability_faults(t)
    else:
        active = [
            f for f in faults if f.active(t) and f.kind in CAPABILITY_KINDS
        ]
    if not active:
        return base

    dev_scale: dict[str, dict[str, float]] = {}
    link_scale: dict[int, float] = {}

    def scale(dev: str, field_name: str, factor: float) -> None:
        dev_scale.setdefault(dev, {})[field_name] = (
            dev_scale.get(dev, {}).get(field_name, 1.0) * factor
        )

    for fault in active:
        keep = _surviving(fault.severity)
        if fault.kind in (FaultKind.PCIE_DEGRADE, FaultKind.LINK_FLAP):
            for i in _resolve_links(base, fault):
                link_scale[i] = link_scale.get(i, 1.0) * keep
        elif fault.kind is FaultKind.CPU_THROTTLE:
            for dev in _resolve_devices(base, fault):
                scale(dev, "freq", keep)
                scale(dev, "peak_flops", keep)
        elif fault.kind is FaultKind.CORE_LOSS:
            for dev in _resolve_devices(base, fault):
                scale(dev, "cores", keep)
                scale(dev, "peak_flops", keep)
        elif fault.kind is FaultKind.GPU_THROTTLE:
            for dev in _resolve_devices(base, fault):
                scale(dev, "peak_flops", keep)
                scale(dev, "freq", keep)
        elif fault.kind is FaultKind.HOST_MEM_SHRINK:
            for dev in _resolve_devices(base, fault):
                scale(dev, "memory_capacity", keep)

    devices = {}
    for name, spec in base.devices.items():
        factors = dev_scale.get(name)
        if not factors:
            devices[name] = spec
            continue
        changes: dict = {}
        for field_name, factor in factors.items():
            if field_name == "cores":
                changes["cores"] = max(1, math.floor(spec.cores * factor))
            elif field_name == "memory_capacity":
                changes["memory_capacity"] = max(
                    1, math.floor(spec.memory_capacity * factor)
                )
            else:
                changes[field_name] = getattr(spec, field_name) * factor
        devices[name] = dataclasses.replace(spec, **changes)

    links = [
        dataclasses.replace(link, bandwidth=link.bandwidth * link_scale[i])
        if i in link_scale
        else link
        for i, link in enumerate(base.links)
    ]
    return Platform(
        name=f"{base.name}+faults",
        devices=devices,
        links=links,
        cache=base.cache,
    )


def capability_windows(
    schedule: FaultSchedule,
) -> list[tuple[float, float, tuple[FaultSpec, ...]]]:
    """Maximal ``[start, end)`` segments with a constant, non-empty set of
    active capability faults.

    The schedule is piecewise-constant between its change points, so each
    returned window is one degraded-platform regime: evaluating the
    overlay anywhere inside it yields the same platform.  Windows are
    sorted by start time; transient-only segments (no capability fault)
    are omitted — they do not change the platform the performance model
    prices.  The faulted drift audit sweeps these windows.
    """
    points = schedule.change_points()
    out: list[tuple[float, float, tuple[FaultSpec, ...]]] = []
    for a, b in zip(points, points[1:]):
        mid = (a + b) / 2.0
        active = tuple(schedule.capability_faults(mid))
        if active:
            out.append((a, b, active))
    return out


def fault_signature(active: Iterable[FaultSpec]) -> tuple:
    """Order-independent identity of a set of capability faults.

    Two windows with equal signatures degrade the platform identically
    (same kinds, severities and targets), so a sweep can price one
    representative and tally the occurrences.
    """
    return tuple(
        sorted(
            (f.kind.value, f.severity, f.device or "", tuple(f.link or ()))
            for f in active
        )
    )


#: HardwareParams fields the drift metric compares (rates and capacities
#: the performance model actually consumes).
_DRIFT_FIELDS = (
    "gpu_flops",
    "gpu_mem_bdw",
    "gpu_freq",
    "cpu_flops",
    "cpu_mem_bdw",
    "cpu_freq",
    "pcie_bdw",
    "disk_bdw",
    "gpu_mem_capacity",
    "cpu_mem_capacity",
)


def relative_drift(reference: HardwareParams, observed: HardwareParams) -> float:
    """Largest relative deviation of any modelled rate/capacity.

    ``0.0`` means identical hardware; ``0.6`` means some rate lost (or
    gained) 60% relative to the reference.  This is the watchdog's
    tolerance metric: replanning triggers when the effective platform
    drifts beyond ``ServingConfig.drift_tolerance`` from the one the
    current plan was computed against.
    """
    worst = 0.0
    for name in _DRIFT_FIELDS:
        ref = getattr(reference, name)
        obs = getattr(observed, name)
        if ref > 0:
            worst = max(worst, abs(obs - ref) / ref)
    return worst
