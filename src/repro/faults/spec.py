"""Fault specifications: seeded, deterministic perturbations over virtual time.

A :class:`FaultSpec` is one perturbation window — *what* degrades, *when*,
*how badly*.  A :class:`FaultSchedule` is a validated, frozen collection of
them plus the seed that generated any stochastic structure (e.g. flap
timings).  Schedules are pure data: applying one to a platform never
mutates the base specs (see :mod:`repro.faults.overlay`), and the same
schedule replayed against the same trace produces byte-identical results.

Severity conventions (all in ``[0, 1]``):

* capability faults (``PCIE_DEGRADE``, ``LINK_FLAP``, ``CPU_THROTTLE``,
  ``CORE_LOSS``, ``GPU_THROTTLE``, ``HOST_MEM_SHRINK``) — the *fraction of
  the resource lost*: severity 0.6 on a 32 GB/s link leaves 12.8 GB/s;
* ``TRANSIENT_ERROR`` — the *per-step abort probability* while the window
  is active (drawn from the simulator's seeded stream, so runs replay);
* replica faults (``REPLICA_CRASH``, ``REPLICA_RESTART``) — severity is
  ignored (use 1.0 by convention): the window *is* the outage.  A crash
  destroys the replica's in-flight batch and KV state at ``start_s`` and
  holds it down until ``end_s``; a restart drains gracefully (running
  work completes, queued work migrates) over the same window.  These
  kinds only make sense to a fleet (:mod:`repro.serving.fleet`); the
  single-engine simulator rejects schedules containing them.

Replica-level faults may carry a ``domain`` label: a fleet applies the
window to *every* replica whose ``fault_domain`` matches (correlated
failure — one rack, one PDU), or to the whole fleet when ``domain`` is
``None``.

Faults within a schedule may overlap freely across kinds/targets; two
faults of the *same kind on the same target* with overlapping windows are
rejected at construction (their composition would be ambiguous — merge
them into one window instead).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.errors import ConfigError


class FaultKind(enum.Enum):
    """What a fault degrades."""

    PCIE_DEGRADE = "pcie_degrade"      # link bandwidth loss
    LINK_FLAP = "link_flap"            # near-total link bandwidth loss
    CPU_THROTTLE = "cpu_throttle"      # CPU frequency + FLOPs loss
    CORE_LOSS = "core_loss"            # CPU cores taken offline
    GPU_THROTTLE = "gpu_throttle"      # GPU FLOPs/frequency loss
    HOST_MEM_SHRINK = "host_mem_shrink"  # host memory pool shrinkage
    TRANSIENT_ERROR = "transient_error"  # probabilistic step aborts
    REPLICA_CRASH = "replica_crash"      # replica dies; batch + KV lost
    REPLICA_RESTART = "replica_restart"  # graceful drain + down window


#: Kinds that change hardware capability (and hence the performance model).
CAPABILITY_KINDS = frozenset(
    {
        FaultKind.PCIE_DEGRADE,
        FaultKind.LINK_FLAP,
        FaultKind.CPU_THROTTLE,
        FaultKind.CORE_LOSS,
        FaultKind.GPU_THROTTLE,
        FaultKind.HOST_MEM_SHRINK,
    }
)

#: Kinds that take a whole replica out rather than degrading its hardware.
#: Only the fleet simulator consumes these; single-engine schedules reject
#: them (a lone :class:`~repro.serving.ServingSimulator` has nowhere to
#: fail over to, so silently ignoring the window would misreport results).
REPLICA_KINDS = frozenset({FaultKind.REPLICA_CRASH, FaultKind.REPLICA_RESTART})


@dataclass(frozen=True)
class FaultSpec:
    """One fault window.

    Parameters
    ----------
    kind:
        What degrades.
    start_s, duration_s:
        Window ``[start_s, start_s + duration_s)`` in virtual seconds.
    severity:
        Fraction of the resource lost (capability kinds) or per-step abort
        probability (``TRANSIENT_ERROR``); always in ``[0, 1]``.
    device:
        Target device name for device kinds (default: the platform's CPU
        for CPU/memory kinds, every GPU for ``GPU_THROTTLE``).
    link:
        ``(end_a, end_b)`` for link kinds (default: every CPU<->GPU link).
    domain:
        Fault-domain label for fleet-level kinds: the fleet applies the
        window to every replica whose ``fault_domain`` matches (``None``
        hits the whole fleet).  Also honoured on ``TRANSIENT_ERROR`` in
        fleet schedules; meaningless (and rejected) on capability kinds.
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    severity: float
    device: str | None = None
    link: tuple[str, str] | None = None
    domain: str | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError(
                f"fault {self.kind.value}: start_s must be >= 0 "
                f"(got {self.start_s}); faults live on the simulator's "
                "virtual clock, which starts at 0"
            )
        if self.duration_s <= 0:
            raise ConfigError(
                f"fault {self.kind.value}: duration_s must be > 0 "
                f"(got {self.duration_s}); to disable a fault, omit it "
                "from the schedule rather than zeroing its window"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise ConfigError(
                f"fault {self.kind.value}: severity must be in [0, 1] "
                f"(got {self.severity}); severity is the fraction of the "
                "resource lost (or the abort probability for "
                "transient_error), not a multiplier"
            )
        if self.kind is FaultKind.CORE_LOSS and self.severity >= 1.0:
            raise ConfigError(
                "fault core_loss: severity must be < 1 (at least one core "
                "must survive; use host_mem_shrink + cpu_throttle to model "
                "a dead host)"
            )
        if self.link is not None and len(self.link) != 2:
            raise ConfigError(
                f"fault {self.kind.value}: link must be a (src, dst) pair"
            )
        if self.kind in REPLICA_KINDS and (
            self.device is not None or self.link is not None
        ):
            raise ConfigError(
                f"fault {self.kind.value}: replica-level faults target a "
                "fault domain (or the whole fleet), not a device or link; "
                "use the domain field"
            )
        if self.domain is not None and self.kind in CAPABILITY_KINDS:
            raise ConfigError(
                f"fault {self.kind.value}: capability faults cannot carry a "
                "fault-domain label — model per-replica hardware degradation "
                "statically via ReplicaSpec.degradation instead"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, t: float) -> bool:
        """Is this fault in effect at virtual time ``t``?"""
        return self.start_s <= t < self.end_s

    @property
    def target_key(self) -> tuple:
        """Identity used for the same-kind overlap check."""
        link = tuple(sorted(self.link)) if self.link else None
        return (self.kind.value, self.device, link, self.domain)

    def to_dict(self) -> dict:
        doc: dict = {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "severity": self.severity,
        }
        if self.device is not None:
            doc["device"] = self.device
        if self.link is not None:
            doc["link"] = list(self.link)
        if self.domain is not None:
            doc["domain"] = self.domain
        return doc


@dataclass(frozen=True)
class FaultSchedule:
    """A named, validated set of fault windows (plus the generating seed).

    The schedule is piecewise-constant: the set of active faults only
    changes at window starts/ends, which :meth:`change_points` exposes so
    consumers (the serving simulator's watchdog) can cache the current
    segment instead of re-deriving the overlay every step.
    """

    name: str
    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        by_target: dict[tuple, list[FaultSpec]] = {}
        for f in self.faults:
            by_target.setdefault(f.target_key, []).append(f)
        for target, group in by_target.items():
            group = sorted(group, key=lambda f: (f.start_s, f.end_s))
            for a, b in zip(group, group[1:]):
                if b.start_s < a.end_s:
                    raise ConfigError(
                        f"fault schedule {self.name!r}: two {target[0]} "
                        f"faults on the same target overlap "
                        f"([{a.start_s:g}, {a.end_s:g}) and "
                        f"[{b.start_s:g}, {b.end_s:g})); merge them into "
                        "one window — their composition is ambiguous"
                    )

    def __len__(self) -> int:
        return len(self.faults)

    # -- time structure ----------------------------------------------------

    def change_points(self) -> list[float]:
        """Sorted distinct times at which the active-fault set changes."""
        points = {f.start_s for f in self.faults} | {f.end_s for f in self.faults}
        return sorted(points)

    def next_change_after(self, t: float) -> float | None:
        """The first change point strictly after ``t`` (None when none)."""
        for p in self.change_points():
            if p > t:
                return p
        return None

    def segment_key(self, t: float) -> tuple[int, ...]:
        """Indices of the faults active at ``t`` (the piecewise segment id)."""
        return tuple(i for i, f in enumerate(self.faults) if f.active(t))

    # -- queries -----------------------------------------------------------

    def active(self, t: float) -> list[FaultSpec]:
        return [f for f in self.faults if f.active(t)]

    def capability_faults(self, t: float) -> list[FaultSpec]:
        """Active faults that change hardware capability at ``t``."""
        return [f for f in self.active(t) if f.kind in CAPABILITY_KINDS]

    def replica_faults(self) -> list[FaultSpec]:
        """Every replica-level (crash/restart) window in the schedule."""
        return [f for f in self.faults if f.kind in REPLICA_KINDS]

    @property
    def has_replica_faults(self) -> bool:
        return any(f.kind in REPLICA_KINDS for f in self.faults)

    def transient_abort_probability(self, t: float) -> float:
        """Combined per-step abort probability at ``t``.

        Independent transient faults compose as ``1 - prod(1 - p_i)``.
        """
        survive = 1.0
        for f in self.active(t):
            if f.kind is FaultKind.TRANSIENT_ERROR:
                survive *= 1.0 - f.severity
        return 1.0 - survive

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        if not self.faults:
            return f"{self.name}: no faults"
        kinds: dict[str, int] = {}
        for f in self.faults:
            kinds[f.kind.value] = kinds.get(f.kind.value, 0) + 1
        span = (
            f"[{min(f.start_s for f in self.faults):g}, "
            f"{max(f.end_s for f in self.faults):g})s"
        )
        parts = ", ".join(f"{n}x {k}" for k, n in sorted(kinds.items()))
        return f"{self.name}: {parts} over {span}"


def zero_schedule(name: str = "no-faults") -> FaultSchedule:
    """An empty schedule — the fault layer's identity element.

    A simulator given this schedule takes the exact fault-free code path
    and reproduces the fault-free metrics byte for byte (asserted in
    ``tests/test_chaos_serving.py``).
    """
    return FaultSchedule(name=name, faults=())
