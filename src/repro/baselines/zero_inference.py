"""ZeRO-Inference baseline (Aminabadi et al., SC'22) on the shared substrate.

Per the paper's §5.1 configuration: ZeRO-Inference "does not support
partial tensor-offloading" — each tensor class is either fully on GPU or
fully offloaded.  The evaluated setting keeps **all weights GPU-resident
in 4-bit** (its default quantization) and **offloads the whole KV cache**
to host memory, streaming it through the GPU for attention.  It has no
zig-zag blocking, so batch sizes are limited by what fits alongside the
resident weights — the paper reports ~24x smaller batches than
LM-Offload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import InferenceReport
from repro.errors import PolicyError
from repro.hardware.platform import Platform
from repro.offload.policy import OffloadPolicy
from repro.parallel.speedup import ContentionModel
from repro.parallel.topology import CpuTopology
from repro.perfmodel.constants import EngineCalibration
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.quant.config import QuantConfig


@dataclass
class ZeroInferenceEngine:
    """ZeRO-Inference: whole-tensor offloading, 4-bit resident weights."""

    platform: Platform
    calibration: EngineCalibration = field(
        default_factory=EngineCalibration.deepspeed_defaults
    )
    max_batch: int = 64
    name: str = "zero-inference"

    def __post_init__(self) -> None:
        self._degradation = None
        self._rebuild()

    def _rebuild(self) -> None:
        self.hw = HardwareParams.from_platform(self.platform)
        self.topology = CpuTopology.from_device(self.platform.cpu)
        self.contention = ContentionModel(self.topology, self.platform.cache)
        self.ctx = CpuExecutionContext.pytorch_default(self.topology, self.contention)
        # DeepSpeed streams through pre-pinned buffers: no staging limits.
        self.ctx.io_staging_threads = {}
        self.quant = QuantConfig(bits=4, group_size=64)
        self._plan_memo: dict[Workload, tuple] = {}

    def retarget(self, platform: Platform) -> None:
        """Re-derive everything from a (degraded) platform; drops the
        plan memo so the next request replans against the new specs."""
        self.platform = platform
        self._rebuild()

    def set_degradation(self, rung) -> None:
        """Degradation hook (uniform engine interface).

        ZeRO-Inference already runs W4 resident weights and streams the
        whole KV cache, so the quant/attention rungs are inert; only the
        batch-shrink/backpressure mechanics (owned by the serving loop)
        apply.  The memo is still dropped so replans see the rung."""
        self._degradation = rung
        self._plan_memo = {}

    def _policy(self, batch: int) -> OffloadPolicy:
        return OffloadPolicy(
            wg=1.0,               # whole weight tensor on GPU...
            cg=0.0,               # ...whole KV cache off GPU,
            hg=1.0,               # activations stay on GPU,
            attention_on_cpu=False,  # attention on GPU over the streamed cache
            weight_quant=self.quant,
            kv_quant=None,
            quantize_resident_weights=True,
            gpu_batch_size=batch,
            num_gpu_batches=1,    # no zig-zag blocking
        )

    def plan(self, workload: Workload, batch: int | None = None) -> OffloadPolicy:
        """Largest power-of-two batch (<= max_batch) that fits in memory.

        ``batch`` forces a specific size (used by the Table 3 harness to
        replicate the paper's measured ZeRO-Inference configurations).
        """
        if batch is not None:
            policy = self._policy(batch)
            CostModel(
                workload.with_batches(batch, 1), policy, self.hw, self.ctx,
                self.calibration,
            ).check_feasible()
            return policy
        batch = self.max_batch
        while batch >= 1:
            trial = workload.with_batches(batch, 1)
            policy = self._policy(batch)
            try:
                CostModel(
                    trial, policy, self.hw, self.ctx, self.calibration
                ).check_feasible()
                return policy
            except PolicyError:
                batch //= 2
        raise PolicyError(
            f"ZeRO-Inference cannot fit {workload.model.name} at any batch size"
        )

    def plan_cached(
        self, workload: Workload
    ) -> tuple[OffloadPolicy, CpuExecutionContext, None]:
        """Planned-step costing hook.

        ZeRO-Inference has no zig-zag blocking, so the workload's whole
        block runs as a single batch: the returned policy has
        ``num_gpu_batches=1`` and ``gpu_batch_size == block_size`` (raises
        :class:`PolicyError` when that batch does not fit).
        """
        hit = self._plan_memo.get(workload)
        if hit is None:
            block = workload.block_size
            policy = self.plan(workload.with_batches(block, 1), batch=block)
            hit = self._plan_memo[workload] = (policy, self.ctx, None)
        return hit

    def planned_cost_model(self, workload: Workload) -> CostModel:
        policy, ctx, _ = self.plan_cached(workload)
        trial = workload.with_batches(policy.gpu_batch_size, 1)
        return CostModel(trial, policy, self.hw, ctx, self.calibration)

    def run(self, workload: Workload, batch: int | None = None) -> InferenceReport:
        policy = self.plan(workload, batch=batch)
        trial = workload.with_batches(policy.gpu_batch_size, 1)
        model = CostModel(trial, policy, self.hw, self.ctx, self.calibration)
        return InferenceReport(
            engine=self.name,
            workload=trial,
            policy=policy,
            breakdown=model.breakdown(),
            gpu_bytes=model.gpu_bytes_required(),
            cpu_bytes=model.cpu_bytes_required(),
            parallelism=None,
        )
