"""SpecOffload-style speculative decoding engine on the shared substrate.

The fourth engine.  Planning is *exactly* LM-Offload's two-pass search —
speculation changes nothing about placement, quantization or thread
allocation, so :class:`SpecOffloadEngine` inherits the whole planning
stack (``plan``/``plan_cached``/``retarget``/``set_degradation``) from
:class:`~repro.core.LMOffloadEngine` unchanged.  What it adds is the
**step-pricer hook**: any oracle that prices decode steps for this
engine (``StepCostOracle`` in serving, fleet, chaos and the drift
audits) passes the planned cost model through :meth:`step_pricer`, and
the returned :class:`~repro.perfmodel.speculation.SpecStepPricer`
transforms each step's price into the expected per-token time under
draft-tree speculation — draft compute hidden in the PCIe transfer
window, one batched verify pass, ``1 + E[accepted]`` tokens out.

With speculation disabled (``tree_size=1``) the hook returns ``None``
and every driver takes the identical code path to LM-Offload byte for
byte (the degenerate-parity tests pin this across the scheduler x trace
matrix).

Fault interplay comes for free: ``retarget``/``set_degradation`` rebuild
the same structures as LM-Offload, and the pricer reads the (possibly
degraded) PCIe bandwidth through the planned cost model — a degraded
link inflates the transfer terms the speculation gain divides into, so
the tokens/s benefit shrinks exactly as the metamorphic tests demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import LMOffloadEngine
from repro.perfmodel.latency import CostModel
from repro.perfmodel.speculation import SpecConfig, SpecStepPricer


@dataclass
class SpecOffloadEngine(LMOffloadEngine):
    """LM-Offload planning + speculative decode pricing (paper: SpecOffload).

    ``spec`` carries the TriForce-style knob set (tree size/width,
    acceptance rate ``alpha``, draft cost ratio, KV-retrieval budget).
    """

    name: str = "spec-offload"
    spec: SpecConfig = field(default_factory=SpecConfig)

    def step_pricer(self, model: CostModel) -> SpecStepPricer | None:
        """The oracle's speculative pricing hook.

        ``None`` when speculation is disabled — callers then keep the
        base price untouched (bitwise), which is what makes the
        ``tree_size=1`` engine indistinguishable from LM-Offload.
        """
        if not self.spec.enabled:
            return None
        return SpecStepPricer(model, self.spec)

    def speculation_summary(self, model: CostModel, token_idx: int = 0) -> dict:
        """Price one decode step with and without speculation (bench/docs
        introspection; per-iteration seconds, multiply by ``l x k`` for
        wall time)."""
        costs = model.decode_task_costs(token_idx)
        base = CostModel.step_seconds(costs)
        pricer = self.step_pricer(model)
        if pricer is None:
            return {
                "base_s": base, "spec_s": base, "speedup": 1.0,
                "chosen_depth": 0, "tokens_per_step": 1.0,
            }
        return pricer.summary(token_idx, costs, base)
