"""Baseline systems re-implemented on the same substrate (paper §5.1).

* :class:`FlexGenEngine` — zig-zag block schedule with LP placement search
  but **no quantization-awareness** (its search never considers the codec
  cost/benefit) and **default PyTorch threading**.
* :class:`ZeroInferenceEngine` — ZeRO-Inference's all-or-nothing
  offloading: all weights GPU-resident in 4-bit, KV cache fully offloaded
  and streamed, small batches, no zig-zag blocking.
* :class:`SpecOffloadEngine` — LM-Offload planning plus SpecOffload-style
  speculative decoding: a draft tree hidden in the PCIe transfer window,
  one batched verify pass, ``1 + E[accepted]`` tokens per step (priced
  through the ``step_pricer`` oracle hook).
"""

from repro.baselines.flexgen import FlexGenEngine
from repro.baselines.spec_offload import SpecOffloadEngine
from repro.baselines.zero_inference import ZeroInferenceEngine

__all__ = ["FlexGenEngine", "SpecOffloadEngine", "ZeroInferenceEngine"]
