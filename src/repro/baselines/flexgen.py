"""FlexGen baseline (Sheng et al., ICML'23) on the shared substrate.

What it shares with LM-Offload: the zig-zag block schedule, the six
overlapped tasks, the LP placement search over wg/cg/hg and the attention
placement choice.

What it lacks (the paper's §2.2 critique): a model of quantization
overhead/benefit — its search runs with quantization off — and any
thread-level parallelism control — it inherits PyTorch defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import InferenceReport
from repro.hardware.platform import Platform
from repro.offload.planner import PolicyPlanner
from repro.offload.policy import OffloadPolicy
from repro.parallel.speedup import ContentionModel
from repro.parallel.topology import CpuTopology
from repro.perfmodel.constants import EngineCalibration
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload


@dataclass
class FlexGenEngine:
    """FlexGen: LP placement, no quant-awareness, default threading."""

    platform: Platform
    calibration: EngineCalibration = field(
        default_factory=EngineCalibration.paper_defaults
    )
    name: str = "flexgen"

    def __post_init__(self) -> None:
        self._degradation = None
        self._rebuild()

    def _rebuild(self) -> None:
        self.hw = HardwareParams.from_platform(self.platform)
        self.topology = CpuTopology.from_device(self.platform.cpu)
        self.contention = ContentionModel(self.topology, self.platform.cache)
        self.ctx = CpuExecutionContext.pytorch_default(self.topology, self.contention)
        self._plan_memo: dict[Workload, tuple] = {}

    def retarget(self, platform: Platform) -> None:
        """Re-derive everything from a (degraded) platform; drops the
        plan memo so the next request replans against the new specs."""
        self.platform = platform
        self._rebuild()

    def set_degradation(self, rung) -> None:
        """Degradation hook (uniform engine interface).

        FlexGen has no quantization model, so ``force_quant`` is inert —
        the honest reproduction of its §2.2 gap; ``force_cpu_attention``
        does apply (its search has the attention placement choice).
        """
        self._degradation = rung
        self._plan_memo = {}

    def plan(self, workload: Workload) -> OffloadPolicy:
        rung = self._degradation
        allow_gpu_attention = not (rung is not None and rung.force_cpu_attention)
        planner = PolicyPlanner(
            hw=self.hw,
            cpu_ctx=self.ctx,
            quant_aware=False,
            allow_gpu_attention=allow_gpu_attention,
        )
        policy, _ = planner.search(workload)
        return policy

    def plan_cached(
        self, workload: Workload
    ) -> tuple[OffloadPolicy, CpuExecutionContext, None]:
        """Planned-step costing hook (same shape as LMOffloadEngine's)."""
        hit = self._plan_memo.get(workload)
        if hit is None:
            hit = self._plan_memo[workload] = (self.plan(workload), self.ctx, None)
        return hit

    def planned_cost_model(self, workload: Workload) -> CostModel:
        policy, ctx, _ = self.plan_cached(workload)
        return CostModel(workload, policy, self.hw, ctx, self.calibration)

    def run(
        self, workload: Workload, policy: OffloadPolicy | None = None
    ) -> InferenceReport:
        if policy is None:
            policy = self.plan(workload)
        model = CostModel(workload, policy, self.hw, self.ctx, self.calibration)
        return InferenceReport(
            engine=self.name,
            workload=workload,
            policy=policy,
            breakdown=model.breakdown(),
            gpu_bytes=model.gpu_bytes_required(),
            cpu_bytes=model.cpu_bytes_required(),
            parallelism=None,
        )
