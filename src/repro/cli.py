"""Command-line interface: ``python -m repro <command>``.

Commands
--------
models            list registered model configurations
plan              search the best LM-Offload policy for a workload
run               plan + evaluate one or all engines on a workload
experiment        regenerate one of the paper's tables/figures
whatif            hardware sensitivity sweep
trace             export a Chrome trace of a decode schedule
serve-sim         request-level serving simulation, write BENCH_serving.json
chaos             fault-injection serving runs, write BENCH_chaos.json
fleet-sim         multi-replica fleet simulation, write BENCH_fleet.json
bench-timing      time the planner/cost-model hot path, write BENCH_timing.json
audit             model-vs-runtime drift audit, write BENCH_audit.json

Exit codes
----------
Failures propagate as typed errors and map to distinct statuses (they
used to be swallowed into prints + generic codes, so scripts could not
tell a bad flag from an infeasible workload):

* 0 — success
* 1 — command ran but its own gate failed (chaos accounting, audit drift)
* 2 — argparse usage error
* 3 — :class:`~repro.errors.ConfigError` (bad/unknown configuration)
* 4 — planner infeasibility (:class:`~repro.errors.PolicyError`,
  :class:`~repro.errors.MemoryCapacityError`)
* 5 — :class:`~repro.errors.ScheduleError` (malformed schedule)
* 6 — any other :class:`~repro.errors.ReproError`
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.tables import format_table
from repro.errors import (
    ConfigError,
    MemoryCapacityError,
    PolicyError,
    ReproError,
    ScheduleError,
)

EXIT_CONFIG = 3
EXIT_INFEASIBLE = 4
EXIT_SCHEDULE = 5
EXIT_REPRO = 6


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="opt-30b", help="registered model name")
    parser.add_argument("--prompt-len", type=int, default=64)
    parser.add_argument("--gen-len", type=int, default=32)
    parser.add_argument("--batch", type=int, default=64, help="GPU batch size")
    parser.add_argument("--num-batches", type=int, default=10, help="zig-zag batches")


def _workload(args):
    from repro.models import get_model
    from repro.perfmodel import Workload

    return Workload(
        get_model(args.model), args.prompt_len, args.gen_len,
        args.batch, args.num_batches,
    )


def cmd_models(args) -> int:
    from repro.models import get_model, list_models

    rows = []
    for name in list_models():
        cfg = get_model(name)
        rows.append(
            {
                "name": name,
                "layers": cfg.num_layers,
                "h1": cfg.hidden_size,
                "h2": cfg.intermediate_size,
                "heads": cfg.num_heads,
                "params_B": round(cfg.total_weights / 1e9, 2),
            }
        )
    print(format_table(rows, "Registered models"))
    return 0


def cmd_plan(args) -> int:
    from repro.core import LMOffloadEngine
    from repro.hardware import single_a100
    from repro.offload.serialization import policy_to_json

    engine = LMOffloadEngine(single_a100())
    workload = _workload(args)
    if args.search_geometry:
        planner = engine.planner()
        policy, workload, _ = planner.search_batch_geometry(workload)
        failures = planner.last_geometry_failures
        print(f"workload: {workload.describe()}  (geometry searched)")
        print(f"policy:   {policy.describe()}")
        if failures:
            print(f"rejected geometries: {len(failures)}")
            for bsz, k, reason in failures[: args.max_failures]:
                print(f"  bsz={bsz} k={k}: {reason}")
            if len(failures) > args.max_failures:
                print(f"  ... and {len(failures) - args.max_failures} more")
        else:
            print("rejected geometries: 0")
    else:
        policy, _, plan = engine.plan(workload)
        print(f"workload: {workload.describe()}")
        print(f"policy:   {policy.describe()}")
        if plan is not None:
            print(f"threads:  {plan.describe()}")
    if args.save:
        with open(args.save, "w", encoding="utf-8") as fh:
            fh.write(policy_to_json(policy))
        print(f"policy written to {args.save}")
    return 0


def cmd_run(args) -> int:
    from repro.baselines import (
        FlexGenEngine,
        SpecOffloadEngine,
        ZeroInferenceEngine,
    )
    from repro.core import LMOffloadEngine
    from repro.hardware import single_a100

    workload = _workload(args)
    # spec-offload plans (and therefore batch-runs) exactly like
    # lm-offload — speculation is a serving-step price transform, so it
    # shows up in serve-sim/spec-sim, not in the offline table row.
    engines = {
        "lm-offload": lambda: LMOffloadEngine(single_a100()),
        "flexgen": lambda: FlexGenEngine(single_a100()),
        "zero-inference": lambda: ZeroInferenceEngine(single_a100()),
        "spec-offload": lambda: SpecOffloadEngine(single_a100()),
    }
    names = list(engines) if args.engine == "all" else [args.engine]
    rows = []
    for name in names:
        report = engines[name]().run(workload)
        row = report.table_row()
        row["policy"] = report.policy.describe()
        rows.append(row)
    print(format_table(rows, f"{workload.describe()}"))
    return 0


EXPERIMENTS = {
    "fig3": "run_fig3_quant_strategies",
    "fig4": "run_fig4_breakdown",
    "tab1": "run_tab1_io_traffic",
    "fig5": "run_fig5_parallelism_sweep",
    "tab3": "run_tab3_overall",
    "fig7": "run_fig7_effective_quantization",
    "fig8": "run_fig8_parallelism_control",
    "tab5": "run_tab5_llc_misses",
    "fig9": "run_fig9_multigpu",
}


def cmd_experiment(args) -> int:
    import repro.bench as bench

    runner = getattr(bench, EXPERIMENTS[args.name])
    result = runner()
    if isinstance(result, list):
        print(format_table(result, f"experiment {args.name}"))
    elif isinstance(result, dict) and all(isinstance(v, list) for v in result.values()):
        for key, rows in result.items():
            print(format_table(rows, f"experiment {args.name} [{key}]"))
    else:
        import json

        print(json.dumps(result, indent=2, default=str))
    return 0


def cmd_whatif(args) -> int:
    from repro.bench.whatif import run_whatif, whatif_rows

    workload = _workload(args)
    rows = whatif_rows(
        run_whatif(workload, samples=args.samples, seed=args.seed)
    )
    print(format_table(rows, f"what-if: {workload.describe()}"))
    return 0


def _serve_sim_models(args) -> int:
    """Multi-model mode: dedicated-vs-coresident comparison per mix."""
    import json

    from repro.bench.multimodel import multimodel_rows, run_multimodel_bench
    from repro.serving.simulator import ServingConfig

    if args.arrival != "poisson" or args.trace_file:
        raise ConfigError(
            "serve-sim: --models generates its own tagged traffic mixes; "
            "drop --arrival/--trace-file"
        )
    if args.chrome_trace or args.metrics_out or args.scenario:
        raise ConfigError(
            "serve-sim: --models does not support --chrome-trace, "
            "--metrics-out or --scenario"
        )
    config = ServingConfig(
        max_batch=args.max_batch,
        num_gpu_batches=args.num_batches,
        queue_capacity=args.queue_capacity,
        queue_timeout_s=args.queue_timeout,
        ttft_slo_s=args.ttft_slo,
        tpot_slo_s=args.tpot_slo,
    )
    engine = "lm-offload" if args.engine == "all" else args.engine
    payload = run_multimodel_bench(
        preset=args.models,
        engine=engine,
        config=config,
        quick=args.quick,
        seed=args.seed,
    )
    print(f"models: {', '.join(payload['models'])}   engine: {engine}   "
          f"seed: {args.seed}")
    print(format_table(multimodel_rows(payload),
                       f"serve-sim --models {args.models}"))
    output = (
        args.output if args.output != "BENCH_serving.json"
        else "BENCH_multimodel.json"
    )
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"written to {output}")
    return 0


def cmd_serve_sim(args) -> int:
    import json

    from repro.bench.serving import ENGINES, run_serving_comparison
    from repro.serving import (
        LengthSampler,
        default_trace,
        export_request_timeline,
        load_trace,
        metrics_row,
        mmpp_trace,
        poisson_trace,
    )
    from repro.serving.simulator import ServingConfig

    if args.models:
        return _serve_sim_models(args)
    lengths = LengthSampler(
        prompt_mean=args.prompt_mean, gen_mean=args.gen_mean, max_len=args.max_len
    )
    if args.arrival == "poisson":
        if args.rate == 2.0 and args.duration == 30.0 and args.prompt_mean == 64:
            trace = default_trace(quick=args.quick, seed=args.seed)
        else:
            trace = poisson_trace(
                args.rate, args.duration, seed=args.seed, lengths=lengths,
                priority_levels=args.priority_levels,
            )
    elif args.arrival == "bursty":
        trace = mmpp_trace(
            args.rate, args.burst_rate, args.duration, seed=args.seed,
            lengths=lengths, priority_levels=args.priority_levels,
        )
    else:  # replay
        if not args.trace_file:
            raise ConfigError("serve-sim: --arrival replay requires --trace-file")
        trace = load_trace(args.trace_file)

    config = ServingConfig(
        max_batch=args.max_batch,
        num_gpu_batches=args.num_batches,
        queue_capacity=args.queue_capacity,
        queue_timeout_s=args.queue_timeout,
        ttft_slo_s=args.ttft_slo,
        tpot_slo_s=args.tpot_slo,
    )
    engines = tuple(ENGINES) if args.engine == "all" else (args.engine,)
    if args.spec and "spec-offload" not in engines:
        engines = engines + ("spec-offload",)
    if args.no_steps and args.chrome_trace:
        raise ConfigError(
            "serve-sim: --no-steps discards the per-step records that "
            "--chrome-trace exports; drop one of the flags"
        )
    payload, results = run_serving_comparison(
        model_name=args.model,
        trace=trace,
        scheduler=args.scheduler,
        config=config,
        engines=engines,
        seed=args.seed,
        # Live time-series sampling forces a per-step advance; under
        # --no-steps (the throughput mode) the registry export falls back
        # to the aggregate-derived series instead of the curve.* samples.
        collect_timeseries=bool(args.metrics_out or args.chrome_trace)
        and not args.no_steps,
        collect_steps=not args.no_steps,
        scenario=args.scenario,
    )
    print(f"trace:     {trace.describe()}")
    print(f"scheduler: {args.scheduler}   "
          f"SLO: ttft<={args.ttft_slo:g}s tpot<={args.tpot_slo:g}s")
    if args.scenario:
        print(f"scenario:  {args.scenario} (windows scaled to each "
              "engine's fault-free makespan)")
    rows = [metrics_row(payload["engines"][name]) for name in engines]
    print(format_table(rows, f"serve-sim: {args.model}"))
    ratios = payload["comparison"].get("goodput_vs_flexgen")
    if ratios:
        parts = []
        for name, ratio in ratios.items():
            if name == "flexgen":
                continue
            if ratio is None:
                rps = payload["engines"][name]["slo"]["goodput_rps"]
                parts.append(f"{name}={rps:.3f} rps (flexgen=0, ratio undefined)")
            else:
                parts.append(f"{name}={ratio:.2f}x")
        print(f"goodput vs flexgen: {'  '.join(parts)}")
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"written to {args.output}")
    if args.metrics_out:
        from repro.serving import metrics_registry

        doc = {
            name: metrics_registry(results[name]).to_dict() for name in engines
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics registry written to {args.metrics_out}")
    if args.chrome_trace:
        name = engines[0] if len(engines) == 1 else "lm-offload"
        builder = export_request_timeline(results[name])
        from repro.serving import metrics_registry

        metrics_registry(results[name]).export_chrome(
            builder, ts_s=results[name].makespan_s
        )
        builder.save(args.chrome_trace)
        print(
            f"request timeline ({name}, {builder.num_slices} steps) "
            f"written to {args.chrome_trace}"
        )
    return 0


def cmd_spec_sim(args) -> int:
    import json

    from repro.bench.spec import run_spec_sweep, spec_rows
    from repro.perfmodel.speculation import SpecConfig

    spec = SpecConfig(
        tree_size=args.tree_size,
        max_width=args.max_width,
        draft_compute_ratio=args.draft_ratio,
        kv_retrieval_budget=args.kv_budget,
    )
    payload = run_spec_sweep(
        model_name=args.model, spec=spec, quick=args.quick
    )
    print(f"spec:  {spec.describe()}")
    print(format_table(spec_rows(payload), f"spec-sim: {args.model}"))
    comp = payload["comparison"]
    print(
        f"best speedup: {comp['best_speedup']:.2f}x at "
        f"ctx={comp['best_cell']['context']} alpha={comp['best_cell']['alpha']:g}  "
        f"(long-context wins: {comp['long_context_wins']})"
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"written to {args.output}")
    return 0


def cmd_trace(args) -> int:
    from repro.core import LMOffloadEngine
    from repro.hardware import single_a100
    from repro.perfmodel import CostModel
    from repro.trace import trace_decode_schedule

    workload = _workload(args)
    engine = LMOffloadEngine(single_a100())
    policy, ctx, _ = engine.plan(workload)
    model = CostModel(workload, policy, engine.hw, ctx, engine.config.calibration)
    tokens = min(args.tokens, workload.gen_len - 1)
    costs = [model.decode_task_costs(t) for t in range(tokens)]
    layers = min(args.layers, workload.model.num_layers)
    builder = trace_decode_schedule(
        costs, num_layers=layers, num_gpu_batches=policy.num_gpu_batches
    )
    builder.save(args.output)
    print(
        f"wrote {builder.num_slices} slices ({tokens} tokens x {layers} layers) "
        f"to {args.output} — open in chrome://tracing or Perfetto"
    )
    return 0


def cmd_chaos(args) -> int:
    import json

    from repro.bench.chaos import SCENARIO_ORDER, chaos_rows, run_chaos
    from repro.bench.serving import ENGINES
    from repro.serving import default_trace, export_request_timeline
    from repro.serving.simulator import ServingConfig

    engines = tuple(ENGINES) if args.engine == "all" else (args.engine,)
    scenarios = (
        tuple(SCENARIO_ORDER) if args.scenario == "all" else (args.scenario,)
    )
    trace = default_trace(quick=args.quick, seed=args.seed)
    config = ServingConfig(
        max_batch=args.max_batch,
        retry_limit=args.retry_limit,
        backoff_base_s=args.backoff_base,
        backoff_cap_s=args.backoff_cap,
        request_deadline_s=args.deadline,
    )
    from repro.bench.chaos import (
        DEFAULT_DRIFT_TOLERANCE,
        DEFAULT_SERVING_DRIFT_TOLERANCE,
    )

    payload, results = run_chaos(
        model_name=args.model,
        trace=trace,
        scheduler=args.scheduler,
        config=config,
        engines=engines,
        scenarios=scenarios,
        seed=args.seed,
        drift_gate=args.drift_gate,
        drift_tolerance=(
            args.drift_tolerance
            if args.drift_tolerance is not None
            else DEFAULT_DRIFT_TOLERANCE
        ),
        serving_drift_gate=args.serving_drift_gate,
        serving_drift_tolerance=(
            args.serving_drift_tolerance
            if args.serving_drift_tolerance is not None
            else DEFAULT_SERVING_DRIFT_TOLERANCE
        ),
    )
    print(f"trace: {trace.describe()}   seed: {args.seed}")
    print(format_table(chaos_rows(payload), f"chaos: {args.model}"))
    if not payload["all_accounting_ok"]:
        print("WARNING: request accounting failed for at least one run")
    if args.drift_gate:
        ds = payload["drift"]["summary"]
        print(
            f"drift gate: {ds['num_windows_priced']} window(s) priced   "
            f"worst: {ds['worst']} (rel_err="
            f"{ds['max_rel_err']:.4g})   tolerance: "
            f"{payload['drift']['tolerance']:g}"
        )
    if args.serving_drift_gate:
        ss = payload["serving_drift"]["summary"]
        print(
            f"serving drift gate: {ss['num_step_groups_priced']} step "
            f"group(s) priced   worst: {ss['worst']} (rel_err="
            f"{ss['max_rel_err']:.4g})   tolerance: "
            f"{payload['serving_drift']['tolerance']:g}"
        )
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"written to {args.output}")
    if args.metrics_out:
        from repro.serving import metrics_registry

        doc = {
            engine: {
                scenario: metrics_registry(results[(engine, scenario)]).to_dict()
                for scenario in scenarios
            }
            for engine in engines
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics registry written to {args.metrics_out}")
    if args.chrome_trace:
        engine = engines[0] if len(engines) == 1 else "lm-offload"
        scenario = scenarios[0]
        builder = export_request_timeline(results[(engine, scenario)])
        builder.save(args.chrome_trace)
        print(
            f"chaos timeline ({engine} x {scenario}) written to "
            f"{args.chrome_trace}"
        )
    code = 0 if payload["all_accounting_ok"] else 1
    if args.drift_gate and not payload["all_drift_ok"]:
        over = payload["drift"]["summary"]["over_tolerance"]
        print(
            f"FAULTED SERVING DRIFT: {len(over)} window(s) over tolerance: "
            f"{', '.join(over)}",
            file=sys.stderr,
        )
        code = 1
    if args.serving_drift_gate and not payload["all_serving_drift_ok"]:
        over = payload["serving_drift"]["summary"]["over_tolerance"]
        print(
            f"EXECUTED-STEP DRIFT: {len(over)} run(s) over tolerance: "
            f"{', '.join(over)}",
            file=sys.stderr,
        )
        code = 1
    return code


def cmd_fleet_sim(args) -> int:
    import json

    from repro.bench.fleet import fleet_rows, run_fleet_bench
    from repro.serving import FLEET_PRESETS, FLEET_SCENARIOS, FleetConfig
    from repro.serving.simulator import ServingConfig

    presets = None if args.fleet == "all" else (args.fleet,)
    if args.fleet == "all" and not args.quick:
        presets = tuple(FLEET_PRESETS)
    scenarios = (
        tuple(FLEET_SCENARIOS) if args.scenario == "all" else (args.scenario,)
    )
    # Argparse defaults mirror default_fleet_config(), so a flagless
    # invocation builds the exact config the bench library uses.
    config = FleetConfig(
        serving=ServingConfig(max_batch=args.max_batch),
        migration_budget=args.migration_budget,
        hedge_after_s=args.hedge_after if args.hedge_after > 0 else None,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )
    collect_steps = bool(args.chrome_trace or args.metrics_out)
    payload, results = run_fleet_bench(
        model_name=args.model,
        presets=presets,
        scenarios=scenarios,
        scheduler=args.scheduler,
        config=config,
        quick=args.quick,
        seed=args.seed,
        collect_steps=collect_steps,
    )
    ran_presets = list(payload["fleets"])
    print(
        f"fleets: {', '.join(ran_presets)}   scenarios: "
        f"{', '.join(scenarios)}   seed: {args.seed}"
    )
    print(format_table(fleet_rows(payload), f"fleet-sim: {args.model}"))
    if not payload["all_accounting_ok"]:
        print("WARNING: fleet request accounting failed for at least one run")
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"written to {args.output}")
    if args.metrics_out:
        from repro.serving import fleet_metrics_registry

        doc = {
            preset: {
                scenario: fleet_metrics_registry(result).to_dict()
                for (p, scenario), result in results.items()
                if p == preset
            }
            for preset in ran_presets
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fleet metrics registry written to {args.metrics_out}")
    if args.chrome_trace:
        from repro.serving import export_fleet_timeline

        preset = ran_presets[0]
        scenario = next(
            (s for s in scenarios if s != "none"), "none"
        )
        builder = export_fleet_timeline(results[(preset, scenario)])
        builder.save(args.chrome_trace)
        print(
            f"fleet timeline ({preset} x {scenario}, "
            f"{builder.num_slices} slices) written to {args.chrome_trace}"
        )
    return 0 if payload["all_accounting_ok"] else 1


def cmd_bench_timing(args) -> int:
    from repro.bench.timing import write_bench_timing

    registry = None
    if args.metrics_out:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry(namespace="bench-timing")
    payload = write_bench_timing(
        path=args.output, quick=args.quick, registry=registry
    )
    rows = []
    for name, r in payload["targets"].items():
        rows.append(
            {
                "target": name,
                "median_ms": round(r["median_s"] * 1e3, 3),
                "best_ms": round(r["best_s"] * 1e3, 3),
                "baseline_ms": round(r["baseline_median_s"] * 1e3, 3),
                "speedup": round(r["speedup_vs_baseline"], 2),
                "repeats": r["repeats"],
            }
        )
    mode = "quick" if payload["quick"] else "full"
    print(format_table(rows, f"bench-timing ({mode}) — {payload['workload']}"))
    print(f"written to {args.output}")
    if registry is not None:
        registry.save(args.metrics_out)
        print(f"metrics registry written to {args.metrics_out}")
    return 0


def cmd_audit(args) -> int:
    from repro.obs.audit import (
        DEFAULT_E2E_TOLERANCE,
        DEFAULT_FAULT_TOLERANCE,
        DEFAULT_TOLERANCE,
        audit_rows,
        faulted_rows,
        write_bench_audit,
    )

    payload = write_bench_audit(
        path=args.output,
        tolerance=(
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        ),
        e2e_tolerance=(
            args.e2e_tolerance
            if args.e2e_tolerance is not None
            else DEFAULT_E2E_TOLERANCE
        ),
        quick=args.quick,
        faults=args.faults,
        fault_tolerance=(
            args.fault_tolerance
            if args.fault_tolerance is not None
            else DEFAULT_FAULT_TOLERANCE
        ),
    )
    mode = "quick" if payload["quick"] else "full"
    print(format_table(audit_rows(payload), f"drift audit ({mode})"))
    summary = payload["summary"]
    print(
        f"cases: {summary['num_cases']}   worst: {summary['worst_case']} "
        f"(rel_err={summary['max_rel_err']:.4g})   "
        f"tolerance: {payload['tolerance']:g}"
    )
    if args.faults:
        print(format_table(faulted_rows(payload), f"faulted drift audit ({mode})"))
        fs = payload["faulted"]["summary"]
        print(
            f"faulted: {fs['num_cases_priced']} case-windows   "
            f"worst: {fs['worst']} (rel_err={fs['max_rel_err']:.4g})   "
            f"dominant fault: {fs['dominant_fault']}   "
            f"tolerance: {payload['fault_tolerance']:g}"
        )
    print(f"written to {args.output}")
    code = 0
    if not summary["ok"]:
        over = summary["over_tolerance"] + summary["e2e_over_tolerance"]
        print(
            f"DRIFT: {len(over)} case(s) over tolerance: {', '.join(over)}",
            file=sys.stderr,
        )
        code = 1
    if args.faults and not payload["faulted"]["summary"]["ok"]:
        fault_over = payload["faulted"]["summary"]["over_tolerance"]
        print(
            f"FAULTED DRIFT: {len(fault_over)} case-window(s) over tolerance: "
            f"{', '.join(fault_over)}",
            file=sys.stderr,
        )
        code = 1
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LM-Offload reproduction CLI"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="enable profiling hooks; print the scope/cache report to "
        "stderr when the command finishes (goes before the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list model configurations").set_defaults(
        func=cmd_models
    )

    p = sub.add_parser("plan", help="search the best LM-Offload policy")
    _add_workload_args(p)
    p.add_argument("--save", help="write the policy JSON here")
    p.add_argument(
        "--search-geometry", action="store_true",
        help="also search (batch, num_batches) and report rejected geometries",
    )
    p.add_argument(
        "--max-failures", type=int, default=5,
        help="rejected geometries to list in detail",
    )
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("run", help="evaluate engine(s) on a workload")
    _add_workload_args(p)
    p.add_argument(
        "--engine", default="all",
        choices=["all", "lm-offload", "flexgen", "zero-inference",
                 "spec-offload"],
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("whatif", help="hardware sensitivity sweep")
    _add_workload_args(p)
    p.add_argument(
        "--samples", type=int, default=0,
        help="extra seeded Monte-Carlo hardware variants",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_whatif)

    p = sub.add_parser(
        "serve-sim",
        help="request-level serving simulation (arrivals, batching, SLOs)",
    )
    p.add_argument("--model", default="opt-30b", help="registered model name")
    p.add_argument(
        "--models", default=None,
        help="multi-model mode: a preset (opt-duo, opt-trio) or "
        "comma-separated model ids co-resident on one platform; runs the "
        "dedicated-vs-coresident comparison across traffic mixes and "
        "writes BENCH_multimodel.json",
    )
    p.add_argument(
        "--arrival", default="poisson", choices=["poisson", "bursty", "replay"]
    )
    p.add_argument("--rate", type=float, default=2.0, help="arrivals/s (base rate)")
    p.add_argument(
        "--burst-rate", type=float, default=8.0, help="bursty phase rate (MMPP)"
    )
    p.add_argument("--duration", type=float, default=30.0, help="trace horizon (s)")
    p.add_argument("--prompt-mean", type=float, default=64)
    p.add_argument("--gen-mean", type=float, default=32)
    p.add_argument("--max-len", type=int, default=256)
    p.add_argument("--priority-levels", type=int, default=1)
    p.add_argument("--trace-file", help="JSON trace to replay (--arrival replay)")
    p.add_argument(
        "--scheduler", default="fcfs",
        choices=["fcfs", "sjf", "priority", "priority-preempt", "sjf-predict"],
    )
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--num-batches", type=int, default=1, help="zig-zag batches")
    p.add_argument("--queue-capacity", type=int, default=128)
    p.add_argument("--queue-timeout", type=float, default=None)
    p.add_argument("--ttft-slo", type=float, default=30.0)
    p.add_argument("--tpot-slo", type=float, default=3.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine", default="all",
        choices=["all", "lm-offload", "flexgen", "zero-inference",
                 "spec-offload"],
    )
    p.add_argument(
        "--spec", action="store_true",
        help="also run the speculative spec-offload engine (adds it to "
        "whatever --engine selects)",
    )
    p.add_argument(
        "--scenario", default=None,
        choices=["pcie-degrade", "flaky-pcie", "cpu-throttle",
                 "mem-crunch", "gpu-brownout", "multi-fault"],
        help="run every engine under this bundled fault scenario "
        "(windows scaled to each engine's fault-free makespan); the "
        "payload gains a 'scenario' section",
    )
    p.add_argument("--chrome-trace", help="also export the request timeline here")
    p.add_argument(
        "--metrics-out",
        help="write the typed metrics-registry JSON (per engine) here",
    )
    p.add_argument(
        "--quick", action="store_true", help="short trace (CI smoke)"
    )
    p.add_argument(
        "--no-steps", action="store_true",
        help="skip per-step record retention (fastest; summary metrics "
        "and the aggregate-derived metrics registry are byte-identical, "
        "but --chrome-trace needs steps)",
    )
    p.add_argument("--output", default="BENCH_serving.json")
    p.set_defaults(func=cmd_serve_sim)

    p = sub.add_parser(
        "spec-sim",
        help="speculative-decoding sweep (context x acceptance rate), "
        "write BENCH_spec.json",
    )
    p.add_argument(
        "--model", default="opt-6.7b",
        help="registered model name (default opt-6.7b: the largest whose "
        "128k-context KV fits host memory at batch 1)",
    )
    p.add_argument("--tree-size", type=int, default=8,
                   help="draft-tree nodes including the root")
    p.add_argument("--max-width", type=int, default=2,
                   help="max sibling candidates per tree level")
    p.add_argument("--draft-ratio", type=float, default=0.05,
                   help="draft forward cost as a fraction of a target forward")
    p.add_argument("--kv-budget", type=int, default=4096,
                   help="draft KV-retrieval budget (context tokens)")
    p.add_argument(
        "--quick", action="store_true",
        help="2 contexts x 1 alpha instead of the full 4 x 3 grid (CI smoke)",
    )
    p.add_argument("--output", default="BENCH_spec.json")
    p.set_defaults(func=cmd_spec_sim)

    p = sub.add_parser("trace", help="export a Chrome trace of the schedule")
    _add_workload_args(p)
    p.add_argument("--tokens", type=int, default=2, help="decode tokens to trace")
    p.add_argument("--layers", type=int, default=8, help="layers to trace")
    p.add_argument("--output", default="decode_trace.json")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "chaos",
        help="serving under injected faults (seeded scenarios, all engines)",
    )
    p.add_argument("--model", default="opt-30b", help="registered model name")
    p.add_argument(
        "--engine", default="all",
        choices=["all", "lm-offload", "flexgen", "zero-inference"],
    )
    p.add_argument(
        "--scenario", default="all",
        choices=["all", "pcie-degrade", "flaky-pcie", "cpu-throttle",
                 "mem-crunch", "gpu-brownout", "multi-fault"],
    )
    p.add_argument(
        "--scheduler", default="fcfs",
        choices=["fcfs", "sjf", "priority", "priority-preempt"],
    )
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--retry-limit", type=int, default=3)
    p.add_argument("--backoff-base", type=float, default=0.5)
    p.add_argument("--backoff-cap", type=float, default=8.0)
    p.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline (s) checked at fault aborts",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chrome-trace", help="export one run's request timeline here")
    p.add_argument(
        "--metrics-out",
        help="write the typed metrics-registry JSON (per engine x scenario) here",
    )
    p.add_argument(
        "--quick", action="store_true", help="short trace (CI smoke)"
    )
    p.add_argument(
        "--drift-gate", action="store_true",
        help="also re-price every degraded capability window (Eq. 1/2 vs "
        "the overlapped executor) and fail on drift over tolerance",
    )
    p.add_argument(
        "--drift-tolerance", type=float, default=None,
        help="max allowed faulted steady-state relative error for "
        "--drift-gate (default 0.10)",
    )
    p.add_argument(
        "--serving-drift-gate", action="store_true",
        help="re-price the *executed* serving steps of each faulted run "
        "against a fresh fault-retargeted engine and fail on drift over "
        "tolerance (degraded-rung intervals are skipped)",
    )
    p.add_argument(
        "--serving-drift-tolerance", type=float, default=None,
        help="max allowed relative step-cost error for "
        "--serving-drift-gate (default 0.15; looser than --drift-gate "
        "because the watchdog legitimately serves briefly-stale plans)",
    )
    p.add_argument("--output", default="BENCH_chaos.json")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "fleet-sim",
        help="multi-replica fleet simulation (crash domains, failover, "
        "hedges, breakers)",
    )
    p.add_argument("--model", default="opt-30b", help="registered model name")
    p.add_argument(
        "--fleet", default="all",
        choices=["all", "uniform-6", "hetero-8", "uniform-16"],
        help="fleet preset ('all' sweeps every preset; quick mode "
        "restricts 'all' to uniform-6)",
    )
    p.add_argument(
        "--scenario", default="all",
        choices=["all", "none", "replica-crash", "domain-outage",
                 "flaky-replica", "rolling-restart"],
    )
    p.add_argument(
        "--scheduler", default="fcfs",
        choices=["fcfs", "sjf", "priority", "priority-preempt"],
    )
    p.add_argument("--max-batch", type=int, default=64, help="per-replica")
    p.add_argument(
        "--migration-budget", type=int, default=2,
        help="crash/restart displacements a request survives before "
        "FAILOVER_EXHAUSTED",
    )
    p.add_argument(
        "--hedge-after", type=float, default=20.0,
        help="hedge a still-token-less request after this many seconds "
        "(0 disables hedging)",
    )
    p.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive aborted steps that trip a replica's breaker "
        "(0 disables breakers)",
    )
    p.add_argument("--breaker-cooldown", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--chrome-trace",
        help="export one run's per-replica fleet timeline here",
    )
    p.add_argument(
        "--metrics-out",
        help="write the typed metrics-registry JSON (per fleet x scenario) "
        "here",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="smallest fleet, short trace (CI smoke)",
    )
    p.add_argument("--output", default="BENCH_fleet.json")
    p.set_defaults(func=cmd_fleet_sim)

    p = sub.add_parser(
        "bench-timing", help="time plan()/breakdown()/tab3, write BENCH_timing.json"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="fewer repeats, skip the tab3 sweep (CI smoke)",
    )
    p.add_argument(
        "--metrics-out",
        help="write the raw timing samples as metrics-registry JSON here",
    )
    p.add_argument("--output", default="BENCH_timing.json")
    p.set_defaults(func=cmd_bench_timing)

    p = sub.add_parser(
        "audit",
        help="model-vs-runtime drift audit (Eq. 1/2 vs the event simulator)",
    )
    p.add_argument(
        "--tolerance", type=float, default=None,
        help="max allowed steady-state relative error (default 0.10)",
    )
    p.add_argument(
        "--e2e-tolerance", type=float, default=None,
        help="max allowed whole-generation relative error (default 0.15)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="smoke subset only, skip whole-generation replays (CI)",
    )
    p.add_argument(
        "--faults", action="store_true",
        help="also re-price the grid under every bundled chaos scenario's "
        "degraded platforms (adds the 'faulted' payload section)",
    )
    p.add_argument(
        "--fault-tolerance", type=float, default=None,
        help="max allowed faulted steady-state relative error (default 0.10)",
    )
    p.add_argument("--output", default="BENCH_audit.json")
    p.set_defaults(func=cmd_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.profile:
            import json as _json

            from repro.obs.profiling import profiling_enabled

            with profiling_enabled() as profiler:
                code = args.func(args)
            print(_json.dumps(profiler.report(), indent=2), file=sys.stderr)
            return code
        return args.func(args)
    except ConfigError as exc:
        print(f"repro: config error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except (PolicyError, MemoryCapacityError) as exc:
        print(f"repro: infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    except ScheduleError as exc:
        print(f"repro: schedule error: {exc}", file=sys.stderr)
        return EXIT_SCHEDULE
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_REPRO


if __name__ == "__main__":
    sys.exit(main())
