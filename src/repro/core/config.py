"""Engine configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.constants import EngineCalibration
from repro.quant.config import QuantConfig


@dataclass(frozen=True)
class EngineConfig:
    """Feature switches of :class:`~repro.core.engine.LMOffloadEngine`.

    Disabling flags produces the paper's ablations: ``quant_aware=False``
    degrades the planner to FlexGen's quantization-blind search;
    ``parallelism_control=False`` falls back to default PyTorch threading
    (the §5.3 configuration).
    """

    quant_aware: bool = True
    parallelism_control: bool = True
    allow_gpu_attention: bool = True
    quant: QuantConfig = field(default_factory=lambda: QuantConfig(bits=4, group_size=64))
    calibration: EngineCalibration = field(
        default_factory=EngineCalibration.paper_defaults
    )
    wg_step: float = 0.05
