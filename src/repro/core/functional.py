"""Functional engine: real NumPy inference through the offloading runtime.

Everything here is *actually executed*: weights are registered in a
:class:`~repro.offload.store.TensorStore` against byte-accurate memory
pools, the offloaded share is stored (optionally group-wise quantized —
really packed to 4/8-bit) in the host pool, streamed through the
:class:`~repro.offload.transfer.TransferEngine` on use, de-quantized, and
run through the reference NumPy transformer kernels.  The KV cache is
optionally stored quantized, so quantization error propagates into the
logits exactly as it would on the real system.

This is the layer that proves the policies *work*, not just that they are
fast: tests assert that a no-quantization offloaded run is bit-identical
to the plain :class:`~repro.models.Transformer`, and that quantized runs
stay within the quantizer's error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.hardware.platform import Platform, small_test_platform
from repro.models.config import ModelConfig
from repro.models.layers import layer_norm, mlp, self_attention, split_heads
from repro.models.sampling import greedy_sample, temperature_sample
from repro.models.transformer import KVCache, TransformerWeights
from repro.offload.policy import OffloadPolicy
from repro.offload.store import TensorStore
from repro.offload.tensor import ManagedTensor
from repro.offload.transfer import TransferEngine
from repro.quant.groupwise import QuantizedTensor, compress, decompress


@dataclass(frozen=True)
class FunctionalRunResult:
    """Output of a functional generation run."""

    token_ids: np.ndarray
    simulated_seconds: float
    peak_gpu_bytes: int
    traffic_by_category: dict[str, float]


@dataclass
class FunctionalEngine:
    """Executes a tiny model under an offloading policy, for real.

    Weight placement is at layer granularity: the first ``round(wg * l)``
    layers are GPU-resident (fp16-equivalent fp32 arrays), the rest live in
    the host pool — compressed when the policy quantizes weights — and are
    streamed in per use.
    """

    weights: TransformerWeights
    policy: OffloadPolicy
    platform: Platform = field(default_factory=small_test_platform)

    def __post_init__(self) -> None:
        self.config: ModelConfig = self.weights.config
        self.store = TensorStore(self.platform)
        self.transfer = TransferEngine(self.platform, self.store)
        self.gpu = self.platform.gpus[0].name
        self.cpu = self.platform.cpu.name
        self._clock = 0.0
        self._peak_gpu = 0
        self._resident_layers = round(self.policy.wg * self.config.num_layers)
        self._register_weights()

    # -- setup -----------------------------------------------------------------

    def _register_weights(self) -> None:
        # Embeddings always GPU-resident (small).
        self.store.register(
            ManagedTensor.from_array("embed", self.weights.embed, self.gpu, pinned=True)
        )
        self.store.register(
            ManagedTensor.from_array(
                "lm_head", self.weights.lm_head, self.gpu, pinned=True
            )
        )
        for li, lw in enumerate(self.weights.layers):
            resident = li < self._resident_layers
            device = self.gpu if resident else self.cpu
            for pname, array in lw.as_dict().items():
                name = f"layer{li}.{pname}"
                if not resident and self.policy.weight_quant and array.ndim >= 2:
                    qt = compress(array, self.policy.weight_quant)
                    self.store.register(
                        ManagedTensor.from_quantized(name, qt, device, pinned=True)
                    )
                else:
                    self.store.register(
                        ManagedTensor.from_array(name, array, device, pinned=True)
                    )
        self._note_gpu_usage()

    def _note_gpu_usage(self) -> None:
        self._peak_gpu = max(self._peak_gpu, self.platform.pools[self.gpu].used)

    # -- weight access -----------------------------------------------------------

    def _fetch(self, name: str) -> np.ndarray:
        """Materialize a parameter on the GPU, charging simulated time."""
        tensor = self.store.get(name)
        if tensor.device != self.gpu:
            # Wire time at the stored (possibly compressed) size.
            self._clock += self.transfer.transfer_time(
                tensor.device, self.gpu, tensor.nbytes
            )
            self.transfer.ledger.record(tensor.device, self.gpu, "weights", tensor.nbytes)
        payload = tensor.payload
        if isinstance(payload, QuantizedTensor):
            return decompress(payload)
        assert isinstance(payload, np.ndarray)
        return payload

    def _layer_params(self, li: int) -> dict[str, np.ndarray]:
        return {
            pname: self._fetch(f"layer{li}.{pname}")
            for pname in self.weights.layers[li].as_dict()
        }

    # -- KV handling -----------------------------------------------------------

    def _maybe_quantize_kv(
        self, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round-trip new KV entries through the quantizer when the policy
        stores the cache compressed (the stored value is the quantized one,
        so the error feeds back into later attention)."""
        q = self.policy.kv_quant
        if q is None:
            return k, v
        return (
            decompress(compress(k, q)),
            decompress(compress(v, q)),
        )

    # -- forward ---------------------------------------------------------------

    def forward(self, token_ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Offloaded forward pass; numerically equals the reference model
        up to quantization error."""
        if token_ids.ndim != 2:
            raise ConfigError("token_ids must be (batch, new_len)")
        cfg = self.config
        x = self._fetch("embed")[token_ids]
        for li in range(cfg.num_layers):
            p = self._layer_params(li)
            normed = layer_norm(x, p["ln1_g"], p["ln1_b"])
            q = split_heads(normed @ p["wq"], cfg.num_heads)
            k_new = split_heads(normed @ p["wk"], cfg.num_heads)
            v_new = split_heads(normed @ p["wv"], cfg.num_heads)
            k_new, v_new = self._maybe_quantize_kv(k_new, v_new)
            cache.append(li, k_new, v_new)
            seen = len(cache) + (0 if li == cfg.num_layers - 1 else k_new.shape[2])
            k, v = cache.get(li, upto=seen)
            # KV traffic accounting: with CPU attention the cache never
            # crosses the link; with GPU attention the old entries stream up.
            if not self.policy.attention_on_cpu:
                kv_bytes = int(k.nbytes) + int(v.nbytes)
                self._clock += self.transfer.transfer_time(self.cpu, self.gpu, kv_bytes)
                self.transfer.ledger.record(self.cpu, self.gpu, "kv_cache", kv_bytes)
            attn = self_attention(q, k, v, causal_mask=True) @ p["wo"]
            x = x + attn
            x = x + mlp(
                layer_norm(x, p["ln2_g"], p["ln2_b"]),
                p["w_in"], p["b_in"], p["w_out"], p["b_out"],
            )
            self._note_gpu_usage()
        return x[:, -1, :] @ self._fetch("lm_head")

    def generate(
        self,
        prompt_ids: np.ndarray,
        gen_len: int,
        rng: np.random.Generator | None = None,
        temperature: float = 0.0,
    ) -> FunctionalRunResult:
        """Prefill + autoregressive decode under the policy."""
        if gen_len <= 0:
            raise ConfigError("gen_len must be positive")
        batch, s = prompt_ids.shape
        cache = KVCache(self.config, batch, capacity=s + gen_len)
        out = np.empty((batch, gen_len), dtype=np.int64)
        logits = self.forward(prompt_ids, cache)
        for t in range(gen_len):
            if temperature > 0:
                if rng is None:
                    raise ConfigError("temperature sampling requires an rng")
                nxt = temperature_sample(logits, temperature, rng)
            else:
                nxt = greedy_sample(logits)
            out[:, t] = nxt
            if t + 1 < gen_len:
                logits = self.forward(nxt[:, None], cache)
        traffic = {}
        for (src, dst, cat), nbytes in self.transfer.ledger.bytes_moved.items():
            traffic[cat] = traffic.get(cat, 0.0) + nbytes
        return FunctionalRunResult(
            token_ids=out,
            simulated_seconds=self._clock,
            peak_gpu_bytes=self._peak_gpu,
            traffic_by_category=traffic,
        )
