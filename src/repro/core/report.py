"""Result containers returned by the engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.offload.policy import OffloadPolicy
from repro.parallel.controller import ParallelismPlan
from repro.perfmodel.latency import LatencyBreakdown
from repro.perfmodel.notation import Workload


@dataclass(frozen=True)
class InferenceReport:
    """One engine run: who, with what policy, how fast.

    Fields mirror the paper's Table 3 columns: batch geometry, wg/cg/hg
    placement percentages, total memory consumption and throughput.
    """

    engine: str
    workload: Workload
    policy: OffloadPolicy
    breakdown: LatencyBreakdown
    gpu_bytes: float
    cpu_bytes: float
    parallelism: Optional[ParallelismPlan] = None

    @property
    def throughput(self) -> float:
        """Tokens generated per second."""
        return self.breakdown.throughput(self.workload)

    @property
    def total_seconds(self) -> float:
        return self.breakdown.total_seconds

    @property
    def total_memory_bytes(self) -> float:
        """Table 3's "mem" column: GPU + host bytes in use."""
        return self.gpu_bytes + self.cpu_bytes

    def normalized_to(self, reference: "InferenceReport") -> float:
        """Table 3's "norm tput": this engine / reference engine."""
        return self.throughput / reference.throughput

    def table_row(self) -> dict[str, object]:
        """Table 3-shaped row for the benchmark harness."""
        return {
            "framework": self.engine,
            "len": self.workload.gen_len,
            "bsz": self.workload.block_size,
            "wg": round(100 * self.policy.wg),
            "cg": round(100 * self.policy.cg),
            "hg": round(100 * self.policy.hg),
            "mem_gb": round(self.total_memory_bytes / 1e9),
            "tput": round(self.throughput, 1),
        }
