"""LM-Offload engine: model-guided policy + parallelism planning.

Planning is two-pass, mirroring how the paper's pieces compose:

1. a provisional policy search under default threading estimates the I/O
   volumes each of the five load/store tasks will carry;
2. Algorithm 3 allocates threads against those volumes and the attention
   op graph, yielding the controlled CPU execution context;
3. the quantization-aware policy search re-runs under the controlled
   context (thread allocation shifts the CPU-attention/GPU trade-off, so
   placement can change).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.core.report import InferenceReport
from repro.obs.profiling import PROFILER, span
from repro.hardware.platform import Platform
from repro.offload.planner import PolicyPlanner
from repro.offload.policy import OffloadPolicy
from repro.parallel.controller import ParallelismController, ParallelismPlan
from repro.parallel.profiles import build_default_profiles
from repro.parallel.speedup import ContentionModel
from repro.parallel.topology import CpuTopology
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.runtime.graph import build_attention_graph


@dataclass
class LMOffloadEngine:
    """The full system (paper §5's "LM-Offload" rows)."""

    platform: Platform
    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "lm-offload"

    def __post_init__(self) -> None:
        #: Active degradation rung (``None`` = nominal); see
        #: :data:`repro.faults.LADDER` and :meth:`set_degradation`.
        self._degradation = None
        self._rebuild()

    def _rebuild(self) -> None:
        """Derive every platform-dependent structure (and drop the plan
        memo — a plan is only valid for the platform it was searched on)."""
        self.hw = HardwareParams.from_platform(self.platform)
        self.topology = CpuTopology.from_device(self.platform.cpu)
        self.contention = ContentionModel(self.topology, self.platform.cache)
        self.profiles = build_default_profiles(self.contention)
        #: Engine-lifetime memo for :meth:`plan_cached` (keyed by the frozen
        #: workload).  Serving prices thousands of steps against a handful
        #: of distinct geometries; each must pay for one search only.
        self._plan_memo: dict[Workload, tuple] = {}

    def retarget(self, platform: Platform) -> None:
        """Point the engine at a (possibly degraded) platform.

        The drift watchdog calls this when the effective hardware deviates
        beyond tolerance: every derived structure (hardware rates, CPU
        topology, contention model, thread profiles) is rebuilt from the
        new specs and all :meth:`plan_cached` entries are invalidated, so
        the next plan request replans from scratch against reality.
        """
        self.platform = platform
        self._rebuild()

    def set_degradation(self, rung) -> None:
        """Engage a :class:`~repro.faults.DegradationRung` (``None`` resets).

        ``force_quant`` constrains the policy search to quantized W/KV
        candidates; ``force_cpu_attention`` pins attention to the CPU so
        the KV cache stays off the (degraded) interconnect.  Invalidates
        the plan memo — rung changes change the search space.
        """
        self._degradation = rung
        self._plan_memo = {}

    @property
    def calibration(self):
        """Calibration constants (uniform accessor across all engines)."""
        return self.config.calibration

    # -- contexts ---------------------------------------------------------

    def default_context(self) -> CpuExecutionContext:
        return CpuExecutionContext.pytorch_default(self.topology, self.contention)

    def _planner(
        self, ctx: CpuExecutionContext, mem_cache: dict | None = None
    ) -> PolicyPlanner:
        rung = self._degradation
        allow_gpu_attention = self.config.allow_gpu_attention
        require_quant = False
        if rung is not None:
            require_quant = rung.force_quant and self.config.quant_aware
            if rung.force_cpu_attention:
                allow_gpu_attention = False
        return PolicyPlanner(
            hw=self.hw,
            cpu_ctx=ctx,
            quant_aware=self.config.quant_aware,
            quant=self.config.quant,
            wg_step=self.config.wg_step,
            allow_gpu_attention=allow_gpu_attention,
            require_quant=require_quant,
            mem_cache=mem_cache,
        )

    def planner(self, ctx: CpuExecutionContext | None = None) -> PolicyPlanner:
        """A policy planner on this engine's hardware (public hook for
        geometry searches and diagnostics — e.g. surfacing
        ``last_geometry_failures`` in the CLI)."""
        return self._planner(ctx or self.default_context())

    def _io_volumes(self, workload: Workload, policy: OffloadPolicy) -> dict[str, float]:
        """Per-decode-step byte volumes of the five I/O tasks."""
        model = CostModel(
            workload, policy, self.hw, self.default_context(), self.config.calibration
        )
        mid = max(0, (workload.gen_len - 1) // 2)
        stored = model.kv_store_bytes_per_token()
        ctx_len = workload.prompt_len + 1 + mid
        streamed = 0.0 if policy.attention_on_cpu else (1.0 - policy.cg)
        act = model.fp.activation_bytes_per_layer
        return {
            "load_weight": model.offloaded_weight_bytes_per_layer()
            * workload.model.num_layers,
            "load_cache": ctx_len * stored * streamed * workload.model.num_layers,
            "store_cache": stored * streamed * workload.model.num_layers,
            "load_activation": act * workload.model.num_layers,
            "store_activation": act * workload.model.num_layers,
        }

    def plan_parallelism(
        self, workload: Workload, policy: OffloadPolicy
    ) -> ParallelismPlan:
        """Run Algorithm 3 for the given policy's I/O volumes."""
        iters = workload.model.num_layers * policy.num_gpu_batches
        # Per-iteration volumes: the controller reasons about one
        # (layer, batch) schedule step at a time.
        volumes = {
            task: vol / iters
            for task, vol in self._io_volumes(workload, policy).items()
        }
        controller = ParallelismController(
            topology=self.topology,
            contention=self.contention,
            profiles=self.profiles,
            io_volumes=volumes,
        )
        graph = build_attention_graph(min(4, max(1, policy.num_gpu_batches)))
        pcie = self.hw.pcie_bdw * self.config.calibration.pcie_efficiency
        wire = {task: vol / pcie for task, vol in volumes.items()}
        return controller.plan(graph, io_wire_seconds=wire)

    # -- the public API ---------------------------------------------------

    def plan(self, workload: Workload) -> tuple[OffloadPolicy, CpuExecutionContext, ParallelismPlan | None]:
        """Two-pass planning; returns (policy, cpu context, thread plan).

        Pass 2's policy search runs under the controlled *compute*
        threading but without per-task staging-thread limits (those are a
        refinement tied to a specific policy's volumes); the final thread
        plan is then rebuilt for the policy actually chosen.

        Pass 1's results seed pass 2 twice over: the shared ``mem_cache``
        replays every memory-feasibility verdict (memory needs are
        context-independent), and the pass-1 policy joins pass 2's
        candidate set so the known-good point survives any LP drift under
        the controlled threading.
        """
        with span("engine.plan"):
            base_ctx = self.default_context()
            mem_cache: dict = {}
            with span("engine.plan.pass1"):
                policy, _ = self._planner(base_ctx, mem_cache).search(workload)
            if not self.config.parallelism_control:
                return policy, base_ctx, None
            plan = self.plan_parallelism(workload, policy)
            search_ctx = CpuExecutionContext.from_plan(
                self.topology, self.contention, plan
            )
            search_ctx.io_staging_threads = {}
            with span("engine.plan.pass2"):
                policy, _ = self._planner(search_ctx, mem_cache).search(
                    workload, seed=policy
                )
            plan = self.plan_parallelism(workload, policy)
            ctx = CpuExecutionContext.from_plan(self.topology, self.contention, plan)
            return policy, ctx, plan

    def plan_cached(
        self, workload: Workload
    ) -> tuple[OffloadPolicy, CpuExecutionContext, ParallelismPlan | None]:
        """Memoized :meth:`plan` — the planned-step costing hook.

        Repeat callers with the same (frozen, hashable) workload — the
        serving simulator's step oracle, sweep harnesses — get the searched
        (policy, context, thread plan) back without re-running the two-pass
        search.  The underlying caches (planner mem-cache, contention memo)
        already make a repeat search cheap; this makes it free.
        """
        hit = self._plan_memo.get(workload)
        if PROFILER.enabled:
            PROFILER.cache("engine.plan_memo", hit=hit is not None)
        if hit is None:
            hit = self._plan_memo[workload] = self.plan(workload)
        return hit

    def planned_cost_model(self, workload: Workload) -> CostModel:
        """Plan (memoized) and bind the cost model — one call from any
        (prompt_len, gen_len, batch geometry) point to per-step prices."""
        policy, ctx, _ = self.plan_cached(workload)
        return CostModel(workload, policy, self.hw, ctx, self.config.calibration)

    def run(
        self, workload: Workload, policy: OffloadPolicy | None = None
    ) -> InferenceReport:
        """Plan (unless a policy is forced) and evaluate end to end."""
        if policy is None:
            policy, ctx, plan = self.plan(workload)
        else:
            ctx, plan = self.default_context(), None
            if self.config.parallelism_control:
                plan = self.plan_parallelism(workload, policy)
                ctx = CpuExecutionContext.from_plan(self.topology, self.contention, plan)
        model = CostModel(workload, policy, self.hw, ctx, self.config.calibration)
        breakdown = model.breakdown()
        return InferenceReport(
            engine=self.name,
            workload=workload,
            policy=policy,
            breakdown=breakdown,
            gpu_bytes=model.gpu_bytes_required(),
            cpu_bytes=model.cpu_bytes_required(),
            parallelism=plan,
        )
