"""Functional zig-zag block execution (Algorithm 1, for real).

:class:`BlockRunner` generalises :class:`~repro.core.functional.FunctionalEngine`
to multiple GPU batches: a block of ``num_gpu_batches`` independent batches
traverses the layers together, with each layer's parameters fetched *once*
per layer sweep and reused across every batch — exactly the weight-reuse
amortisation that makes FlexGen's zig-zag schedule worthwhile.  Comparing
its weight traffic against per-batch sequential execution demonstrates the
reuse factor numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.core.functional import FunctionalEngine, FunctionalRunResult
from repro.hardware.platform import Platform, small_test_platform
from repro.models.layers import layer_norm, mlp, self_attention, split_heads
from repro.models.sampling import greedy_sample
from repro.models.transformer import KVCache, TransformerWeights
from repro.offload.policy import OffloadPolicy


@dataclass
class BlockRunner:
    """Runs ``num_gpu_batches`` batches through the layer sweep together."""

    weights: TransformerWeights
    policy: OffloadPolicy
    platform: Platform = field(default_factory=small_test_platform)

    def __post_init__(self) -> None:
        if self.policy.num_gpu_batches < 1:
            raise ConfigError("num_gpu_batches must be >= 1")
        # Reuse FunctionalEngine's placement/transfer machinery.
        self._engine = FunctionalEngine(
            weights=self.weights, policy=self.policy, platform=self.platform
        )

    def _sweep(
        self, xs: list[np.ndarray], caches: list[KVCache]
    ) -> list[np.ndarray]:
        """One pass over all layers; each layer's params fetched once."""
        cfg = self.weights.config
        engine = self._engine
        for li in range(cfg.num_layers):
            params = engine._layer_params(li)  # one fetch per layer sweep
            for b, (x, cache) in enumerate(zip(xs, caches)):
                normed = layer_norm(x, params["ln1_g"], params["ln1_b"])
                q = split_heads(normed @ params["wq"], cfg.num_heads)
                k_new = split_heads(normed @ params["wk"], cfg.num_heads)
                v_new = split_heads(normed @ params["wv"], cfg.num_heads)
                k_new, v_new = engine._maybe_quantize_kv(k_new, v_new)
                cache.append(li, k_new, v_new)
                seen = len(cache) + (
                    0 if li == cfg.num_layers - 1 else k_new.shape[2]
                )
                k, v = cache.get(li, upto=seen)
                attn = self_attention(q, k, v, causal_mask=True) @ params["wo"]
                x = x + attn
                x = x + mlp(
                    layer_norm(x, params["ln2_g"], params["ln2_b"]),
                    params["w_in"], params["b_in"],
                    params["w_out"], params["b_out"],
                )
                xs[b] = x
        return xs

    def generate_block(
        self, prompt_ids: np.ndarray, gen_len: int
    ) -> FunctionalRunResult:
        """Greedy generation for a whole block.

        ``prompt_ids``: (num_gpu_batches * gpu_batch_size, prompt_len).
        """
        if gen_len <= 0:
            raise ConfigError("gen_len must be positive")
        k = self.policy.num_gpu_batches
        bsz = self.policy.gpu_batch_size
        if prompt_ids.shape[0] != k * bsz:
            raise ConfigError(
                f"block expects {k * bsz} sequences, got {prompt_ids.shape[0]}"
            )
        engine = self._engine
        cfg = self.weights.config
        s = prompt_ids.shape[1]
        batches = [prompt_ids[i * bsz : (i + 1) * bsz] for i in range(k)]
        caches = [KVCache(cfg, bsz, capacity=s + gen_len) for _ in range(k)]
        out = np.empty((k * bsz, gen_len), dtype=np.int64)

        embed = engine._fetch("embed")
        lm_head_name = "lm_head"
        xs = [embed[b] for b in batches]
        xs = self._sweep(xs, caches)
        logits = [x[:, -1, :] @ engine._fetch(lm_head_name) for x in xs]
        for t in range(gen_len):
            next_ids = [greedy_sample(lg) for lg in logits]
            for i, ids in enumerate(next_ids):
                out[i * bsz : (i + 1) * bsz, t] = ids
            if t + 1 < gen_len:
                xs = [embed[ids[:, None]] for ids in next_ids]
                xs = self._sweep(xs, caches)
                logits = [x[:, -1, :] @ engine._fetch(lm_head_name) for x in xs]

        traffic = {}
        for (src, dst, cat), nbytes in engine.transfer.ledger.bytes_moved.items():
            traffic[cat] = traffic.get(cat, 0.0) + nbytes
        return FunctionalRunResult(
            token_ids=out,
            simulated_seconds=engine._clock,
            peak_gpu_bytes=engine._peak_gpu,
            traffic_by_category=traffic,
        )
