"""LM-Offload: the paper's primary contribution.

:class:`LMOffloadEngine` composes the substrates:

1. **Performance-model-guided policy search** (§3): a quantization-aware
   :class:`~repro.offload.planner.PolicyPlanner` choosing placement
   (wg/cg/hg), attention device, and per-tensor quantization.
2. **Thread-level parallelism control** (§4, Algorithm 3): a
   :class:`~repro.parallel.controller.ParallelismController` allocating
   intra/inter-op threads for compute and volume-proportional threads for
   the five I/O tasks.
3. The FlexGen-style overlapped zig-zag runtime underneath.

:class:`FunctionalEngine` (in :mod:`repro.core.functional`) runs *real*
NumPy inference through the same policies at tiny scale, verifying that
offloading + quantization preserve model outputs.
"""

from repro.core.config import EngineConfig
from repro.core.engine import LMOffloadEngine
from repro.core.report import InferenceReport
from repro.core.functional import FunctionalEngine, FunctionalRunResult
from repro.core.block_runner import BlockRunner

__all__ = [
    "EngineConfig",
    "LMOffloadEngine",
    "InferenceReport",
    "FunctionalEngine",
    "FunctionalRunResult",
    "BlockRunner",
]
