"""Benchmark harness support: paper reference data + experiment runners.

Every table and figure in the paper's evaluation has a runner here that
returns structured rows; the ``benchmarks/`` pytest-benchmark targets and
the examples print them.  Paper-measured values ship alongside so each
bench can report measured-vs-paper shape checks.
"""

from repro.bench.tables import format_table
from repro.bench.chaos import chaos_rows, run_chaos, write_bench_chaos
from repro.bench.fleet import fleet_rows, run_fleet_bench, write_bench_fleet
from repro.bench.serving import (
    run_serving_comparison,
    simulate_engine,
    write_bench_serving,
)
from repro.bench.spec import run_spec_sweep, spec_rows, write_bench_spec
from repro.bench.timing import run_bench_timing, write_bench_timing
from repro.bench.viz import hbar_chart, sparkline, sweep_summary
from repro.bench.whatif import run_whatif, sample_variants, whatif_rows
from repro.bench import paper_data
from repro.bench.experiments import (
    run_fig3_quant_strategies,
    run_fig4_breakdown,
    run_tab1_io_traffic,
    run_fig5_parallelism_sweep,
    run_tab3_overall,
    run_fig7_effective_quantization,
    run_fig8_parallelism_control,
    run_tab5_llc_misses,
    run_fig9_multigpu,
)

__all__ = [
    "format_table",
    "chaos_rows",
    "run_chaos",
    "write_bench_chaos",
    "fleet_rows",
    "run_fleet_bench",
    "write_bench_fleet",
    "run_serving_comparison",
    "simulate_engine",
    "write_bench_serving",
    "run_spec_sweep",
    "spec_rows",
    "write_bench_spec",
    "sample_variants",
    "run_bench_timing",
    "write_bench_timing",
    "hbar_chart",
    "sparkline",
    "sweep_summary",
    "run_whatif",
    "whatif_rows",
    "paper_data",
    "run_fig3_quant_strategies",
    "run_fig4_breakdown",
    "run_tab1_io_traffic",
    "run_fig5_parallelism_sweep",
    "run_tab3_overall",
    "run_fig7_effective_quantization",
    "run_fig8_parallelism_control",
    "run_tab5_llc_misses",
    "run_fig9_multigpu",
]
