"""Experiment runners — one per paper table/figure.

Each runner returns plain dict-rows so the pytest-benchmark targets,
examples and EXPERIMENTS.md generator all share one implementation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.baselines.flexgen import FlexGenEngine
from repro.baselines.zero_inference import ZeroInferenceEngine
from repro.bench import paper_data
from repro.core.engine import LMOffloadEngine
from repro.core.config import EngineConfig
from repro.errors import PolicyError
from repro.hardware.platform import Platform, single_a100
from repro.models.registry import get_model
from repro.offload.planner import PolicyPlanner
from repro.offload.policy import OffloadPolicy
from repro.parallel.controller import ParallelismController
from repro.parallel.llc import LLCModel
from repro.parallel.profiles import build_default_profiles
from repro.parallel.speedup import ContentionModel, ParallelismSetting
from repro.parallel.topology import CpuTopology
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.quant.config import QuantConfig
from repro.runtime.graph import build_attention_graph
from repro.units import dtype_bytes

Q4 = QuantConfig(bits=4, group_size=64)

#: The motivating workload of §3.1: OPT-30B, s=64, n=128, bsz=64, bls=640.
def motivating_workload(gen_len: int = 128) -> Workload:
    return Workload(get_model("opt-30b"), 64, gen_len, 64, 10)


def _default_ctx(platform: Platform) -> CpuExecutionContext:
    topo = CpuTopology.from_device(platform.cpu)
    return CpuExecutionContext.pytorch_default(topo, ContentionModel(topo, platform.cache))


# ---------------------------------------------------------------------------
# Figure 3 — offloading x quantization strategies
# ---------------------------------------------------------------------------

FIG3_STRATEGIES: list[tuple[str, bool, QuantConfig | None, QuantConfig | None]] = [
    ("cpu/none", True, None, None),
    ("cpu/w4", True, Q4, None),
    ("cpu/kv4", True, None, Q4),
    ("cpu/w4+kv4", True, Q4, Q4),
    ("gpu/none", False, None, None),
    ("gpu/w4", False, Q4, None),
    ("gpu/kv4", False, None, Q4),
    ("gpu/w4+kv4", False, Q4, Q4),
]


def run_fig3_quant_strategies(platform: Platform | None = None) -> list[dict[str, Any]]:
    """Throughput of every (attention placement, quantization) strategy,
    each at its best feasible placement fractions."""
    platform = platform or single_a100()
    hw = HardwareParams.from_platform(platform)
    ctx = _default_ctx(platform)
    planner = PolicyPlanner(hw=hw, cpu_ctx=ctx, quant_aware=True)
    workload = motivating_workload()
    rows = []
    for name, attn_cpu, wq, kq in FIG3_STRATEGIES:
        try:
            policy, tput = planner.search_fixed(workload, attn_cpu, wq, kq)
            rows.append(
                {
                    "strategy": name,
                    "tokens_per_s": round(tput, 1),
                    "wg": round(policy.wg, 2),
                    "cg": round(policy.cg, 2),
                    "policy": policy.describe(),
                }
            )
        except PolicyError as exc:
            rows.append({"strategy": name, "tokens_per_s": 0.0, "error": str(exc)})
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — time breakdown (quantize / dequantize / other)
# ---------------------------------------------------------------------------


def run_fig4_breakdown(platform: Platform | None = None) -> list[dict[str, Any]]:
    platform = platform or single_a100()
    hw = HardwareParams.from_platform(platform)
    ctx = _default_ctx(platform)
    planner = PolicyPlanner(hw=hw, cpu_ctx=ctx, quant_aware=True)
    workload = motivating_workload()
    rows = []
    for name, attn_cpu, wq, kq in FIG3_STRATEGIES:
        try:
            policy, _ = planner.search_fixed(workload, attn_cpu, wq, kq)
        except PolicyError:
            continue
        model = CostModel(workload, policy, hw, ctx)
        b = model.breakdown()
        q = b.quant_overheads
        quant = q["weight_quant_init"] + q["kv_prefill_quant"] + q["kv_new_quant"]
        dequant = q["weight_dequant"] + q["kv_old_dequant"]
        rows.append(
            {
                "strategy": name,
                "quantize_s": round(quant, 1),
                "dequantize_s": round(dequant, 1),
                "other_s": round(max(b.total_seconds - quant - dequant, 0.0), 1),
                "total_s": round(b.total_seconds, 1),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 1 — I/O traffic per generated token
# ---------------------------------------------------------------------------


def run_tab1_io_traffic(platform: Platform | None = None) -> list[dict[str, Any]]:
    platform = platform or single_a100()
    hw = HardwareParams.from_platform(platform)
    ctx = _default_ctx(platform)
    workload = motivating_workload()
    rows = []
    for label, policy in [
        (
            "with_offload",
            OffloadPolicy(
                wg=0.7, hg=0.0, attention_on_cpu=True,
                gpu_batch_size=64, num_gpu_batches=10,
            ),
        ),
        (
            "without_offload",
            OffloadPolicy(
                wg=0.3, cg=0.0, hg=0.0, attention_on_cpu=False,
                gpu_batch_size=64, num_gpu_batches=10,
            ),
        ),
    ]:
        model = CostModel(workload, policy, hw, ctx)
        traffic = model._traffic_totals()
        n = workload.gen_len
        for (src, dst, cat), nbytes in sorted(traffic.items()):
            rows.append(
                {
                    "case": label,
                    "direction": f"{src}->{dst}",
                    "tensor": cat,
                    "gb_per_token": round(nbytes / n / 1e9, 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — thread-level parallelism sweeps
# ---------------------------------------------------------------------------


def run_fig5_parallelism_sweep(
    platform: Platform | None = None,
    intra_points: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 56),
    inter_points: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 56, 112),
) -> dict[str, list[dict[str, Any]]]:
    """End-to-end throughput vs intra-op (inter at default 112) and
    vs inter-op (intra at default 56); OPT-30B, s=64, n=8, CPU attention."""
    platform = platform or single_a100()
    hw = HardwareParams.from_platform(platform)
    topo = CpuTopology.from_device(platform.cpu)
    contention = ContentionModel(topo, platform.cache)
    workload = motivating_workload(gen_len=8)
    policy = OffloadPolicy(
        wg=0.55, hg=0.0, attention_on_cpu=True, gpu_batch_size=64, num_gpu_batches=10
    )

    def tput(intra: int, inter: int) -> float:
        ctx = CpuExecutionContext(
            topology=topo,
            contention=contention,
            setting=ParallelismSetting(intra_op=intra, inter_op=inter),
            use_fine_grained_graph=True,
        )
        model = CostModel(workload, policy, hw, ctx)
        return model.breakdown().throughput(workload)

    out: dict[str, list[dict[str, Any]]] = {"intra": [], "inter": []}
    for t in intra_points:
        out["intra"].append({"threads": t, "tokens_per_s": round(tput(t, 112), 1)})
    for c in inter_points:
        out["inter"].append({"threads": c, "tokens_per_s": round(tput(56, c), 1)})
    return out


# ---------------------------------------------------------------------------
# Table 3 — overall comparison
# ---------------------------------------------------------------------------


def run_tab3_overall(
    platform: Platform | None = None,
    models: tuple[str, ...] = ("opt-30b", "opt-66b", "llama-30b", "llama-65b"),
    gen_lens: tuple[int, ...] = (8, 16, 32, 64, 128),
) -> list[dict[str, Any]]:
    platform = platform or single_a100()
    rows: list[dict[str, Any]] = []
    for mname in models:
        model = get_model(mname)
        fg = FlexGenEngine(single_a100())
        zr = ZeroInferenceEngine(single_a100())
        lm = LMOffloadEngine(single_a100())
        for n in gen_lens:
            ref = paper_data.TAB3[mname][n]
            bls, fg_paper = ref["flexgen"]
            zr_bsz, zr_paper = ref["zero-inference"]
            _, lm_paper = ref["lm-offload"]
            b, k = paper_data.bls_split(bls)
            workload = Workload(model, 64, n, b, k)
            fg_rep = fg.run(workload)
            zr_rep = zr.run(workload, batch=zr_bsz)
            lm_rep = lm.run(workload)
            for rep, paper_tput in (
                (fg_rep, fg_paper), (zr_rep, zr_paper), (lm_rep, lm_paper)
            ):
                row = rep.table_row()
                row["model"] = mname
                row["paper_tput"] = paper_tput
                row["norm_tput"] = round(rep.normalized_to(lm_rep), 2)
                rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — performance modeling only (parallelism control disabled)
# ---------------------------------------------------------------------------


def run_fig7_effective_quantization(
    platform: Platform | None = None,
    models: tuple[str, ...] = ("opt-30b", "llama-30b"),
    gen_lens: tuple[int, ...] = (8, 16, 32, 64, 128),
) -> list[dict[str, Any]]:
    rows = []
    for mname in models:
        model = get_model(mname)
        fg = FlexGenEngine(single_a100())
        lm = LMOffloadEngine(
            single_a100(), config=EngineConfig(parallelism_control=False)
        )
        for n in gen_lens:
            bls, _ = paper_data.TAB3[mname][n]["flexgen"]
            b, k = paper_data.bls_split(bls)
            workload = Workload(model, 64, n, b, k)
            fg_rep = fg.run(workload)
            lm_rep = lm.run(workload)
            rows.append(
                {
                    "model": mname,
                    "len": n,
                    "flexgen": round(fg_rep.throughput, 1),
                    "lm_offload_no_pc": round(lm_rep.throughput, 1),
                    "gain": round(lm_rep.throughput / fg_rep.throughput, 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — parallelism control: six-task times and end-to-end
# ---------------------------------------------------------------------------


def _fig8_setup(platform: Platform):
    hw = HardwareParams.from_platform(platform)
    topo = CpuTopology.from_device(platform.cpu)
    contention = ContentionModel(topo, platform.cache)
    workload = motivating_workload(gen_len=8)
    policy = OffloadPolicy(
        wg=0.55, hg=0.0, attention_on_cpu=True, gpu_batch_size=64, num_gpu_batches=10
    )
    return hw, topo, contention, workload, policy


def run_fig8_parallelism_control(platform: Platform | None = None) -> dict[str, Any]:
    platform = platform or single_a100()
    hw, topo, contention, workload, policy = _fig8_setup(platform)

    engine = LMOffloadEngine(platform)
    plan = engine.plan_parallelism(workload, policy)
    default_ctx = CpuExecutionContext.pytorch_default(topo, contention)
    controlled_ctx = CpuExecutionContext.from_plan(topo, contention, plan)

    def task_totals(ctx: CpuExecutionContext) -> dict[str, float]:
        model = CostModel(workload, policy, hw, ctx)
        iters = workload.model.num_layers * policy.num_gpu_batches
        mid = model.decode_task_costs(max(0, (workload.gen_len - 1) // 2))
        return {k: v * iters for k, v in mid.as_dict().items()}

    def end_to_end(ctx: CpuExecutionContext) -> float:
        return CostModel(workload, policy, hw, ctx).breakdown().total_seconds

    default_tasks = task_totals(default_ctx)
    controlled_tasks = task_totals(controlled_ctx)
    reductions = {
        k: (1 - controlled_tasks[k] / default_tasks[k]) if default_tasks[k] > 0 else 0.0
        for k in default_tasks
    }
    nonzero = [r for k, r in reductions.items() if default_tasks[k] > 0]
    return {
        "plan": plan.describe(),
        "default_tasks_s": {k: round(v, 3) for k, v in default_tasks.items()},
        "controlled_tasks_s": {k: round(v, 3) for k, v in controlled_tasks.items()},
        "compute_reduction": round(reductions["compute"], 3),
        "avg_task_reduction": round(sum(nonzero) / len(nonzero), 3),
        "end_to_end_reduction": round(
            1 - end_to_end(controlled_ctx) / end_to_end(default_ctx), 3
        ),
    }


# ---------------------------------------------------------------------------
# Table 5 — LLC misses
# ---------------------------------------------------------------------------


def run_tab5_llc_misses(platform: Platform | None = None) -> dict[str, Any]:
    platform = platform or single_a100()
    hw, topo, contention, workload, policy = _fig8_setup(platform)
    engine = LMOffloadEngine(platform)
    plan = engine.plan_parallelism(workload, policy)

    # CPU-side traffic: the offloaded attention streams the whole KV cache
    # (plus writes of comparable volume for intermediates) every token.
    h1 = workload.model.hidden_size
    l = workload.model.num_layers
    bls = workload.block_size
    total = 0.0
    for t in range(workload.gen_len):
        ctx_len = workload.prompt_len + 1 + t
        total += 2 * ctx_len * h1 * bls * dtype_bytes("fp16") * l
    from repro.hardware.cache import CacheHierarchy

    llc = LLCModel(
        cache=CacheHierarchy(
            llc_bytes=platform.cache.llc_bytes, compulsory_ratio=0.15
        ),
        store_rfo_factor=1.9,
    )

    default = llc.estimate(
        ParallelismSetting(intra_op=topo.physical_cores, inter_op=topo.hardware_threads),
        co_running_ops=min(topo.hardware_threads, 24),
        load_traffic=total,
        store_traffic=total,
    )
    controlled = llc.estimate(
        plan.compute,
        co_running_ops=plan.compute.inter_op,
        load_traffic=total,
        store_traffic=total,
    )
    return {
        "default": {"load": default.load_misses, "store": default.store_misses},
        "controlled": {
            "load": controlled.load_misses,
            "store": controlled.store_misses,
        },
        "reduction": round(controlled.reduction_vs(default), 3),
    }


# ---------------------------------------------------------------------------
# Figure 9 — multi-GPU weak scaling
# ---------------------------------------------------------------------------


def run_fig9_multigpu(
    models: tuple[str, ...] = ("opt-13b", "llama-13b"),
    gpu_counts: tuple[int, ...] = (1, 2, 4),
) -> list[dict[str, Any]]:
    from repro.multigpu.pipeline_parallel import weak_scaling_sweep

    rows = []
    for mname in models:
        sweep = weak_scaling_sweep(get_model(mname), gpu_counts=gpu_counts)
        for fg_rep, lm_rep in zip(sweep["flexgen"], sweep["lm-offload"]):
            rows.append(
                {
                    "model": mname,
                    "gpus": fg_rep.num_gpus,
                    "flexgen": round(fg_rep.throughput, 1),
                    "lm_offload": round(lm_rep.throughput, 1),
                    "gain": round(lm_rep.throughput / fg_rep.throughput, 2),
                }
            )
    return rows
