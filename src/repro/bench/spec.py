"""Speculation benchmark: where draft-tree decoding beats plain LM-Offload.

Sweeps context length (4k -> 128k) x acceptance rate ``alpha`` for the
speculative engine against the plain LM-Offload engine on the same
platform, pricing both through :class:`~repro.serving.costing.StepCostOracle`
— the identical machinery the serving/chaos/fleet drivers use — so every
cell in ``BENCH_spec.json`` is the price a serving step would actually
pay.  The payload is fully analytic (no wall clock, no RNG): two runs
with the same arguments are byte-identical, which CI pins with ``cmp``.

The sweep uses opt-6.7b at batch 1 — the TriForce single-stream
long-context scenario.  At 128k context the per-sequence KV cache is
~68 GB, which fits the A100 host's 240 GB; opt-30b would not (its 128k
KV alone is ~180 GB), so a bigger model here would just measure the
planner refusing to plan.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any

from repro.obs.profiling import span
from repro.perfmodel.latency import CostModel
from repro.perfmodel.notation import Workload
from repro.perfmodel.speculation import SpecConfig

SCHEMA_VERSION = 1

#: Context sweep: 4k -> 128k, the regime where KV traffic goes from
#: comparable-to-weights to dominant (all multiples of the oracle's
#: 32-token bucket, so each context prices at exactly itself).
CONTEXTS = (4096, 16384, 65536, 131072)
QUICK_CONTEXTS = (4096, 65536)

ALPHAS = (0.5, 0.7, 0.9)
QUICK_ALPHAS = (0.7,)

DEFAULT_MODEL = "opt-6.7b"


def _oracle(engine, model, ctx: int):
    from repro.serving.costing import StepCostOracle

    return StepCostOracle(
        engine, model, num_gpu_batches=1, plan_prompt_len=ctx, plan_gen_len=32
    )


def _sweep_cell(model, base_oracle, ctx: int, alpha: float,
                spec: SpecConfig) -> dict[str, Any]:
    """Price one (context, alpha) cell: base vs speculative per-token
    decode seconds at concurrency 1, plus which tree prefix won."""
    from repro.baselines import SpecOffloadEngine
    from repro.hardware import single_a100

    engine = SpecOffloadEngine(single_a100(), spec=replace(spec, alpha=alpha))
    oracle = _oracle(engine, model, ctx)
    spec_s = oracle.decode_step_seconds(1, ctx)
    base_s = base_oracle.decode_step_seconds(1, ctx)

    # Introspection: rebuild the priced cost model (same workload the
    # oracle's scalar reference uses) and ask the engine which depth won.
    policy, cpu_ctx = oracle.planned(1)
    wl = Workload(model, ctx, 2, policy.gpu_batch_size, policy.num_gpu_batches)
    cm = CostModel(wl, policy, engine.hw, cpu_ctx, engine.calibration)
    summary = engine.speculation_summary(cm)

    return {
        "context": ctx,
        "alpha": alpha,
        "base_step_s": base_s,
        "spec_step_s": spec_s,
        "base_tokens_per_s": 1.0 / base_s,
        "spec_tokens_per_s": 1.0 / spec_s,
        "speedup": base_s / spec_s,
        "chosen_depth": summary["chosen_depth"],
        "tokens_per_step": summary["tokens_per_step"],
    }


def run_spec_sweep(
    model_name: str = DEFAULT_MODEL,
    contexts: tuple[int, ...] | None = None,
    alphas: tuple[float, ...] | None = None,
    spec: SpecConfig | None = None,
    quick: bool = False,
) -> dict[str, Any]:
    """The full context x alpha sweep -> the JSON-ready payload."""
    from repro.core import LMOffloadEngine
    from repro.hardware import single_a100
    from repro.models import get_model

    contexts = contexts or (QUICK_CONTEXTS if quick else CONTEXTS)
    alphas = alphas or (QUICK_ALPHAS if quick else ALPHAS)
    spec = spec or SpecConfig()
    model = get_model(model_name)

    with span("spec.run"):
        cells: list[dict[str, Any]] = []
        for ctx in contexts:
            # One base plan per context, shared across the alpha axis.
            base_oracle = _oracle(LMOffloadEngine(single_a100()), model, ctx)
            for alpha in alphas:
                cells.append(_sweep_cell(model, base_oracle, ctx, alpha, spec))

        best = max(cells, key=lambda c: c["speedup"])
        long_ctx_wins = sum(
            1 for c in cells if c["context"] >= 65536 and c["speedup"] > 1.0
        )
        payload = {
            "schema_version": SCHEMA_VERSION,
            "model": model_name,
            "spec": spec.to_dict(),
            "sweep": {
                "contexts": list(contexts),
                "alphas": list(alphas),
                "batch": 1,
                "num_gpu_batches": 1,
            },
            "cells": cells,
            "comparison": {
                "best_speedup": best["speedup"],
                "best_cell": {"context": best["context"], "alpha": best["alpha"]},
                "long_context_wins": long_ctx_wins,
            },
        }
    return payload


def spec_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten the payload into ``format_table`` rows."""
    return [
        {
            "ctx": c["context"],
            "alpha": c["alpha"],
            "base tok/s": f"{c['base_tokens_per_s']:.2f}",
            "spec tok/s": f"{c['spec_tokens_per_s']:.2f}",
            "speedup": f"{c['speedup']:.2f}x",
            "depth": c["chosen_depth"],
            "tok/step": f"{c['tokens_per_step']:.2f}",
        }
        for c in payload["cells"]
    ]


def write_bench_spec(path: str = "BENCH_spec.json", **kwargs: Any) -> dict[str, Any]:
    """Run the sweep and write the payload to ``path``."""
    payload = run_spec_sweep(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
