"""Chaos benchmark: every engine through every fault scenario.

``python -m repro chaos`` replays one frozen arrival trace through each
engine under each bundled fault scenario (plus a fault-free baseline for
reference) and writes ``BENCH_chaos.json``.  The headline questions are
robustness ones:

* does any (engine, scenario) pair crash?  (It must not — every rejection
  has to be a typed drop; ``accounting_ok`` asserts
  ``finished + dropped + still-queued-at-end == arrived`` per run.)
* how much goodput/SLO attainment survives each fault class, relative to
  the same engine's fault-free run on the same trace?
* how often did each engine replan, walk the degradation ladder, or shed
  requests, and what availability / degraded-time fraction resulted?

Every run is seeded end to end — trace, fault windows, abort draws and
backoff jitter all derive from one ``--seed`` — so two invocations with
the same arguments produce byte-identical JSON (asserted in
``tests/test_chaos_serving.py`` and by the acceptance criteria).

Engines are constructed *fresh per run*: chaos runs retarget the engine
at degraded platforms mid-flight, and although the simulator restores the
base platform on exit, sharing one engine across scenarios would let a
bug in that restore leak state between runs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.faults import make_scenario
from repro.faults.scenarios import SCENARIO_SWEEP_ORDER
from repro.models import get_model
from repro.serving.arrivals import RequestTrace, default_trace
from repro.serving.metrics import compute_metrics
from repro.serving.policies import make_policy
from repro.serving.request import RequestState
from repro.serving.simulator import ServingConfig, ServingResult, ServingSimulator
from repro.bench.serving import ENGINES, _make_engine

SCHEMA_VERSION = 1

#: Scenario order is fixed (not dict order) so the JSON layout is stable;
#: shared with the faulted drift audit so both artifacts sweep the same
#: scenarios in the same order.
SCENARIO_ORDER = SCENARIO_SWEEP_ORDER

#: Max steady-state relative error (Eq. 1/2 prediction vs the overlapped
#: executor) allowed per degraded capability window when the drift gate
#: is on.  Matches the faulted drift audit's default.
DEFAULT_DRIFT_TOLERANCE = 0.10

#: Max relative deviation between a step price the serving loop actually
#: charged and a fresh engine's price on the exactly-faulted platform at
#: that instant (the *serving* drift gate).  Looser than the model-level
#: gate by design: the watchdog deliberately tolerates hardware drift up
#: to ``ServingConfig.drift_tolerance`` before retargeting, so executed
#: prices may legitimately be stale by about that much.
DEFAULT_SERVING_DRIFT_TOLERANCE = 0.15


def _accounting(result: ServingResult) -> dict[str, Any]:
    """Conservation check: every arrived request ends in exactly one of
    finished/dropped (the loop never exits with work in flight)."""
    finished = len(result.finished)
    dropped = len(result.dropped)
    unresolved = [
        r.rid
        for r in result.requests
        if r.state not in (RequestState.FINISHED, RequestState.DROPPED)
    ]
    untyped = [
        r.rid for r in result.dropped if r.drop_reason is None
    ]
    return {
        "arrived": len(result.requests),
        "finished": finished,
        "dropped": dropped,
        "unresolved_rids": unresolved,
        "untyped_drop_rids": untyped,
        "accounting_ok": not unresolved and not untyped
        and finished + dropped == len(result.requests),
    }


def _drift_window(
    engine_name: str,
    schedule,
    start: float,
    end: float,
    config: ServingConfig,
    model_cfg,
) -> dict[str, Any]:
    """Price one degraded capability window: the engine replans on the
    faulted platform and Eq. 1/2's steady-state step time is checked
    against the overlapped executor on the same task costs.

    This is the *serving* companion of the faulted drift audit: instead
    of a fixed policy grid it prices the plan the engine itself would
    pick for the serving workload under that window's degradation — the
    exact numbers the admission loop trusts mid-outage.
    """
    from repro.errors import MemoryCapacityError, PolicyError
    from repro.perfmodel.latency import CostModel
    from repro.perfmodel.notation import Workload
    from repro.runtime.executor import OverlappedExecutor

    engine = _make_engine(engine_name)
    effective = engine.platform.with_faults(schedule, (start + end) / 2.0)
    engine.retarget(effective)
    k = config.num_gpu_batches
    b = max(1, -(-config.max_batch // k))
    workload = Workload(model_cfg, 64, 32, b, k)
    record: dict[str, Any] = {
        "window": {"start_s": start, "end_s": end, "occurrences": 1},
    }
    try:
        policy, cpu_ctx, _ = engine.plan_cached(workload)
    except (PolicyError, MemoryCapacityError) as exc:
        # An unplannable window is a capacity verdict, not model drift;
        # the serving loop sheds under it (INFEASIBLE / degradation
        # ladder), so the gate records it without failing.
        record["plannable"] = False
        record["plan_error"] = f"{type(exc).__name__}: {exc}"
        return record
    model = CostModel(workload, policy, engine.hw, cpu_ctx, engine.calibration)
    iters = model_cfg.num_layers * policy.num_gpu_batches
    costs = model.decode_task_costs(max(0, (workload.gen_len - 1) // 2))
    predicted = CostModel.step_seconds(costs) * iters
    executor = OverlappedExecutor(
        num_layers=model_cfg.num_layers, num_gpu_batches=policy.num_gpu_batches
    )
    simulated = executor.steady_state_token_time(costs, warmup=3)
    rel_err = abs(simulated - predicted) / simulated if simulated > 0 else 0.0
    record.update(
        {
            "plannable": True,
            "predicted_s": predicted,
            "simulated_s": simulated,
            "rel_err": rel_err,
        }
    )
    return record


def _drift_sweep(
    engines: tuple[str, ...],
    schedules: dict[tuple[str, str], Any],
    scenarios: tuple[str, ...],
    config: ServingConfig,
    model_name: str,
    tolerance: float,
) -> dict[str, Any]:
    """The drift-gate payload section: every engine's degraded capability
    windows (deduped by fault signature — eight identical link flaps
    price once) checked at ``tolerance``.  Scenarios with no capability
    windows (pure transient-abort storms) contribute nothing: aborts
    perturb outcomes, not step prices."""
    from repro.faults.overlay import capability_windows, fault_signature

    model_cfg = get_model(model_name)
    doc_engines: dict[str, Any] = {}
    over: list[str] = []
    all_errs: list[float] = []
    worst_ref: tuple[float, str] | None = None
    for engine_name in engines:
        doc_scenarios: dict[str, Any] = {}
        for scenario_name in scenarios:
            schedule = schedules[(engine_name, scenario_name)]
            windows: list[dict[str, Any]] = []
            seen: dict[tuple, int] = {}
            for start, end, active in capability_windows(schedule):
                sig = fault_signature(active)
                if sig in seen:
                    windows[seen[sig]]["window"]["occurrences"] += 1
                    continue
                seen[sig] = len(windows)
                record = _drift_window(
                    engine_name, schedule, start, end, config, model_cfg
                )
                record["window"]["kinds"] = sorted(
                    {f.kind.value for f in active}
                )
                idx = len(windows)
                windows.append(record)
                if record["plannable"]:
                    err = record["rel_err"]
                    all_errs.append(err)
                    ref = f"{engine_name}/{scenario_name}/{idx}"
                    if err > tolerance:
                        over.append(ref)
                    if worst_ref is None or (err, ref) > worst_ref:
                        worst_ref = (err, ref)
            doc_scenarios[scenario_name] = {
                "num_unique_windows": len(windows),
                "windows": windows,
                "max_rel_err": max(
                    (w["rel_err"] for w in windows if w["plannable"]),
                    default=0.0,
                ),
            }
        doc_engines[engine_name] = doc_scenarios
    return {
        "tolerance": tolerance,
        "workload": {
            "prompt_len": 64,
            "gen_len": 32,
            "max_batch": config.max_batch,
            "num_gpu_batches": config.num_gpu_batches,
        },
        "engines": doc_engines,
        "summary": {
            "num_windows_priced": len(all_errs),
            "max_rel_err": worst_ref[0] if worst_ref is not None else 0.0,
            "worst": worst_ref[1] if worst_ref is not None else None,
            "mean_rel_err": (
                sum(all_errs) / len(all_errs) if all_errs else 0.0
            ),
            "over_tolerance": sorted(over),
            "ok": not over,
        },
    }


def _rung_intervals(result: ServingResult) -> list[tuple[float, float]]:
    """Clock intervals during which a non-nominal degradation rung was
    engaged, reconstructed from the watchdog's transition log.  Steps
    executed inside them were priced from a rung-constrained search space
    a fresh unconstrained engine will not reproduce, so the serving drift
    gate skips them."""
    from repro.faults import LADDER

    assert result.fault_stats is not None
    nominal = LADDER[0].name
    intervals: list[tuple[float, float]] = []
    open_since: float | None = None
    for now, _from_rung, to_rung, _cause in result.fault_stats.transitions:
        if to_rung != nominal and open_since is None:
            open_since = now
        elif to_rung == nominal and open_since is not None:
            intervals.append((open_since, now))
            open_since = None
    if open_since is not None:
        intervals.append((open_since, result.makespan_s))
    return intervals


def _serving_drift_run(
    engine_name: str,
    schedule,
    result: ServingResult,
    config: ServingConfig,
    model_cfg,
    tolerance: float,
) -> dict[str, Any]:
    """Audit one faulted run's *executed* step prices.

    Where the plan-level drift gate prices hypothetical windows, this
    gate walks the steps the serving loop actually charged, groups them
    by (fault segment, kind, batch, context bucket), and re-prices each
    group with a fresh engine retargeted at the exactly-faulted platform
    of that segment — the price the loop *should* have used if its
    watchdog were perfectly synchronized.  Deviations beyond the
    watchdog's deliberate staleness budget indicate the loop served steps
    at prices the fault overlay cannot justify.
    """
    import math

    from repro.errors import ServingError
    from repro.serving.costing import StepCostOracle

    intervals = _rung_intervals(result)

    def in_degraded(t: float) -> bool:
        return any(a <= t < b for a, b in intervals)

    # Group executed steps; aborted steps are skipped (their recorded
    # interval is lost work, priced like the step that would have run —
    # auditing the completed twin of the same group covers the price).
    groups: dict[tuple, dict[str, Any]] = {}
    skipped_degraded = 0
    bucket = config.ctx_bucket
    for step in result.steps:
        if step.kind not in ("prefill", "decode"):
            continue
        if in_degraded(step.start_s):
            skipped_degraded += 1
            continue
        ctx_b = max(bucket, math.ceil(step.max_ctx / bucket) * bucket)
        seg = schedule.segment_key(step.start_s)
        g = groups.setdefault(
            (seg, step.kind, step.batch, ctx_b),
            {"start_s": step.start_s, "steps": 0, "durations": set()},
        )
        g["steps"] += 1
        g["durations"].add(step.duration_s)

    # One reference oracle per fault segment: a fresh engine retargeted
    # at the overlay's effective platform for that segment.
    oracles: dict[tuple, StepCostOracle] = {}
    max_prompt = max((r.prompt_len for r in result.requests), default=64)
    max_gen = max((r.gen_len for r in result.requests), default=32)
    windows: list[dict[str, Any]] = []
    max_err = 0.0
    over = 0
    for key in sorted(groups, key=lambda k: (groups[k]["start_s"], k[1], k[2], k[3])):
        seg, kind, batch, ctx_b = key
        g = groups[key]
        if seg not in oracles:
            engine = _make_engine(engine_name)
            engine.retarget(
                engine.platform.with_faults(schedule, g["start_s"])
            )
            oracles[seg] = StepCostOracle(
                engine=engine,
                model=model_cfg,
                num_gpu_batches=config.num_gpu_batches,
                ctx_bucket=config.ctx_bucket,
                plan_prompt_len=max_prompt,
                plan_gen_len=max_gen,
            )
        oracle = oracles[seg]
        record: dict[str, Any] = {
            "kind": kind,
            "batch": batch,
            "ctx_bucket": ctx_b,
            "start_s": g["start_s"],
            "steps": g["steps"],
        }
        try:
            if kind == "prefill":
                ref = oracle.prefill_seconds(batch, ctx_b)
            else:
                ref = oracle.decode_step_seconds(batch, ctx_b)
        except ServingError as exc:
            # The exactly-faulted platform cannot plan this level at all:
            # a capacity verdict (the loop was running on a tolerably
            # stale plan), recorded but not counted as price drift.
            record["plannable"] = False
            record["plan_error"] = str(exc)
            windows.append(record)
            continue
        err = max(
            abs(dur - ref) / ref for dur in g["durations"]
        ) if ref > 0 else 0.0
        record.update(
            {
                "plannable": True,
                "reference_s": ref,
                "executed_s": sorted(g["durations"]),
                "rel_err": err,
            }
        )
        windows.append(record)
        max_err = max(max_err, err)
        if err > tolerance:
            over += 1
    return {
        "num_step_groups": len(windows),
        "skipped_degraded_steps": skipped_degraded,
        "max_rel_err": max_err,
        "over_tolerance": over,
        "windows": windows,
    }


def _serving_drift_sweep(
    engines: tuple[str, ...],
    schedules: dict[tuple[str, str], Any],
    scenarios: tuple[str, ...],
    results: dict[tuple[str, str], ServingResult],
    config: ServingConfig,
    model_name: str,
    tolerance: float,
) -> dict[str, Any]:
    """The serving-drift payload section: every faulted run's executed
    steps audited against freshly-priced faulted platforms."""
    model_cfg = get_model(model_name)
    doc_engines: dict[str, Any] = {}
    over: list[str] = []
    worst_ref: tuple[float, str] | None = None
    priced = 0
    for engine_name in engines:
        doc_scenarios: dict[str, Any] = {}
        for scenario_name in scenarios:
            run = _serving_drift_run(
                engine_name,
                schedules[(engine_name, scenario_name)],
                results[(engine_name, scenario_name)],
                config,
                model_cfg,
                tolerance,
            )
            doc_scenarios[scenario_name] = run
            priced += sum(1 for w in run["windows"] if w.get("plannable"))
            ref = f"{engine_name}/{scenario_name}"
            if run["over_tolerance"]:
                over.append(ref)
            if worst_ref is None or (run["max_rel_err"], ref) > worst_ref:
                worst_ref = (run["max_rel_err"], ref)
        doc_engines[engine_name] = doc_scenarios
    return {
        "tolerance": tolerance,
        "engines": doc_engines,
        "summary": {
            "num_step_groups_priced": priced,
            "max_rel_err": worst_ref[0] if worst_ref is not None else 0.0,
            "worst": worst_ref[1] if worst_ref is not None else None,
            "over_tolerance": sorted(over),
            "ok": not over,
        },
    }


def run_chaos(
    model_name: str = "opt-30b",
    trace: RequestTrace | None = None,
    scheduler: str = "fcfs",
    config: ServingConfig | None = None,
    engines: tuple[str, ...] = ENGINES,
    scenarios: tuple[str, ...] = SCENARIO_ORDER,
    quick: bool = False,
    seed: int = 0,
    drift_gate: bool = False,
    drift_tolerance: float = DEFAULT_DRIFT_TOLERANCE,
    serving_drift_gate: bool = False,
    serving_drift_tolerance: float = DEFAULT_SERVING_DRIFT_TOLERANCE,
) -> tuple[dict[str, Any], dict[tuple[str, str], ServingResult]]:
    """Every engine x every scenario (+ a fault-free baseline per engine).

    Returns ``(payload, results)``; ``results`` is keyed by
    ``(engine, scenario)`` with ``"baseline"`` for the fault-free run.

    ``drift_gate=True`` adds the faulted serving drift gate: every
    degraded capability window of every schedule is re-priced with a
    fresh engine retargeted at the faulted platform, and Eq. 1/2's
    steady-state prediction is checked against the overlapped executor
    at ``drift_tolerance``.  The payload gains ``"drift"`` and
    ``"all_drift_ok"`` sections (absent otherwise, so the default
    payload stays byte-identical).

    ``serving_drift_gate=True`` adds the *executed-step* audit: every
    faulted run's completed prefill/decode prices are grouped by (fault
    segment, kind, batch, context bucket) and re-priced by a fresh
    engine retargeted at the exactly-faulted platform, checked at
    ``serving_drift_tolerance`` (looser than the plan gate: the watchdog
    legitimately serves on plans up to ``config.drift_tolerance`` stale).
    Adds ``"serving_drift"`` / ``"all_serving_drift_ok"`` sections.
    """
    trace = trace or default_trace(quick=quick, seed=seed)
    config = config or ServingConfig()
    results: dict[tuple[str, str], ServingResult] = {}
    schedules: dict[tuple[str, str], Any] = {}
    doc_engines: dict[str, Any] = {}

    for engine_name in engines:
        runs: dict[str, Any] = {}
        baseline = ServingSimulator(
            engine=_make_engine(engine_name),
            model=get_model(model_name),
            trace=trace,
            policy=make_policy(scheduler),
            config=config,
        ).run()
        results[(engine_name, "baseline")] = baseline
        base_metrics = compute_metrics(baseline)
        runs["baseline"] = {
            "metrics": base_metrics,
            "accounting": _accounting(baseline),
        }
        base_goodput = base_metrics["slo"]["goodput_rps"]
        # Fault windows are fractions of this engine's own fault-free
        # makespan, not of the arrival horizon: offloaded engines serve a
        # 6 s trace over minutes, and a window scaled to the horizon would
        # fall inside a single step and never be observed by the watchdog.
        # Every engine gets the same *fractional* exposure, and the
        # baseline makespan is deterministic, so so is the schedule.
        fault_horizon = baseline.makespan_s
        for scenario_name in scenarios:
            schedule = make_scenario(scenario_name, fault_horizon, seed)
            schedules[(engine_name, scenario_name)] = schedule
            result = ServingSimulator(
                engine=_make_engine(engine_name),
                model=get_model(model_name),
                trace=trace,
                policy=make_policy(scheduler),
                config=config,
                faults=schedule,
                seed=seed,
            ).run()
            results[(engine_name, scenario_name)] = result
            metrics = compute_metrics(result)
            goodput = metrics["slo"]["goodput_rps"]
            runs[scenario_name] = {
                "schedule": schedule.to_dict(),
                "metrics": metrics,
                "accounting": _accounting(result),
                #: Goodput retained vs the same engine's fault-free run.
                "goodput_retention": (goodput / base_goodput)
                if base_goodput > 0
                else None,
            }
        doc_engines[engine_name] = runs

    payload = {
        "schema_version": SCHEMA_VERSION,
        "model": model_name,
        "seed": seed,
        "trace": {
            "name": trace.name,
            "requests": len(trace),
            "horizon_s": trace.horizon_s,
            "total_tokens": trace.total_tokens,
        },
        "scheduler": scheduler,
        "config": {
            "max_batch": config.max_batch,
            "retry_limit": config.retry_limit,
            "backoff_base_s": config.backoff_base_s,
            "backoff_cap_s": config.backoff_cap_s,
            "backoff_jitter": config.backoff_jitter,
            "drift_tolerance": config.drift_tolerance,
            "request_deadline_s": config.request_deadline_s,
        },
        "scenarios": list(scenarios),
        "engines": doc_engines,
        "all_accounting_ok": all(
            runs[s]["accounting"]["accounting_ok"]
            for runs in doc_engines.values()
            for s in runs
        ),
    }
    if drift_gate:
        payload["drift"] = _drift_sweep(
            engines, schedules, scenarios, config, model_name, drift_tolerance
        )
        payload["all_drift_ok"] = payload["drift"]["summary"]["ok"]
    if serving_drift_gate:
        payload["serving_drift"] = _serving_drift_sweep(
            engines, schedules, scenarios, results, config, model_name,
            serving_drift_tolerance,
        )
        payload["all_serving_drift_ok"] = payload["serving_drift"]["summary"]["ok"]
    return payload, results


def write_bench_chaos(path: str = "BENCH_chaos.json", **kwargs: Any) -> dict[str, Any]:
    """Run the chaos matrix and write the payload to ``path``."""
    payload, _ = run_chaos(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def chaos_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten one chaos payload into CLI/markdown table rows."""
    rows: list[dict[str, Any]] = []
    for engine_name, runs in payload["engines"].items():
        for scenario_name, run in runs.items():
            m = run["metrics"]
            f = m.get("faults", {})
            rows.append(
                {
                    "engine": engine_name,
                    "scenario": scenario_name,
                    "done": m["requests"]["finished"],
                    "drop": m["requests"]["dropped"],
                    "aborts": f.get("aborted_steps", 0),
                    "replans": f.get("replans", 0),
                    "final_rung": f.get("final_rung", "-"),
                    "avail": round(f.get("availability", 1.0), 3),
                    "degr_frac": round(f.get("degraded_time_fraction", 0.0), 3),
                    "goodput_rps": round(m["slo"]["goodput_rps"], 3),
                    "retention": (
                        round(run["goodput_retention"], 3)
                        if run.get("goodput_retention") is not None
                        else "-"
                    ),
                    "slo_att": round(m["slo"]["attainment"], 3),
                    "ok": run["accounting"]["accounting_ok"],
                }
            )
    return rows
