"""Chaos benchmark: every engine through every fault scenario.

``python -m repro chaos`` replays one frozen arrival trace through each
engine under each bundled fault scenario (plus a fault-free baseline for
reference) and writes ``BENCH_chaos.json``.  The headline questions are
robustness ones:

* does any (engine, scenario) pair crash?  (It must not — every rejection
  has to be a typed drop; ``accounting_ok`` asserts
  ``finished + dropped + still-queued-at-end == arrived`` per run.)
* how much goodput/SLO attainment survives each fault class, relative to
  the same engine's fault-free run on the same trace?
* how often did each engine replan, walk the degradation ladder, or shed
  requests, and what availability / degraded-time fraction resulted?

Every run is seeded end to end — trace, fault windows, abort draws and
backoff jitter all derive from one ``--seed`` — so two invocations with
the same arguments produce byte-identical JSON (asserted in
``tests/test_chaos_serving.py`` and by the acceptance criteria).

Engines are constructed *fresh per run*: chaos runs retarget the engine
at degraded platforms mid-flight, and although the simulator restores the
base platform on exit, sharing one engine across scenarios would let a
bug in that restore leak state between runs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.faults import make_scenario
from repro.faults.scenarios import SCENARIO_SWEEP_ORDER
from repro.models import get_model
from repro.serving.arrivals import RequestTrace, default_trace
from repro.serving.metrics import compute_metrics
from repro.serving.policies import make_policy
from repro.serving.request import RequestState
from repro.serving.simulator import ServingConfig, ServingResult, ServingSimulator
from repro.bench.serving import ENGINES, _make_engine

SCHEMA_VERSION = 1

#: Scenario order is fixed (not dict order) so the JSON layout is stable;
#: shared with the faulted drift audit so both artifacts sweep the same
#: scenarios in the same order.
SCENARIO_ORDER = SCENARIO_SWEEP_ORDER


def _accounting(result: ServingResult) -> dict[str, Any]:
    """Conservation check: every arrived request ends in exactly one of
    finished/dropped (the loop never exits with work in flight)."""
    finished = len(result.finished)
    dropped = len(result.dropped)
    unresolved = [
        r.rid
        for r in result.requests
        if r.state not in (RequestState.FINISHED, RequestState.DROPPED)
    ]
    untyped = [
        r.rid for r in result.dropped if r.drop_reason is None
    ]
    return {
        "arrived": len(result.requests),
        "finished": finished,
        "dropped": dropped,
        "unresolved_rids": unresolved,
        "untyped_drop_rids": untyped,
        "accounting_ok": not unresolved and not untyped
        and finished + dropped == len(result.requests),
    }


def run_chaos(
    model_name: str = "opt-30b",
    trace: RequestTrace | None = None,
    scheduler: str = "fcfs",
    config: ServingConfig | None = None,
    engines: tuple[str, ...] = ENGINES,
    scenarios: tuple[str, ...] = SCENARIO_ORDER,
    quick: bool = False,
    seed: int = 0,
) -> tuple[dict[str, Any], dict[tuple[str, str], ServingResult]]:
    """Every engine x every scenario (+ a fault-free baseline per engine).

    Returns ``(payload, results)``; ``results`` is keyed by
    ``(engine, scenario)`` with ``"baseline"`` for the fault-free run.
    """
    trace = trace or default_trace(quick=quick, seed=seed)
    config = config or ServingConfig()
    results: dict[tuple[str, str], ServingResult] = {}
    doc_engines: dict[str, Any] = {}

    for engine_name in engines:
        runs: dict[str, Any] = {}
        baseline = ServingSimulator(
            engine=_make_engine(engine_name),
            model=get_model(model_name),
            trace=trace,
            policy=make_policy(scheduler),
            config=config,
        ).run()
        results[(engine_name, "baseline")] = baseline
        base_metrics = compute_metrics(baseline)
        runs["baseline"] = {
            "metrics": base_metrics,
            "accounting": _accounting(baseline),
        }
        base_goodput = base_metrics["slo"]["goodput_rps"]
        # Fault windows are fractions of this engine's own fault-free
        # makespan, not of the arrival horizon: offloaded engines serve a
        # 6 s trace over minutes, and a window scaled to the horizon would
        # fall inside a single step and never be observed by the watchdog.
        # Every engine gets the same *fractional* exposure, and the
        # baseline makespan is deterministic, so so is the schedule.
        fault_horizon = baseline.makespan_s
        for scenario_name in scenarios:
            schedule = make_scenario(scenario_name, fault_horizon, seed)
            result = ServingSimulator(
                engine=_make_engine(engine_name),
                model=get_model(model_name),
                trace=trace,
                policy=make_policy(scheduler),
                config=config,
                faults=schedule,
                seed=seed,
            ).run()
            results[(engine_name, scenario_name)] = result
            metrics = compute_metrics(result)
            goodput = metrics["slo"]["goodput_rps"]
            runs[scenario_name] = {
                "schedule": schedule.to_dict(),
                "metrics": metrics,
                "accounting": _accounting(result),
                #: Goodput retained vs the same engine's fault-free run.
                "goodput_retention": (goodput / base_goodput)
                if base_goodput > 0
                else None,
            }
        doc_engines[engine_name] = runs

    payload = {
        "schema_version": SCHEMA_VERSION,
        "model": model_name,
        "seed": seed,
        "trace": {
            "name": trace.name,
            "requests": len(trace),
            "horizon_s": trace.horizon_s,
            "total_tokens": trace.total_tokens,
        },
        "scheduler": scheduler,
        "config": {
            "max_batch": config.max_batch,
            "retry_limit": config.retry_limit,
            "backoff_base_s": config.backoff_base_s,
            "backoff_cap_s": config.backoff_cap_s,
            "backoff_jitter": config.backoff_jitter,
            "drift_tolerance": config.drift_tolerance,
            "request_deadline_s": config.request_deadline_s,
        },
        "scenarios": list(scenarios),
        "engines": doc_engines,
        "all_accounting_ok": all(
            runs[s]["accounting"]["accounting_ok"]
            for runs in doc_engines.values()
            for s in runs
        ),
    }
    return payload, results


def write_bench_chaos(path: str = "BENCH_chaos.json", **kwargs: Any) -> dict[str, Any]:
    """Run the chaos matrix and write the payload to ``path``."""
    payload, _ = run_chaos(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def chaos_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten one chaos payload into CLI/markdown table rows."""
    rows: list[dict[str, Any]] = []
    for engine_name, runs in payload["engines"].items():
        for scenario_name, run in runs.items():
            m = run["metrics"]
            f = m.get("faults", {})
            rows.append(
                {
                    "engine": engine_name,
                    "scenario": scenario_name,
                    "done": m["requests"]["finished"],
                    "drop": m["requests"]["dropped"],
                    "aborts": f.get("aborted_steps", 0),
                    "replans": f.get("replans", 0),
                    "final_rung": f.get("final_rung", "-"),
                    "avail": round(f.get("availability", 1.0), 3),
                    "degr_frac": round(f.get("degraded_time_fraction", 0.0), 3),
                    "goodput_rps": round(m["slo"]["goodput_rps"], 3),
                    "retention": (
                        round(run["goodput_retention"], 3)
                        if run.get("goodput_retention") is not None
                        else "-"
                    ),
                    "slo_att": round(m["slo"]["attainment"], 3),
                    "ok": run["accounting"]["accounting_ok"],
                }
            )
    return rows
