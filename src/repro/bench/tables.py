"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(rows: Iterable[Mapping[str, object]], title: str | None = None) -> str:
    """Render dict-rows as an aligned ASCII table (keys = columns)."""
    rows = list(rows)
    if not rows:
        return f"{title or ''}\n(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
