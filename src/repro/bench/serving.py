"""Serving benchmark: LM-Offload vs. baselines under identical traces.

Replays one frozen arrival trace through a :class:`ServingSimulator`
built on each engine and writes ``BENCH_serving.json`` — the serving
analogue of ``BENCH_timing.json``.  The headline number is **goodput**
(SLO-compliant completions per second): offline throughput comparisons
(Table 3) reward big blocks, but online serving also charges for the
queueing those big blocks cause, which is exactly the regime the paper's
baselines never measured.

Every engine sees byte-identical requests (traces are frozen
``RequestSpec`` tuples; each run materializes fresh ``Request`` records),
so differences are attributable to planning quality alone.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.models import get_model
from repro.serving.arrivals import RequestTrace, default_trace
from repro.serving.metrics import compute_metrics
from repro.serving.policies import make_policy
from repro.serving.simulator import ServingConfig, ServingResult, ServingSimulator

SCHEMA_VERSION = 1

ENGINES = ("lm-offload", "flexgen", "zero-inference")

#: Every engine the harness can construct, including the opt-in
#: speculative engine (kept out of the default comparison so the
#: committed artifacts stay stable; ``--spec`` / an explicit ``engines``
#: tuple adds it).
ALL_ENGINES = ENGINES + ("spec-offload",)


def _make_engine(name: str):
    from repro.baselines import (
        FlexGenEngine,
        SpecOffloadEngine,
        ZeroInferenceEngine,
    )
    from repro.core import LMOffloadEngine
    from repro.hardware import single_a100

    factories = {
        "lm-offload": lambda: LMOffloadEngine(single_a100()),
        "flexgen": lambda: FlexGenEngine(single_a100()),
        "zero-inference": lambda: ZeroInferenceEngine(single_a100()),
        # Default SpecConfig so every fresh construction (serving runs,
        # chaos drift-gate reference oracles) prices the same tree.
        "spec-offload": lambda: SpecOffloadEngine(single_a100()),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ReproError(
            f"unknown serving engine {name!r}; expected one of {ALL_ENGINES}"
        ) from None


def simulate_engine(
    engine_name: str,
    model_name: str,
    trace: RequestTrace,
    scheduler: str = "fcfs",
    config: ServingConfig | None = None,
    collect_timeseries: bool = False,
    collect_steps: bool = True,
    faults: Any = None,
    seed: int = 0,
) -> ServingResult:
    """One engine, one trace -> the full simulation result.

    ``collect_timeseries`` injects a registry so the loop samples its
    per-step curves (queue depth, step price, batch, rung); off by
    default because the curves are export-only — the run itself is
    byte-identical either way.  ``collect_steps=False`` skips retaining
    per-step records entirely (the throughput setting for huge traces);
    every summary metric is byte-identical either way, only the
    ``steps``/``queue_depth`` views (timeline export) need it on.
    ``faults`` (a :class:`~repro.faults.FaultSchedule`) plus ``seed``
    switch the run into the fault-injected regime.
    """
    from repro.obs.registry import MetricsRegistry

    sim = ServingSimulator(
        engine=_make_engine(engine_name),
        model=get_model(model_name),
        trace=trace,
        policy=make_policy(scheduler),
        config=config,
        metrics=MetricsRegistry(namespace="serving") if collect_timeseries else None,
        collect_steps=collect_steps,
        faults=faults,
        seed=seed,
    )
    return sim.run()


def run_serving_comparison(
    model_name: str = "opt-30b",
    trace: RequestTrace | None = None,
    scheduler: str = "fcfs",
    config: ServingConfig | None = None,
    engines: tuple[str, ...] = ENGINES,
    quick: bool = False,
    seed: int = 0,
    collect_timeseries: bool = False,
    collect_steps: bool = True,
    scenario: str | None = None,
) -> tuple[dict[str, Any], dict[str, ServingResult]]:
    """Run every engine on the same trace.

    Returns ``(payload, results)``: the JSON-ready comparison document and
    the raw per-engine :class:`ServingResult` (for timeline export).
    ``collect_timeseries`` / ``collect_steps`` are forwarded to
    :func:`simulate_engine`; the payload never contains per-step data, so
    it is byte-identical whatever their setting.

    ``scenario`` names a bundled fault scenario
    (:func:`repro.faults.make_scenario`) to run every engine under: each
    engine first runs fault-free to measure its makespan (the chaos-bench
    horizon idiom — windows are fractions of the engine's own busy
    period), then reruns with the scaled schedule; the reported metrics
    are the faulted run's, and the payload gains a ``"scenario"`` section
    recording the per-engine schedules.  ``None`` (the default) leaves
    both runs and payload exactly as before.
    """
    trace = trace or default_trace(quick=quick, seed=seed)
    config = config or ServingConfig()
    results: dict[str, ServingResult] = {}
    metrics: dict[str, Any] = {}
    scenario_doc: dict[str, Any] | None = None
    if scenario is not None:
        scenario_doc = {"name": scenario, "engines": {}}
    for name in engines:
        results[name] = simulate_engine(
            name, model_name, trace, scheduler=scheduler, config=config,
            collect_timeseries=collect_timeseries,
            collect_steps=collect_steps,
        )
        if scenario is not None and scenario_doc is not None:
            from repro.faults import make_scenario

            schedule = make_scenario(scenario, results[name].makespan_s, seed)
            scenario_doc["engines"][name] = {
                "baseline_makespan_s": results[name].makespan_s,
                "schedule": schedule.to_dict(),
            }
            results[name] = simulate_engine(
                name, model_name, trace, scheduler=scheduler, config=config,
                collect_timeseries=collect_timeseries,
                collect_steps=collect_steps,
                faults=schedule, seed=seed,
            )
        metrics[name] = compute_metrics(results[name])

    comparison: dict[str, Any] = {}
    if "flexgen" in metrics:
        ref = metrics["flexgen"]["slo"]["goodput_rps"]
        comparison["goodput_vs_flexgen"] = {
            name: (m["slo"]["goodput_rps"] / ref) if ref > 0 else None
            for name, m in metrics.items()
        }
    payload = {
        "schema_version": SCHEMA_VERSION,
        "model": model_name,
        "trace": {
            "name": trace.name,
            "requests": len(trace),
            "horizon_s": trace.horizon_s,
            "total_tokens": trace.total_tokens,
        },
        "scheduler": scheduler,
        "config": {
            "max_batch": config.max_batch,
            "num_gpu_batches": config.num_gpu_batches,
            "queue_capacity": config.queue_capacity,
            "queue_timeout_s": config.queue_timeout_s,
            "ttft_slo_s": config.ttft_slo_s,
            "tpot_slo_s": config.tpot_slo_s,
        },
        "engines": metrics,
        "comparison": comparison,
    }
    if scenario_doc is not None:
        payload["scenario"] = scenario_doc
    return payload, results


def write_bench_serving(
    path: str = "BENCH_serving.json", **kwargs: Any
) -> dict[str, Any]:
    """Run the comparison and write the payload to ``path``."""
    payload, _ = run_serving_comparison(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
