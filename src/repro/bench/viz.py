"""Terminal visualisation: sparklines and horizontal bar charts.

Keeps the CLI and examples dependency-free while still conveying the
sweeps' shapes at a glance.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a numeric series (constant series -> midline)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK[3] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK) - 1))
        out.append(_SPARK[idx])
    return "".join(out)


def hbar_chart(
    data: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and values."""
    if not data:
        return "(no data)"
    label_w = max(len(str(k)) for k in data)
    peak = max(data.values())
    lines = []
    for label, value in data.items():
        bar = "█" * (int(value / peak * width) if peak > 0 else 0)
        lines.append(f"{str(label).ljust(label_w)} |{bar.ljust(width)} {value:g}{unit}")
    return "\n".join(lines)


def sweep_summary(
    points: Sequence[Mapping[str, float]],
    x_key: str,
    y_key: str,
    label: str = "",
) -> str:
    """One-line sweep summary: label, sparkline, best point."""
    xs = [p[x_key] for p in points]
    ys = [p[y_key] for p in points]
    best = max(range(len(ys)), key=lambda i: ys[i])
    return (
        f"{label + ': ' if label else ''}{sparkline(ys)}  "
        f"best {y_key}={ys[best]:g} at {x_key}={xs[best]:g}"
    )
