"""What-if hardware sensitivity analysis.

The performance model makes hardware questions cheap to answer: *what if
the interconnect were PCIe 3/5 instead of 4?  What if the GPU had 80 GB?
What if host DRAM were twice as fast?*  This module sweeps such variants
and reports how the best policy and its throughput shift — the kind of
procurement analysis the paper's model enables but does not show.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import PolicyError
from repro.hardware.platform import Platform, single_a100
from repro.offload.planner import PolicyPlanner
from repro.parallel.speedup import ContentionModel
from repro.parallel.topology import CpuTopology
from repro.perfmodel.latency import CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.units import GB
from repro.util.rng import seeded_rng

#: Named hardware variants: dotted HardwareParams overrides.
HARDWARE_VARIANTS: dict[str, dict[str, float]] = {
    "baseline-a100-pcie4": {},
    "pcie3-x16": {"pcie_bdw": 16 * GB},
    "pcie5-x16": {"pcie_bdw": 64 * GB},
    "a100-80gb": {"gpu_mem_capacity": 80 * GB},
    "h100-like": {
        "gpu_flops": 989e12,
        "gpu_mem_bdw": 3350 * GB,
        "gpu_mem_capacity": 80 * GB,
        "pcie_bdw": 64 * GB,
    },
    "fast-host-ddr5": {"cpu_mem_bdw": 400 * GB},
    "small-gpu-24gb": {"gpu_mem_capacity": 24 * GB},
}


#: Rates a sampled variant perturbs (capacities are contractual, rates
#: are what vendor datasheets overstate).
SAMPLED_FIELDS = ("pcie_bdw", "cpu_mem_bdw", "gpu_mem_bdw", "gpu_flops")


def sample_variants(
    n: int, seed: int = 0, spread: float = 0.15
) -> dict[str, dict[str, float]]:
    """``n`` Monte-Carlo hardware variants with log-normally jittered rates.

    Models procurement uncertainty: each sampled variant scales the
    bandwidth/FLOP rates by independent log-normal factors with the given
    ``spread`` (sigma of log).  Deterministic for a fixed ``seed`` — every
    variant draws from its own :func:`~repro.util.rng.seeded_rng` stream,
    so adding samples never changes earlier ones.
    """
    variants: dict[str, dict[str, float]] = {}
    for i in range(n):
        rng = seeded_rng(seed, "whatif", i)
        factors = rng.lognormal(0.0, spread, size=len(SAMPLED_FIELDS))
        variants[f"mc-{i:02d}"] = {
            field: float(f) for field, f in zip(SAMPLED_FIELDS, factors)
        }
    return variants


@dataclass(frozen=True)
class WhatIfResult:
    variant: str
    throughput: float
    policy_desc: str
    attention_on_cpu: bool
    quantized: bool
    feasible: bool


def run_whatif(
    workload: Workload,
    variants: dict[str, dict[str, float]] | None = None,
    platform: Platform | None = None,
    samples: int = 0,
    seed: int = 0,
    spread: float = 0.15,
) -> list[WhatIfResult]:
    """Plan the best LM-Offload policy under each hardware variant.

    ``samples > 0`` appends that many seeded Monte-Carlo variants (rate
    jitter around the base platform, see :func:`sample_variants`) after
    the named ones — one ``--seed`` reproduces the whole sweep.
    """
    platform = platform or single_a100()
    base_hw = HardwareParams.from_platform(platform)
    topo = CpuTopology.from_device(platform.cpu)
    ctx = CpuExecutionContext.pytorch_default(topo, ContentionModel(topo, platform.cache))
    sweep = dict(variants if variants is not None else HARDWARE_VARIANTS)
    for name, factors in sample_variants(samples, seed, spread).items():
        sweep[name] = {
            field: getattr(base_hw, field) * factor
            for field, factor in factors.items()
        }
    results: list[WhatIfResult] = []
    for name, overrides in sweep.items():
        hw = dataclasses.replace(base_hw, **overrides)
        planner = PolicyPlanner(hw=hw, cpu_ctx=ctx, quant_aware=True)
        try:
            policy, tput = planner.search(workload)
            results.append(
                WhatIfResult(
                    variant=name,
                    throughput=round(tput, 1),
                    policy_desc=policy.describe(),
                    attention_on_cpu=policy.attention_on_cpu,
                    quantized=policy.quantizes_weights or policy.quantizes_kv,
                    feasible=True,
                )
            )
        except PolicyError:
            results.append(
                WhatIfResult(
                    variant=name, throughput=0.0, policy_desc="(infeasible)",
                    attention_on_cpu=False, quantized=False, feasible=False,
                )
            )
    return results


def whatif_rows(results: list[WhatIfResult]) -> list[dict[str, Any]]:
    """Table-friendly dict rows."""
    return [
        {
            "variant": r.variant,
            "tokens_per_s": r.throughput,
            "attn": "cpu" if r.attention_on_cpu else "gpu",
            "quant": "yes" if r.quantized else "no",
            "policy": r.policy_desc,
        }
        for r in results
    ]
