"""Fleet benchmark: bundled fleets through bundled chaos scenarios.

``python -m repro fleet-bench`` (and the library entry point below) runs
each bundled fleet preset through every fleet chaos scenario on one
frozen arrival trace and writes ``BENCH_fleet.json``.  The headline
questions are cluster-robustness ones:

* how much fleet-wide SLO attainment and goodput survive replica
  crashes, correlated domain outages, flaky replicas and rolling
  restarts, relative to the same fleet's fault-free run?
* does conservation hold under failover — does every admitted request
  reach exactly one terminal outcome fleet-wide, attributed to exactly
  one replica (or the router), with the hedge ledger balanced?

Scenario windows are fractions of the fleet's own fault-free makespan
(the chaos-bench idiom): an outage scaled to the arrival horizon could
land after the queue drains and never displace anything.  Every run is
seeded end to end — trace, fault windows, abort draws, backoff jitter —
so two invocations with the same arguments produce byte-identical JSON
(asserted by the CI smoke and ``tests/test_fleet.py``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.models import get_model
from repro.serving.arrivals import RequestTrace, mmpp_trace, poisson_trace
from repro.serving.fleet import (
    FLEET_PRESETS,
    FLEET_SCENARIOS,
    FleetConfig,
    FleetResult,
    FleetSimulator,
    compute_fleet_metrics,
    make_fleet,
    make_fleet_scenario,
)
from repro.serving.policies import make_policy

SCHEMA_VERSION = 1

#: Presets swept in quick mode (CI smoke): the smallest fleet only.
QUICK_PRESETS = ("uniform-6",)


def default_fleet_config() -> FleetConfig:
    """The bench's cluster knobs: hedging on, modest failover budget,
    breakers armed.  One shared config across presets and scenarios so
    every delta in the payload is attributable to fleet shape or fault
    class, never to tuning."""
    return FleetConfig(
        migration_budget=2,
        hedge_after_s=20.0,
        breaker_threshold=3,
        breaker_cooldown_s=10.0,
    )


def fleet_trace(n_replicas: int, quick: bool = False, seed: int = 0) -> RequestTrace:
    """An arrival trace scaled to the fleet size.

    Offered load grows with the replica count (~0.5 req/s per replica)
    so every preset runs at a comparable per-replica utilisation; the
    full-mode trace is a two-state MMPP (quiet/bursty) because hedges
    and breakers only earn their keep under bursty load, while quick
    mode uses a short plain-Poisson trace to keep the CI smoke fast.
    """
    if quick:
        return poisson_trace(
            rate=0.4 * n_replicas,
            horizon_s=10.0,
            seed=seed,
            name=f"fleet-poisson-quick-n{n_replicas}",
        )
    return mmpp_trace(
        rate_low=0.3 * n_replicas,
        rate_high=0.8 * n_replicas,
        horizon_s=40.0,
        seed=seed,
        name=f"fleet-mmpp-n{n_replicas}",
    )


def run_fleet_bench(
    model_name: str = "opt-30b",
    presets: tuple[str, ...] | None = None,
    scenarios: tuple[str, ...] = FLEET_SCENARIOS,
    scheduler: str = "fcfs",
    config: FleetConfig | None = None,
    quick: bool = False,
    seed: int = 0,
    collect_steps: bool = False,
) -> tuple[dict[str, Any], dict[tuple[str, str], FleetResult]]:
    """Every fleet preset x every fleet scenario.

    Returns ``(payload, results)``; ``results`` is keyed by
    ``(preset, scenario)``.  The ``"none"`` scenario doubles as the
    baseline: its makespan sets the fault horizon for the preset's
    other scenarios, and its goodput anchors ``goodput_retention``.
    ``collect_steps`` retains per-replica step records (needed only for
    timeline/registry export); the payload is byte-identical either way.
    """
    if presets is None:
        presets = QUICK_PRESETS if quick else FLEET_PRESETS
    config = config or default_fleet_config()
    model = get_model(model_name)
    results: dict[tuple[str, str], FleetResult] = {}
    doc_fleets: dict[str, Any] = {}

    for preset in presets:
        specs = make_fleet(preset)
        domains = tuple(sorted({s.fault_domain for s in specs}))
        trace = fleet_trace(len(specs), quick=quick, seed=seed)
        runs: dict[str, Any] = {}
        # Fault-free run first: its makespan is the horizon every other
        # scenario's windows are fractions of (chaos-bench idiom — the
        # outage must overlap the busy period, whatever the fleet's
        # actual drain time is).
        baseline = FleetSimulator(
            specs=specs,
            model=model,
            trace=trace,
            policy=make_policy(scheduler),
            config=config,
            seed=seed,
            collect_steps=collect_steps,
        ).run()
        results[(preset, "none")] = baseline
        base_doc = compute_fleet_metrics(baseline)
        runs["none"] = {
            "schedule": None,
            "metrics": base_doc,
            "goodput_retention": 1.0,
        }
        base_goodput = base_doc["fleet"]["slo"]["goodput_rps"]
        fault_horizon = baseline.makespan_s
        for scenario in scenarios:
            if scenario == "none":
                continue
            schedule = make_fleet_scenario(
                scenario, fault_horizon, domains=domains, seed=seed
            )
            result = FleetSimulator(
                specs=specs,
                model=model,
                trace=trace,
                policy=make_policy(scheduler),
                config=config,
                faults=schedule,
                seed=seed,
                collect_steps=collect_steps,
            ).run()
            results[(preset, scenario)] = result
            doc = compute_fleet_metrics(result)
            goodput = doc["fleet"]["slo"]["goodput_rps"]
            runs[scenario] = {
                "schedule": schedule.to_dict(),
                "metrics": doc,
                "goodput_retention": (goodput / base_goodput)
                if base_goodput > 0
                else None,
            }
        doc_fleets[preset] = {
            "replicas": len(specs),
            "domains": list(domains),
            "trace": {
                "name": trace.name,
                "requests": len(trace),
                "horizon_s": trace.horizon_s,
                "total_tokens": trace.total_tokens,
            },
            "fault_horizon_s": fault_horizon,
            "runs": runs,
        }

    payload = {
        "schema_version": SCHEMA_VERSION,
        "model": model_name,
        "seed": seed,
        "quick": quick,
        "scheduler": scheduler,
        "config": {
            "max_batch": config.serving.max_batch,
            "queue_capacity": config.serving.queue_capacity,
            "queue_timeout_s": config.serving.queue_timeout_s,
            "ttft_slo_s": config.serving.ttft_slo_s,
            "tpot_slo_s": config.serving.tpot_slo_s,
            "migration_budget": config.migration_budget,
            "hedge_after_s": config.hedge_after_s,
            "breaker_threshold": config.breaker_threshold,
            "breaker_cooldown_s": config.breaker_cooldown_s,
        },
        "scenarios": list(scenarios),
        "fleets": doc_fleets,
        "all_accounting_ok": all(
            run["metrics"]["accounting"]["ok"]
            for fleet in doc_fleets.values()
            for run in fleet["runs"].values()
        ),
    }
    return payload, results


def write_bench_fleet(path: str = "BENCH_fleet.json", **kwargs: Any) -> dict[str, Any]:
    """Run the fleet matrix and write the payload to ``path``."""
    payload, _ = run_fleet_bench(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def fleet_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten one fleet payload into CLI/markdown table rows."""
    rows: list[dict[str, Any]] = []
    for preset, fleet in payload["fleets"].items():
        for scenario, run in fleet["runs"].items():
            m = run["metrics"]
            acc = m["accounting"]
            rows.append(
                {
                    "fleet": preset,
                    "scenario": scenario,
                    "done": acc["finished"],
                    "drop": acc["dropped"],
                    "migr": m["router"]["migrations"],
                    "hedge": m["hedges"]["launched"],
                    "crash": m["crashes"]["crash_events"],
                    "goodput_rps": round(m["fleet"]["slo"]["goodput_rps"], 3),
                    "retention": (
                        round(run["goodput_retention"], 3)
                        if run.get("goodput_retention") is not None
                        else "-"
                    ),
                    "slo_att": round(m["fleet"]["slo"]["attainment"], 3),
                    "ok": acc["ok"],
                }
            )
    return rows
