"""Perf-regression harness for the planner/cost-model hot path.

The analytic cost model is the product here — ``plan()`` is called inside
sweeps (Tab. 3 runs it for every engine/model/batch cell), so its wall
time gates every experiment.  This module times the hot entry points
on fixed workloads and writes ``BENCH_timing.json`` so a perf
regression shows up as a number, not a feeling:

* ``plan``      — ``LMOffloadEngine.plan`` on OPT-30B (s=64, n=32,
  bsz=64, k=10), fresh engine per repeat so no cross-repeat cache
  (contention memo, planner mem-cache) flatters the result;
* ``breakdown`` — ``CostModel`` construction + ``breakdown()`` for the
  policy ``plan`` chooses on that workload;
* ``tab3``      — ``run_tab3_overall()``, the heaviest experiment sweep;
* ``serve_sim`` — the event-driven serving simulator on a large seeded
  Poisson trace (OPT-1.3B on ZeRO-Inference, ~100k requests at
  near-saturation; a ~5k-request slice in ``--quick``), reporting
  ``sim_steps_per_s`` and ``requests_per_s_of_simulation`` alongside the
  wall times.

``BASELINES`` pins the pre-optimization medians (measured on the same
container this harness first shipped from) so ``speedup_vs_baseline``
reports how much the vectorized cost path + planner caching bought.
The ``serve_sim`` baselines are the pre-rewrite per-step engine
(``ServingSimulator._run_reference``) on the identical trace/config,
measured the same way — quick and full workloads each pin their own.

Run it with ``python -m repro bench-timing [--quick] [--output PATH]``.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Any, Callable

from repro.obs.registry import Histogram, MetricsRegistry

SCHEMA_VERSION = 1

#: Pre-optimization medians (seconds) of each target, measured at the
#: commit right before the vectorized cost path landed, same workloads,
#: same methodology.  These are *reference points*, not assertions — CI
#: machines differ; the JSON records the ratio for humans to eyeball.
BASELINES: dict[str, float] = {
    "plan": 0.712,
    "breakdown": 9.35e-4,
    "tab3": 12.52,
    "serve_sim": 18.92,
    "serve_sim_quick": 0.397,
}


def _bench_workload():
    from repro.models import get_model
    from repro.perfmodel import Workload

    return Workload(get_model("opt-30b"), 64, 32, 64, 10)


def _serve_sim_case(quick: bool):
    """The serve-sim timing workload: a seeded near-saturation Poisson
    trace (arrival rate ~= the batch-64 decode service rate, so the
    queue stays busy without pegging) and a fresh simulator per repeat
    (fresh engine too — no plan/price caches carry across repeats).

    Returns ``(trace, build)`` where ``build()`` constructs the
    simulator; the same trace/config pair is what the pinned
    ``serve_sim`` / ``serve_sim_quick`` baselines were measured on.
    """
    from repro.bench.serving import _make_engine
    from repro.models import get_model
    from repro.serving import (
        LengthSampler,
        ServingConfig,
        ServingSimulator,
        make_policy,
        poisson_trace,
    )

    lengths = LengthSampler(prompt_mean=64, gen_mean=32, max_len=256)
    trace = poisson_trace(
        25.0, 200.0 if quick else 4000.0, seed=42, lengths=lengths,
        name="bench-serve-sim",
    )
    config = ServingConfig(max_batch=64, queue_capacity=4096)
    model = get_model("opt-1.3b")

    def build() -> ServingSimulator:
        return ServingSimulator(
            _make_engine("zero-inference"), model, trace,
            policy=make_policy("fcfs"), config=config,
            collect_steps=False,
        )

    return trace, build


def time_callable(
    fn: Callable[[], Any],
    repeats: int,
    warmup: int = 1,
    registry: MetricsRegistry | None = None,
    label: str = "",
) -> dict[str, Any]:
    """Median/best wall time of ``fn`` over ``repeats`` calls.

    Samples accumulate in an :class:`~repro.obs.registry.Histogram`
    (the registry's raw-sample series type); the median stays
    ``statistics.median`` — interpolating, unlike the histogram's
    nearest-rank percentiles — so ``BASELINES`` comparisons keep their
    original semantics.

    When a ``registry`` and ``label`` are given, the samples also land in
    it: the distribution under ``timing.<label>.wall_s`` and, so warm-up
    drift is visible, a ``timing.<label>.trajectory`` time series keyed by
    repeat index (the harness's virtual clock — nothing else about the
    run is time-shaped).  The registry's *structure* is deterministic;
    the recorded values are wall clock by definition.
    """
    for _ in range(warmup):
        fn()
    hist = Histogram(name="wall_s")
    trajectory = None
    if registry is not None and label:
        hist = registry.histogram(f"timing.{label}.wall_s")
        trajectory = registry.timeseries(f"timing.{label}.trajectory")
    for i in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        hist.observe(elapsed)
        if trajectory is not None:
            trajectory.sample(float(i), elapsed)
    return {
        "median_s": statistics.median(hist.values),
        "best_s": min(hist.values),
        "mean_s": hist.mean,
        "repeats": repeats,
    }


def _with_baseline(name: str, result: dict[str, Any]) -> dict[str, Any]:
    baseline = BASELINES[name]
    result["baseline_median_s"] = baseline
    result["speedup_vs_baseline"] = baseline / result["median_s"]
    return result


def run_bench_timing(
    quick: bool = False, registry: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Time the hot entry points; returns the ``BENCH_timing.json`` payload.

    ``quick`` trims repeat counts and skips the tab3 sweep — the CI smoke
    configuration (verifies the harness runs, not the speedup).  Passing a
    ``registry`` additionally records every raw sample (see
    :func:`time_callable`) for ``--metrics-out``.
    """
    from repro.core import LMOffloadEngine
    from repro.hardware import single_a100
    from repro.perfmodel import CostModel

    workload = _bench_workload()
    results: dict[str, Any] = {}

    def fresh_plan():
        # A fresh engine per repeat: the engine-lifetime caches (speedup
        # memo, planner mem-cache) must not carry over, or repeat 2+
        # would measure cache hits instead of a cold plan().
        LMOffloadEngine(single_a100()).plan(workload)

    results["plan"] = _with_baseline(
        "plan",
        time_callable(
            fresh_plan, repeats=2 if quick else 5,
            registry=registry, label="plan",
        ),
    )

    engine = LMOffloadEngine(single_a100())
    policy, ctx, _ = engine.plan(workload)

    def construct_and_breakdown():
        CostModel(
            workload, policy, engine.hw, ctx, engine.config.calibration
        ).breakdown()

    results["breakdown"] = _with_baseline(
        "breakdown",
        time_callable(
            construct_and_breakdown, repeats=20 if quick else 100,
            registry=registry, label="breakdown",
        ),
    )

    if not quick:
        from repro.bench.experiments import run_tab3_overall

        results["tab3"] = _with_baseline(
            "tab3",
            time_callable(
                run_tab3_overall, repeats=1, warmup=0,
                registry=registry, label="tab3",
            ),
        )

    trace, build_sim = _serve_sim_case(quick)
    last_run: dict[str, Any] = {}

    def serve_sim():
        last_run["result"] = build_sim().run()

    serve_result = time_callable(
        serve_sim, repeats=1 if quick else 3, warmup=0 if quick else 1,
        registry=registry, label="serve_sim",
    )
    # The simulation is deterministic, so the step count is the same on
    # every repeat; derive the throughput figures from the median wall.
    agg = last_run["result"].aggregates
    sim_steps = sum(agg.step_counts.values())
    serve_result["sim_requests"] = len(trace.requests)
    serve_result["sim_steps"] = sim_steps
    serve_result["sim_steps_per_s"] = sim_steps / serve_result["median_s"]
    serve_result["requests_per_s_of_simulation"] = (
        len(trace.requests) / serve_result["median_s"]
    )
    results["serve_sim"] = _with_baseline(
        "serve_sim_quick" if quick else "serve_sim", serve_result
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "workload": workload.describe(),
        "policy": policy.describe(),
        "targets": results,
    }


def write_bench_timing(
    path: str = "BENCH_timing.json",
    quick: bool = False,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Run the harness and write the payload to ``path``."""
    payload = run_bench_timing(quick=quick, registry=registry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
