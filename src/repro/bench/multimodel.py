"""Multi-model serving benchmark: dedicated replicas vs. co-residency.

``python -m repro serve-sim --models <preset>`` replays tagged traffic
mixes through two deployment shapes and writes ``BENCH_multimodel.json``:

* **dedicated** — one platform per model (K replicas), each running the
  plain single-model :class:`~repro.serving.simulator.ServingSimulator`
  on its own sub-trace.  No swaps, no cross-model interference, K GPUs.
* **co-resident** — one platform time-shared by all K models through
  :class:`~repro.serving.multimodel.MultiModelSimulator`, under three
  between-model schedulers: ``fcfs`` (swap-on-idle only),
  ``priority-preempt`` (cross-model eviction by SLO class) and
  ``sjf-predict`` (the bucketed learned length predictor).  1 GPU.

The headline question is the consolidation trade: how much of K
dedicated GPUs' goodput does one GPU keep, per traffic mix, and which
between-model scheduler keeps the most.  Every run derives from one seed
(per-model arrival streams are independently keyed, so both deployment
shapes replay literally identical requests) and the payload is
byte-identical across same-seed invocations — CI diffs two.
"""

from __future__ import annotations

import json
from typing import Any

from repro.models import get_model
from repro.serving.arrivals import RequestTrace, multimodel_trace
from repro.serving.multimodel import (
    ModelSlot,
    MultiModelSimulator,
    make_slots,
    slot_summary,
)
from repro.serving.policies import make_policy
from repro.serving.simulator import ServingConfig, ServingSimulator
from repro.bench.serving import _make_engine

SCHEMA_VERSION = 1

#: Between-model schedulers the co-resident side sweeps.
CORESIDENT_SCHEDULERS = ("fcfs", "priority-preempt", "sjf-predict")

#: Traffic mixes: per-model rate weights, smallest model first.  Weights
#: are positional (applied to the preset's slots in order) so one table
#: serves every preset size.
MIX_WEIGHTS: dict[str, tuple[float, ...]] = {
    "balanced": (1.0, 1.0, 1.0, 1.0),
    "interactive-heavy": (3.0, 1.0, 0.5, 0.5),
    "large-heavy": (0.5, 1.0, 3.0, 3.0),
}


def mix_trace(
    slots: tuple[ModelSlot, ...],
    mix: str,
    quick: bool = False,
    seed: int = 0,
) -> RequestTrace:
    """The frozen tagged trace for one (preset, mix) cell.

    Per-model rates are the mix's positional weights scaled so the total
    arrival rate is ~1 req/s (0.75 in quick mode over a short horizon).
    Smaller models carry higher fixed priority — the interactive class a
    preemptive scheduler protects across models.
    """
    weights = MIX_WEIGHTS[mix]
    total_rate = 0.75 if quick else 1.0
    horizon = 8.0 if quick else 40.0
    scale = total_rate / sum(weights[: len(slots)])
    rates = {s.name: weights[i] * scale for i, s in enumerate(slots)}
    priorities = {s.name: len(slots) - 1 - i for i, s in enumerate(slots)}
    return multimodel_trace(
        rates,
        horizon_s=horizon,
        seed=seed,
        priorities=priorities,
        name=f"{mix}({','.join(s.name for s in slots)})",
    )


def _dedicated(
    engine_name: str,
    slots: tuple[ModelSlot, ...],
    trace: RequestTrace,
    config: ServingConfig,
) -> dict[str, Any]:
    """K dedicated replicas: each model's sub-trace on its own platform."""
    per_model: dict[str, Any] = {}
    makespans: list[float] = []
    goodput_total = 0.0
    for slot in slots:
        sub = trace.for_model(slot.name)
        result = ServingSimulator(
            engine=_make_engine(engine_name),
            model=slot.model,
            trace=sub,
            policy=make_policy("fcfs"),
            config=config,
        ).run()
        doc = slot_summary(result.requests, slot, config, result.makespan_s)
        doc["makespan_s"] = result.makespan_s
        per_model[slot.name] = doc
        makespans.append(result.makespan_s)
        goodput_total += doc["slo"]["goodput_rps"]
    return {
        "replicas": len(slots),
        "makespan_s": max(makespans, default=0.0),
        "goodput_rps_total": goodput_total,
        "per_model": per_model,
    }


def _coresident(
    engine_name: str,
    slots: tuple[ModelSlot, ...],
    trace: RequestTrace,
    config: ServingConfig,
    scheduler: str,
) -> dict[str, Any]:
    """One platform, all K models, one between-model scheduler."""
    policy = make_policy(scheduler)
    result = MultiModelSimulator(
        engine=_make_engine(engine_name),
        slots=slots,
        trace=trace,
        policy=policy,
        config=config,
    ).run()
    doc = result.to_dict()
    doc["goodput_rps_total"] = sum(
        m["slo"]["goodput_rps"] for m in doc["per_model"].values()
    )
    predictor = getattr(policy, "predictor", None)
    if predictor is not None:
        doc["predictor"] = predictor.stats()
    return doc


def run_multimodel_bench(
    preset: str = "opt-duo",
    engine: str = "lm-offload",
    mixes: tuple[str, ...] = tuple(MIX_WEIGHTS),
    schedulers: tuple[str, ...] = CORESIDENT_SCHEDULERS,
    config: ServingConfig | None = None,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Dedicated-replica fleet vs. preemptive co-residency, per mix."""
    slots = make_slots(preset)
    config = config or ServingConfig()
    doc_mixes: dict[str, Any] = {}
    for mix in mixes:
        trace = mix_trace(slots, mix, quick=quick, seed=seed)
        dedicated = _dedicated(engine, slots, trace, config)
        coresident = {
            sched: _coresident(engine, slots, trace, config, sched)
            for sched in schedulers
        }
        dd = dedicated["goodput_rps_total"]
        doc_mixes[mix] = {
            "trace": {
                "name": trace.name,
                "requests": len(trace),
                "horizon_s": trace.horizon_s,
                "total_tokens": trace.total_tokens,
            },
            "dedicated": dedicated,
            "coresident": coresident,
            #: Goodput one platform keeps, as a fraction of K platforms'.
            "consolidation_ratio": {
                sched: (c["goodput_rps_total"] / dd) if dd > 0 else None
                for sched, c in coresident.items()
            },
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "preset": preset,
        "models": [s.name for s in slots],
        "engine": engine,
        "seed": seed,
        "config": {
            "max_batch": config.max_batch,
            "queue_capacity": config.queue_capacity,
            "ttft_slo_s": config.ttft_slo_s,
            "tpot_slo_s": config.tpot_slo_s,
        },
        "slo_classes": {
            s.name: {
                "ttft_slo_s": s.ttft_slo_s
                if s.ttft_slo_s is not None
                else config.ttft_slo_s,
                "tpot_slo_s": s.tpot_slo_s
                if s.tpot_slo_s is not None
                else config.tpot_slo_s,
            }
            for s in slots
        },
        "mixes": doc_mixes,
    }


def write_bench_multimodel(
    path: str = "BENCH_multimodel.json", **kwargs: Any
) -> dict[str, Any]:
    """Run the comparison and write the payload to ``path``."""
    payload = run_multimodel_bench(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def multimodel_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten one payload into CLI/markdown table rows (one per
    deployment shape per mix)."""
    rows: list[dict[str, Any]] = []
    for mix, doc in payload["mixes"].items():
        d = doc["dedicated"]
        rows.append(
            {
                "mix": mix,
                "deploy": f"dedicated x{d['replicas']}",
                "makespan_s": round(d["makespan_s"], 1),
                "swaps": 0,
                "swap_s": 0.0,
                "goodput_rps": round(d["goodput_rps_total"], 3),
                "vs_dedicated": 1.0,
            }
        )
        for sched, c in doc["coresident"].items():
            ratio = doc["consolidation_ratio"][sched]
            rows.append(
                {
                    "mix": mix,
                    "deploy": sched,
                    "makespan_s": round(c["makespan_s"], 1),
                    "swaps": c["swaps"],
                    "swap_s": round(c["swap_time_s"], 1),
                    "goodput_rps": round(c["goodput_rps_total"], 3),
                    "vs_dedicated": round(ratio, 3) if ratio is not None else "-",
                }
            )
    return rows
