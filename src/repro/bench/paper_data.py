"""Reference values transcribed from the paper's tables and figures.

These are the targets each benchmark compares against.  The reproduction
asserts *shape* agreement (orderings, ratios, crossover positions), not
absolute equality — our substrate is a calibrated simulator, not the
authors' testbed.
"""

from __future__ import annotations

# --- Figure 3 (OPT-30B, s=64, n=128, bsz=64, bls=640) ------------------------
# Throughput in tokens/s per (attention placement, quantization) strategy.
FIG3_TPUT = {
    ("cpu", "none"): 41.0,
    ("cpu", "best-quant"): 32.0,   # best quantized config still loses
    ("gpu", "none"): 46.0,
    ("gpu", "w4"): 35.0,
    ("gpu", "kv4"): 82.0,
    ("gpu", "w4+kv4"): 55.0,
}

# --- Table 1 (I/O traffic, GB per generated token) ---------------------------
TAB1_TRAFFIC_GB = {
    ("with_offload", "cpu->gpu", "weights"): 16.32,
    ("with_offload", "cpu->gpu", "kv_cache"): 0.0,
    ("with_offload", "cpu->gpu", "activation"): 0.38,
    ("with_offload", "gpu->cpu", "kv_cache"): 0.0,
    ("with_offload", "gpu->cpu", "activation"): 0.38,
    ("without_offload", "cpu->gpu", "weights"): 38.88,
    ("without_offload", "cpu->gpu", "kv_cache"): 78.72,
    ("without_offload", "cpu->gpu", "activation"): 0.38,
    ("without_offload", "gpu->cpu", "kv_cache"): 0.8,
    ("without_offload", "gpu->cpu", "activation"): 0.38,
}

# --- Figure 5 (threading sweeps, qualitative) ---------------------------------
FIG5_INTRA_SATURATION_THREADS = 8   # throughput stable past this point
FIG5_INTER_OPTIMUM = 12             # paper's best inter-op parallelism

# --- Table 3 -------------------------------------------------------------------
# model -> gen_len -> dict of per-framework (block size, tokens/s).
# "bsz" for flexgen/lm-offload is the zig-zag block size; for
# zero-inference it is the plain batch size.
TAB3 = {
    "opt-30b": {
        8: {"flexgen": (1792, 51), "zero-inference": (64, 94), "lm-offload": (1792, 117)},
        16: {"flexgen": (1600, 56), "zero-inference": (64, 116), "lm-offload": (1600, 139)},
        32: {"flexgen": (1344, 53), "zero-inference": (64, 113), "lm-offload": (1344, 144)},
        64: {"flexgen": (960, 50), "zero-inference": (64, 126), "lm-offload": (960, 126)},
        128: {"flexgen": (640, 41), "zero-inference": (64, 110), "lm-offload": (640, 102)},
    },
    "opt-66b": {
        8: {"flexgen": (780, 24), "zero-inference": (32, 28), "lm-offload": (780, 40)},
        16: {"flexgen": (828, 22), "zero-inference": (16, 32), "lm-offload": (828, 42)},
        32: {"flexgen": (702, 17), "zero-inference": (8, 20), "lm-offload": (702, 34)},
        64: {"flexgen": (720, 14), "zero-inference": (4, 11), "lm-offload": (720, 31)},
        128: {"flexgen": (480, 11), "zero-inference": (4, 10), "lm-offload": (480, 25)},
    },
    "llama-30b": {
        8: {"flexgen": (1536, 35), "zero-inference": (64, 34), "lm-offload": (1536, 95)},
        16: {"flexgen": (1408, 38), "zero-inference": (64, 68), "lm-offload": (1408, 109)},
        32: {"flexgen": (1152, 37), "zero-inference": (64, 73), "lm-offload": (1152, 111)},
        64: {"flexgen": (832, 35), "zero-inference": (64, 69), "lm-offload": (832, 96)},
        128: {"flexgen": (576, 31), "zero-inference": (64, 63), "lm-offload": (576, 89)},
    },
    "llama-65b": {
        8: {"flexgen": (1140, 20), "zero-inference": (32, 19), "lm-offload": (1140, 44)},
        16: {"flexgen": (1020, 20), "zero-inference": (16, 25), "lm-offload": (1020, 47)},
        32: {"flexgen": (616, 23), "zero-inference": (8, 39), "lm-offload": (616, 40)},
        64: {"flexgen": (616, 18), "zero-inference": (4, 31), "lm-offload": (616, 38)},
        128: {"flexgen": (392, 15), "zero-inference": (4, 31), "lm-offload": (392, 32)},
    },
}

# Headline speedups (§5.2): LM-Offload vs FlexGen up to 2.95x (avg 2.34x),
# vs ZeRO-Inference up to 2.88x (avg 1.57x).
HEADLINE = {
    "flexgen": {"max": 2.95, "avg": 2.34},
    "zero-inference": {"max": 2.88, "avg": 1.57},
}

# --- Figure 7 (perf modeling only, parallelism control disabled) -------------
FIG7_GAIN_RANGE = (1.90, 2.21)  # LM-Offload/FlexGen for 30B models: +90%..+121%

# --- Figure 8 (parallelism control, OPT-30B n=8) -------------------------------
FIG8 = {
    "compute_reduction": 0.32,    # compute task: -32%
    "avg_task_reduction": 0.19,   # mean across tasks: -19%
    "end_to_end_reduction": 0.38,  # overlapped end-to-end: -38%
    "default_setting": (56, 112),  # (intra, inter)
    "controlled_setting": (16, 12),
}

# --- Table 5 (LLC misses, billions) --------------------------------------------
TAB5 = {
    "default": {"load": 10e9, "store": 19e9},
    "controlled": {"load": 6e9, "store": 12e9},
}

# --- Figure 9 (multi-GPU weak scaling) -----------------------------------------
FIG9 = {
    "max_gain": 4.27,   # up to 327% over FlexGen
    "avg_gain": 2.12,   # 112% on average
    "gap_grows_with_gpus": True,
}


def bls_split(bls: int) -> tuple[int, int]:
    """Split a paper block size into (gpu_batch_size, num_gpu_batches)."""
    for k in (8, 10, 6, 4, 12, 5, 7, 3, 2, 1):
        if bls % k == 0:
            return bls // k, k
    return bls, 1
