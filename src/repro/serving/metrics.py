"""SLO metrics for a serving run: latency percentiles, goodput, drops.

Percentiles use the nearest-rank method on exactly-sorted values — no
interpolation — so metrics are bit-stable across runs and platforms (the
determinism tests compare serialized metrics byte for byte).

Vocabulary (the standard LLM-serving metric set):

* **TTFT** — time to first token: arrival -> end of the prefill step;
* **TPOT** — time per output token after the first (queueing and
  preemption stalls included, as the user experiences them);
* **e2e**  — arrival -> last token;
* **goodput** — *SLO-compliant* completions per second: requests that
  finished with ``TTFT <= ttft_slo`` and ``TPOT <= tpot_slo``, divided by
  the makespan.  Throughput counts tokens; goodput counts kept promises.

Chaos runs (a fault schedule was injected) additionally carry a
``faults`` section — aborted steps, retries, replans, ladder transitions,
availability (fraction of the run not lost to aborts/backoff), degraded
time fraction, and SLO attainment *under chaos*.  The section is omitted
entirely for fault-free runs so their documents stay byte-identical.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import Histogram, MetricsRegistry, exact_nearest_rank
from repro.serving.simulator import ServingResult

PERCENTILES = (50, 95, 99, 99.9)


def nearest_rank(values: list[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Delegates to :func:`repro.obs.registry.exact_nearest_rank`: the rank
    ``ceil(n * pct / 100)`` is computed over rationals, so float
    percentiles like 99.9 are exact.  (The old inline
    ``-(-n * pct // 100)`` trick ran the ceiling in float arithmetic;
    when ``n * pct / 100`` is mathematically an integer but the float
    product lands epsilon above it, the rank comes out one too high —
    e.g. p64.4 of 250 samples picked rank 162 instead of 161.)
    """
    return exact_nearest_rank(values, pct)


def _summary(values: list[float]) -> dict[str, float]:
    return Histogram(name="latency", values=list(values)).summary(PERCENTILES)


def compute_metrics(result: ServingResult) -> dict[str, Any]:
    """The full metrics document for one serving run (JSON-ready)."""
    cfg = result.config
    finished = result.finished
    dropped = result.dropped

    ttft = [r.ttft_s for r in finished if r.ttft_s is not None]
    tpot = [r.tpot_s for r in finished if r.tpot_s is not None]
    e2e = [r.e2e_s for r in finished if r.e2e_s is not None]

    slo_ok = [r for r in finished if r.meets_slo(cfg.ttft_slo_s, cfg.tpot_slo_s)]
    # A zero makespan (empty trace, or every request dropped before a
    # single step ran) has no rate: report 0.0 explicitly rather than
    # dividing by a phantom second.
    makespan = result.makespan_s
    gen_tokens = sum(r.tokens_done for r in result.requests)

    drop_counts: dict[str, int] = {}
    for r in dropped:
        assert r.drop_reason is not None
        drop_counts[r.drop_reason.value] = drop_counts.get(r.drop_reason.value, 0) + 1

    # Queue-depth and step-count stats come from the loop's running
    # aggregates, not from expanding per-step records: integer sums and
    # maxima are exact, so the document is byte-identical to the old
    # list-derived values — and independent of ``collect_steps``.
    agg = result.aggregates

    doc = {
        "engine": result.engine,
        "trace": result.trace_name,
        "scheduler": result.policy_name,
        "requests": {
            "total": len(result.requests),
            "finished": len(finished),
            "dropped": sum(drop_counts.values()),
            "drop_reasons": drop_counts,
            "preemptions": sum(r.preemptions for r in result.requests),
        },
        "latency_s": {
            "ttft": _summary(ttft),
            "tpot": _summary(tpot),
            "e2e": _summary(e2e),
        },
        "slo": {
            "ttft_slo_s": cfg.ttft_slo_s,
            "tpot_slo_s": cfg.tpot_slo_s,
            "attainment": (len(slo_ok) / len(result.requests))
            if result.requests
            else 0.0,
            "goodput_rps": len(slo_ok) / makespan if makespan > 0 else 0.0,
        },
        "throughput": {
            "tokens_per_s": gen_tokens / makespan if makespan > 0 else 0.0,
            "requests_per_s": len(finished) / makespan if makespan > 0 else 0.0,
        },
        "queue_depth": {
            "mean_waiting": (
                agg.waiting_sum / agg.depth_samples if agg.depth_samples else 0.0
            ),
            "max_waiting": agg.max_waiting,
            "max_in_system": agg.max_in_system,
        },
        "steps": {
            "prefill": agg.steps_of_kind("prefill"),
            "decode": agg.steps_of_kind("decode"),
        },
        "makespan_s": result.makespan_s,
    }
    if result.fault_stats is not None:
        # Present only for chaos runs, so fault-free metrics documents stay
        # byte-identical to the pre-fault-layer output.
        doc["steps"]["aborted"] = agg.aborted_steps
        faults = result.fault_stats.to_dict(result.makespan_s)
        faults["retries"] = sum(r.retries for r in result.requests)
        faults["slo_attainment_under_chaos"] = doc["slo"]["attainment"]
        doc["faults"] = faults
    return doc


def metrics_registry(result: ServingResult) -> MetricsRegistry:
    """Typed series for one run: the export surface for JSON + trace rows.

    The document from :func:`compute_metrics` is the human-facing summary;
    this registry is the machine-facing one — every tally a Counter, every
    sampled quantity a Histogram/Gauge, serialized deterministically and
    renderable as Chrome-trace counter rows via
    :meth:`~repro.obs.registry.MetricsRegistry.export_chrome`.
    """
    reg = MetricsRegistry(namespace="serving")
    reg.counter("requests.total").inc(len(result.requests))
    reg.counter("requests.finished").inc(len(result.finished))
    reg.counter("requests.dropped").inc(len(result.dropped))
    for r in result.requests:
        if r.preemptions:
            reg.counter("requests.preemptions").inc(r.preemptions)
    for r in result.dropped:
        assert r.drop_reason is not None
        reg.counter(f"drops.{r.drop_reason.value}").inc()
    for r in result.finished:
        for name, value in (
            ("ttft_s", r.ttft_s), ("tpot_s", r.tpot_s), ("e2e_s", r.e2e_s)
        ):
            if value is not None:
                reg.histogram(f"latency.{name}").observe(value)
    # Step counters and queue/batch summaries come from the loop's running
    # aggregates — exact integer sums and maxima, byte-identical whether
    # per-step records were retained or not.  (They used to be derived by
    # iterating ``result.steps`` / ``result.queue_depth``, which are empty
    # under ``collect_steps=False``, so ``serve-sim --no-steps
    # --metrics-out`` silently dropped every ``steps.*`` and ``queue.*``
    # series while the metrics document still reported them.)
    agg = result.aggregates
    for kind in sorted(agg.step_counts):
        reg.counter(f"steps.{kind}").inc(agg.step_counts[kind])
    if agg.depth_samples:
        reg.gauge("batch.max").set(agg.max_batch)
        reg.gauge("queue.max_waiting").set(agg.max_waiting)
        reg.gauge("queue.mean_waiting").set(agg.waiting_sum / agg.depth_samples)
        reg.gauge("queue.max_in_system").set(agg.max_in_system)
    # Per-step distributions and trajectories genuinely need the retained
    # records; they are emitted only when the run kept them.
    for step in result.steps:
        reg.histogram(f"step_duration_s.{step.kind}").observe(step.duration_s)
        reg.gauge("batch").set(step.batch)
    for _, waiting, running in result.queue_depth:
        reg.gauge("queue.waiting").set(waiting)
        reg.gauge("queue.in_system").set(waiting + running)
    reg.gauge("makespan_s").set(result.makespan_s)
    if result.fault_stats is not None:
        result.fault_stats.fill_registry(reg, result.makespan_s)
    if result.timeseries is not None:
        # The loop sampled per-step curves live (``curve.*`` — a disjoint
        # namespace from the aggregates above); fold them in so one export
        # carries both the end-of-run summary and the trajectories.
        reg.merge(result.timeseries)
    return reg


def metrics_row(metrics: dict[str, Any]) -> dict[str, Any]:
    """Flatten one metrics document into a table row for the CLI."""
    lat = metrics["latency_s"]
    return {
        "engine": metrics["engine"],
        "sched": metrics["scheduler"],
        "done": metrics["requests"]["finished"],
        "drop": metrics["requests"]["dropped"],
        "ttft_p50": round(lat["ttft"]["p50"], 3),
        "ttft_p95": round(lat["ttft"]["p95"], 3),
        "ttft_p99": round(lat["ttft"]["p99"], 3),
        "tpot_p50": round(lat["tpot"]["p50"], 4),
        "tpot_p95": round(lat["tpot"]["p95"], 4),
        "tpot_p99": round(lat["tpot"]["p99"], 4),
        "e2e_p50": round(lat["e2e"]["p50"], 3),
        "e2e_p95": round(lat["e2e"]["p95"], 3),
        "e2e_p99": round(lat["e2e"]["p99"], 3),
        "goodput_rps": round(metrics["slo"]["goodput_rps"], 3),
        "slo_att": round(metrics["slo"]["attainment"], 3),
        "tok_per_s": round(metrics["throughput"]["tokens_per_s"], 1),
    }
