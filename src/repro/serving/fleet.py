"""Fleet-scale serving: N replicas, one virtual clock, crash-recovery.

A :class:`FleetSimulator` composes ``N`` heterogeneous replicas — each a
full single-engine serving stack (:class:`~repro.serving.StepCostOracle`
over its own engine + platform, an :class:`AdmissionQueue`, the shared
:func:`~repro.serving.simulator.admit_batch` admission semantics) — under
a cluster router and a fault layer the single-engine simulator cannot
express: whole-replica crashes and restarts, fault-domain correlation,
failover migration, hedged requests and per-replica circuit breakers.

**Clock discipline.**  Every replica advances its own clock one step at a
time, but the fleet processes events in global time order: the next
arrival, the next migration delivery, the next hedge deadline and each
busy replica's next step boundary compete on a ``(time, kind, index)``
key (arrivals < deliveries < hedges < boundaries at equal times).  A
replica boundary executes one *atomic* iteration of the single-engine
loop — expire, admit, prefill, decode — so a 1-replica zero-fault fleet
replays :class:`~repro.serving.ServingSimulator` byte for byte (pinned
in ``tests/test_fleet.py``).

**Routing.**  Placement follows a Firmament-style cost model (OCTOPUS
load balancing): ``cost = in_system * BUSY_PU_OFFSET + step_price +
replica_index``, where the step price is the replica's planned per-
sequence decode-step time in integer points.  Queue depth dominates;
the performance-model price breaks ties toward faster replicas; the
index makes ties total.  Down, draining, breaker-open, full and
unplannable replicas are excluded; a request with no schedulable replica
is dropped (``REPLICA_LOST``, or ``QUEUE_FULL`` when capacity was the
only obstacle, matching the single-engine stamp byte for byte).

**Crash semantics.**  A ``REPLICA_CRASH`` window destroys the replica's
in-flight batch and KV state at the window start: a step in flight is
cut short (recorded as a ``crash-prefill``/``crash-decode`` slice with
no tokens credited), and every casualty — running, mid-admission and
queued — is migrated.  Survivors keep their generated tokens but lost
their KV cache, so re-admission elsewhere pays a full re-prefill at the
accumulated context (the true cost of failover under offloading — the
same asymmetry preemption has).  ``REPLICA_RESTART`` drains gracefully:
running work completes in place, queued work migrates, and no new work
is placed for the window.  Crash windows that elapse while a replica is
idle destroy nothing.

**Migration.**  Displaced requests re-route at the displacement time
through the same router (their origin and any live hedge sibling's
replica excluded), bounded by a per-request migration budget shared
between a request and its hedge (``FAILOVER_EXHAUSTED`` beyond it).
Deliveries are events, not instant hops: a request migrated at ``t``
lands in the destination queue at ``t``, after every replica boundary
earlier than ``t`` has been processed, so causality holds under
desynchronized replica clocks.

**Hedging.**  With ``hedge_after_s`` set, a request still queued (no
token yet) that long after arrival launches a clone on a different
replica; the first copy to finish wins and the loser is cancelled, its
generated tokens accounted as waste.  The canonical request object (the
one in ``FleetResult.requests``) always carries the winning outcome.  A
hedge and its primary are never co-resident on one replica (the router
excludes the sibling's replica), which also keeps the queue's
equality-based removal safe for same-``rid`` clones.

**Circuit breakers.**  Each replica carries a breaker: ``threshold``
consecutive aborted steps trip it OPEN (no placements); after
``cooldown_s`` it admits exactly one HALF_OPEN probe, closing on the
probe's successful step and re-opening on an abort.  A crash forces the
breaker open until the outage window ends.  Breakers gate *new
placements* only — work already queued keeps draining.  All transitions
are deterministic and timestamped.

Determinism: per-replica chaos RNG streams are seeded
``(seed, "fleet", replica_name, "chaos")``; everything else is pure
float arithmetic over frozen traces and schedules — two runs with the
same inputs are byte-identical (tested, and the bench artifact is
``cmp``-compared in CI).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import (
    LADDER,
    REPLICA_KINDS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    FaultStats,
)
from repro.models.config import ModelConfig
from repro.obs.profiling import span
from repro.obs.registry import MetricsRegistry
from repro.serving.arrivals import RequestTrace
from repro.serving.costing import StepCostOracle
from repro.serving.metrics import compute_metrics
from repro.serving.policies import SchedulerPolicy
from repro.serving.queue import AdmissionQueue
from repro.serving.request import DropReason, Request, RequestState
from repro.serving.simulator import (
    ServingAggregates,
    ServingConfig,
    ServingResult,
    StepRun,
    admit_batch,
)
from repro.trace.chrome import ChromeTraceBuilder
from repro.util.rng import seeded_rng

#: Router cost per request already on a replica (queued + running).  The
#: Firmament/OCTOPUS idiom: load dominates, the per-replica step price
#: (typically < 100 points) breaks ties toward faster replicas.
BUSY_PU_OFFSET = 100
#: Step-price scale: planned per-sequence decode-step seconds are priced
#: in integer milliseconds so router costs stay exact integers.
PRICE_POINTS_PER_SECOND = 1000

#: Engine names a replica may run (same registry as ``repro.bench``).
REPLICA_ENGINES = ("lm-offload", "flexgen", "zero-inference", "spec-offload")
#: Platform presets a replica may run on.
REPLICA_PLATFORMS = ("single-a100", "power9-4xv100", "small-test")

_RUNGS = {rung.name: rung for rung in LADDER}

# Event kinds, in tie-break order at equal times.
_EV_ARRIVAL = 0
_EV_DELIVER = 1
_EV_HEDGE = 2
_EV_BOUNDARY = 3


def _make_replica_engine(spec: "ReplicaSpec") -> Any:
    """Construct the engine a replica runs (lazy imports, bench idiom)."""
    from repro.baselines import (
        FlexGenEngine,
        SpecOffloadEngine,
        ZeroInferenceEngine,
    )
    from repro.core import LMOffloadEngine
    from repro.hardware import power9_4xv100, single_a100, small_test_platform

    platforms = {
        "single-a100": single_a100,
        "power9-4xv100": power9_4xv100,
        "small-test": small_test_platform,
    }
    engines = {
        "lm-offload": LMOffloadEngine,
        "flexgen": FlexGenEngine,
        "zero-inference": ZeroInferenceEngine,
        "spec-offload": SpecOffloadEngine,
    }
    return engines[spec.engine](platforms[spec.platform]())


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica: engine + platform + static degradation + fault domain.

    ``degradation`` names a :data:`~repro.faults.LADDER` rung the replica
    permanently runs at (static heterogeneity — e.g. a box that only
    serves quantized); it must be an admitting rung.  ``fault_domain``
    groups replicas that fail together (one rack, one PDU): a replica-
    level fault window targeting the domain hits every member.
    """

    name: str
    engine: str = "lm-offload"
    platform: str = "single-a100"
    degradation: str | None = None
    fault_domain: str = "dom0"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("replica spec: name must be non-empty")
        if self.engine not in REPLICA_ENGINES:
            raise ConfigError(
                f"replica {self.name!r}: unknown engine {self.engine!r} "
                f"(choose from {', '.join(REPLICA_ENGINES)})"
            )
        if self.platform not in REPLICA_PLATFORMS:
            raise ConfigError(
                f"replica {self.name!r}: unknown platform {self.platform!r} "
                f"(choose from {', '.join(REPLICA_PLATFORMS)})"
            )
        if self.degradation is not None:
            rung = _RUNGS.get(self.degradation)
            if rung is None:
                raise ConfigError(
                    f"replica {self.name!r}: unknown degradation rung "
                    f"{self.degradation!r} (choose from "
                    f"{', '.join(sorted(_RUNGS))})"
                )
            if not rung.admit:
                raise ConfigError(
                    f"replica {self.name!r}: degradation rung "
                    f"{self.degradation!r} does not admit work; a replica "
                    "pinned to backpressure can never serve — leave it out "
                    "of the fleet instead"
                )
        if not self.fault_domain:
            raise ConfigError(
                f"replica {self.name!r}: fault_domain must be non-empty"
            )


@dataclass(frozen=True)
class FleetConfig:
    """Cluster-level knobs layered over the per-replica serving config."""

    serving: ServingConfig = field(default_factory=ServingConfig)
    #: Times a request (and its hedge, jointly) may be displaced by a
    #: crash/restart before it is dropped ``FAILOVER_EXHAUSTED``.
    migration_budget: int = 2
    #: Launch a hedge clone for a request still token-less this long
    #: after arrival; ``None`` disables hedging.
    hedge_after_s: float | None = None
    #: Consecutive aborted steps that trip a replica's breaker; ``0``
    #: disables the breakers.
    breaker_threshold: int = 3
    #: OPEN -> HALF_OPEN cooldown.
    breaker_cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.migration_budget < 0:
            raise ConfigError(
                f"fleet config: migration_budget must be >= 0 (got "
                f"{self.migration_budget})"
            )
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ConfigError(
                f"fleet config: hedge_after_s must be positive when set "
                f"(got {self.hedge_after_s}); use None to disable hedging"
            )
        if self.breaker_threshold < 0:
            raise ConfigError(
                f"fleet config: breaker_threshold must be >= 0 (got "
                f"{self.breaker_threshold}); 0 disables the breakers"
            )
        if self.breaker_cooldown_s <= 0:
            raise ConfigError(
                f"fleet config: breaker_cooldown_s must be positive (got "
                f"{self.breaker_cooldown_s})"
            )


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-replica placement gate: trip on consecutive aborted steps,
    probe one request after a cooldown, close on the probe's success.

    The breaker gates *placements only* (router + hedges + migrations);
    work already on the replica keeps draining.  Crashes force it OPEN
    for the outage window.  Every transition is recorded as
    ``(t, from, to, cause)`` — deterministic, no randomness anywhere.
    """

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_rid: int | None = None
        self.trips = 0
        self.transitions: list[tuple[float, str, str, str]] = []

    def _goto(self, now: float, to: BreakerState, cause: str) -> None:
        self.transitions.append((now, self.state.value, to.value, cause))
        self.state = to

    def allow(self, now: float) -> bool:
        """May the router place a request here at ``now``?  (Transitions
        OPEN -> HALF_OPEN as a side effect once the cooldown has passed.)
        """
        if self.threshold <= 0:
            return True
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now >= self.opened_at + self.cooldown_s:
                self._goto(now, BreakerState.HALF_OPEN, "cooldown")
                self.probe_rid = None
                return True
            return False
        # HALF_OPEN admits exactly one in-flight probe.
        return self.probe_rid is None

    def note_placed(self, now: float, rid: int) -> None:
        if self.state is BreakerState.HALF_OPEN and self.probe_rid is None:
            self.probe_rid = rid

    def on_success(self, now: float, rids: tuple[int, ...]) -> None:
        """A step completed; close a half-open breaker if the probe ran."""
        self.consecutive_failures = 0
        if (
            self.state is BreakerState.HALF_OPEN
            and self.probe_rid is not None
            and self.probe_rid in rids
        ):
            self._goto(now, BreakerState.CLOSED, "probe-success")
            self.probe_rid = None

    def on_abort(self, now: float) -> None:
        """A step aborted (transient fault) at ``now``."""
        if self.threshold <= 0:
            return
        if self.state is BreakerState.HALF_OPEN:
            self.trips += 1
            self.opened_at = now
            self._goto(now, BreakerState.OPEN, "probe-failure")
            self.probe_rid = None
            self.consecutive_failures = 0
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.trips += 1
            self.opened_at = now
            self._goto(now, BreakerState.OPEN, "threshold")

    def on_crash(self, now: float, restart_at: float) -> None:
        """The replica crashed: hold OPEN until the outage window ends
        (the cooldown is backdated so a HALF_OPEN probe is available the
        moment the replica is back)."""
        if self.threshold <= 0:
            return
        if self.state is not BreakerState.OPEN:
            self.trips += 1
            self._goto(now, BreakerState.OPEN, "crash")
        self.opened_at = restart_at - self.cooldown_s
        self.probe_rid = None
        self.consecutive_failures = 0

    def forget(self, rid: int) -> None:
        """The in-flight probe left this replica (migrated/cancelled):
        clear it so HALF_OPEN cannot wedge waiting on a ghost."""
        if self.probe_rid == rid:
            self.probe_rid = None

    def to_dict(self) -> dict:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "transitions": [list(t) for t in self.transitions],
        }


@dataclass
class FleetStats:
    """Cluster-level event record (per-replica detail lives on the
    replicas' own :class:`~repro.faults.FaultStats` / breakers)."""

    placements: int = 0
    router_drops: int = 0
    migrations: int = 0
    failover_exhausted: int = 0
    replica_lost: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    hedges_dropped: int = 0
    hedge_wasted_tokens: int = 0
    crash_events: int = 0
    restart_events: int = 0
    #: ``(t, rid, from_replica, to_replica)`` per successful migration.
    migration_events: list[tuple[float, int, str, str]] = field(
        default_factory=list
    )
    #: ``(t, rid, kind)`` with kind in launch/win/cancel/drop.
    hedge_events: list[tuple[float, int, str]] = field(default_factory=list)
    #: ``(t, replica, casualties, window_end)`` per crash that fired.
    crash_log: list[tuple[float, str, int, float]] = field(
        default_factory=list
    )

    def to_dict(self) -> dict:
        return {
            "placements": self.placements,
            "router_drops": self.router_drops,
            "migrations": self.migrations,
            "failover_exhausted": self.failover_exhausted,
            "replica_lost": self.replica_lost,
            "hedges": {
                "launched": self.hedges_launched,
                "won": self.hedges_won,
                "cancelled": self.hedges_cancelled,
                "dropped": self.hedges_dropped,
                "wasted_tokens": self.hedge_wasted_tokens,
            },
            "crash_events": self.crash_events,
            "restart_events": self.restart_events,
        }


class _Replica:
    """Runtime state of one replica (internal)."""

    def __init__(
        self,
        idx: int,
        spec: ReplicaSpec,
        model: ModelConfig,
        trace: RequestTrace,
        scfg: ServingConfig,
        policy: SchedulerPolicy,
        schedule: FaultSchedule | None,
        breaker: CircuitBreaker,
        seed: int,
    ) -> None:
        self.idx = idx
        self.spec = spec
        self.engine = _make_replica_engine(spec)
        rung = _RUNGS[spec.degradation] if spec.degradation else None
        if rung is not None:
            self.engine.set_degradation(rung)
        self.limit = max(
            1, scfg.max_batch // (rung.batch_divisor if rung else 1)
        )
        max_prompt = max((r.prompt_len for r in trace.requests), default=64)
        max_gen = max((r.gen_len for r in trace.requests), default=32)
        self.plan_prompt = max_prompt
        self.oracle = StepCostOracle(
            engine=self.engine,
            model=model,
            num_gpu_batches=scfg.num_gpu_batches,
            ctx_bucket=scfg.ctx_bucket,
            plan_prompt_len=max_prompt,
            plan_gen_len=max_gen,
        )
        # The linear expire scan (use_heap=False) is deliberate: migration
        # moves requests between queues, which would leave stale entries in
        # a source queue's lazy deadline heap; the scan only ever touches
        # actual members.  Byte-identical either way (pinned upstream).
        self.queue = AdmissionQueue(
            scfg.queue_capacity, scfg.queue_timeout_s, use_heap=False
        )
        if getattr(policy, "static_order", False):
            self.queue.attach_order(policy.sort_key)
        self.running: list[Request] = []
        self.t = 0.0
        self.runs: list[StepRun] = []
        self.agg = ServingAggregates()
        self.breaker = breaker
        self.schedule = schedule
        self.chaos = schedule is not None and any(
            f.kind is FaultKind.TRANSIENT_ERROR for f in schedule.faults
        )
        self.rng = seeded_rng(seed, "fleet", spec.name, "chaos")
        self.consec_aborts = 0
        self.fstats = (
            FaultStats(schedule_name=schedule.name)
            if schedule is not None and len(schedule.faults) > 0
            else None
        )
        # Static outage windows, merged per kind, consumed by pointer.
        self.crash_windows = _merged_windows(schedule, FaultKind.REPLICA_CRASH)
        self.restart_windows = _merged_windows(
            schedule, FaultKind.REPLICA_RESTART
        )
        self.crash_i = 0
        self.restart_i = 0
        self.restart_migrated = False
        # Router price: planned per-sequence decode-step time in points.
        n_ref = self.oracle.warm_up(self.limit)
        if self.oracle.planned(n_ref) is None:
            self.price_points: int | None = None
            self.price_batch = 0
        else:
            step_s = self.oracle.decode_step_seconds(n_ref, max_prompt + 1)
            self.price_points = int(
                round(PRICE_POINTS_PER_SECOND * step_s / n_ref)
            )
            self.price_batch = n_ref
        # Accounting counters.
        self.placements = 0
        self.migrations_in = 0
        self.migrations_out = 0
        self.crashes = 0
        self.down_s = 0.0

    # -- outage-window queries (static: schedules are frozen) --------------

    def is_down(self, t: float) -> bool:
        return any(s <= t < e for s, e in self.crash_windows)

    def in_restart(self, t: float) -> bool:
        return any(s <= t < e for s, e in self.restart_windows)

    def empty(self) -> bool:
        return not self.queue.waiting and not self.running


def _merged_windows(
    schedule: FaultSchedule | None, kind: FaultKind
) -> list[tuple[float, float]]:
    """Sorted, overlap-merged ``[start, end)`` windows of one kind."""
    if schedule is None:
        return []
    spans = sorted(
        (f.start_s, f.end_s) for f in schedule.faults if f.kind is kind
    )
    merged: list[tuple[float, float]] = []
    for s, e in spans:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


@dataclass
class ReplicaResult:
    """One replica's view of a fleet run: a full single-engine
    :class:`ServingResult` over the requests that reached their terminal
    state here, plus placement/failover/breaker accounting."""

    spec: ReplicaSpec
    serving: ServingResult
    breaker: dict
    placements: int
    migrations_in: int
    migrations_out: int
    crashes: int
    down_s: float
    price_points: int | None


@dataclass
class FleetResult:
    """Everything a fleet simulation produced."""

    trace_name: str
    policy_name: str
    config: FleetConfig
    #: Canonical request objects in rid order — exactly one per trace
    #: entry, each carrying its fleet-wide terminal outcome (hedge races
    #: are folded into these).
    requests: list[Request]
    replicas: list[ReplicaResult]
    makespan_s: float
    stats: FleetStats
    fault_schedule: FaultSchedule | None
    #: rid -> replica index where the request reached its terminal state
    #: (``None`` for fleet-level drops: router/migration failures).
    terminal_replica: dict[int, int | None]

    @property
    def finished(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.FINISHED]

    @property
    def dropped(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.DROPPED]

    def accounting(self) -> dict:
        """Conservation check: every admitted request reaches exactly one
        terminal outcome fleet-wide, attributed exactly once."""
        total = len(self.requests)
        finished = len(self.finished)
        dropped = len(self.dropped)
        per_replica = [0] * len(self.replicas)
        fleet_level = 0
        covered = 0
        for req in self.requests:
            if req.rid in self.terminal_replica:
                covered += 1
                where = self.terminal_replica[req.rid]
                if where is None:
                    fleet_level += 1
                else:
                    per_replica[where] += 1
        s = self.stats
        hedge_balance = s.hedges_launched == (
            s.hedges_won + s.hedges_cancelled + s.hedges_dropped
        )
        ok = (
            finished + dropped == total
            and covered == total
            and len(self.terminal_replica) == total
            and sum(per_replica) + fleet_level == total
            and hedge_balance
        )
        return {
            "total": total,
            "finished": finished,
            "dropped": dropped,
            "nonterminal": total - finished - dropped,
            "terminal_covered": covered,
            "per_replica": {
                self.replicas[i].spec.name: n
                for i, n in enumerate(per_replica)
            },
            "fleet_level": fleet_level,
            "hedge_balance": hedge_balance,
            "ok": ok,
        }

    def single_replica_result(self) -> ServingResult:
        """The run re-expressed as a single-engine :class:`ServingResult`
        — only defined for 1-replica fleets, where it is byte-identical
        (requests, expanded steps, aggregates, makespan, metrics) to
        :class:`~repro.serving.ServingSimulator` on the same inputs."""
        if len(self.replicas) != 1:
            raise ConfigError(
                "single_replica_result is only defined for a 1-replica "
                f"fleet (this one has {len(self.replicas)})"
            )
        rr = self.replicas[0]
        return ServingResult(
            engine=rr.serving.engine,
            trace_name=self.trace_name,
            policy_name=self.policy_name,
            config=self.config.serving,
            requests=list(self.requests),
            step_runs=rr.serving.step_runs,
            aggregates=rr.serving.aggregates,
            makespan_s=self.makespan_s,
            fault_stats=rr.serving.fault_stats,
            fault_schedule=rr.serving.fault_schedule,
        )


class FleetSimulator:
    """N replicas + router + fault domains on one shared virtual clock."""

    def __init__(
        self,
        specs: tuple[ReplicaSpec, ...] | list[ReplicaSpec],
        model: ModelConfig,
        trace: RequestTrace,
        policy: SchedulerPolicy | None = None,
        config: FleetConfig | None = None,
        faults: FaultSchedule | None = None,
        seed: int = 0,
        collect_steps: bool = True,
    ) -> None:
        if not specs:
            raise ConfigError("fleet: at least one replica spec is required")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigError(
                f"fleet: replica names must be unique (duplicated: "
                f"{', '.join(dupes)})"
            )
        self.specs = tuple(specs)
        self.model = model
        self.trace = trace
        self.policy = policy or SchedulerPolicy()
        self.config = config or FleetConfig()
        self.seed = seed
        self.collect_steps = collect_steps
        self.faults = faults
        if faults is not None:
            domains = {s.fault_domain for s in self.specs}
            for f in faults.faults:
                if (
                    f.kind not in REPLICA_KINDS
                    and f.kind is not FaultKind.TRANSIENT_ERROR
                ):
                    raise ConfigError(
                        f"fleet: fault schedule {faults.name!r} contains a "
                        f"{f.kind.value} fault; capability faults need the "
                        "single-engine drift watchdog and degradation "
                        "ladder — run them through ServingSimulator, and "
                        "model static per-replica hardware differences via "
                        "ReplicaSpec.degradation"
                    )
                if f.domain is not None and f.domain not in domains:
                    raise ConfigError(
                        f"fleet: fault schedule {faults.name!r} targets "
                        f"domain {f.domain!r} but no replica is in it "
                        f"(known domains: {', '.join(sorted(domains))})"
                    )
        active = faults if faults is not None and len(faults.faults) else None
        cfg = self.config
        self.retry = cfg.serving.retry_policy()
        self.replicas = [
            _Replica(
                idx=i,
                spec=spec,
                model=model,
                trace=trace,
                scfg=cfg.serving,
                policy=self.policy,
                schedule=self._derive_schedule(active, spec),
                breaker=CircuitBreaker(
                    cfg.breaker_threshold, cfg.breaker_cooldown_s
                ),
                seed=seed,
            )
            for i, spec in enumerate(self.specs)
        ]
        self._active_schedule = active

    @staticmethod
    def _derive_schedule(
        faults: FaultSchedule | None, spec: ReplicaSpec
    ) -> FaultSchedule | None:
        """The fleet schedule as one replica experiences it: every fault
        whose domain matches (or targets the whole fleet)."""
        if faults is None:
            return None
        match = tuple(
            f
            for f in faults.faults
            if f.domain is None or f.domain == spec.fault_domain
        )
        if not match:
            return None
        return FaultSchedule(
            name=f"{faults.name}@{spec.name}", faults=match, seed=faults.seed
        )

    # -- run ---------------------------------------------------------------

    def run(self) -> FleetResult:
        with span("fleet.run"):
            return self._run()

    def _run(self) -> FleetResult:
        cfg = self.config
        pending = [
            Request.from_spec(i, spec)
            for i, spec in enumerate(self.trace.requests)
        ]
        self.requests = list(pending)
        self.stats = FleetStats()
        self.terminal: dict[int, int | None] = {}
        self.hedges: dict[int, Request] = {}
        self.primary_dead: set[int] = set()
        self.mig_count: dict[int, int] = {}
        self._events: list[tuple[float, int, int, Any]] = []
        self._eseq = 0
        self._makespan = 0.0
        i = 0
        n_pending = len(pending)

        while True:
            best: tuple[float, int, int] | None = None
            if i < n_pending:
                best = (pending[i].arrival_s, _EV_ARRIVAL, -1)
            if self._events:
                ev = self._events[0]
                cand = (ev[0], ev[1], -1)
                if best is None or cand < best:
                    best = cand
            for r in self.replicas:
                if r.queue.waiting or r.running:
                    cand = (r.t, _EV_BOUNDARY, r.idx)
                    if best is None or cand < best:
                        best = cand
            if best is None:
                break
            _, kind, idx = best
            if kind == _EV_ARRIVAL:
                self._arrival(pending[i])
                i += 1
            elif kind == _EV_BOUNDARY:
                self._boundary(self.replicas[idx])
            else:
                t_ev, ev_kind, _, payload = heapq.heappop(self._events)
                if ev_kind == _EV_DELIVER:
                    self._deliver(t_ev, *payload)
                else:
                    self._hedge_fire(t_ev, payload)

        for r in self.replicas:
            if r.fstats is not None:
                r.fstats.final_rung = r.spec.degradation or "nominal"

        terminal = self.terminal
        replica_results = []
        for r in self.replicas:
            mine = [
                req for req in self.requests if terminal.get(req.rid) == r.idx
            ]
            serving = ServingResult(
                engine=getattr(r.engine, "name", type(r.engine).__name__),
                trace_name=self.trace.name,
                policy_name=self.policy.name,
                config=cfg.serving,
                requests=mine,
                step_runs=r.runs,
                aggregates=r.agg,
                makespan_s=r.t,
                fault_stats=r.fstats,
                fault_schedule=r.schedule,
            )
            replica_results.append(
                ReplicaResult(
                    spec=r.spec,
                    serving=serving,
                    breaker=r.breaker.to_dict(),
                    placements=r.placements,
                    migrations_in=r.migrations_in,
                    migrations_out=r.migrations_out,
                    crashes=r.crashes,
                    down_s=r.down_s,
                    price_points=r.price_points,
                )
            )

        return FleetResult(
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            config=cfg,
            requests=self.requests,
            replicas=replica_results,
            makespan_s=self._makespan,
            stats=self.stats,
            fault_schedule=self._active_schedule,
            terminal_replica=terminal,
        )

    # -- routing -----------------------------------------------------------

    def _route(
        self, now: float, exclude: tuple[int, ...] = ()
    ) -> tuple[_Replica | None, bool]:
        """Cheapest schedulable replica at ``now`` (Firmament/OCTOPUS
        cost), or ``None``.  The second element reports whether some
        otherwise-alive replica was excluded *only* for being full —
        callers stamp that as ``QUEUE_FULL`` rather than ``REPLICA_LOST``.
        """
        best: _Replica | None = None
        best_cost = 0
        any_full = False
        for r in self.replicas:
            if r.idx in exclude or r.price_points is None:
                continue
            if r.is_down(now) or r.in_restart(now):
                continue
            if not r.breaker.allow(now):
                continue
            if len(r.queue.waiting) >= r.queue.capacity:
                any_full = True
                continue
            cost = (
                (len(r.queue.waiting) + len(r.running)) * BUSY_PU_OFFSET
                + r.price_points
                + r.idx
            )
            if best is None or cost < best_cost:
                best, best_cost = r, cost
        return best, any_full

    def _replica_of(self, obj: Request) -> _Replica | None:
        """Which replica currently holds this exact object (identity, not
        equality — a hedge clone compares equal to its canonical)."""
        for r in self.replicas:
            if any(x is obj for x in r.running):
                return r
            if any(x is obj for x in r.queue.waiting):
                return r
        return None

    def _place(self, r: _Replica, req: Request, now: float) -> None:
        """Put a routed request on a replica (capacity was pre-checked)."""
        if r.empty():
            # Idle-jump (the single-engine loop's `t = max(t, arrival)`),
            # and retire outage windows that elapsed while empty — a crash
            # with nothing in flight destroys nothing.
            r.t = max(r.t, now)
            while (
                r.crash_i < len(r.crash_windows)
                and r.crash_windows[r.crash_i][1] <= now
            ):
                r.crash_i += 1
            while (
                r.restart_i < len(r.restart_windows)
                and r.restart_windows[r.restart_i][1] <= now
            ):
                r.restart_i += 1
                r.restart_migrated = False
        if req.tokens_done or req.state is RequestState.RUNNING:
            r.queue.requeue(req, now)
        else:
            placed = r.queue.offer(req, now)
            assert placed, "router placed onto a full replica"
        r.placements += 1
        r.breaker.note_placed(now, req.rid)

    def _arrival(self, req: Request) -> None:
        a = req.arrival_s
        r, any_full = self._route(a)
        if r is None:
            req.state = RequestState.DROPPED
            req.drop_s = a
            if any_full:
                # Capacity was the only obstacle: the same stamp (and no
                # detail) the single-engine queue's offer() produces, so
                # a 1-replica fleet stays byte-identical.
                req.drop_reason = DropReason.QUEUE_FULL
            else:
                req.drop_reason = DropReason.REPLICA_LOST
                req.drop_detail = (
                    "no schedulable replica at arrival: every replica is "
                    "down, draining, breaker-open or unplannable"
                )
                self.stats.router_drops += 1
            self._on_drop(req, None, a)
            return
        self._place(r, req, a)
        self.stats.placements += 1
        if self.config.hedge_after_s is not None:
            heapq.heappush(
                self._events,
                (
                    a + self.config.hedge_after_s,
                    _EV_HEDGE,
                    self._next_seq(),
                    req.rid,
                ),
            )

    def _next_seq(self) -> int:
        self._eseq += 1
        return self._eseq

    # -- migration ---------------------------------------------------------

    def _push_deliver(self, now: float, req: Request, from_idx: int) -> None:
        heapq.heappush(
            self._events,
            (now, _EV_DELIVER, self._next_seq(), (req, from_idx)),
        )

    def _deliver(self, now: float, req: Request, from_idx: int) -> None:
        """Re-place a displaced request: budget check, then route with the
        origin and any live hedge sibling's replica excluded."""
        rid = req.rid
        count = self.mig_count.get(rid, 0) + 1
        self.mig_count[rid] = count
        from_name = self.replicas[from_idx].spec.name
        if count > self.config.migration_budget:
            req.state = RequestState.DROPPED
            req.drop_s = now
            req.drop_reason = DropReason.FAILOVER_EXHAUSTED
            req.drop_detail = (
                f"displaced {count} times (budget "
                f"{self.config.migration_budget}); last replica {from_name}"
            )
            self.stats.failover_exhausted += 1
            self._on_drop(req, None, now)
            return
        exclude = [from_idx]
        canonical = self.requests[rid]
        clone = self.hedges.get(rid)
        sibling = None
        if clone is not None:
            sibling = canonical if req is clone else clone
        if sibling is not None:
            sib_r = self._replica_of(sibling)
            if sib_r is not None:
                exclude.append(sib_r.idx)
        dest, _ = self._route(now, exclude=tuple(exclude))
        if dest is None:
            req.state = RequestState.DROPPED
            req.drop_s = now
            req.drop_reason = DropReason.REPLICA_LOST
            req.drop_detail = (
                f"no failover target at t={now:.3f}s (origin {from_name} "
                "excluded; every other replica down, draining, breaker-open "
                "or full)"
            )
            self.stats.replica_lost += 1
            self._on_drop(req, None, now)
            return
        req.migrations += 1
        self.stats.migrations += 1
        dest.migrations_in += 1
        self.stats.migration_events.append(
            (now, rid, from_name, dest.spec.name)
        )
        self._place(dest, req, now)

    # -- hedging -----------------------------------------------------------

    def _hedge_fire(self, due: float, rid: int) -> None:
        req = self.requests[rid]
        if (
            req.state is not RequestState.QUEUED
            or req.tokens_done
            or req.first_token_s is not None
            or rid in self.hedges
            or rid in self.primary_dead
        ):
            return
        home = self._replica_of(req)
        if home is None:
            # Mid-migration limbo: don't hedge a moving target.
            return
        dest, _ = self._route(due, exclude=(home.idx,))
        if dest is None:
            return
        clone = Request(
            rid=rid,
            arrival_s=req.arrival_s,
            prompt_len=req.prompt_len,
            gen_len=req.gen_len,
            priority=req.priority,
        )
        self.hedges[rid] = clone
        self.stats.hedges_launched += 1
        self.stats.hedge_events.append((due, rid, "launch"))
        self._place(dest, clone, due)

    def _cancel(self, obj: Request) -> None:
        """Remove a losing racer from wherever it lives (by identity)."""
        r = self._replica_of(obj)
        if r is None:
            return
        if any(x is obj for x in r.queue.waiting):
            r.queue.take(obj)
        else:
            r.running = [x for x in r.running if x is not obj]
        r.breaker.forget(obj.rid)
        # Kill the lifecycle so nothing (expiry, admission) can touch a
        # cancelled racer again.
        obj.state = RequestState.DROPPED

    # -- terminal bookkeeping ----------------------------------------------

    def _on_finish(self, obj: Request, r: _Replica, now: float) -> None:
        rid = obj.rid
        canonical = self.requests[rid]
        clone = self.hedges.get(rid)
        if obj is canonical:
            if clone is not None:
                self.stats.hedges_cancelled += 1
                self.stats.hedge_wasted_tokens += clone.tokens_done
                self.stats.hedge_events.append((now, rid, "cancel"))
                self._cancel(clone)
                del self.hedges[rid]
            self.terminal[rid] = r.idx
            return
        # The hedge finished first: fold its outcome into the canonical
        # record (the user saw exactly one response).
        self.stats.hedges_won += 1
        self.stats.hedge_events.append((now, rid, "win"))
        self.stats.hedge_wasted_tokens += canonical.tokens_done
        if rid in self.primary_dead:
            self.primary_dead.discard(rid)
        else:
            self._cancel(canonical)
        firsts = [
            x
            for x in (canonical.first_token_s, obj.first_token_s)
            if x is not None
        ]
        admits = [
            x for x in (canonical.admit_s, obj.admit_s) if x is not None
        ]
        canonical.state = RequestState.FINISHED
        canonical.finish_s = obj.finish_s
        canonical.first_token_s = min(firsts) if firsts else None
        canonical.admit_s = min(admits) if admits else None
        canonical.tokens_done = obj.tokens_done
        canonical.preemptions += obj.preemptions
        canonical.retries += obj.retries
        canonical.migrations += obj.migrations
        canonical.drop_s = None
        canonical.drop_reason = None
        canonical.drop_detail = None
        del self.hedges[rid]
        self.terminal[rid] = r.idx

    def _on_drop(
        self, obj: Request, r: _Replica | None, now: float
    ) -> None:
        """``obj`` was stamped DROPPED; settle the fleet-wide outcome."""
        rid = obj.rid
        rep = r.idx if r is not None else None
        canonical = self.requests[rid]
        clone = self.hedges.get(rid)
        if obj is canonical:
            if clone is not None:
                # The hedge is still racing: the request is not terminal
                # yet — its fate is whatever the hedge produces.
                self.primary_dead.add(rid)
                return
            self.terminal[rid] = rep
            return
        # A hedge clone dropped.
        del self.hedges[rid]
        self.stats.hedges_dropped += 1
        self.stats.hedge_events.append((now, rid, "drop"))
        if rid in self.primary_dead:
            # Both racers died: report the later (hedge) verdict, keep the
            # larger token count, sum the effort counters.
            self.primary_dead.discard(rid)
            canonical.drop_s = obj.drop_s
            canonical.drop_reason = obj.drop_reason
            canonical.drop_detail = obj.drop_detail
            canonical.tokens_done = max(canonical.tokens_done, obj.tokens_done)
            canonical.retries += obj.retries
            canonical.preemptions += obj.preemptions
            canonical.migrations += obj.migrations
            self.terminal[rid] = rep
        else:
            # The primary lives on; the hedge's partial work is waste.
            self.stats.hedge_wasted_tokens += obj.tokens_done

    # -- crash / restart ---------------------------------------------------

    def _crash(
        self,
        r: _Replica,
        now: float,
        window_end: float,
        extra: list[Request] | None = None,
    ) -> None:
        """The replica dies at ``now``: in-flight batch and KV state are
        destroyed; every casualty migrates (running first, then any
        mid-admission batch, then the queue in insertion order)."""
        casualties = list(r.running)
        if extra:
            casualties.extend(extra)
        r.running = []
        for req in list(r.queue.waiting):
            r.queue.take(req)
            casualties.append(req)
        r.t = max(r.t, now)
        r.crashes += 1
        r.down_s += max(0.0, window_end - now)
        r.consec_aborts = 0
        r.breaker.on_crash(now, window_end)
        self.stats.crash_events += 1
        self.stats.crash_log.append(
            (now, r.spec.name, len(casualties), window_end)
        )
        for req in casualties:
            r.breaker.forget(req.rid)
            r.migrations_out += 1
            self._push_deliver(now, req, r.idx)
        if r.t > self._makespan:
            self._makespan = r.t

    def _crash_cut(
        self, r: _Replica, start: float, end: float
    ) -> tuple[float, float] | None:
        """First crash window opening strictly inside ``(start, end)``."""
        if r.crash_i < len(r.crash_windows):
            cs, ce = r.crash_windows[r.crash_i]
            if start < cs < end:
                return cs, ce
        return None

    # -- the per-replica step boundary -------------------------------------

    def _emit(
        self,
        r: _Replica,
        kind: str,
        start: float,
        end: float,
        dur: float,
        batch: int,
        max_ctx: int,
        rids: tuple[int, ...],
        running_after: int,
    ) -> None:
        r.agg.count_steps(kind, 1)
        q = len(r.queue)
        r.agg.observe_depth(q, batch, running_after, 1)
        if self.collect_steps:
            r.runs.append(
                StepRun(
                    kind=kind,
                    start_s=start,
                    end_s=end,
                    dur_s=dur,
                    count=1,
                    batch=batch,
                    max_ctx=max_ctx,
                    rids=rids,
                    queue_len=q,
                    running_after=running_after,
                    sample_t=r.t,
                )
            )

    @staticmethod
    def _finish_token(req: Request, now: float) -> bool:
        req.tokens_done += 1
        if req.first_token_s is None:
            req.first_token_s = now
        if req.tokens_done >= req.gen_len:
            req.state = RequestState.FINISHED
            req.finish_s = now
            return True
        return False

    def _abort(
        self,
        r: _Replica,
        start: float,
        dur: float,
        kind: str,
        participants: list[Request],
    ) -> tuple[float, list[Request]]:
        """Mirror of the single-engine ``fault_abort`` with per-replica
        backoff state, RNG stream and breaker."""
        r.consec_aborts += 1
        end = start + dur
        elapsed = end - min(req.arrival_s for req in participants)
        delay = self.retry.delay(
            r.consec_aborts, float(r.rng.random()), elapsed
        )
        st = r.fstats
        assert st is not None
        st.aborts.append((start, end, kind, len(participants)))
        st.backoffs.append((end, end + delay, r.consec_aborts))
        st.lost_s += dur + delay
        r.breaker.on_abort(end)
        now = end + delay
        deadline = self.config.serving.request_deadline_s
        survivors: list[Request] = []
        for req in participants:
            req.retries += 1
            if deadline is not None and now - req.arrival_s > deadline:
                req.state = RequestState.DROPPED
                req.drop_s = now
                req.drop_reason = DropReason.FAULT_ABORT
                req.drop_detail = (
                    f"{kind} step aborted by a transient fault at "
                    f"t={end:.3f}s; past the {deadline:g}s deadline"
                )
                self._on_drop(req, r, now)
                continue
            try:
                self.retry.check_budget(req.rid, req.retries)
            except RetryExhaustedError as exc:
                req.state = RequestState.DROPPED
                req.drop_s = now
                req.drop_reason = DropReason.RETRY_EXHAUSTED
                req.drop_detail = str(exc)
                self._on_drop(req, r, now)
                continue
            survivors.append(req)
        return now, survivors

    def _boundary(self, r: _Replica) -> None:
        """One atomic single-engine loop iteration for one replica."""
        t = r.t
        keep = self.collect_steps

        # 1. Outage windows.  Late-firing (a window that closed during a
        # backoff gap with work in flight) still destroys the batch: the
        # replica was down while the work sat on it.
        while (
            r.crash_i < len(r.crash_windows)
            and r.crash_windows[r.crash_i][1] <= t
        ):
            _, ce = r.crash_windows[r.crash_i]
            r.crash_i += 1
            self._crash(r, now=t, window_end=ce)
            return
        if (
            r.crash_i < len(r.crash_windows)
            and r.crash_windows[r.crash_i][0] <= t
        ):
            _, ce = r.crash_windows[r.crash_i]
            r.crash_i += 1
            self._crash(r, now=t, window_end=ce)
            return
        while (
            r.restart_i < len(r.restart_windows)
            and r.restart_windows[r.restart_i][1] <= t
        ):
            r.restart_i += 1
            r.restart_migrated = False
        draining = r.in_restart(t)
        if draining and not r.restart_migrated:
            # Graceful drain: queued work leaves, running work completes.
            r.restart_migrated = True
            self.stats.restart_events += 1
            for req in list(r.queue.waiting):
                r.queue.take(req)
                r.breaker.forget(req.rid)
                r.migrations_out += 1
                self._push_deliver(t, req, r.idx)

        # 2. Expire queue deadlines.
        for req in r.queue.expire(t):
            self._on_drop(req, r, t)

        # 3. Admission (suppressed while draining).
        if draining:
            admitted: list[Request] = []
        else:
            before = len(r.queue.dropped)
            admitted = admit_batch(
                self.policy, r.oracle, r.queue, r.running, t, r.limit
            )
            for req in r.queue.dropped[before:]:
                self._on_drop(req, r, t)  # INFEASIBLE singletons

        # 4. Prefill.
        if admitted:
            max_ctx = max(req.context_len for req in admitted)
            dur = r.oracle.prefill_seconds(len(admitted), max_ctx)
            start = t
            rids = tuple(req.rid for req in admitted)
            cut = self._crash_cut(r, start, start + dur)
            if cut is not None:
                cs, ce = cut
                r.crash_i += 1
                self._crash(r, now=cs, window_end=ce, extra=admitted)
                self._emit(
                    r, "crash-prefill", start, cs, cs - start,
                    len(admitted), max_ctx, rids if keep else (), 0,
                )
                return
            if r.chaos and r.rng.random() < r.schedule.transient_abort_probability(start):
                now, survivors = self._abort(
                    r, start, dur, "prefill", admitted
                )
                r.t = now
                for req in survivors:
                    r.queue.requeue(req, now)
                self._emit(
                    r, "abort-prefill", start, start + dur, dur,
                    len(admitted), max_ctx, rids if keep else (),
                    len(r.running),
                )
            else:
                if r.chaos:
                    r.consec_aborts = 0
                t = start + dur
                r.t = t
                done: list[Request] = []
                for req in admitted:
                    req.state = RequestState.RUNNING
                    if req.admit_s is None:
                        req.admit_s = start
                    if self._finish_token(req, t):
                        done.append(req)
                    else:
                        r.running.append(req)
                self._emit(
                    r, "prefill", start, t, dur,
                    len(admitted), max_ctx, rids if keep else (),
                    len(r.running),
                )
                r.breaker.on_success(t, rids)
                for req in done:
                    self._on_finish(req, r, t)

        # 5. Decode.
        if r.running:
            max_ctx = max(req.context_len for req in r.running)
            n = len(r.running)
            dur = r.oracle.decode_step_seconds(n, max_ctx)
            start = r.t
            rids = tuple(req.rid for req in r.running)
            cut = self._crash_cut(r, start, start + dur)
            if cut is not None:
                cs, ce = cut
                r.crash_i += 1
                self._crash(r, now=cs, window_end=ce)
                self._emit(
                    r, "crash-decode", start, cs, cs - start,
                    n, max_ctx, rids if keep else (), 0,
                )
                return
            if r.chaos and r.rng.random() < r.schedule.transient_abort_probability(start):
                now, survivors = self._abort(
                    r, start, dur, "decode", r.running
                )
                r.t = now
                r.running = survivors
                self._emit(
                    r, "abort-decode", start, start + dur, dur,
                    n, max_ctx, rids if keep else (), len(r.running),
                )
            else:
                if r.chaos:
                    r.consec_aborts = 0
                r.t = start + dur
                survivors = []
                done = []
                for req in r.running:
                    if self._finish_token(req, r.t):
                        done.append(req)
                    else:
                        survivors.append(req)
                r.running = survivors
                self._emit(
                    r, "decode", start, r.t, dur,
                    n, max_ctx, rids if keep else (), len(r.running),
                )
                r.breaker.on_success(r.t, rids)
                for req in done:
                    self._on_finish(req, r, r.t)

        if r.t > self._makespan:
            self._makespan = r.t


# -- metrics / export ------------------------------------------------------


def compute_fleet_metrics(result: FleetResult) -> dict[str, Any]:
    """The full fleet metrics document (JSON-ready): fleet-wide SLO
    metrics over the canonical requests, per-replica breakdowns, router /
    hedge / crash counters and the conservation accounting."""
    merged = ServingAggregates()
    for rr in result.replicas:
        a = rr.serving.aggregates
        for kind, n in a.step_counts.items():
            merged.count_steps(kind, n)
        merged.depth_samples += a.depth_samples
        merged.waiting_sum += a.waiting_sum
        merged.max_waiting = max(merged.max_waiting, a.max_waiting)
        merged.max_in_system = max(merged.max_in_system, a.max_in_system)
    fleet_view = ServingResult(
        engine="fleet",
        trace_name=result.trace_name,
        policy_name=result.policy_name,
        config=result.config.serving,
        requests=list(result.requests),
        step_runs=[],
        aggregates=merged,
        makespan_s=result.makespan_s,
    )
    replicas = []
    for rr in result.replicas:
        replicas.append(
            {
                "name": rr.spec.name,
                "engine": rr.spec.engine,
                "platform": rr.spec.platform,
                "degradation": rr.spec.degradation,
                "fault_domain": rr.spec.fault_domain,
                "placements": rr.placements,
                "migrations_in": rr.migrations_in,
                "migrations_out": rr.migrations_out,
                "crashes": rr.crashes,
                "down_s": rr.down_s,
                "price_points": rr.price_points,
                "breaker": rr.breaker,
                "metrics": compute_metrics(rr.serving),
            }
        )
    doc: dict[str, Any] = {
        "fleet": compute_metrics(fleet_view),
        "replicas": replicas,
        "router": {
            "placements": result.stats.placements,
            "router_drops": result.stats.router_drops,
            "migrations": result.stats.migrations,
            "failover_exhausted": result.stats.failover_exhausted,
            "replica_lost": result.stats.replica_lost,
        },
        "hedges": {
            "launched": result.stats.hedges_launched,
            "won": result.stats.hedges_won,
            "cancelled": result.stats.hedges_cancelled,
            "dropped": result.stats.hedges_dropped,
            "wasted_tokens": result.stats.hedge_wasted_tokens,
        },
        "crashes": {
            "crash_events": result.stats.crash_events,
            "restart_events": result.stats.restart_events,
        },
        "accounting": result.accounting(),
    }
    return doc


def fleet_metrics_registry(result: FleetResult) -> MetricsRegistry:
    """Machine-facing registry for one fleet run (Chrome-exportable)."""
    reg = MetricsRegistry(namespace="fleet")
    reg.counter("requests.total").inc(len(result.requests))
    reg.counter("requests.finished").inc(len(result.finished))
    reg.counter("requests.dropped").inc(len(result.dropped))
    for req in result.dropped:
        assert req.drop_reason is not None
        reg.counter(f"drops.{req.drop_reason.value}").inc()
    s = result.stats
    reg.counter("router.placements").inc(s.placements)
    reg.counter("router.drops").inc(s.router_drops)
    reg.counter("router.migrations").inc(s.migrations)
    reg.counter("hedges.launched").inc(s.hedges_launched)
    reg.counter("hedges.won").inc(s.hedges_won)
    reg.counter("hedges.cancelled").inc(s.hedges_cancelled)
    reg.counter("hedges.dropped").inc(s.hedges_dropped)
    reg.counter("crashes.events").inc(s.crash_events)
    reg.counter("crashes.restarts").inc(s.restart_events)
    for req in result.finished:
        for name, value in (
            ("ttft_s", req.ttft_s),
            ("tpot_s", req.tpot_s),
            ("e2e_s", req.e2e_s),
        ):
            if value is not None:
                reg.histogram(f"latency.{name}").observe(value)
    cfg = result.config.serving
    slo_ok = sum(
        1
        for req in result.finished
        if req.meets_slo(cfg.ttft_slo_s, cfg.tpot_slo_s)
    )
    reg.gauge("makespan_s").set(result.makespan_s)
    reg.gauge("slo.attainment").set(
        slo_ok / len(result.requests) if result.requests else 0.0
    )
    for rr in result.replicas:
        name = rr.spec.name
        reg.counter(f"breaker.trips.{name}").inc(rr.breaker["trips"])
        curve = reg.timeseries(f"curve.{name}.in_system")
        for t, waiting, running in rr.serving.queue_depth:
            curve.sample(t, float(waiting + running))
    return reg


def export_fleet_timeline(
    result: FleetResult, builder: ChromeTraceBuilder | None = None
) -> ChromeTraceBuilder:
    """Chrome-trace rows per replica (gpu steps, queue counters, breaker
    transitions) plus a fleet-level faults row (outage windows, migration
    and hedge instants)."""
    builder = builder or ChromeTraceBuilder(
        process_name=f"fleet-sim:{result.trace_name}"
    )
    for rr in result.replicas:
        name = rr.spec.name
        for step in rr.serving.steps:
            builder.add_slice(
                f"{step.kind} b={step.batch}",
                f"{name}/gpu",
                step.start_s,
                step.duration_s,
                batch=step.batch,
                max_ctx=step.max_ctx,
                rids=list(step.rids),
            )
        for t, waiting, running in rr.serving.queue_depth:
            builder.add_counter(
                f"{name}/queue", t, waiting=waiting, running=running
            )
        for t, frm, to, cause in rr.breaker["transitions"]:
            builder.add_instant(
                f"breaker {frm}->{to}", f"{name}/breaker", t, cause=cause
            )
    if result.fault_schedule is not None:
        for f in result.fault_schedule.faults:
            builder.add_slice(
                f"fault {f.kind.value}",
                "fleet/faults",
                f.start_s,
                f.duration_s,
                severity=f.severity,
                domain=f.domain or "all",
            )
    for t, rid, frm, to in result.stats.migration_events:
        builder.add_instant(
            f"migrate r{rid} {frm}->{to}", "fleet/faults", t
        )
    for t, rid, kind in result.stats.hedge_events:
        builder.add_instant(f"hedge {kind} r{rid}", "fleet/faults", t)
    return builder


# -- presets ---------------------------------------------------------------

#: Bundled fleet shapes for the CLI and the bench.
FLEET_PRESETS = ("uniform-6", "hetero-8", "uniform-16")


def make_fleet(name: str) -> tuple[ReplicaSpec, ...]:
    """A bundled fleet preset by name."""
    if name == "uniform-6":
        return tuple(
            ReplicaSpec(name=f"r{i}", fault_domain=f"d{i % 3}")
            for i in range(6)
        )
    if name == "hetero-8":
        specs = []
        for i in range(8):
            engine = (
                "lm-offload" if i < 4 else ("flexgen" if i < 6 else "zero-inference")
            )
            specs.append(
                ReplicaSpec(
                    name=f"r{i}",
                    engine=engine,
                    platform="power9-4xv100" if i == 2 else "single-a100",
                    degradation="shrink-batch" if i == 3 else None,
                    fault_domain=f"d{i % 4}",
                )
            )
        return tuple(specs)
    if name == "uniform-16":
        return tuple(
            ReplicaSpec(name=f"r{i}", fault_domain=f"d{i % 4}")
            for i in range(16)
        )
    raise ConfigError(
        f"unknown fleet preset {name!r} (choose from "
        f"{', '.join(FLEET_PRESETS)})"
    )


#: Bundled chaos scenarios for fleets, in sweep order.
FLEET_SCENARIOS = (
    "none",
    "replica-crash",
    "domain-outage",
    "flaky-replica",
    "rolling-restart",
)


def make_fleet_scenario(
    name: str,
    horizon_s: float,
    domains: tuple[str, ...] = ("d0", "d1", "d2"),
    seed: int = 0,
) -> FaultSchedule:
    """A bundled fleet fault schedule scaled to ``horizon_s``.

    * ``none`` — empty schedule (the identity element);
    * ``replica-crash`` — two disjoint crash windows hitting the first
      and last fault domain;
    * ``domain-outage`` — one long correlated crash of a whole domain;
    * ``flaky-replica`` — a transient-abort window over one domain;
    * ``rolling-restart`` — staggered graceful restarts, one domain at a
      time (a deploy sweeping the fleet).
    """
    if horizon_s <= 0:
        raise ConfigError(
            f"fleet scenario {name!r}: horizon_s must be positive "
            f"(got {horizon_s})"
        )
    if not domains:
        raise ConfigError(f"fleet scenario {name!r}: domains must be non-empty")
    h = horizon_s
    if name == "none":
        return FaultSchedule(name="fleet-none", faults=(), seed=seed)
    if name == "replica-crash":
        faults: tuple[FaultSpec, ...] = (
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH, start_s=0.25 * h,
                duration_s=0.15 * h, severity=1.0, domain=domains[0],
            ),
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH, start_s=0.55 * h,
                duration_s=0.15 * h, severity=1.0, domain=domains[-1],
            ),
        )
    elif name == "domain-outage":
        faults = (
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH, start_s=0.35 * h,
                duration_s=0.3 * h, severity=1.0, domain=domains[0],
            ),
        )
    elif name == "flaky-replica":
        faults = (
            FaultSpec(
                kind=FaultKind.TRANSIENT_ERROR, start_s=0.2 * h,
                duration_s=0.6 * h, severity=0.25, domain=domains[0],
            ),
        )
    elif name == "rolling-restart":
        faults = tuple(
            FaultSpec(
                kind=FaultKind.REPLICA_RESTART,
                start_s=(0.2 + 0.12 * i) * h,
                duration_s=0.1 * h,
                severity=1.0,
                domain=dom,
            )
            for i, dom in enumerate(domains)
        )
    else:
        raise ConfigError(
            f"unknown fleet scenario {name!r} (choose from "
            f"{', '.join(FLEET_SCENARIOS)})"
        )
    return FaultSchedule(name=f"fleet-{name}", faults=faults, seed=seed)
