"""Arrival traces: Poisson, bursty (MMPP) and replayed request streams.

A trace is a *frozen* list of :class:`~repro.serving.request.RequestSpec`
entries, generated once from a seeded RNG and then shared across engine
runs — the comparison harness replays the identical trace through every
engine, and two generations with the same seed are byte-identical
(:mod:`repro.util.rng` streams, no global RNG state).

Generators
----------
* :func:`poisson_trace` — memoryless arrivals at a constant rate (the
  classic open-loop serving assumption);
* :func:`mmpp_trace` — a two-state Markov-modulated Poisson process:
  exponential dwell times alternate between a quiet and a bursty rate,
  the standard model for diurnal/bursty LLM traffic;
* :func:`replay_trace` / :func:`trace_from_json` — replay recorded
  arrivals (e.g. a production trace exported as JSON).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.serving.request import RequestSpec
from repro.util.rng import seeded_rng


@dataclass(frozen=True)
class LengthSampler:
    """Per-request prompt/gen length distributions (log-normal, clipped).

    ``cv`` is the coefficient of variation of the underlying log-normal;
    0 degenerates to the constant ``mean``.  Samples are rounded to ints
    and clipped to ``[min_len, max_len]``.
    """

    prompt_mean: float = 64.0
    prompt_cv: float = 0.5
    gen_mean: float = 32.0
    gen_cv: float = 0.5
    min_len: int = 4
    max_len: int = 512

    def _sample(self, rng: np.random.Generator, mean: float, cv: float) -> int:
        if cv <= 0:
            value = mean
        else:
            sigma2 = np.log1p(cv * cv)
            mu = np.log(mean) - 0.5 * sigma2
            value = float(rng.lognormal(mu, np.sqrt(sigma2)))
        return int(np.clip(round(value), self.min_len, self.max_len))

    def sample_prompt(self, rng: np.random.Generator) -> int:
        return self._sample(rng, self.prompt_mean, self.prompt_cv)

    def sample_gen(self, rng: np.random.Generator) -> int:
        return self._sample(rng, self.gen_mean, self.gen_cv)


@dataclass(frozen=True)
class RequestTrace:
    """A frozen arrival trace plus a label for reports."""

    name: str
    requests: tuple[RequestSpec, ...]
    horizon_s: float

    def __post_init__(self) -> None:
        arrivals = [r.arrival_s for r in self.requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ServingError(f"trace {self.name!r}: arrivals must be sorted")

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_tokens(self) -> int:
        return sum(r.prompt_len + r.gen_len for r in self.requests)

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.requests)} requests over "
            f"{self.horizon_s:.1f}s ({self.total_tokens} prompt+gen tokens)"
        )

    @property
    def models(self) -> tuple[str, ...]:
        """Distinct model tags appearing in the trace (sorted; empty tags
        excluded — an untagged trace reports ``()``)."""
        return tuple(sorted({r.model for r in self.requests if r.model}))

    def for_model(self, model: str) -> "RequestTrace":
        """The sub-trace of requests tagged ``model`` (arrival order kept)."""
        return RequestTrace(
            name=f"{self.name}[{model}]",
            requests=tuple(r for r in self.requests if r.model == model),
            horizon_s=self.horizon_s,
        )

    def to_json(self, indent: int | None = 2) -> str:
        doc = {
            "name": self.name,
            "horizon_s": self.horizon_s,
            "requests": [
                {
                    "arrival_s": r.arrival_s,
                    "prompt_len": r.prompt_len,
                    "gen_len": r.gen_len,
                    "priority": r.priority,
                    # The model tag is serialized only when set, so every
                    # pre-multi-model trace file stays byte-identical.
                    **({"model": r.model} if r.model else {}),
                }
                for r in self.requests
            ],
        }
        return json.dumps(doc, indent=indent)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


def _specs_from_times(
    times: np.ndarray,
    lengths: LengthSampler,
    rng: np.random.Generator,
    priority_levels: int,
) -> tuple[RequestSpec, ...]:
    specs = []
    for t in times:
        prio = int(rng.integers(0, priority_levels)) if priority_levels > 1 else 0
        specs.append(
            RequestSpec(
                arrival_s=float(t),
                prompt_len=lengths.sample_prompt(rng),
                gen_len=lengths.sample_gen(rng),
                priority=prio,
            )
        )
    return tuple(specs)


def poisson_trace(
    rate: float,
    horizon_s: float,
    seed: int = 0,
    lengths: LengthSampler | None = None,
    priority_levels: int = 1,
    name: str | None = None,
) -> RequestTrace:
    """Poisson arrivals at ``rate`` req/s over ``[0, horizon_s)``."""
    if rate <= 0 or horizon_s <= 0:
        raise ServingError("poisson_trace: rate and horizon must be positive")
    rng = seeded_rng(seed, "serving", "poisson")
    lengths = lengths or LengthSampler()
    # Exponential gaps; slight overdraw then clip to the horizon.
    n_max = max(16, int(rate * horizon_s * 3) + 16)
    gaps = rng.exponential(1.0 / rate, size=n_max)
    times = np.cumsum(gaps)
    times = times[times < horizon_s]
    return RequestTrace(
        name=name or f"poisson(rate={rate:g})",
        requests=_specs_from_times(times, lengths, rng, priority_levels),
        horizon_s=horizon_s,
    )


def mmpp_trace(
    rate_low: float,
    rate_high: float,
    horizon_s: float,
    mean_dwell_s: float = 5.0,
    seed: int = 0,
    lengths: LengthSampler | None = None,
    priority_levels: int = 1,
    name: str | None = None,
) -> RequestTrace:
    """Two-state MMPP: alternate quiet/bursty Poisson phases.

    Dwell time in each state is exponential with mean ``mean_dwell_s``;
    within a state, arrivals are Poisson at that state's rate.
    """
    if min(rate_low, rate_high) <= 0 or horizon_s <= 0 or mean_dwell_s <= 0:
        raise ServingError("mmpp_trace: rates, horizon and dwell must be positive")
    rng = seeded_rng(seed, "serving", "mmpp")
    lengths = lengths or LengthSampler()
    times: list[float] = []
    t = 0.0
    state_high = False
    while t < horizon_s:
        dwell = float(rng.exponential(mean_dwell_s))
        phase_end = min(t + dwell, horizon_s)
        rate = rate_high if state_high else rate_low
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= phase_end:
                break
            times.append(t)
        t = phase_end
        state_high = not state_high
    return RequestTrace(
        name=name or f"mmpp({rate_low:g}/{rate_high:g})",
        requests=_specs_from_times(np.asarray(times), lengths, rng, priority_levels),
        horizon_s=horizon_s,
    )


def multimodel_trace(
    rates: dict[str, float],
    horizon_s: float,
    seed: int = 0,
    lengths: dict[str, LengthSampler] | LengthSampler | None = None,
    priority_levels: dict[str, int] | int = 1,
    priorities: dict[str, int] | None = None,
    name: str | None = None,
) -> RequestTrace:
    """Superpose one Poisson stream per model into a single tagged trace.

    ``rates`` maps model name -> arrivals/s.  Each model draws from its
    *own* seeded stream (keyed by the model name), so adding a model to
    the mix never perturbs the other models' arrivals — the dedicated-
    replica baseline and the co-resident run replay literally the same
    per-model requests.  Streams are merged in arrival order with ties
    broken by model name (a total order, so the merge is deterministic).

    ``priorities`` gives each model a fixed priority base added to the
    (optionally random) per-request level — the "SLO class as priority"
    idiom a preemptive scheduler keys cross-model eviction on.
    """
    if horizon_s <= 0:
        raise ServingError("multimodel_trace: horizon must be positive")
    if not rates:
        raise ServingError("multimodel_trace: at least one model rate required")
    for model, rate in rates.items():
        if rate <= 0:
            raise ServingError(
                f"multimodel_trace: rate for {model!r} must be positive "
                f"(got {rate:g})"
            )
    merged: list[RequestSpec] = []
    for model in sorted(rates):
        rng = seeded_rng(seed, "serving", "multimodel", model)
        sampler = (
            lengths.get(model, LengthSampler())
            if isinstance(lengths, dict)
            else (lengths or LengthSampler())
        )
        levels = (
            priority_levels.get(model, 1)
            if isinstance(priority_levels, dict)
            else priority_levels
        )
        base_priority = (priorities or {}).get(model, 0)
        rate = rates[model]
        n_max = max(16, int(rate * horizon_s * 3) + 16)
        times = np.cumsum(rng.exponential(1.0 / rate, size=n_max))
        times = times[times < horizon_s]
        for spec in _specs_from_times(times, sampler, rng, levels):
            merged.append(
                RequestSpec(
                    arrival_s=spec.arrival_s,
                    prompt_len=spec.prompt_len,
                    gen_len=spec.gen_len,
                    priority=base_priority + spec.priority,
                    model=model,
                )
            )
    merged.sort(key=lambda r: (r.arrival_s, r.model))
    return RequestTrace(
        name=name
        or "multimodel("
        + ",".join(f"{m}={rates[m]:g}" for m in sorted(rates))
        + ")",
        requests=tuple(merged),
        horizon_s=horizon_s,
    )


def replay_trace(
    entries: list[tuple[float, int, int] | tuple[float, int, int, int]],
    horizon_s: float | None = None,
    name: str = "replay",
) -> RequestTrace:
    """Build a trace from explicit ``(arrival_s, prompt, gen[, prio])`` rows."""
    specs = tuple(
        RequestSpec(
            arrival_s=float(e[0]),
            prompt_len=int(e[1]),
            gen_len=int(e[2]),
            priority=int(e[3]) if len(e) > 3 else 0,
        )
        for e in sorted(entries, key=lambda e: e[0])
    )
    if horizon_s is None:
        horizon_s = (specs[-1].arrival_s + 1.0) if specs else 1.0
    return RequestTrace(name=name, requests=specs, horizon_s=horizon_s)


def trace_from_json(text: str) -> RequestTrace:
    """Inverse of :meth:`RequestTrace.to_json`."""
    doc = json.loads(text)
    try:
        specs = tuple(
            RequestSpec(
                arrival_s=float(r["arrival_s"]),
                prompt_len=int(r["prompt_len"]),
                gen_len=int(r["gen_len"]),
                priority=int(r.get("priority", 0)),
                model=str(r.get("model", "")),
            )
            for r in sorted(doc["requests"], key=lambda r: r["arrival_s"])
        )
        return RequestTrace(
            name=str(doc.get("name", "replay")),
            requests=specs,
            horizon_s=float(doc["horizon_s"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError(f"malformed trace JSON: {exc}") from exc


def load_trace(path: str) -> RequestTrace:
    with open(path, encoding="utf-8") as fh:
        return trace_from_json(fh.read())


def default_trace(quick: bool = False, seed: int = 0) -> RequestTrace:
    """The bundled comparison trace (deterministic for any fixed seed).

    Poisson at 2 req/s — the ISSUE's acceptance workload — over a 30 s
    window (6 s when ``quick``, the CI smoke configuration).
    """
    horizon = 6.0 if quick else 30.0
    return poisson_trace(
        rate=2.0,
        horizon_s=horizon,
        seed=seed,
        lengths=LengthSampler(prompt_mean=64, gen_mean=32, max_len=256),
        name=f"default-poisson-2.0{'-quick' if quick else ''}",
    )
