"""Scheduler policies: who gets the next free GPU slot.

A :class:`SchedulerPolicy` only *orders* — the simulator owns admission
mechanics (slot counting, memory feasibility, prefill batching), so a
policy is a pure, deterministic ranking over the waiting queue plus an
optional preemption rule evaluated at token boundaries.

Ties always break on ``(arrival_s, rid)`` so every policy is a total
order and replays are byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ServingError
from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.predictor import LengthPredictor


class SchedulerPolicy:
    """Base class: FCFS order, no preemption."""

    name = "fcfs"
    preemptive = False
    #: True when :meth:`sort_key` is a faithful, *waiting-time-constant*
    #: factorization of :meth:`order` — the event engine then keeps the
    #: queue pre-sorted incrementally instead of re-sorting per step.
    #: Subclasses that override ``order`` with a ranking that depends on
    #: ``now`` (or on state that changes while a request waits) must set
    #: this False or provide a matching ``sort_key``.
    static_order = True

    def sort_key(self, req: Request) -> tuple:
        """The total-order key :meth:`order` sorts by (ties on rid)."""
        return (req.arrival_s, req.rid)

    def order(self, waiting: list[Request], now: float) -> list[Request]:
        """Admission order, head first.  Must be a deterministic total
        order; the default is first-come-first-served."""
        return sorted(waiting, key=lambda r: (r.arrival_s, r.rid))

    def victim(self, running: list[Request], candidate: Request) -> Request | None:
        """Which running request (if any) to preempt for ``candidate``.
        ``None`` means don't preempt.  Only consulted when ``preemptive``."""
        return None


class FCFSPolicy(SchedulerPolicy):
    """First-come-first-served (the arrival order)."""


class SJFPolicy(SchedulerPolicy):
    """Shortest-job-first on *remaining* generation length.

    The simulator knows each request's true ``gen_len``; a real serving
    stack would substitute a length predictor here.  Ranking by remaining
    tokens (not total) keeps preempted long jobs from starving further.
    """

    name = "sjf"

    def sort_key(self, req: Request) -> tuple:
        # remaining_tokens only changes while RUNNING, so the key is
        # constant for the whole time a request sits in the queue.
        return (req.remaining_tokens, req.arrival_s, req.rid)

    def order(self, waiting: list[Request], now: float) -> list[Request]:
        return sorted(
            waiting, key=lambda r: (r.remaining_tokens, r.arrival_s, r.rid)
        )


class PriorityPolicy(SchedulerPolicy):
    """Highest priority first, optionally preempting at token boundaries.

    With ``preempt=True``, a waiting request may evict the lowest-priority
    running request whose priority is *strictly* lower — evaluated only
    between decode steps (a token boundary), never mid-step.
    """

    name = "priority"

    def __init__(self, preempt: bool = False) -> None:
        self.preemptive = preempt
        if preempt:
            self.name = "priority-preempt"

    def sort_key(self, req: Request) -> tuple:
        return (-req.priority, req.arrival_s, req.rid)

    def order(self, waiting: list[Request], now: float) -> list[Request]:
        return sorted(
            waiting, key=lambda r: (-r.priority, r.arrival_s, r.rid)
        )

    def victim(self, running: list[Request], candidate: Request) -> Request | None:
        if not running:
            return None
        lowest = min(running, key=lambda r: (r.priority, -r.arrival_s, -r.rid))
        if lowest.priority < candidate.priority:
            return lowest
        return None


class PredictedSJFPolicy(SchedulerPolicy):
    """Shortest-job-first ranked by a length *predictor*, not the oracle.

    The ranking is ``(predictor.predict(req), arrival_s, rid)``.  With
    :class:`~repro.serving.predictor.OracleLengthPredictor` this is
    exactly :class:`SJFPolicy` (`predict` returns ``remaining_tokens`` as
    a float; int→float conversion is exact for token counts, so the sort
    is identical).  With a learned predictor the ranking can change as the
    predictor observes completions, so the queue cannot be kept pre-sorted
    incrementally: ``static_order`` follows ``predictor.learned``.
    """

    name = "sjf-predict"

    def __init__(self, predictor: "LengthPredictor | None" = None) -> None:
        from repro.serving.predictor import OracleLengthPredictor

        self.predictor = predictor or OracleLengthPredictor()
        self.static_order = not self.predictor.learned
        self.name = f"sjf-predict({self.predictor.name})"

    def sort_key(self, req: Request) -> tuple:
        return (self.predictor.predict(req), req.arrival_s, req.rid)

    def order(self, waiting: list[Request], now: float) -> list[Request]:
        return sorted(
            waiting,
            key=lambda r: (self.predictor.predict(r), r.arrival_s, r.rid),
        )


def make_policy(name: str) -> SchedulerPolicy:
    """Policy factory for CLI/bench use."""
    policies: dict[str, type[SchedulerPolicy] | None] = {
        "fcfs": FCFSPolicy,
        "sjf": SJFPolicy,
    }
    if name in policies:
        return policies[name]()  # type: ignore[misc]
    if name == "priority":
        return PriorityPolicy(preempt=False)
    if name == "priority-preempt":
        return PriorityPolicy(preempt=True)
    if name == "sjf-predict":
        from repro.serving.predictor import BucketedQuantilePredictor

        return PredictedSJFPolicy(BucketedQuantilePredictor())
    raise ServingError(
        f"unknown scheduler policy {name!r}; expected one of "
        "fcfs, sjf, priority, priority-preempt, sjf-predict"
    )
