"""Continuous-batching serving simulator over the zig-zag schedule.

The simulator advances a virtual clock step by step, exactly the way an
offloading serving loop would run on real hardware:

1. **ingest** — arrivals up to the clock enter the bounded admission
   queue (overflow and timeouts are dropped with accounting);
2. **admit** — the scheduler policy orders the queue; requests are
   admitted while a GPU slot is free *and* the planner's memory prescreen
   says the enlarged batch still fits (admission control is the same
   feasibility question the policy search asks).  Preemptive policies may
   evict a running victim at this token boundary;
3. **prefill** — newly admitted prompts run one batched prefill step,
   producing each request's first token (TTFT); resumed (preempted)
   requests re-prefill their accumulated context, which is the real cost
   of preemption under offloading;
4. **decode** — every running request advances one token in a single
   overlapped step, priced by the performance model (Eq. 2's max over the
   six tasks, times the ``l x k`` zig-zag iterations) at the batch's
   maximum context length.

Nothing here is stochastic: traces are frozen up front, ties are total
orders, and the clock is pure float arithmetic — two runs with the same
trace are byte-identical, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServingError
from repro.models.config import ModelConfig
from repro.serving.arrivals import RequestTrace
from repro.serving.costing import StepCostOracle
from repro.serving.policies import SchedulerPolicy
from repro.serving.queue import AdmissionQueue
from repro.serving.request import DropReason, Request, RequestState


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop (not of any single policy)."""

    #: Defaults are calibrated to the offloaded-30B regime on the single
    #: A100 reference platform: a weight-streaming engine's decode step is
    #: wire-bound near ~3 s, so the TPOT target sits between LM-Offload's
    #: planned step (~2.9 s) and FlexGen's (~4.1 s) — tight enough to
    #: separate planners, attainable by the best one.
    max_batch: int = 64
    num_gpu_batches: int = 1
    queue_capacity: int = 128
    queue_timeout_s: float | None = None
    ttft_slo_s: float = 30.0
    tpot_slo_s: float = 3.5
    ctx_bucket: int = 32

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ServingError("max_batch must be positive")
        if self.ttft_slo_s <= 0 or self.tpot_slo_s <= 0:
            raise ServingError("SLO targets must be positive")


@dataclass(frozen=True)
class StepRecord:
    """One GPU step: what ran, when, at what batch/context."""

    kind: str  # "prefill" | "decode"
    start_s: float
    end_s: float
    batch: int
    max_ctx: int
    rids: tuple[int, ...]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ServingResult:
    """Everything a simulation produced, metrics-layer ready."""

    engine: str
    trace_name: str
    policy_name: str
    config: ServingConfig
    requests: list[Request]
    steps: list[StepRecord]
    #: (clock, waiting, running) sampled after every step boundary.
    queue_depth: list[tuple[float, int, int]]
    makespan_s: float

    @property
    def finished(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.FINISHED]

    @property
    def dropped(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.DROPPED]


class ServingSimulator:
    """Trace-driven continuous batching on top of one engine."""

    def __init__(
        self,
        engine: Any,
        model: ModelConfig,
        trace: RequestTrace,
        policy: SchedulerPolicy | None = None,
        config: ServingConfig | None = None,
    ) -> None:
        self.engine = engine
        self.model = model
        self.trace = trace
        self.policy = policy or SchedulerPolicy()
        self.config = config or ServingConfig()
        max_prompt = max((r.prompt_len for r in trace.requests), default=64)
        max_gen = max((r.gen_len for r in trace.requests), default=32)
        # Plan at the trace's maximum context so the chosen placement stays
        # memory-feasible for every step the loop can form.
        self.oracle = StepCostOracle(
            engine=engine,
            model=model,
            num_gpu_batches=self.config.num_gpu_batches,
            ctx_bucket=self.config.ctx_bucket,
            plan_prompt_len=max_prompt,
            plan_gen_len=max_gen,
        )

    # -- admission ---------------------------------------------------------

    def _admit(
        self, queue: AdmissionQueue, running: list[Request], now: float
    ) -> list[Request]:
        """Move requests queue -> GPU per the policy, bounded by slots and
        by memory feasibility of the enlarged batch."""
        admitted: list[Request] = []
        for req in self.policy.order(list(queue.waiting), now):
            occupied = len(running) + len(admitted)
            if occupied >= self.config.max_batch:
                if not (self.policy.preemptive and running):
                    break
                victim = self.policy.victim(running, req)
                if victim is None:
                    break
                running.remove(victim)
                victim.preemptions += 1
                queue.requeue(victim, now)
            ctx = max(
                [r.context_len + 1 for r in running]
                + [r.context_len + 1 for r in admitted]
                + [req.context_len + 1]
            )
            if not self.oracle.feasible(len(running) + len(admitted) + 1, ctx):
                if not running and not admitted:
                    # Even alone this request can never fit: drop it rather
                    # than wedge the loop.
                    queue.take(req)
                    req.state = RequestState.DROPPED
                    req.drop_s = now
                    req.drop_reason = DropReason.INFEASIBLE
                    queue.dropped.append(req)
                    continue
                break
            admitted.append(queue.take(req))
        return admitted

    # -- the loop ----------------------------------------------------------

    def run(self) -> ServingResult:
        cfg = self.config
        pending = [
            Request.from_spec(i, spec) for i, spec in enumerate(self.trace.requests)
        ]
        all_requests = list(pending)
        queue = AdmissionQueue(cfg.queue_capacity, cfg.queue_timeout_s)
        running: list[Request] = []
        steps: list[StepRecord] = []
        depth: list[tuple[float, int, int]] = []
        t = 0.0
        i = 0

        def finish_token(req: Request, now: float) -> bool:
            """Credit one generated token; True when the request completed."""
            req.tokens_done += 1
            if req.first_token_s is None:
                req.first_token_s = now
            if req.tokens_done >= req.gen_len:
                req.state = RequestState.FINISHED
                req.finish_s = now
                return True
            return False

        while i < len(pending) or queue.waiting or running:
            if not queue.waiting and not running:
                # Idle: jump the clock to the next arrival.
                t = max(t, pending[i].arrival_s)
            while i < len(pending) and pending[i].arrival_s <= t:
                queue.offer(pending[i], pending[i].arrival_s)
                i += 1
            queue.expire(t)

            admitted = self._admit(queue, running, t)
            if admitted:
                max_ctx = max(r.context_len for r in admitted)
                dur = self.oracle.prefill_seconds(len(admitted), max_ctx)
                start = t
                t += dur
                rids = []
                for req in admitted:
                    req.state = RequestState.RUNNING
                    if req.admit_s is None:
                        req.admit_s = start
                    rids.append(req.rid)
                    if not finish_token(req, t):
                        running.append(req)
                steps.append(
                    StepRecord(
                        kind="prefill", start_s=start, end_s=t,
                        batch=len(admitted), max_ctx=max_ctx, rids=tuple(rids),
                    )
                )
                depth.append((t, len(queue), len(running)))

            if running:
                max_ctx = max(r.context_len for r in running)
                dur = self.oracle.decode_step_seconds(len(running), max_ctx)
                start = t
                t += dur
                rids = tuple(r.rid for r in running)
                running = [r for r in running if not finish_token(r, t)]
                steps.append(
                    StepRecord(
                        kind="decode", start_s=start, end_s=t,
                        batch=len(rids), max_ctx=max_ctx, rids=rids,
                    )
                )
                depth.append((t, len(queue), len(running)))

        return ServingResult(
            engine=getattr(self.engine, "name", type(self.engine).__name__),
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            config=cfg,
            requests=all_requests,
            steps=steps,
            queue_depth=depth,
            makespan_s=t,
        )
