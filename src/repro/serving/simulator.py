"""Continuous-batching serving simulator over the zig-zag schedule.

The simulator advances a virtual clock step by step, exactly the way an
offloading serving loop would run on real hardware:

1. **ingest** — arrivals up to the clock enter the bounded admission
   queue (overflow and timeouts are dropped with accounting);
2. **admit** — the scheduler policy orders the queue; requests are
   admitted while a GPU slot is free *and* the planner's memory prescreen
   says the enlarged batch still fits (admission control is the same
   feasibility question the policy search asks).  Preemptive policies may
   evict a running victim at this token boundary;
3. **prefill** — newly admitted prompts run one batched prefill step,
   producing each request's first token (TTFT); resumed (preempted)
   requests re-prefill their accumulated context, which is the real cost
   of preemption under offloading;
4. **decode** — every running request advances one token in a single
   overlapped step, priced by the performance model (Eq. 2's max over the
   six tasks, times the ``l x k`` zig-zag iterations) at the batch's
   maximum context length.

Fault injection (optional, off by default): pass a
:class:`~repro.faults.FaultSchedule` and the loop gains chaos semantics —
a **drift watchdog** re-derives the effective platform at every fault
segment boundary, retargets the engine and invalidates every cached plan
when the deviation exceeds ``drift_tolerance``, and walks the
:data:`~repro.faults.LADDER` until a rung plans again; **transient
faults** abort in-flight steps (the work is lost) and retry after a
capped, seeded-jitter exponential backoff, with per-request retry budgets
and optional deadlines producing ``RETRY_EXHAUSTED`` / ``FAULT_ABORT``
drops.  With no schedule (or an empty one) none of this code runs and the
loop is step-for-step identical to the fault-free simulator.

Nothing here is stochastic unless a fault schedule says so: traces are
frozen up front, ties are total orders, the clock is pure float
arithmetic, and every fault draw comes from one named seeded stream — two
runs with the same trace, schedule and seed are byte-identical, which the
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import LADDER, FaultSchedule, FaultStats, RetryPolicy, relative_drift
from repro.models.config import ModelConfig
from repro.obs.profiling import PROFILER, span
from repro.obs.registry import MetricsRegistry
from repro.perfmodel.notation import HardwareParams
from repro.serving.arrivals import RequestTrace
from repro.serving.costing import StepCostOracle
from repro.serving.policies import SchedulerPolicy
from repro.serving.queue import AdmissionQueue
from repro.serving.request import DropReason, Request, RequestState
from repro.util.rng import seeded_rng


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop (not of any single policy)."""

    #: Defaults are calibrated to the offloaded-30B regime on the single
    #: A100 reference platform: a weight-streaming engine's decode step is
    #: wire-bound near ~3 s, so the TPOT target sits between LM-Offload's
    #: planned step (~2.9 s) and FlexGen's (~4.1 s) — tight enough to
    #: separate planners, attainable by the best one.
    max_batch: int = 64
    num_gpu_batches: int = 1
    queue_capacity: int = 128
    queue_timeout_s: float | None = None
    ttft_slo_s: float = 30.0
    tpot_slo_s: float = 3.5
    ctx_bucket: int = 32

    # -- fault semantics (only consulted when a schedule is injected) -----
    #: Aborted steps a single request may survive before RETRY_EXHAUSTED.
    retry_limit: int = 3
    #: Capped exponential backoff after an aborted step: the k-th
    #: consecutive abort waits ``min(cap, base * 2^(k-1) * (1+jitter*u))``.
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0
    backoff_jitter: float = 0.1
    #: Max relative deviation of any effective hardware rate/capacity from
    #: the currently applied specs before the watchdog retargets + replans.
    drift_tolerance: float = 0.05
    #: Arrival-to-now budget checked when a request is caught in an abort;
    #: exceeding it drops the request FAULT_ABORT.  ``None`` = no deadline.
    request_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ConfigError(
                f"serving config: max_batch must be positive (got "
                f"{self.max_batch}); the loop needs at least one GPU slot"
            )
        if self.num_gpu_batches <= 0:
            raise ConfigError(
                f"serving config: num_gpu_batches must be positive (got "
                f"{self.num_gpu_batches})"
            )
        if self.ttft_slo_s <= 0 or self.tpot_slo_s <= 0:
            raise ConfigError(
                "serving config: SLO targets must be positive (got "
                f"ttft_slo_s={self.ttft_slo_s}, tpot_slo_s={self.tpot_slo_s})"
            )
        if self.drift_tolerance <= 0:
            raise ConfigError(
                f"serving config: drift_tolerance must be > 0 (got "
                f"{self.drift_tolerance}); a zero tolerance would replan on "
                "every float-level wobble"
            )
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ConfigError(
                f"serving config: request_deadline_s must be positive when "
                f"set (got {self.request_deadline_s}); use None for no "
                "deadline"
            )
        # Backoff shape is validated by the policy it will construct —
        # single source of truth for those (actionable) messages.
        self.retry_policy()

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            base_s=self.backoff_base_s,
            cap_s=self.backoff_cap_s,
            jitter=self.backoff_jitter,
            limit=self.retry_limit,
        )


@dataclass(frozen=True)
class StepRecord:
    """One GPU step: what ran, when, at what batch/context.

    ``kind`` is ``"prefill"`` / ``"decode"`` for completed steps and
    ``"abort-prefill"`` / ``"abort-decode"`` for steps a transient fault
    killed (their interval covers the lost work, not the backoff wait).
    """

    kind: str
    start_s: float
    end_s: float
    batch: int
    max_ctx: int
    rids: tuple[int, ...]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ServingResult:
    """Everything a simulation produced, metrics-layer ready."""

    engine: str
    trace_name: str
    policy_name: str
    config: ServingConfig
    requests: list[Request]
    steps: list[StepRecord]
    #: (clock, waiting, running) sampled after every step boundary.
    queue_depth: list[tuple[float, int, int]]
    makespan_s: float
    #: Fault-layer bookkeeping; ``None`` when no (non-empty) schedule was
    #: injected, so fault-free results stay byte-identical to the
    #: pre-fault-layer simulator.
    fault_stats: FaultStats | None = None
    fault_schedule: FaultSchedule | None = None
    #: Per-step time-series curves (queue depth, step price, batch, rung)
    #: sampled live by the loop — only when a registry was injected via
    #: ``ServingSimulator(metrics=...)``; ``None`` otherwise, and nothing
    #: serialized from this result ever includes it implicitly.
    timeseries: MetricsRegistry | None = None

    @property
    def finished(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.FINISHED]

    @property
    def dropped(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.DROPPED]


class ServingSimulator:
    """Trace-driven continuous batching on top of one engine."""

    def __init__(
        self,
        engine: Any,
        model: ModelConfig,
        trace: RequestTrace,
        policy: SchedulerPolicy | None = None,
        config: ServingConfig | None = None,
        faults: FaultSchedule | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine
        self.model = model
        self.trace = trace
        self.policy = policy or SchedulerPolicy()
        self.config = config or ServingConfig()
        self.faults = faults
        self.seed = seed
        #: Optional per-step time-series sink.  ``None`` (the default) is
        #: structurally inert: the loop takes no RNG draw, touches no
        #: state and branches on nothing because of it, so a run with and
        #: without sampling is byte-identical (tested).
        self.metrics = metrics
        #: Chaos mode is engaged only by a non-empty schedule; an empty
        #: one (``zero_schedule()``) runs the exact fault-free code path.
        self._chaos = faults is not None and len(faults.faults) > 0
        #: The pristine platform every degraded overlay derives from.
        self.base_platform = engine.platform
        max_prompt = max((r.prompt_len for r in trace.requests), default=64)
        max_gen = max((r.gen_len for r in trace.requests), default=32)
        # Plan at the trace's maximum context so the chosen placement stays
        # memory-feasible for every step the loop can form.
        self.oracle = StepCostOracle(
            engine=engine,
            model=model,
            num_gpu_batches=self.config.num_gpu_batches,
            ctx_bucket=self.config.ctx_bucket,
            plan_prompt_len=max_prompt,
            plan_gen_len=max_gen,
        )

    # -- admission ---------------------------------------------------------

    def _admit(
        self,
        queue: AdmissionQueue,
        running: list[Request],
        now: float,
        limit: int | None = None,
    ) -> list[Request]:
        """Move requests queue -> GPU per the policy, bounded by slots and
        by memory feasibility of the enlarged batch."""
        if limit is None:
            limit = self.config.max_batch
        admitted: list[Request] = []
        for req in self.policy.order(list(queue.waiting), now):
            occupied = len(running) + len(admitted)
            if occupied >= limit:
                if not (self.policy.preemptive and running):
                    break
                victim = self.policy.victim(running, req)
                if victim is None:
                    break
                running.remove(victim)
                victim.preemptions += 1
                queue.requeue(victim, now)
            ctx = max(
                [r.context_len + 1 for r in running]
                + [r.context_len + 1 for r in admitted]
                + [req.context_len + 1]
            )
            if not self.oracle.feasible(len(running) + len(admitted) + 1, ctx):
                if not running and not admitted:
                    # Even alone this request can never fit: drop it rather
                    # than wedge the loop — carrying the planner's own
                    # error message when planning (not the prescreen) said no.
                    queue.take(req)
                    req.state = RequestState.DROPPED
                    req.drop_s = now
                    req.drop_reason = DropReason.INFEASIBLE
                    req.drop_detail = self.oracle.last_plan_error(1) or (
                        f"memory prescreen rejected a singleton batch at "
                        f"context {ctx}"
                    )
                    queue.dropped.append(req)
                    continue
                break
            admitted.append(queue.take(req))
        return admitted

    # -- the loop ----------------------------------------------------------

    def run(self) -> ServingResult:
        with span("serving.run"):
            return self._run()

    def _run(self) -> ServingResult:
        cfg = self.config
        chaos = self._chaos
        pending = [
            Request.from_spec(i, spec) for i, spec in enumerate(self.trace.requests)
        ]
        all_requests = list(pending)
        queue = AdmissionQueue(cfg.queue_capacity, cfg.queue_timeout_s)
        running: list[Request] = []
        steps: list[StepRecord] = []
        depth: list[tuple[float, int, int]] = []
        t = 0.0
        i = 0

        stats: FaultStats | None = None
        if chaos:
            assert self.faults is not None
            stats = FaultStats(schedule_name=self.faults.name)
            rng = seeded_rng(self.seed, "serving", "chaos", self.faults.name)
            retry = cfg.retry_policy()
            base_hw = HardwareParams.from_platform(self.base_platform)
            applied_hw = base_hw
            fault_key: tuple | None = None
            rung_idx = 0
            consec_aborts = 0
            degraded_since: float | None = None
            # The loop's planning ceiling under nominal specs: the rung
            # probe divides this rather than max_batch so a ceiling the
            # engine never planned at doesn't masquerade as fault damage.
            probe_n = cfg.max_batch
            while probe_n > 1 and self.oracle.planned(probe_n) is None:
                probe_n //= 2

        reg = self.metrics

        def sample_step() -> None:
            """One point per curve at each step boundary, timestamped with
            the clock the loop actually advanced to (aborted steps land
            after their backoff, like everything else that observes them).
            No-op without a registry — no RNG draw, no state, no branch
            the fault-free loop could observe."""
            if reg is None:
                return
            step = steps[-1]
            reg.timeseries("curve.queue_waiting").sample(t, float(len(queue)))
            reg.timeseries("curve.in_system").sample(
                t, float(len(queue) + len(running))
            )
            reg.timeseries("curve.step_s").sample(t, step.duration_s)
            reg.timeseries("curve.batch").sample(t, float(step.batch))
            reg.timeseries("curve.rung").sample(
                t, float(rung_idx) if chaos else 0.0
            )

        def finish_token(req: Request, now: float) -> bool:
            """Credit one generated token; True when the request completed."""
            req.tokens_done += 1
            if req.first_token_s is None:
                req.first_token_s = now
            if req.tokens_done >= req.gen_len:
                req.state = RequestState.FINISHED
                req.finish_s = now
                return True
            return False

        def probe_ladder() -> int:
            """First rung (mildest first) whose constrained search still
            plans on the degraded platform; engages it on the engine."""
            for idx, rung in enumerate(LADDER):
                if not rung.admit:
                    self.engine.set_degradation(rung)
                    self.oracle.invalidate()
                    return idx
                self.engine.set_degradation(rung if idx > 0 else None)
                self.oracle.invalidate()
                target = max(1, probe_n // rung.batch_divisor)
                if self.oracle.planned(target) is not None:
                    return idx
            return len(LADDER) - 1

        def sync_faults(now: float) -> None:
            """Drift watchdog: runs once per fault segment (cheap key check
            otherwise); retargets/replans/walks the ladder on drift and
            unwinds everything on recovery."""
            nonlocal running, fault_key, applied_hw, rung_idx, degraded_since
            assert self.faults is not None and stats is not None
            key = self.faults.segment_key(now)
            if key != fault_key:
                fault_key = key
                effective = self.base_platform.with_faults(self.faults, now)
                eff_hw = HardwareParams.from_platform(effective)
                if relative_drift(applied_hw, eff_hw) > cfg.drift_tolerance:
                    self.engine.retarget(effective)
                    self.oracle.invalidate()
                    base_drift = relative_drift(base_hw, eff_hw)
                    recovered = base_drift <= cfg.drift_tolerance
                    # On recovery the overlay returns the base platform
                    # itself; track that by identity so the degraded-time
                    # window closes.
                    applied_hw = base_hw if recovered else eff_hw
                    cause = "recovery" if recovered else "drift"
                    stats.replans.append((now, cause, base_drift))
                    if recovered:
                        self.engine.set_degradation(None)
                        self.oracle.invalidate()
                        new_idx = 0
                    else:
                        new_idx = probe_ladder()
                    if new_idx != rung_idx:
                        stats.transitions.append(
                            (now, LADDER[rung_idx].name, LADDER[new_idx].name, cause)
                        )
                        rung_idx = new_idx
                    # Shed the most recently admitted requests until the
                    # running batch fits the degraded platform again.
                    while running and not self.oracle.feasible(
                        len(running), max(r.context_len + 1 for r in running)
                    ):
                        victim = running.pop()
                        victim.preemptions += 1
                        queue.requeue(victim, now)
                        stats.sheds.append((now, victim.rid))
            degraded = rung_idx > 0 or applied_hw is not base_hw
            if degraded and degraded_since is None:
                degraded_since = now
            elif not degraded and degraded_since is not None:
                stats.degraded_s += now - degraded_since
                degraded_since = None

        def fault_abort(
            start: float, dur: float, kind: str, participants: list[Request]
        ) -> tuple[float, list[Request]]:
            """Charge an aborted step + backoff; cull requests that blew
            their deadline (FAULT_ABORT) or budget (RETRY_EXHAUSTED).
            Returns (clock after backoff, surviving participants)."""
            nonlocal consec_aborts
            assert stats is not None
            consec_aborts += 1
            end = start + dur
            delay = retry.delay(consec_aborts, float(rng.random()))
            stats.aborts.append((start, end, kind, len(participants)))
            stats.backoffs.append((end, end + delay, consec_aborts))
            stats.lost_s += dur + delay
            now = end + delay
            survivors: list[Request] = []
            for req in participants:
                req.retries += 1
                if (
                    cfg.request_deadline_s is not None
                    and now - req.arrival_s > cfg.request_deadline_s
                ):
                    req.state = RequestState.DROPPED
                    req.drop_s = now
                    req.drop_reason = DropReason.FAULT_ABORT
                    req.drop_detail = (
                        f"{kind} step aborted by a transient fault at "
                        f"t={end:.3f}s; past the {cfg.request_deadline_s:g}s "
                        "deadline"
                    )
                    queue.dropped.append(req)
                    continue
                try:
                    retry.check_budget(req.rid, req.retries)
                except RetryExhaustedError as exc:
                    req.state = RequestState.DROPPED
                    req.drop_s = now
                    req.drop_reason = DropReason.RETRY_EXHAUSTED
                    req.drop_detail = str(exc)
                    queue.dropped.append(req)
                    continue
                survivors.append(req)
            return now, survivors

        while i < len(pending) or queue.waiting or running:
            if not queue.waiting and not running:
                # Idle: jump the clock to the next arrival.
                t = max(t, pending[i].arrival_s)
            while i < len(pending) and pending[i].arrival_s <= t:
                queue.offer(pending[i], pending[i].arrival_s)
                i += 1
            queue.expire(t)
            if chaos:
                sync_faults(t)
                rung = LADDER[rung_idx]
                if rung.admit:
                    admitted = self._admit(
                        queue, running, t,
                        limit=max(1, cfg.max_batch // rung.batch_divisor),
                    )
                else:
                    admitted = []
            else:
                admitted = self._admit(queue, running, t)

            if admitted:
                max_ctx = max(r.context_len for r in admitted)
                dur = self.oracle.prefill_seconds(len(admitted), max_ctx)
                start = t
                if chaos and rng.random() < self.faults.transient_abort_probability(start):
                    t, survivors = fault_abort(start, dur, "prefill", admitted)
                    for req in survivors:
                        # Aborted before its first token: back to the queue
                        # intact (arrival_s keeps its place in FCFS order).
                        queue.requeue(req, t)
                    steps.append(
                        StepRecord(
                            kind="abort-prefill", start_s=start, end_s=start + dur,
                            batch=len(admitted), max_ctx=max_ctx,
                            rids=tuple(r.rid for r in admitted),
                        )
                    )
                    depth.append((t, len(queue), len(running)))
                    sample_step()
                else:
                    if chaos:
                        consec_aborts = 0
                    t += dur
                    rids = []
                    for req in admitted:
                        req.state = RequestState.RUNNING
                        if req.admit_s is None:
                            req.admit_s = start
                        rids.append(req.rid)
                        if not finish_token(req, t):
                            running.append(req)
                    steps.append(
                        StepRecord(
                            kind="prefill", start_s=start, end_s=t,
                            batch=len(admitted), max_ctx=max_ctx, rids=tuple(rids),
                        )
                    )
                    depth.append((t, len(queue), len(running)))
                    sample_step()
                    if PROFILER.enabled:
                        PROFILER.count("serving.steps.prefill")

            if running:
                max_ctx = max(r.context_len for r in running)
                dur = self.oracle.decode_step_seconds(len(running), max_ctx)
                start = t
                if chaos and rng.random() < self.faults.transient_abort_probability(start):
                    rids = tuple(r.rid for r in running)
                    t, running = fault_abort(start, dur, "decode", running)
                    steps.append(
                        StepRecord(
                            kind="abort-decode", start_s=start, end_s=start + dur,
                            batch=len(rids), max_ctx=max_ctx, rids=rids,
                        )
                    )
                    depth.append((t, len(queue), len(running)))
                    sample_step()
                else:
                    if chaos:
                        consec_aborts = 0
                    t += dur
                    rids = tuple(r.rid for r in running)
                    running = [r for r in running if not finish_token(r, t)]
                    steps.append(
                        StepRecord(
                            kind="decode", start_s=start, end_s=t,
                            batch=len(rids), max_ctx=max_ctx, rids=rids,
                        )
                    )
                    depth.append((t, len(queue), len(running)))
                    sample_step()
                    if PROFILER.enabled:
                        PROFILER.count("serving.steps.decode")

            if chaos and not admitted and not running and queue.waiting:
                # Stalled: backpressure (or blanket infeasibility) with no
                # step to advance the clock.  Jump to whatever can change
                # the situation — the next arrival or the next fault
                # transition; if neither exists the degradation is
                # permanent and the queue can only be drained by dropping.
                horizon = [
                    x
                    for x in (
                        pending[i].arrival_s if i < len(pending) else None,
                        self.faults.next_change_after(t),
                    )
                    if x is not None and x > t
                ]
                if horizon:
                    t = min(horizon)
                else:
                    for req in list(queue.waiting):
                        queue.take(req)
                        req.state = RequestState.DROPPED
                        req.drop_s = t
                        req.drop_reason = DropReason.INFEASIBLE
                        req.drop_detail = (
                            "backpressure never lifted: no feasible plan on "
                            "the degraded platform and no fault transition "
                            "or arrival ahead"
                        )
                        queue.dropped.append(req)

        if chaos:
            assert stats is not None
            if degraded_since is not None:
                stats.degraded_s += t - degraded_since
            stats.final_rung = LADDER[rung_idx].name
            # Leave the engine as we found it: callers may reuse it for a
            # fault-free run afterwards.
            if applied_hw is not base_hw:
                self.engine.retarget(self.base_platform)
            self.engine.set_degradation(None)
            self.oracle.invalidate()

        return ServingResult(
            engine=getattr(self.engine, "name", type(self.engine).__name__),
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            config=cfg,
            requests=all_requests,
            steps=steps,
            queue_depth=depth,
            makespan_s=t,
            fault_stats=stats,
            fault_schedule=self.faults if chaos else None,
            timeseries=reg,
        )
