"""Continuous-batching serving simulator over the zig-zag schedule.

The simulator is an event-driven engine: between scheduling events —
the next arrival, the next queue-deadline expiry, the next fault-window
boundary, the earliest request completion, and the next step-price
bucket boundary — the running batch's composition *and* its bucketed
step price are constant, so the loop advances all ``k`` identical decode
steps in one multiply instead of ``k`` Python iterations.  Each loop
iteration still performs the same four phases a real offloading serving
loop would:

1. **ingest** — arrivals up to the clock enter the bounded admission
   queue (overflow and timeouts are dropped with accounting);
2. **admit** — the scheduler policy orders the queue; requests are
   admitted while a GPU slot is free *and* the planner's memory prescreen
   says the enlarged batch still fits (admission control is the same
   feasibility question the policy search asks).  Preemptive policies may
   evict a running victim at this token boundary;
3. **prefill** — newly admitted prompts run one batched prefill step,
   producing each request's first token (TTFT); resumed (preempted)
   requests re-prefill their accumulated context, which is the real cost
   of preemption under offloading;
4. **decode** — every running request advances one token per step in a
   single overlapped step, priced by the performance model (Eq. 2's max
   over the six tasks, times the ``l x k`` zig-zag iterations) at the
   batch's maximum context length; with no event on the horizon, a whole
   *run* of identical steps is committed at once.

Coalesced runs are recorded as :class:`StepRun` entries that expand
lazily into the exact legacy per-step :class:`StepRecord` sequence only
when something actually iterates steps (Chrome-trace export, the
machine-facing metrics registry); summary metrics come from running
aggregates accumulated during the loop, so results are byte-identical
whether per-step collection is on, sampled or off.  The pre-rewrite
per-step loop is kept as :meth:`ServingSimulator._run_reference` and an
equivalence test matrix pins the two engines byte-for-byte across
traces, policies and fault scenarios.

Fault injection (optional, off by default): pass a
:class:`~repro.faults.FaultSchedule` and the loop gains chaos semantics —
a **drift watchdog** re-derives the effective platform at every fault
segment boundary, retargets the engine and invalidates every cached plan
when the deviation exceeds ``drift_tolerance``, and walks the
:data:`~repro.faults.LADDER` until a rung plans again; **transient
faults** abort in-flight steps (the work is lost) and retry after a
capped, seeded-jitter exponential backoff, with per-request retry budgets
and optional deadlines producing ``RETRY_EXHAUSTED`` / ``FAULT_ABORT``
drops.  Chaos draws one RNG sample per attempted step, so runs are never
coalesced under a non-empty schedule — the RNG stream (and therefore the
whole simulation) stays byte-identical to the per-step engine.  With no
schedule (or an empty one) none of this code runs.

Nothing here is stochastic unless a fault schedule says so: traces are
frozen up front, ties are total orders, the clock is pure float
arithmetic (coalesced runs advance it with ``np.cumsum``, whose
sequential accumulation is bit-identical to ``k`` repeated ``t += dur``
additions), and every fault draw comes from one named seeded stream —
two runs with the same trace, schedule and seed are byte-identical,
which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import LADDER, FaultSchedule, FaultStats, RetryPolicy, relative_drift
from repro.models.config import ModelConfig
from repro.obs.profiling import PROFILER, span
from repro.obs.registry import MetricsRegistry
from repro.perfmodel.notation import HardwareParams
from repro.serving.arrivals import RequestTrace
from repro.serving.costing import StepCostOracle
from repro.serving.policies import SchedulerPolicy
from repro.serving.queue import AdmissionQueue
from repro.serving.request import DropReason, Request, RequestState
from repro.util.rng import seeded_rng


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop (not of any single policy)."""

    #: Defaults are calibrated to the offloaded-30B regime on the single
    #: A100 reference platform: a weight-streaming engine's decode step is
    #: wire-bound near ~3 s, so the TPOT target sits between LM-Offload's
    #: planned step (~2.9 s) and FlexGen's (~4.1 s) — tight enough to
    #: separate planners, attainable by the best one.
    max_batch: int = 64
    num_gpu_batches: int = 1
    queue_capacity: int = 128
    queue_timeout_s: float | None = None
    ttft_slo_s: float = 30.0
    tpot_slo_s: float = 3.5
    ctx_bucket: int = 32

    # -- fault semantics (only consulted when a schedule is injected) -----
    #: Aborted steps a single request may survive before RETRY_EXHAUSTED.
    retry_limit: int = 3
    #: Capped exponential backoff after an aborted step: the k-th
    #: consecutive abort waits ``min(cap, base * 2^(k-1) * (1+jitter*u))``.
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0
    backoff_jitter: float = 0.1
    #: Max relative deviation of any effective hardware rate/capacity from
    #: the currently applied specs before the watchdog retargets + replans.
    drift_tolerance: float = 0.05
    #: Arrival-to-now budget checked when a request is caught in an abort;
    #: exceeding it drops the request FAULT_ABORT.  ``None`` = no deadline.
    request_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ConfigError(
                f"serving config: max_batch must be positive (got "
                f"{self.max_batch}); the loop needs at least one GPU slot"
            )
        if self.num_gpu_batches <= 0:
            raise ConfigError(
                f"serving config: num_gpu_batches must be positive (got "
                f"{self.num_gpu_batches})"
            )
        if self.ttft_slo_s <= 0 or self.tpot_slo_s <= 0:
            raise ConfigError(
                "serving config: SLO targets must be positive (got "
                f"ttft_slo_s={self.ttft_slo_s}, tpot_slo_s={self.tpot_slo_s})"
            )
        if self.drift_tolerance <= 0:
            raise ConfigError(
                f"serving config: drift_tolerance must be > 0 (got "
                f"{self.drift_tolerance}); a zero tolerance would replan on "
                "every float-level wobble"
            )
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ConfigError(
                f"serving config: request_deadline_s must be positive when "
                f"set (got {self.request_deadline_s}); use None for no "
                "deadline"
            )
        # Backoff shape is validated by the policy it will construct —
        # single source of truth for those (actionable) messages.
        self.retry_policy()

    def retry_policy(self) -> RetryPolicy:
        # The request deadline doubles as the backoff's total-elapsed cap:
        # a retry is never scheduled past the point where the deadline
        # check would drop the request anyway.
        return RetryPolicy(
            base_s=self.backoff_base_s,
            cap_s=self.backoff_cap_s,
            jitter=self.backoff_jitter,
            limit=self.retry_limit,
            max_elapsed_s=self.request_deadline_s,
        )


@dataclass(frozen=True)
class StepRecord:
    """One GPU step: what ran, when, at what batch/context.

    ``kind`` is ``"prefill"`` / ``"decode"`` for completed steps and
    ``"abort-prefill"`` / ``"abort-decode"`` for steps a transient fault
    killed (their interval covers the lost work, not the backoff wait).
    """

    kind: str
    start_s: float
    end_s: float
    batch: int
    max_ctx: int
    rids: tuple[int, ...]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _run_clock(start_s: float, dur_s: float, count: int) -> np.ndarray:
    """Clock values ``[start, t_1, ..., t_count]`` of ``count`` equal
    steps.  ``np.cumsum`` accumulates sequentially, so every intermediate
    value is bit-identical to the legacy loop's repeated ``t += dur``."""
    steps = np.empty(count + 1, dtype=np.float64)
    steps[0] = start_s
    steps[1:] = dur_s
    return np.cumsum(steps)


@dataclass(frozen=True)
class StepRun:
    """``count`` consecutive identical steps, recorded as one entry.

    Between scheduling events the batch composition and the bucketed
    step price are constant, so one run captures what the legacy engine
    recorded as ``count`` :class:`StepRecord` entries plus ``count``
    queue-depth samples.  :meth:`expand` / :meth:`expand_depth`
    reconstruct those sequences exactly (decode context grows one token
    per step; the clock is re-derived with the same ``np.cumsum`` the
    engine advanced it with).  Abort and prefill runs always have
    ``count == 1``.
    """

    kind: str
    start_s: float
    end_s: float
    dur_s: float
    count: int
    batch: int
    max_ctx: int
    rids: tuple[int, ...]
    #: Waiting-queue length at every step of the run (constant: arrivals
    #: and expiries are run boundaries).
    queue_len: int
    #: ``len(running)`` after the run's final step (completions happen
    #: only there; during the run it equals ``batch``).
    running_after: int
    #: Clock at the post-step sample point — equals ``end_s`` except for
    #: aborted steps, whose sample lands after the retry backoff.
    sample_t: float

    def expand(self) -> list[StepRecord]:
        if self.count == 1:
            return [
                StepRecord(
                    kind=self.kind, start_s=self.start_s, end_s=self.end_s,
                    batch=self.batch, max_ctx=self.max_ctx, rids=self.rids,
                )
            ]
        times = _run_clock(self.start_s, self.dur_s, self.count)
        return [
            StepRecord(
                kind=self.kind, start_s=float(times[j]), end_s=float(times[j + 1]),
                batch=self.batch, max_ctx=self.max_ctx + j, rids=self.rids,
            )
            for j in range(self.count)
        ]

    def expand_depth(self) -> list[tuple[float, int, int]]:
        if self.count == 1:
            return [(self.sample_t, self.queue_len, self.running_after)]
        times = _run_clock(self.start_s, self.dur_s, self.count)
        out = [
            (float(times[j]), self.queue_len, self.batch)
            for j in range(1, self.count)
        ]
        out.append((self.sample_t, self.queue_len, self.running_after))
        return out


@dataclass
class ServingAggregates:
    """Running aggregates the loop maintains instead of unbounded
    per-step lists — everything :func:`repro.serving.metrics.compute_metrics`
    needs, accumulated incrementally and byte-identical to the values the
    legacy engine derived from ``result.steps`` / ``result.queue_depth``
    (integer sums and maxima are exact)."""

    step_counts: dict[str, int] = field(default_factory=dict)
    depth_samples: int = 0
    waiting_sum: int = 0
    max_waiting: int = 0
    max_in_system: int = 0
    #: Largest step batch observed — lets the metrics registry report a
    #: batch series without retaining per-step records.
    max_batch: int = 0

    def count_steps(self, kind: str, count: int) -> None:
        self.step_counts[kind] = self.step_counts.get(kind, 0) + count

    def observe_depth(
        self, waiting: int, batch: int, running_after: int, count: int
    ) -> None:
        self.depth_samples += count
        self.waiting_sum += waiting * count
        if batch > self.max_batch:
            self.max_batch = batch
        if waiting > self.max_waiting:
            self.max_waiting = waiting
        if count > 1 and waiting + batch > self.max_in_system:
            self.max_in_system = waiting + batch
        if waiting + running_after > self.max_in_system:
            self.max_in_system = waiting + running_after

    def steps_of_kind(self, kind: str) -> int:
        return self.step_counts.get(kind, 0)

    @property
    def aborted_steps(self) -> int:
        return sum(
            n for kind, n in self.step_counts.items()
            if kind.startswith("abort-")
        )


@dataclass
class ServingResult:
    """Everything a simulation produced, metrics-layer ready.

    Steps are stored as coalesced :class:`StepRun` entries plus running
    :class:`ServingAggregates`; the legacy ``steps`` / ``queue_depth``
    views expand lazily (and cache) the first time something iterates
    them — summary metrics never trigger the expansion.  When the
    simulator ran with ``collect_steps=False`` the runs are not retained
    and both views are empty; every aggregate-derived metric is
    byte-identical either way.
    """

    engine: str
    trace_name: str
    policy_name: str
    config: ServingConfig
    requests: list[Request]
    step_runs: list[StepRun]
    aggregates: ServingAggregates
    makespan_s: float
    #: Fault-layer bookkeeping; ``None`` when no (non-empty) schedule was
    #: injected, so fault-free results stay byte-identical to the
    #: pre-fault-layer simulator.
    fault_stats: FaultStats | None = None
    fault_schedule: FaultSchedule | None = None
    #: Per-step time-series curves (queue depth, step price, batch, rung)
    #: sampled live by the loop — only when a registry was injected via
    #: ``ServingSimulator(metrics=...)``; ``None`` otherwise, and nothing
    #: serialized from this result ever includes it implicitly.
    timeseries: MetricsRegistry | None = None

    _steps_cache: list[StepRecord] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _depth_cache: list[tuple[float, int, int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def steps(self) -> list[StepRecord]:
        """Per-step records, expanded lazily from the coalesced runs."""
        if self._steps_cache is None:
            self._steps_cache = [
                rec for run in self.step_runs for rec in run.expand()
            ]
        return self._steps_cache

    @property
    def queue_depth(self) -> list[tuple[float, int, int]]:
        """(clock, waiting, running) sampled after every step boundary,
        expanded lazily from the coalesced runs."""
        if self._depth_cache is None:
            self._depth_cache = [
                d for run in self.step_runs for d in run.expand_depth()
            ]
        return self._depth_cache

    @property
    def finished(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.FINISHED]

    @property
    def dropped(self) -> list[Request]:
        return [r for r in self.requests if r.state is RequestState.DROPPED]


def admit_batch(
    policy: SchedulerPolicy,
    oracle: StepCostOracle,
    queue: AdmissionQueue,
    running: list[Request],
    now: float,
    limit: int,
    candidates: list[Request] | None = None,
) -> list[Request]:
    """Move requests queue -> GPU per the policy, bounded by slots and
    by memory feasibility of the enlarged batch.

    Module-level so the fleet simulator's replicas run the exact same
    admission semantics as :class:`ServingSimulator` (which delegates
    here) — the 1-replica byte-identity guarantee depends on it.

    ``candidates`` overrides the admission view: a policy-ordered subset
    of ``queue.waiting`` to consider (the multi-model simulator passes
    only the resident model's requests).  ``None`` — every single-model
    caller — reads the queue's pre-sorted view or re-sorts, as before.
    """
    if candidates is None:
        ordered = queue.ordered_view()
        candidates = (
            list(ordered)
            if ordered is not None
            else policy.order(list(queue.waiting), now)
        )
    admitted: list[Request] = []
    # The candidate loop needs max(context_len + 1) over running and
    # admitted at every step; track it incrementally (recomputing the
    # running part only when preemption removes a victim) instead of
    # rescanning both lists per candidate.
    run_ctx = max((r.context_len + 1 for r in running), default=0)
    adm_ctx = 0
    for req in candidates:
        occupied = len(running) + len(admitted)
        if occupied >= limit:
            if not (policy.preemptive and running):
                break
            victim = policy.victim(running, req)
            if victim is None:
                break
            running.remove(victim)
            victim.preemptions += 1
            queue.requeue(victim, now)
            run_ctx = max((r.context_len + 1 for r in running), default=0)
        ctx = max(run_ctx, adm_ctx, req.context_len + 1)
        if not oracle.feasible(len(running) + len(admitted) + 1, ctx):
            if not running and not admitted:
                # Even alone this request can never fit: drop it rather
                # than wedge the loop — carrying the planner's own
                # error message when planning (not the prescreen) said no.
                queue.take(req)
                req.state = RequestState.DROPPED
                req.drop_s = now
                req.drop_reason = DropReason.INFEASIBLE
                req.drop_detail = oracle.last_plan_error(1) or (
                    f"memory prescreen rejected a singleton batch at "
                    f"context {ctx}"
                )
                queue.dropped.append(req)
                continue
            break
        admitted.append(queue.take(req))
        if req.context_len + 1 > adm_ctx:
            adm_ctx = req.context_len + 1
    return admitted


class ServingSimulator:
    """Trace-driven continuous batching on top of one engine."""

    def __init__(
        self,
        engine: Any,
        model: ModelConfig,
        trace: RequestTrace,
        policy: SchedulerPolicy | None = None,
        config: ServingConfig | None = None,
        faults: FaultSchedule | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        collect_steps: bool = True,
    ) -> None:
        if faults is not None and faults.has_replica_faults:
            raise ConfigError(
                f"serving simulator: fault schedule {faults.name!r} contains "
                "replica-level faults (replica_crash/replica_restart); a "
                "single engine has nowhere to fail over to, so the window "
                "would be silently ignored — run it through "
                "repro.serving.fleet.FleetSimulator instead"
            )
        self.engine = engine
        self.model = model
        self.trace = trace
        self.policy = policy or SchedulerPolicy()
        self.config = config or ServingConfig()
        self.faults = faults
        self.seed = seed
        #: Optional per-step time-series sink.  ``None`` (the default) is
        #: structurally inert: the loop takes no RNG draw, touches no
        #: state and branches on nothing because of it, so a run with and
        #: without sampling is byte-identical (tested).  A registry also
        #: forces per-step advance (no coalescing) so every step is
        #: sampled live — byte-identical too, just slower.
        self.metrics = metrics
        #: Retain the coalesced step runs on the result (``steps`` /
        #: ``queue_depth`` views need them).  ``False`` skips all step
        #: record-keeping for maximum throughput; everything derived from
        #: aggregates — ``compute_metrics`` included — is byte-identical.
        self.collect_steps = collect_steps
        #: Length predictor riding on the policy (PredictedSJFPolicy): the
        #: loop feeds it every completed request so it learns online.  The
        #: oracle predictor's ``observe`` is a no-op, and policies without
        #: a predictor skip the hook entirely — byte-identical either way.
        self._predictor = getattr(self.policy, "predictor", None)
        #: Chaos mode is engaged only by a non-empty schedule; an empty
        #: one (``zero_schedule()``) runs the exact fault-free code path.
        self._chaos = faults is not None and len(faults.faults) > 0
        #: The pristine platform every degraded overlay derives from.
        self.base_platform = engine.platform
        max_prompt = max((r.prompt_len for r in trace.requests), default=64)
        max_gen = max((r.gen_len for r in trace.requests), default=32)
        # Plan at the trace's maximum context so the chosen placement stays
        # memory-feasible for every step the loop can form.
        self.oracle = StepCostOracle(
            engine=engine,
            model=model,
            num_gpu_batches=self.config.num_gpu_batches,
            ctx_bucket=self.config.ctx_bucket,
            plan_prompt_len=max_prompt,
            plan_gen_len=max_gen,
        )

    # -- admission ---------------------------------------------------------

    def _admit(
        self,
        queue: AdmissionQueue,
        running: list[Request],
        now: float,
        limit: int | None = None,
    ) -> list[Request]:
        if limit is None:
            limit = self.config.max_batch
        return admit_batch(self.policy, self.oracle, queue, running, now, limit)

    # -- the loop ----------------------------------------------------------

    def run(self) -> ServingResult:
        """The event-driven engine (run-length decode advance)."""
        with span("serving.run"):
            return self._run(coalesce=True)

    def _run_reference(self) -> ServingResult:
        """The pre-rewrite per-step engine, kept as the equivalence
        reference: one priced step per iteration, a full policy re-sort
        per admission and the linear ``expire`` scan — no run-length
        advance, no deadline heap, no pre-sorted admission view."""
        with span("serving.run_reference"):
            return self._run(coalesce=False)

    def _run(self, coalesce: bool) -> ServingResult:
        cfg = self.config
        chaos = self._chaos
        pending = [
            Request.from_spec(i, spec) for i, spec in enumerate(self.trace.requests)
        ]
        all_requests = list(pending)
        queue = AdmissionQueue(
            cfg.queue_capacity, cfg.queue_timeout_s, use_heap=coalesce
        )
        if coalesce and getattr(self.policy, "static_order", False):
            queue.attach_order(self.policy.sort_key)
        running: list[Request] = []
        runs: list[StepRun] = []
        agg = ServingAggregates()
        keep = self.collect_steps
        t = 0.0
        i = 0
        n_pending = len(pending)

        stats: FaultStats | None = None
        if chaos:
            assert self.faults is not None
            stats = FaultStats(schedule_name=self.faults.name)
            rng = seeded_rng(self.seed, "serving", "chaos", self.faults.name)
            retry = cfg.retry_policy()
            base_hw = HardwareParams.from_platform(self.base_platform)
            applied_hw = base_hw
            fault_key: tuple | None = None
            rung_idx = 0
            consec_aborts = 0
            degraded_since: float | None = None
            # The loop's planning ceiling under nominal specs: the rung
            # probe divides this rather than max_batch so a ceiling the
            # engine never planned at doesn't masquerade as fault damage.
            probe_n = self.oracle.warm_up(cfg.max_batch)

        reg = self.metrics
        # Run-length advance only when every per-step observer is inert:
        # chaos draws one RNG sample per attempted step, and a live
        # registry samples each step's curves — both force k=1.
        fast = coalesce and not chaos and reg is None

        def emit(
            kind: str, start: float, end: float, dur: float, count: int,
            batch: int, max_ctx: int, rids: tuple[int, ...], running_after: int,
        ) -> None:
            agg.count_steps(kind, count)
            q = len(queue)
            agg.observe_depth(q, batch, running_after, count)
            if keep:
                runs.append(
                    StepRun(
                        kind=kind, start_s=start, end_s=end, dur_s=dur,
                        count=count, batch=batch, max_ctx=max_ctx, rids=rids,
                        queue_len=q, running_after=running_after, sample_t=t,
                    )
                )

        def sample_step(start: float, end: float, batch: int) -> None:
            """One point per curve at each step boundary, timestamped with
            the clock the loop actually advanced to (aborted steps land
            after their backoff, like everything else that observes them).
            No-op without a registry — no RNG draw, no state, no branch
            the fault-free loop could observe."""
            if reg is None:
                return
            reg.timeseries("curve.queue_waiting").sample(t, float(len(queue)))
            reg.timeseries("curve.in_system").sample(
                t, float(len(queue) + len(running))
            )
            reg.timeseries("curve.step_s").sample(t, end - start)
            reg.timeseries("curve.batch").sample(t, float(batch))
            reg.timeseries("curve.rung").sample(
                t, float(rung_idx) if chaos else 0.0
            )

        predictor = self._predictor

        def finish_token(req: Request, now: float) -> bool:
            """Credit one generated token; True when the request completed."""
            req.tokens_done += 1
            if req.first_token_s is None:
                req.first_token_s = now
            if req.tokens_done >= req.gen_len:
                req.state = RequestState.FINISHED
                req.finish_s = now
                if predictor is not None:
                    predictor.observe(req)
                return True
            return False

        def probe_ladder() -> int:
            """First rung (mildest first) whose constrained search still
            plans on the degraded platform; engages it on the engine."""
            for idx, rung in enumerate(LADDER):
                if not rung.admit:
                    self.engine.set_degradation(rung)
                    self.oracle.invalidate()
                    return idx
                self.engine.set_degradation(rung if idx > 0 else None)
                self.oracle.invalidate()
                target = max(1, probe_n // rung.batch_divisor)
                if self.oracle.planned(target) is not None:
                    return idx
            return len(LADDER) - 1

        def sync_faults(now: float) -> None:
            """Drift watchdog: runs once per fault segment (cheap key check
            otherwise); retargets/replans/walks the ladder on drift and
            unwinds everything on recovery."""
            nonlocal running, fault_key, applied_hw, rung_idx, degraded_since
            assert self.faults is not None and stats is not None
            key = self.faults.segment_key(now)
            if key != fault_key:
                fault_key = key
                effective = self.base_platform.with_faults(self.faults, now)
                eff_hw = HardwareParams.from_platform(effective)
                if relative_drift(applied_hw, eff_hw) > cfg.drift_tolerance:
                    self.engine.retarget(effective)
                    self.oracle.invalidate()
                    base_drift = relative_drift(base_hw, eff_hw)
                    recovered = base_drift <= cfg.drift_tolerance
                    # On recovery the overlay returns the base platform
                    # itself; track that by identity so the degraded-time
                    # window closes.
                    applied_hw = base_hw if recovered else eff_hw
                    cause = "recovery" if recovered else "drift"
                    stats.replans.append((now, cause, base_drift))
                    if recovered:
                        self.engine.set_degradation(None)
                        self.oracle.invalidate()
                        new_idx = 0
                    else:
                        new_idx = probe_ladder()
                    if new_idx != rung_idx:
                        stats.transitions.append(
                            (now, LADDER[rung_idx].name, LADDER[new_idx].name, cause)
                        )
                        rung_idx = new_idx
                    # Shed the most recently admitted requests until the
                    # running batch fits the degraded platform again.
                    while running and not self.oracle.feasible(
                        len(running), max(r.context_len + 1 for r in running)
                    ):
                        victim = running.pop()
                        victim.preemptions += 1
                        queue.requeue(victim, now)
                        stats.sheds.append((now, victim.rid))
            degraded = rung_idx > 0 or applied_hw is not base_hw
            if degraded and degraded_since is None:
                degraded_since = now
            elif not degraded and degraded_since is not None:
                stats.degraded_s += now - degraded_since
                degraded_since = None

        def fault_abort(
            start: float, dur: float, kind: str, participants: list[Request]
        ) -> tuple[float, list[Request]]:
            """Charge an aborted step + backoff; cull requests that blew
            their deadline (FAULT_ABORT) or budget (RETRY_EXHAUSTED).
            Returns (clock after backoff, surviving participants)."""
            nonlocal consec_aborts
            assert stats is not None
            consec_aborts += 1
            end = start + dur
            elapsed = end - min(r.arrival_s for r in participants)
            delay = retry.delay(consec_aborts, float(rng.random()), elapsed)
            stats.aborts.append((start, end, kind, len(participants)))
            stats.backoffs.append((end, end + delay, consec_aborts))
            stats.lost_s += dur + delay
            now = end + delay
            survivors: list[Request] = []
            for req in participants:
                req.retries += 1
                if (
                    cfg.request_deadline_s is not None
                    and now - req.arrival_s > cfg.request_deadline_s
                ):
                    req.state = RequestState.DROPPED
                    req.drop_s = now
                    req.drop_reason = DropReason.FAULT_ABORT
                    req.drop_detail = (
                        f"{kind} step aborted by a transient fault at "
                        f"t={end:.3f}s; past the {cfg.request_deadline_s:g}s "
                        "deadline"
                    )
                    queue.dropped.append(req)
                    continue
                try:
                    retry.check_budget(req.rid, req.retries)
                except RetryExhaustedError as exc:
                    req.state = RequestState.DROPPED
                    req.drop_s = now
                    req.drop_reason = DropReason.RETRY_EXHAUSTED
                    req.drop_detail = str(exc)
                    queue.dropped.append(req)
                    continue
                survivors.append(req)
            return now, survivors

        while i < n_pending or queue.waiting or running:
            if not queue.waiting and not running:
                # Idle: jump the clock to the next arrival.
                t = max(t, pending[i].arrival_s)
            while i < n_pending and pending[i].arrival_s <= t:
                queue.offer(pending[i], pending[i].arrival_s)
                i += 1
            queue.expire(t)
            if chaos:
                sync_faults(t)
                rung = LADDER[rung_idx]
                if rung.admit:
                    admitted = self._admit(
                        queue, running, t,
                        limit=max(1, cfg.max_batch // rung.batch_divisor),
                    )
                else:
                    admitted = []
            elif coalesce and not (
                queue.waiting
                and (self.policy.preemptive or len(running) < cfg.max_batch)
            ):
                # Provably a no-op: an empty queue admits nothing, and a
                # full batch under a non-preemptive policy breaks at the
                # first candidate without touching any state.
                admitted = []
            else:
                admitted = self._admit(queue, running, t)

            if admitted:
                max_ctx = max(r.context_len for r in admitted)
                dur = self.oracle.prefill_seconds(len(admitted), max_ctx)
                start = t
                if chaos and rng.random() < self.faults.transient_abort_probability(start):
                    rids = tuple(r.rid for r in admitted) if keep else ()
                    t, survivors = fault_abort(start, dur, "prefill", admitted)
                    for req in survivors:
                        # Aborted before its first token: back to the queue
                        # intact (arrival_s keeps its place in FCFS order).
                        queue.requeue(req, t)
                    emit(
                        "abort-prefill", start, start + dur, dur, 1,
                        len(admitted), max_ctx, rids, len(running),
                    )
                    sample_step(start, start + dur, len(admitted))
                else:
                    if chaos:
                        consec_aborts = 0
                    t += dur
                    for req in admitted:
                        req.state = RequestState.RUNNING
                        if req.admit_s is None:
                            req.admit_s = start
                        if not finish_token(req, t):
                            running.append(req)
                    rids = tuple(r.rid for r in admitted) if keep else ()
                    emit(
                        "prefill", start, t, dur, 1,
                        len(admitted), max_ctx, rids, len(running),
                    )
                    sample_step(start, t, len(admitted))
                    if PROFILER.enabled:
                        PROFILER.count("serving.steps.prefill")

            if running:
                max_ctx = max(r.context_len for r in running)
                n = len(running)
                dur = self.oracle.decode_step_seconds(n, max_ctx)
                start = t
                if chaos and rng.random() < self.faults.transient_abort_probability(start):
                    rids = tuple(r.rid for r in running) if keep else ()
                    t, running = fault_abort(start, dur, "decode", running)
                    emit(
                        "abort-decode", start, start + dur, dur, 1,
                        n, max_ctx, rids, len(running),
                    )
                    sample_step(start, start + dur, n)
                else:
                    if chaos:
                        consec_aborts = 0
                    k = 1
                    if fast:
                        # Horizon of the next scheduling event, in steps:
                        # the earliest completion and the price-bucket
                        # boundary bound the run up front; arrivals and
                        # queue-deadline expiries cut it on the clock.
                        k = min(
                            min(r.remaining_tokens for r in running),
                            self.oracle.decode_bucket_headroom(max_ctx),
                        )
                        if k > 1 and queue.waiting and (
                            self.policy.preemptive or n < cfg.max_batch
                        ):
                            # Admission could act at the next boundary.
                            k = 1
                        if k > 1:
                            times = _run_clock(start, dur, k)
                            if i < n_pending:
                                # First intermediate boundary that would
                                # ingest the next arrival ends the run.
                                cut = int(np.searchsorted(
                                    times[1:k], pending[i].arrival_s, side="left"
                                )) + 1
                                if cut < k:
                                    k = cut
                            if cfg.queue_timeout_s is not None:
                                a_min = queue.next_expirable_arrival()
                                if a_min is not None:
                                    # Exactly the legacy expiry comparison,
                                    # vectorized over the run's boundaries.
                                    hits = np.nonzero(
                                        (times[1:k] - a_min) > cfg.queue_timeout_s
                                    )[0]
                                    if hits.size:
                                        k = int(hits[0]) + 1
                    if k == 1:
                        t += dur
                        rids = tuple(r.rid for r in running) if keep else ()
                        running = [r for r in running if not finish_token(r, t)]
                        emit(
                            "decode", start, t, dur, 1,
                            n, max_ctx, rids, len(running),
                        )
                        sample_step(start, t, n)
                        if PROFILER.enabled:
                            PROFILER.count("serving.steps.decode")
                    else:
                        t = float(times[k])
                        rids = tuple(r.rid for r in running) if keep else ()
                        survivors = []
                        for r in running:
                            r.tokens_done += k
                            if r.tokens_done >= r.gen_len:
                                # first_token_s was set at prefill; only
                                # completion bookkeeping remains.
                                r.state = RequestState.FINISHED
                                r.finish_s = t
                                if predictor is not None:
                                    predictor.observe(r)
                            else:
                                survivors.append(r)
                        running = survivors
                        emit(
                            "decode", start, t, dur, k,
                            n, max_ctx, rids, len(running),
                        )
                        if PROFILER.enabled:
                            PROFILER.count("serving.steps.decode", k)

            if chaos and not admitted and not running and queue.waiting:
                # Stalled: backpressure (or blanket infeasibility) with no
                # step to advance the clock.  Jump to whatever can change
                # the situation — the next arrival or the next fault
                # transition; if neither exists the degradation is
                # permanent and the queue can only be drained by dropping.
                horizon = [
                    x
                    for x in (
                        pending[i].arrival_s if i < n_pending else None,
                        self.faults.next_change_after(t),
                    )
                    if x is not None and x > t
                ]
                if horizon:
                    t = min(horizon)
                else:
                    for req in list(queue.waiting):
                        queue.take(req)
                        req.state = RequestState.DROPPED
                        req.drop_s = t
                        req.drop_reason = DropReason.INFEASIBLE
                        req.drop_detail = (
                            "backpressure never lifted: no feasible plan on "
                            "the degraded platform and no fault transition "
                            "or arrival ahead"
                        )
                        queue.dropped.append(req)

        if chaos:
            assert stats is not None
            if degraded_since is not None:
                stats.degraded_s += t - degraded_since
            stats.final_rung = LADDER[rung_idx].name
            # Leave the engine as we found it: callers may reuse it for a
            # fault-free run afterwards.
            if applied_hw is not base_hw:
                self.engine.retarget(self.base_platform)
            self.engine.set_degradation(None)
            self.oracle.invalidate()

        return ServingResult(
            engine=getattr(self.engine, "name", type(self.engine).__name__),
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            config=cfg,
            requests=all_requests,
            step_runs=runs,
            aggregates=agg,
            makespan_s=t,
            fault_stats=stats,
            fault_schedule=self.faults if chaos else None,
            timeseries=reg,
        )
