"""Chrome-trace export of a serving run's request timeline.

Reuses :class:`~repro.trace.chrome.ChromeTraceBuilder` (same Trace Event
Format the decode-schedule exporter emits) with three rows:

* ``gpu``      — one complete slice per prefill/decode step (batch size,
  max context and participating request ids in ``args``);
* ``requests`` — instant markers for every lifecycle event (arrival,
  admit, first_token, finish, drop, preempt);
* a ``queue`` counter series sampling waiting/running depth after each
  step, rendered by Perfetto as a stacked area chart.

Chaos runs add a ``faults`` row — injected fault windows, aborted-step
and backoff slices, replan/rung-transition/shed instants — so the causal
chain (fault window -> aborts -> backoff -> replan -> rung change) reads
left to right in the viewer.  Fault-free runs emit exactly the original
three rows.

Open the file in chrome://tracing or https://ui.perfetto.dev.
"""

from __future__ import annotations

from repro.serving.simulator import ServingResult
from repro.trace.chrome import ChromeTraceBuilder


def export_request_timeline(
    result: ServingResult, builder: ChromeTraceBuilder | None = None
) -> ChromeTraceBuilder:
    """Render one serving run into a trace builder (new one by default)."""
    builder = builder or ChromeTraceBuilder(
        process_name=f"serve-sim:{result.engine}"
    )
    for step in result.steps:
        builder.add_slice(
            f"{step.kind} b={step.batch}",
            "gpu",
            step.start_s,
            step.duration_s,
            batch=step.batch,
            max_ctx=step.max_ctx,
            rids=list(step.rids),
        )
    for req in sorted(result.requests, key=lambda r: r.rid):
        builder.add_instant(f"arrive r{req.rid}", "requests", req.arrival_s,
                            prompt=req.prompt_len, gen=req.gen_len)
        if req.admit_s is not None:
            builder.add_instant(f"admit r{req.rid}", "requests", req.admit_s)
        if req.first_token_s is not None:
            builder.add_instant(
                f"first_token r{req.rid}", "requests", req.first_token_s
            )
        if req.finish_s is not None:
            builder.add_instant(f"finish r{req.rid}", "requests", req.finish_s,
                                tokens=req.tokens_done)
        if req.drop_s is not None:
            assert req.drop_reason is not None
            builder.add_instant(f"drop r{req.rid}", "requests", req.drop_s,
                                reason=req.drop_reason.value)
    for t, waiting, running in result.queue_depth:
        builder.add_counter("queue", t, waiting=waiting, running=running)
    if result.fault_schedule is not None:
        for f in result.fault_schedule.faults:
            builder.add_slice(
                f"fault {f.kind.value}", "faults", f.start_s, f.duration_s,
                severity=f.severity,
            )
    if result.fault_stats is not None:
        stats = result.fault_stats
        for s0, s1, kind, batch in stats.aborts:
            builder.add_slice(f"abort {kind}", "faults", s0, s1 - s0, batch=batch)
        for s0, s1, attempt in stats.backoffs:
            builder.add_slice(f"backoff #{attempt}", "faults", s0, s1 - s0)
        for t, cause, drift in stats.replans:
            builder.add_instant(f"replan ({cause})", "faults", t, drift=drift)
        for t, from_rung, to_rung, reason in stats.transitions:
            builder.add_instant(
                f"rung {from_rung}->{to_rung}", "faults", t, reason=reason
            )
        for t, rid in stats.sheds:
            builder.add_instant(f"shed r{rid}", "faults", t)
    return builder
