"""Chrome-trace export of a serving run's request timeline.

Reuses :class:`~repro.trace.chrome.ChromeTraceBuilder` (same Trace Event
Format the decode-schedule exporter emits) with three rows:

* ``gpu``      — one complete slice per prefill/decode step (batch size,
  max context and participating request ids in ``args``);
* ``requests`` — instant markers for every lifecycle event (arrival,
  admit, first_token, finish, drop, preempt);
* a ``queue`` counter series sampling waiting/running depth after each
  step, rendered by Perfetto as a stacked area chart.

Open the file in chrome://tracing or https://ui.perfetto.dev.
"""

from __future__ import annotations

from repro.serving.simulator import ServingResult
from repro.trace.chrome import ChromeTraceBuilder


def export_request_timeline(
    result: ServingResult, builder: ChromeTraceBuilder | None = None
) -> ChromeTraceBuilder:
    """Render one serving run into a trace builder (new one by default)."""
    builder = builder or ChromeTraceBuilder(
        process_name=f"serve-sim:{result.engine}"
    )
    for step in result.steps:
        builder.add_slice(
            f"{step.kind} b={step.batch}",
            "gpu",
            step.start_s,
            step.duration_s,
            batch=step.batch,
            max_ctx=step.max_ctx,
            rids=list(step.rids),
        )
    for req in sorted(result.requests, key=lambda r: r.rid):
        builder.add_instant(f"arrive r{req.rid}", "requests", req.arrival_s,
                            prompt=req.prompt_len, gen=req.gen_len)
        if req.admit_s is not None:
            builder.add_instant(f"admit r{req.rid}", "requests", req.admit_s)
        if req.first_token_s is not None:
            builder.add_instant(
                f"first_token r{req.rid}", "requests", req.first_token_s
            )
        if req.finish_s is not None:
            builder.add_instant(f"finish r{req.rid}", "requests", req.finish_s,
                                tokens=req.tokens_done)
        if req.drop_s is not None:
            assert req.drop_reason is not None
            builder.add_instant(f"drop r{req.rid}", "requests", req.drop_s,
                                reason=req.drop_reason.value)
    for t, waiting, running in result.queue_depth:
        builder.add_counter("queue", t, waiting=waiting, running=running)
    return builder
