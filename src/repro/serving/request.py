"""Request lifecycle: the unit of work the serving simulator schedules.

A :class:`RequestSpec` is the immutable description an arrival trace
carries (when it arrives, how long its prompt and generation are); a
:class:`Request` is the mutable lifecycle record the simulator advances
through ``QUEUED -> RUNNING -> FINISHED`` (or ``DROPPED``), stamping the
timestamps every serving metric (TTFT, TPOT, e2e latency, goodput) is
computed from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RequestState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    DROPPED = "dropped"


class DropReason(enum.Enum):
    QUEUE_FULL = "queue_full"
    TIMEOUT = "timeout"
    INFEASIBLE = "infeasible"
    #: An aborted step pushed the request past its deadline (fault layer).
    FAULT_ABORT = "fault_abort"
    #: The request burned through its per-request retry budget.
    RETRY_EXHAUSTED = "retry_exhausted"
    #: Fleet only: a crash/restart displaced the request more times than
    #: its migration budget allows.
    FAILOVER_EXHAUSTED = "failover_exhausted"
    #: Fleet only: no schedulable replica existed when the request needed
    #: placement (all down, draining, breaker-open or full).
    REPLICA_LOST = "replica_lost"


@dataclass(frozen=True)
class RequestSpec:
    """One trace entry: arrival time + sequence shape (+ priority).

    ``model`` tags the request with the model it must be served by
    (multi-model serving); the empty string — the default, and the only
    value single-model traces ever carry — means "whatever model the
    simulator serves", keeping every pre-multi-model trace byte-identical.
    """

    arrival_s: float
    prompt_len: int
    gen_len: int
    priority: int = 0
    model: str = ""

    def __post_init__(self) -> None:
        from repro.errors import ServingError

        if self.arrival_s < 0:
            raise ServingError("request arrival time must be non-negative")
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ServingError("prompt_len and gen_len must be positive")


@dataclass
class Request:
    """A live request with its lifecycle timestamps.

    Timestamps are virtual-clock seconds; ``None`` until the corresponding
    event happens.  ``tokens_done`` counts generated tokens (the first one
    is produced by the prefill step).
    """

    rid: int
    arrival_s: float
    prompt_len: int
    gen_len: int
    priority: int = 0
    #: Model this request targets (multi-model serving); "" in
    #: single-model runs.
    model: str = ""

    state: RequestState = RequestState.QUEUED
    admit_s: float | None = None
    first_token_s: float | None = None
    finish_s: float | None = None
    drop_s: float | None = None
    drop_reason: DropReason | None = None
    tokens_done: int = 0
    preemptions: int = 0
    #: Aborted steps this request has been caught in (fault layer);
    #: counted against ``ServingConfig.retry_limit``.
    retries: int = 0
    #: Human-readable detail attached to a drop (e.g. the planner error
    #: message behind an INFEASIBLE verdict).
    drop_detail: str | None = None
    #: Fleet only: times a crash/restart moved this request (or its hedge)
    #: to another replica.  Always 0 in single-engine runs.
    migrations: int = 0
    #: Queue re-entries after preemption do not reset ``arrival_s``; the
    #: scheduler keys on this field so FCFS stays stable under preemption.
    queued_since_s: float = field(default=0.0)

    @classmethod
    def from_spec(cls, rid: int, spec: RequestSpec) -> "Request":
        return cls(
            rid=rid,
            arrival_s=spec.arrival_s,
            prompt_len=spec.prompt_len,
            gen_len=spec.gen_len,
            priority=spec.priority,
            model=spec.model,
            queued_since_s=spec.arrival_s,
        )

    # -- derived quantities ------------------------------------------------

    @property
    def context_len(self) -> int:
        """Tokens the KV cache currently holds for this request."""
        return self.prompt_len + self.tokens_done

    @property
    def remaining_tokens(self) -> int:
        return self.gen_len - self.tokens_done

    @property
    def ttft_s(self) -> float | None:
        """Time to first token (arrival -> end of the prefill step)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float | None:
        """Mean time per output token after the first (queueing included:
        a preempted request's stall shows up here, as it does for users)."""
        if self.finish_s is None or self.first_token_s is None:
            return None
        if self.gen_len <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.gen_len - 1)

    @property
    def e2e_s(self) -> float | None:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    def meets_slo(self, ttft_slo_s: float, tpot_slo_s: float) -> bool:
        """Did this (finished) request stay within both latency SLOs?"""
        return (
            self.state is RequestState.FINISHED
            and self.ttft_s is not None
            and self.ttft_s <= ttft_slo_s
            and (self.tpot_s or 0.0) <= tpot_slo_s
        )
