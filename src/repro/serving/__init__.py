"""Request-level serving simulator: arrival traces, continuous batching
over the zig-zag schedule, scheduler policies and SLO metrics.

The performance model (Eqs. 1-24) prices any (prompt, context, batch)
point in microseconds, which is exactly what a trace-driven simulator
needs to make admission and batching decisions per step — this package
turns the repo's offline block evaluator into an online serving study:
requests arrive over time, queue under admission control, get batched
continuously, and are scored against TTFT/TPOT SLOs.

Entry points: ``python -m repro serve-sim`` (CLI),
:class:`ServingSimulator` (library), and
:func:`repro.bench.serving.run_serving_comparison` (the
``BENCH_serving.json`` engine-vs-engine harness).

Fault injection rides on top: pass a
:class:`~repro.faults.FaultSchedule` (and a seed) to
:class:`ServingSimulator` and the loop gains drift-watchdog replanning,
the graceful-degradation ladder and retry/backoff semantics — see
``python -m repro chaos`` and :mod:`repro.bench.chaos`.

Fleet-scale serving lives in :mod:`repro.serving.fleet`:
:class:`FleetSimulator` composes N replicas (each a full single-engine
stack) under a Firmament-style cost router, replica-level crash/restart
faults with fault-domain correlation, failover migration, hedged
requests and per-replica circuit breakers — see
``python -m repro fleet-sim`` and :mod:`repro.bench.fleet`.

Multi-model co-residency lives in :mod:`repro.serving.multimodel`:
:class:`MultiModelSimulator` time-shares one platform between K models
(swaps priced as weight bytes over the faultable PCIe link) under
swap-on-idle, cross-model preemption, or predicted-SJF driven by the
learned length predictor in :mod:`repro.serving.predictor` — see
``python -m repro serve-sim --models`` and :mod:`repro.bench.multimodel`.
"""

from repro.serving.arrivals import (
    LengthSampler,
    RequestTrace,
    default_trace,
    load_trace,
    mmpp_trace,
    poisson_trace,
    replay_trace,
    trace_from_json,
)
from repro.serving.costing import StepCostOracle
from repro.serving.fleet import (
    FLEET_PRESETS,
    FLEET_SCENARIOS,
    BreakerState,
    CircuitBreaker,
    FleetConfig,
    FleetResult,
    FleetSimulator,
    FleetStats,
    ReplicaResult,
    ReplicaSpec,
    compute_fleet_metrics,
    export_fleet_timeline,
    fleet_metrics_registry,
    make_fleet,
    make_fleet_scenario,
)
from repro.serving.metrics import (
    compute_metrics,
    metrics_registry,
    metrics_row,
    nearest_rank,
)
from repro.serving.multimodel import (
    MODEL_PRESETS,
    SLO_CLASSES,
    ModelSlot,
    MultiModelResult,
    MultiModelSimulator,
    SwapRecord,
    make_slots,
    multimodel_registry,
    slot_summary,
)
from repro.serving.policies import (
    FCFSPolicy,
    PredictedSJFPolicy,
    PriorityPolicy,
    SchedulerPolicy,
    SJFPolicy,
    make_policy,
)
from repro.serving.predictor import (
    BucketedQuantilePredictor,
    LengthPredictor,
    OracleLengthPredictor,
    make_predictor,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.request import DropReason, Request, RequestSpec, RequestState
from repro.serving.simulator import (
    ServingAggregates,
    ServingConfig,
    ServingResult,
    ServingSimulator,
    StepRecord,
    StepRun,
)
from repro.serving.timeline import export_request_timeline

__all__ = [
    "LengthSampler",
    "RequestTrace",
    "default_trace",
    "load_trace",
    "mmpp_trace",
    "poisson_trace",
    "replay_trace",
    "trace_from_json",
    "StepCostOracle",
    "FLEET_PRESETS",
    "FLEET_SCENARIOS",
    "BreakerState",
    "CircuitBreaker",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "FleetStats",
    "ReplicaResult",
    "ReplicaSpec",
    "compute_fleet_metrics",
    "export_fleet_timeline",
    "fleet_metrics_registry",
    "make_fleet",
    "make_fleet_scenario",
    "compute_metrics",
    "metrics_registry",
    "metrics_row",
    "nearest_rank",
    "MODEL_PRESETS",
    "SLO_CLASSES",
    "ModelSlot",
    "MultiModelResult",
    "MultiModelSimulator",
    "SwapRecord",
    "make_slots",
    "multimodel_registry",
    "slot_summary",
    "FCFSPolicy",
    "PredictedSJFPolicy",
    "PriorityPolicy",
    "SchedulerPolicy",
    "SJFPolicy",
    "make_policy",
    "BucketedQuantilePredictor",
    "LengthPredictor",
    "OracleLengthPredictor",
    "make_predictor",
    "AdmissionQueue",
    "DropReason",
    "Request",
    "RequestSpec",
    "RequestState",
    "ServingAggregates",
    "ServingConfig",
    "ServingResult",
    "ServingSimulator",
    "StepRecord",
    "StepRun",
    "export_request_timeline",
]
