"""Request-level serving simulator: arrival traces, continuous batching
over the zig-zag schedule, scheduler policies and SLO metrics.

The performance model (Eqs. 1-24) prices any (prompt, context, batch)
point in microseconds, which is exactly what a trace-driven simulator
needs to make admission and batching decisions per step — this package
turns the repo's offline block evaluator into an online serving study:
requests arrive over time, queue under admission control, get batched
continuously, and are scored against TTFT/TPOT SLOs.

Entry points: ``python -m repro serve-sim`` (CLI),
:class:`ServingSimulator` (library), and
:func:`repro.bench.serving.run_serving_comparison` (the
``BENCH_serving.json`` engine-vs-engine harness).

Fault injection rides on top: pass a
:class:`~repro.faults.FaultSchedule` (and a seed) to
:class:`ServingSimulator` and the loop gains drift-watchdog replanning,
the graceful-degradation ladder and retry/backoff semantics — see
``python -m repro chaos`` and :mod:`repro.bench.chaos`.
"""

from repro.serving.arrivals import (
    LengthSampler,
    RequestTrace,
    default_trace,
    load_trace,
    mmpp_trace,
    poisson_trace,
    replay_trace,
    trace_from_json,
)
from repro.serving.costing import StepCostOracle
from repro.serving.metrics import (
    compute_metrics,
    metrics_registry,
    metrics_row,
    nearest_rank,
)
from repro.serving.policies import (
    FCFSPolicy,
    PriorityPolicy,
    SchedulerPolicy,
    SJFPolicy,
    make_policy,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.request import DropReason, Request, RequestSpec, RequestState
from repro.serving.simulator import (
    ServingAggregates,
    ServingConfig,
    ServingResult,
    ServingSimulator,
    StepRecord,
    StepRun,
)
from repro.serving.timeline import export_request_timeline

__all__ = [
    "LengthSampler",
    "RequestTrace",
    "default_trace",
    "load_trace",
    "mmpp_trace",
    "poisson_trace",
    "replay_trace",
    "trace_from_json",
    "StepCostOracle",
    "compute_metrics",
    "metrics_registry",
    "metrics_row",
    "nearest_rank",
    "FCFSPolicy",
    "PriorityPolicy",
    "SchedulerPolicy",
    "SJFPolicy",
    "make_policy",
    "AdmissionQueue",
    "DropReason",
    "Request",
    "RequestSpec",
    "RequestState",
    "ServingAggregates",
    "ServingConfig",
    "ServingResult",
    "ServingSimulator",
    "StepRecord",
    "StepRun",
    "export_request_timeline",
]
