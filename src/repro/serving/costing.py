"""Step-cost oracle: price prefill/decode steps via the performance model.

This is the bridge between the request-level simulator and the paper's
analytic machinery.  The engine under test plans *once per concurrency
level* (``engine.plan_cached`` memoizes the search, reusing PR 1's
mem-cache so pass-2 prescreen work is shared), and the oracle then prices
every (batch, context) step the continuous-batching loop forms:

* ``decode_step_seconds(n, ctx)`` — one token for all ``n`` running
  sequences at context ``ctx``: Eq. 2's overlapped step time times the
  ``l x k`` zig-zag iterations;
* ``prefill_seconds(n, ctx)`` — a batched prefill over ``n`` prompts;
* ``feasible(n, ctx)`` — the planner's :class:`MemoryPrescreen`, shared
  verdict cache and all, so admission control asks the same question the
  policy search asked.

Context lengths are bucketed (default 32 tokens, rounding *up*) so the
cache stays small and estimates stay conservative; planning happens at the
trace's maximum context so the chosen placement remains memory-feasible
for every step the simulation can form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import MemoryCapacityError, PolicyError, ServingError
from repro.models.config import ModelConfig
from repro.obs.profiling import PROFILER
from repro.offload.planner import MemoryPrescreen
from repro.perfmodel.latency import CostModel
from repro.perfmodel.notation import Workload


@dataclass
class StepCostOracle:
    """Prices serving steps for one (engine, model) pair.

    ``engine`` is any object with the planned-step costing hook:
    ``plan_cached(workload) -> (policy, cpu_ctx, _)`` plus ``hw`` and
    ``calibration`` attributes — :class:`~repro.core.LMOffloadEngine`,
    :class:`~repro.baselines.FlexGenEngine`,
    :class:`~repro.baselines.ZeroInferenceEngine` and
    :class:`~repro.baselines.SpecOffloadEngine` all qualify.

    Engines may additionally expose ``step_pricer(cost_model)`` returning
    a per-step price transform (or ``None``); the speculative engine uses
    this to turn each decode step's base price into the expected
    per-token time under draft-tree speculation.  Engines without the
    hook — and spec engines with speculation disabled — price bitwise
    identically to the untransformed path.
    """

    engine: Any
    model: ModelConfig
    num_gpu_batches: int = 1
    ctx_bucket: int = 32
    #: Planning context: prompt/gen lengths of the representative workload
    #: each concurrency level is planned on.  Set these to the trace's
    #: maxima so the planned placement stays feasible as contexts grow.
    plan_prompt_len: int = 64
    plan_gen_len: int = 32
    #: Fill the decode price cache for *every* context bucket of a
    #: concurrency level in one ``decode_task_costs_vec`` call the first
    #: time that level is priced, instead of one scalar pricing per
    #: (level, bucket) miss.  Bit-identical to the scalar path (the same
    #: ``vec == scalar`` discipline the perf-model layer pins); ``False``
    #: keeps the per-bucket scalar pricing as the reference.
    vectorized: bool = True

    _plans: dict[int, tuple | None] = field(default_factory=dict, repr=False)
    _step_cache: dict[tuple, float] = field(default_factory=dict, repr=False)
    _mem_cache: dict = field(default_factory=dict, repr=False)
    #: (n_seqs, bucketed ctx) -> feasibility verdict.  The prescreen's own
    #: verdict cache is keyed per formula term; this caches the composed
    #: answer so admission control skips prescreen construction entirely.
    _feasible_cache: dict[tuple[int, int], bool] = field(
        default_factory=dict, repr=False
    )
    #: Planner error message per concurrency level that failed to plan —
    #: admission attaches this to the INFEASIBLE drop so rejections carry
    #: the *reason*, not just the verdict.
    _plan_errors: dict[int, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_gpu_batches <= 0 or self.ctx_bucket <= 0:
            raise ServingError("num_gpu_batches and ctx_bucket must be positive")

    # -- planning per concurrency level ------------------------------------

    def _bucket_ctx(self, ctx_len: int) -> int:
        return max(self.ctx_bucket, math.ceil(ctx_len / self.ctx_bucket) * self.ctx_bucket)

    def _plan_workload(self, n_seqs: int) -> Workload:
        k = self.num_gpu_batches
        b = max(1, math.ceil(n_seqs / k))
        return Workload(self.model, self.plan_prompt_len, self.plan_gen_len, b, k)

    def planned(self, n_seqs: int):
        """(policy, cpu_ctx) for ``n_seqs`` concurrent sequences, or
        ``None`` when the engine has no feasible plan at that level.

        Planner failures (:class:`PolicyError` — no feasible placement —
        and :class:`MemoryCapacityError` — a hard capacity wall) are
        absorbed into the ``None`` verdict; their messages are kept and
        retrievable via :meth:`last_plan_error`.
        """
        if n_seqs <= 0:
            raise ServingError("n_seqs must be positive")
        if PROFILER.enabled:
            PROFILER.cache("oracle.plan_cache", hit=n_seqs in self._plans)
        if n_seqs not in self._plans:
            try:
                policy, ctx, _ = self.engine.plan_cached(self._plan_workload(n_seqs))
                self._plans[n_seqs] = (policy, ctx)
            except (PolicyError, MemoryCapacityError) as exc:
                self._plans[n_seqs] = None
                self._plan_errors[n_seqs] = f"{type(exc).__name__}: {exc}"
        return self._plans[n_seqs]

    def last_plan_error(self, n_seqs: int) -> str | None:
        """The planner's error message for a level that failed to plan."""
        return self._plan_errors.get(n_seqs)

    def invalidate(self) -> None:
        """Drop every cached plan, price and feasibility verdict.

        The drift watchdog calls this after retargeting the engine to a
        degraded platform: every cached answer was priced against specs
        that no longer hold.
        """
        self._plans.clear()
        self._step_cache.clear()
        self._mem_cache.clear()
        self._feasible_cache.clear()
        self._plan_errors.clear()

    def _step_pricer(self, model: CostModel):
        """The engine's optional per-step price transform for ``model``
        (``None`` for engines without the hook or with it disabled)."""
        hook = getattr(self.engine, "step_pricer", None)
        return hook(model) if hook is not None else None

    def _price_workload(self, policy, ctx_b: int) -> Workload:
        # gen_len=2 gives the model exactly one decode token to price;
        # prompt_len=ctx_b puts that token at context ctx_b + 1.
        return Workload(
            self.model, ctx_b, 2, policy.gpu_batch_size, policy.num_gpu_batches
        )

    # -- feasibility -------------------------------------------------------

    def feasible(self, n_seqs: int, ctx_len: int) -> bool:
        """Would a step with ``n_seqs`` sequences at ``ctx_len`` fit memory?

        Uses the planner's own :class:`MemoryPrescreen` (same mirrored
        formulas, shared verdict cache) rather than a parallel model.
        """
        ctx_b = self._bucket_ctx(ctx_len)
        key = (n_seqs, ctx_b)
        hit = self._feasible_cache.get(key)
        if hit is not None:
            return hit
        planned = self.planned(n_seqs)
        if planned is None:
            verdict = False
        else:
            policy, _ = planned
            pre = MemoryPrescreen(
                self._price_workload(policy, ctx_b), policy, self.engine.hw,
                self._mem_cache,
            )
            verdict = pre.gpu_feasible(
                policy.wg, policy.cg, policy.hg
            ) and pre.cpu_feasible(policy.wg, policy.cg, policy.hg, policy.wd)
        self._feasible_cache[key] = verdict
        return verdict

    def max_feasible_batch(self, ctx_len: int, limit: int) -> int:
        """Largest ``n <= limit`` that plans and fits at ``ctx_len`` (0 if none)."""
        for n in range(limit, 0, -1):
            if self.feasible(n, ctx_len):
                return n
        return 0

    # -- step pricing ------------------------------------------------------

    def _iters(self, policy) -> int:
        return self.model.num_layers * policy.num_gpu_batches

    def decode_bucket_headroom(self, ctx_len: int) -> int:
        """How many decode steps from ``ctx_len`` share one bucketed price.

        Contexts grow one token per step, so the price is constant until
        the context crosses its bucket's upper edge — the event engine
        uses this as the price-bucket bound on a coalesced run length.
        """
        return self._bucket_ctx(ctx_len) - ctx_len + 1

    def _fill_decode_prices(self, n_seqs: int, planned: tuple, ctx_b: int) -> None:
        """Price every context bucket of one concurrency level in a single
        ``decode_task_costs_vec`` sweep.

        One workload spanning the whole bucket range prices bucket ``b``
        at token index ``b - base`` (integer-valued float64, exact), which
        is bit-identical to the scalar per-bucket workload's token 0 — the
        vec==scalar equivalence tests pin this.
        """
        policy, cpu_ctx = planned
        base = self.ctx_bucket
        top = max(ctx_b, self._bucket_ctx(self.plan_prompt_len + self.plan_gen_len))
        buckets = range(base, top + 1, self.ctx_bucket)
        wl = Workload(
            self.model, base, top - base + 2,
            policy.gpu_batch_size, policy.num_gpu_batches,
        )
        model = CostModel(wl, policy, self.engine.hw, cpu_ctx, self.engine.calibration)
        toks = np.array([b - base for b in buckets], dtype=np.float64)
        costs = model.decode_task_costs_vec(toks)
        vals = CostModel.step_seconds_vec(costs)
        pricer = self._step_pricer(model)
        if pricer is not None:
            vals = pricer.step_seconds_vec(toks, costs, vals)
        iters = self._iters(policy)
        for b, v in zip(buckets, vals):
            self._step_cache[("decode", n_seqs, b)] = float(v) * iters

    def _planned_or_raise(self, n_seqs: int) -> tuple:
        planned = self.planned(n_seqs)
        if planned is None:
            raise ServingError(
                f"no feasible plan for {n_seqs} concurrent sequences "
                f"of {self.model.name}"
            )
        return planned

    def warm_up(self, limit: int) -> int:
        """Find the largest power-of-two back-off of ``limit`` that still
        plans (the chaos rung probe's ladder) and bulk-price its decode
        buckets in one vectorized call.  Returns the probed level."""
        probe_n = limit
        while probe_n > 1 and self.planned(probe_n) is None:
            probe_n //= 2
        planned = self.planned(probe_n)
        if planned is not None and self.vectorized:
            self._fill_decode_prices(probe_n, planned, self.ctx_bucket)
        return probe_n

    def decode_step_seconds(self, n_seqs: int, ctx_len: int) -> float:
        """Wall seconds to advance ``n_seqs`` sequences one token."""
        ctx_b = self._bucket_ctx(ctx_len)
        key = ("decode", n_seqs, ctx_b)
        hit = self._step_cache.get(key)
        if PROFILER.enabled:
            PROFILER.cache("oracle.step_cache", hit=hit is not None)
        if hit is not None:
            return hit
        planned = self._planned_or_raise(n_seqs)
        if self.vectorized:
            self._fill_decode_prices(n_seqs, planned, ctx_b)
            return self._step_cache[key]
        value = self.decode_step_seconds_scalar(n_seqs, ctx_len)
        self._step_cache[key] = value
        return value

    def decode_step_seconds_scalar(self, n_seqs: int, ctx_len: int) -> float:
        """Uncached scalar reference for one decode price: a dedicated
        single-bucket workload through ``decode_task_costs`` at token 0.
        The vectorized fill must match this bit-for-bit (tested)."""
        ctx_b = self._bucket_ctx(ctx_len)
        policy, cpu_ctx = self._planned_or_raise(n_seqs)
        model = CostModel(
            self._price_workload(policy, ctx_b), policy, self.engine.hw,
            cpu_ctx, self.engine.calibration,
        )
        costs = model.decode_task_costs(0)
        value = CostModel.step_seconds(costs)
        pricer = self._step_pricer(model)
        if pricer is not None:
            value = pricer.step_seconds(0, costs, value)
        return value * self._iters(policy)

    def prefill_seconds(self, n_seqs: int, prompt_len: int) -> float:
        """Wall seconds for a batched prefill of ``n_seqs`` prompts."""
        ctx_b = self._bucket_ctx(prompt_len)
        key = ("prefill", n_seqs, ctx_b)
        hit = self._step_cache.get(key)
        if PROFILER.enabled:
            PROFILER.cache("oracle.step_cache", hit=hit is not None)
        if hit is not None:
            return hit
        policy, cpu_ctx = self._planned_or_raise(n_seqs)
        model = CostModel(
            self._price_workload(policy, ctx_b), policy, self.engine.hw,
            cpu_ctx, self.engine.calibration,
        )
        costs = model.prefill_task_costs()
        value = CostModel.step_seconds(costs) * self._iters(policy)
        self._step_cache[key] = value
        return value
