"""Generation-length prediction for size-aware scheduling.

SJF needs each waiting request's *remaining* generation length, which the
simulator knows exactly (``Request.gen_len``) but a real serving stack
does not — production schedulers rank on a *predicted* length and eat the
mispredictions.  This module makes that gap measurable:

* :class:`OracleLengthPredictor` — returns the true remaining tokens.
  It is the default everywhere, and the byte-identity baseline: a run
  scheduled with it is exactly the run the oracle ``SJFPolicy`` produces.
* :class:`BucketedQuantilePredictor` — the learned predictor: an online,
  per-``(model, prompt-bucket)`` empirical distribution of *completed*
  generation lengths.  Prediction is a nearest-rank quantile of the
  bucket's observed lengths (median by default — the minimizer of
  expected absolute ranking error); buckets with no history fall back to
  a configurable prior.  Fitting is one list-append per finished request:
  every completion updates exactly one bucket (the conservation property
  the tests pin).

Mispredict accounting: the first prediction made for a request is frozen
(that is the number the scheduler acted on) and compared against the true
length when the request completes.  The deltas feed the metrics registry
via :meth:`LengthPredictor.fill_registry` — ``predictor.observations``,
``predictor.mispredict_abs`` (histogram of ``|predicted - actual|``),
``predictor.mispredict_rate`` (fraction mispredicted by more than
``mispredict_margin`` relative), and per-model bucket counts.

Everything is deterministic: quantiles use the same exact nearest-rank
arithmetic as the SLO metrics, and there is no RNG anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.obs.registry import MetricsRegistry, exact_nearest_rank
from repro.serving.request import Request


class LengthPredictor:
    """Interface: predict remaining tokens, learn from completions."""

    name = "oracle"
    #: True when predictions can change as the predictor learns — the
    #: scheduler must then re-rank the queue instead of relying on a
    #:  waiting-time-constant sort key.
    learned = False

    def predict(self, req: Request) -> float:
        """Predicted *remaining* generation tokens for ``req``."""
        return float(req.remaining_tokens)

    def observe(self, req: Request) -> None:
        """Learn from a finished request (no-op for the oracle)."""

    # -- mispredict accounting (shared) ---------------------------------

    def stats(self) -> dict[str, float]:
        """Summary of the mispredict ledger (all zeros for the oracle)."""
        return {
            "observations": 0,
            "mean_abs_error": 0.0,
            "mispredict_rate": 0.0,
        }

    def fill_registry(self, reg: MetricsRegistry) -> None:
        """Export the predictor's tallies as typed registry series."""
        s = self.stats()
        reg.counter("predictor.observations").inc(s["observations"])
        reg.gauge("predictor.mean_abs_error").set(s["mean_abs_error"])
        reg.gauge("predictor.mispredict_rate").set(s["mispredict_rate"])


class OracleLengthPredictor(LengthPredictor):
    """The simulator's omniscient baseline: true remaining tokens.

    Scheduling with this predictor is byte-identical to the oracle
    :class:`~repro.serving.policies.SJFPolicy` (tested), which is what
    makes the learned predictor's cost measurable as a diff.
    """


@dataclass
class BucketedQuantilePredictor(LengthPredictor):
    """Online per-(model, prompt-bucket) empirical quantile predictor.

    ``predict`` estimates the request's *total* generation length as the
    ``quantile``-th nearest-rank percentile of the lengths completed so
    far in the request's bucket (falling back to ``prior_gen_len`` while
    the bucket is empty), then subtracts the tokens already generated —
    so preempted requests keep sinking toward the front as they near
    completion, the same property the oracle ranking has.
    """

    #: Prompt lengths are bucketed by rounding down to a multiple of this
    #: (so 1..63 share bucket 0 at the default width of 64).
    prompt_bucket: int = 64
    #: Nearest-rank percentile of the bucket's completed lengths used as
    #: the point prediction (50 = median).
    quantile: float = 50.0
    #: Prediction for a bucket with no completions yet.
    prior_gen_len: float = 32.0
    #: A request counts as mispredicted when
    #: ``|predicted - actual| > mispredict_margin * actual``.
    mispredict_margin: float = 0.5

    name: str = field(default="bucketed", init=False)
    learned: bool = field(default=True, init=False)

    _samples: dict[tuple[str, int], list[int]] = field(
        default_factory=dict, repr=False
    )
    #: rid -> (frozen first prediction of the *total* length, model, bucket).
    _first_prediction: dict[int, float] = field(default_factory=dict, repr=False)
    _abs_errors: list[float] = field(default_factory=list, repr=False)
    _mispredicts: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.prompt_bucket <= 0:
            raise ServingError("predictor: prompt_bucket must be positive")
        if not 0 <= self.quantile <= 100:
            raise ServingError("predictor: quantile must be in [0, 100]")
        if self.prior_gen_len <= 0:
            raise ServingError("predictor: prior_gen_len must be positive")
        if self.mispredict_margin < 0:
            raise ServingError("predictor: mispredict_margin must be >= 0")

    # -- bucketing -------------------------------------------------------

    def bucket_of(self, req: Request) -> tuple[str, int]:
        return (req.model, (req.prompt_len // self.prompt_bucket))

    def bucket_counts(self) -> dict[tuple[str, int], int]:
        """Completed-length sample count per bucket (for tests/metrics)."""
        return {k: len(v) for k, v in self._samples.items()}

    # -- predict / observe ----------------------------------------------

    def predict_total(self, req: Request) -> float:
        """Predicted *total* generation length for ``req``'s bucket."""
        samples = self._samples.get(self.bucket_of(req))
        if not samples:
            return self.prior_gen_len
        return exact_nearest_rank([float(v) for v in samples], self.quantile)

    def predict(self, req: Request) -> float:
        total = self.predict_total(req)
        if req.rid not in self._first_prediction:
            # Freeze the number the scheduler first acted on: that is the
            # prediction whose error the mispredict ledger charges.
            self._first_prediction[req.rid] = total
        return max(1.0, total - req.tokens_done)

    def observe(self, req: Request) -> None:
        """Fold one *finished* request into its bucket and settle its
        mispredict delta.  Exactly one bucket gains exactly one sample per
        call (the conservation property)."""
        predicted = self._first_prediction.pop(req.rid, None)
        if predicted is not None:
            error = abs(predicted - req.gen_len)
            self._abs_errors.append(error)
            if error > self.mispredict_margin * req.gen_len:
                self._mispredicts += 1
        self._samples.setdefault(self.bucket_of(req), []).append(req.gen_len)

    # -- accounting ------------------------------------------------------

    def stats(self) -> dict[str, float]:
        n = len(self._abs_errors)
        return {
            "observations": n,
            "mean_abs_error": (sum(self._abs_errors) / n) if n else 0.0,
            "mispredict_rate": (self._mispredicts / n) if n else 0.0,
        }

    def fill_registry(self, reg: MetricsRegistry) -> None:
        super().fill_registry(reg)
        for error in self._abs_errors:
            reg.histogram("predictor.mispredict_abs").observe(error)
        for (model, bucket), samples in sorted(self._samples.items()):
            label = model or "_"
            reg.counter(f"predictor.bucket.{label}.{bucket}").inc(len(samples))


def make_predictor(name: str, **kwargs) -> LengthPredictor:
    """Predictor factory for CLI/bench use."""
    if name == "oracle":
        return OracleLengthPredictor()
    if name == "bucketed":
        return BucketedQuantilePredictor(**kwargs)
    raise ServingError(
        f"unknown length predictor {name!r}; expected one of oracle, bucketed"
    )
