"""Multi-model serving: K models time-sharing one offloading platform.

One GPU box serving several model sizes (the OPT ladder) cannot hold all
of them resident: weights live in host/disk tiers and the *resident*
model's working set owns the GPU.  Serving a request for another model
first pays a **swap** — the incoming model's weight bytes over the same
PCIe link every other offloading transfer uses (and the fault layer can
degrade), so model switching is priced by exactly the transfer model the
paper calibrates, not a made-up constant.

:class:`MultiModelSimulator` runs the same continuous-batching loop as
:class:`~repro.serving.simulator.ServingSimulator` — ingest, expire,
admit, prefill, decode, one priced step per iteration — with one extra
decision before admission: *which model deserves the platform now*.

* **swap-on-idle** — when nothing is running, the policy orders the whole
  queue and the platform swaps to the model of the head request (FCFS
  chases the oldest wait, SJF the shortest predicted job, priority the
  highest class).
* **cross-model preemption** — a preemptive policy may evict the entire
  resident batch when the head waiting request belongs to another model
  and outranks (strictly higher ``priority``) everything running; the
  victims are requeued (their re-prefill on return is the preemption
  cost, as in single-model preemption) and the swap is charged on top.
* **predicted-SJF across models** — ranking with
  :class:`~repro.serving.policies.PredictedSJFPolicy` makes the
  between-model choice length-aware without oracle knowledge.

With one slot no swap can ever occur and the loop collapses to the
single-model reference engine: a K=1 run with the oracle predictor is
byte-identical to :meth:`ServingSimulator.run` (pinned by an equivalence
matrix across policies and traces).

Faults: a :class:`~repro.faults.FaultSchedule` degrades the PCIe link a
swap is priced on (``Platform.with_faults`` at the swap instant) — slow
links make model switching expensive, which is the operational reason
co-residency decisions need a cost model.  The full chaos *step*
semantics (transient aborts, drift watchdog, degradation ladder) remain
the single-model simulator's; this loop prices steps on nominal specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ConfigError, ServingError
from repro.faults import FaultSchedule
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.obs.profiling import PROFILER, span
from repro.obs.registry import Histogram, MetricsRegistry
from repro.perfmodel.notation import HardwareParams
from repro.serving.arrivals import RequestTrace
from repro.serving.costing import StepCostOracle
from repro.serving.policies import SchedulerPolicy
from repro.serving.queue import AdmissionQueue
from repro.serving.request import Request, RequestState
from repro.serving.simulator import (
    ServingAggregates,
    ServingConfig,
    ServingResult,
    StepRun,
    admit_batch,
)
from repro.units import dtype_bytes

#: Bundled model mixes for ``serve-sim --models``.  Each entry lists the
#: co-resident model ids, smallest first; per-model SLO classes come from
#: :data:`SLO_CLASSES`.
MODEL_PRESETS: dict[str, tuple[str, ...]] = {
    "opt-duo": ("opt-13b", "opt-30b"),
    "opt-trio": ("opt-6.7b", "opt-13b", "opt-30b"),
}

#: Per-model SLO class (ttft_slo_s, tpot_slo_s): smaller models serve
#: interactive traffic under tight latency promises, larger ones batch
#: traffic under looser ones.  Models not listed inherit the run's
#: :class:`~repro.serving.simulator.ServingConfig` SLOs.
SLO_CLASSES: dict[str, tuple[float, float]] = {
    "opt-6.7b": (10.0, 1.0),
    "opt-13b": (20.0, 2.0),
    "opt-30b": (30.0, 3.5),
    "opt-66b": (90.0, 10.0),
}


@dataclass(frozen=True)
class ModelSlot:
    """One co-resident model: id, shape, and its SLO class.

    ``None`` SLO fields fall back to the run's ``ServingConfig`` targets,
    so a slot without a class behaves exactly like single-model serving.
    """

    name: str
    model: ModelConfig
    ttft_slo_s: float | None = None
    tpot_slo_s: float | None = None

    @property
    def weight_bytes(self) -> float:
        """Bytes a swap-in must move: the full (uncompressed) weight set."""
        return self.model.total_weights * dtype_bytes(self.model.dtype)


def make_slots(spec: str) -> tuple[ModelSlot, ...]:
    """Resolve a preset name or comma-separated model ids into slots."""
    names = MODEL_PRESETS.get(spec, tuple(s.strip() for s in spec.split(",") if s.strip()))
    if not names:
        raise ServingError(
            f"--models: empty model list {spec!r}; expected a preset "
            f"({', '.join(sorted(MODEL_PRESETS))}) or comma-separated model ids"
        )
    slots = []
    for name in names:
        slo = SLO_CLASSES.get(name)
        slots.append(
            ModelSlot(
                name=name,
                model=get_model(name),
                ttft_slo_s=slo[0] if slo else None,
                tpot_slo_s=slo[1] if slo else None,
            )
        )
    return tuple(slots)


@dataclass(frozen=True)
class SwapRecord:
    """One model swap: when, between which models, and what it cost."""

    start_s: float
    end_s: float
    from_model: str
    to_model: str
    bytes_moved: float
    #: "idle" (swap-on-idle) or "preempt" (cross-model preemption).
    reason: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class MultiModelResult:
    """A multi-model run: the standard serving result plus swap ledger."""

    serving: ServingResult
    slots: tuple[ModelSlot, ...]
    swaps: list[SwapRecord]
    #: Wall seconds each model spent resident (sums to the makespan).
    residency_s: dict[str, float]

    @property
    def swap_time_s(self) -> float:
        return sum(s.duration_s for s in self.swaps)

    def requests_for(self, slot: ModelSlot) -> list[Request]:
        """Requests served by ``slot`` (untagged requests belong to the
        default — first — slot)."""
        default = self.slots[0].name
        return [
            r
            for r in self.serving.requests
            if (r.model or default) == slot.name
        ]

    def per_model(self) -> dict[str, dict[str, Any]]:
        """Per-model summary under each slot's own SLO class."""
        out: dict[str, dict[str, Any]] = {}
        for slot in self.slots:
            doc = slot_summary(
                self.requests_for(slot), slot, self.serving.config,
                self.serving.makespan_s,
            )
            doc["residency_s"] = self.residency_s.get(slot.name, 0.0)
            doc["swaps_in"] = sum(
                1 for s in self.swaps if s.to_model == slot.name
            )
            out[slot.name] = doc
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready document (the bench artifact's per-run section)."""
        return {
            "trace": self.serving.trace_name,
            "scheduler": self.serving.policy_name,
            "models": [s.name for s in self.slots],
            "makespan_s": self.serving.makespan_s,
            "swaps": len(self.swaps),
            "swap_time_s": self.swap_time_s,
            "per_model": self.per_model(),
        }


def _summary(values: list[float]) -> dict[str, float]:
    return Histogram(name="latency", values=list(values)).summary((50, 95, 99))


def slot_summary(
    requests: list[Request],
    slot: ModelSlot,
    config: ServingConfig,
    makespan_s: float,
) -> dict[str, Any]:
    """One model's request-level summary under its own SLO class.

    Shared between the co-resident result (:meth:`MultiModelResult.per_model`)
    and the dedicated-replica baseline in :mod:`repro.bench.multimodel`,
    so the two sides of the comparison are scored by identical code.
    """
    finished = [r for r in requests if r.state is RequestState.FINISHED]
    ttft = slot.ttft_slo_s if slot.ttft_slo_s is not None else config.ttft_slo_s
    tpot = slot.tpot_slo_s if slot.tpot_slo_s is not None else config.tpot_slo_s
    slo_ok = [r for r in finished if r.meets_slo(ttft, tpot)]
    return {
        "requests": len(requests),
        "finished": len(finished),
        "dropped": sum(1 for r in requests if r.state is RequestState.DROPPED),
        "preemptions": sum(r.preemptions for r in requests),
        "slo": {
            "ttft_slo_s": ttft,
            "tpot_slo_s": tpot,
            "attainment": (len(slo_ok) / len(requests)) if requests else 0.0,
            "goodput_rps": len(slo_ok) / makespan_s if makespan_s > 0 else 0.0,
        },
        "latency_s": {
            "ttft": _summary([r.ttft_s for r in finished if r.ttft_s is not None]),
            "e2e": _summary([r.e2e_s for r in finished if r.e2e_s is not None]),
        },
    }


def multimodel_registry(result: MultiModelResult) -> MetricsRegistry:
    """The single-model registry plus the swap/residency series."""
    from repro.serving.metrics import metrics_registry

    reg = metrics_registry(result.serving)
    reg.counter("swaps.total").inc(len(result.swaps))
    for swap in result.swaps:
        reg.counter(f"swaps.{swap.reason}").inc()
        reg.histogram("swap_duration_s").observe(swap.duration_s)
    for name in sorted(result.residency_s):
        reg.gauge(f"residency_s.{name}").set(result.residency_s[name])
    return reg


class MultiModelSimulator:
    """Continuous batching across K co-resident models on one engine.

    ``engine`` is shared (plans are memoized per workload, and a workload
    carries its model); each slot gets its own :class:`StepCostOracle` so
    step prices reflect the resident model's shape.  ``trace`` requests
    are routed by their ``model`` tag; untagged requests go to the first
    slot, which keeps single-model traces valid as-is.
    """

    def __init__(
        self,
        engine: Any,
        slots: Sequence[ModelSlot],
        trace: RequestTrace,
        policy: SchedulerPolicy | None = None,
        config: ServingConfig | None = None,
        faults: FaultSchedule | None = None,
        seed: int = 0,
        collect_steps: bool = True,
        initial_model: str | None = None,
    ) -> None:
        if not slots:
            raise ConfigError("multi-model simulator: at least one ModelSlot required")
        names = [s.name for s in slots]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"multi-model simulator: duplicate model slots in {names}"
            )
        if faults is not None and faults.has_replica_faults:
            raise ConfigError(
                f"multi-model simulator: fault schedule {faults.name!r} "
                "contains replica-level faults; a single platform has "
                "nowhere to fail over to — use repro.serving.fleet for that"
            )
        self.engine = engine
        self.slots = tuple(slots)
        self.trace = trace
        self.policy = policy or SchedulerPolicy()
        self.config = config or ServingConfig()
        self.faults = faults if faults is not None and len(faults.faults) > 0 else None
        self.seed = seed
        self.collect_steps = collect_steps
        self.base_platform = engine.platform
        self._by_name = {s.name: s for s in self.slots}
        tagged = {r.model for r in trace.requests if r.model}
        unknown = tagged - set(names)
        if unknown:
            raise ConfigError(
                f"multi-model simulator: trace {trace.name!r} tags models "
                f"{sorted(unknown)} with no matching slot (have {names})"
            )
        initial = initial_model or self.slots[0].name
        if initial not in self._by_name:
            raise ConfigError(
                f"multi-model simulator: initial model {initial!r} is not a "
                f"slot (have {names})"
            )
        self._initial = self._by_name[initial]
        self._predictor = getattr(self.policy, "predictor", None)
        max_prompt = max((r.prompt_len for r in trace.requests), default=64)
        max_gen = max((r.gen_len for r in trace.requests), default=32)
        self._oracles: dict[str, StepCostOracle] = {
            s.name: StepCostOracle(
                engine=engine,
                model=s.model,
                num_gpu_batches=self.config.num_gpu_batches,
                ctx_bucket=self.config.ctx_bucket,
                plan_prompt_len=max_prompt,
                plan_gen_len=max_gen,
            )
            for s in self.slots
        }

    # -- swap pricing ------------------------------------------------------

    def _slot_of(self, req: Request) -> ModelSlot:
        return self._by_name[req.model] if req.model else self.slots[0]

    def swap_seconds(self, slot: ModelSlot, now: float) -> float:
        """Wall seconds to stream ``slot``'s weights in over PCIe.

        Priced on the *effective* platform at ``now`` — a fault window
        that degrades the link makes the swap proportionally slower.
        Swap-out is free: resident weights are read-only (no writeback),
        and the evicted requests' KV is re-prefilled on return, a cost the
        preemption path already charges.
        """
        platform = self.base_platform
        if self.faults is not None:
            platform = platform.with_faults(self.faults, now)
        hw = HardwareParams.from_platform(platform)
        bw = hw.pcie_bdw * self.engine.calibration.pcie_efficiency
        return slot.weight_bytes / bw

    # -- the loop ----------------------------------------------------------

    def run(self) -> MultiModelResult:
        with span("serving.multimodel.run"):
            return self._run()

    def _run(self) -> MultiModelResult:
        cfg = self.config
        policy = self.policy
        predictor = self._predictor
        pending = [
            Request.from_spec(i, spec) for i, spec in enumerate(self.trace.requests)
        ]
        all_requests = list(pending)
        queue = AdmissionQueue(cfg.queue_capacity, cfg.queue_timeout_s)
        running: list[Request] = []
        runs: list[StepRun] = []
        agg = ServingAggregates()
        keep = self.collect_steps
        swaps: list[SwapRecord] = []
        residency: dict[str, float] = {s.name: 0.0 for s in self.slots}
        active = self._initial
        resident_since = 0.0
        t = 0.0
        i = 0
        n_pending = len(pending)

        def emit(
            kind: str, start: float, end: float, dur: float,
            batch: int, max_ctx: int, rids: tuple[int, ...], running_after: int,
        ) -> None:
            agg.count_steps(kind, 1)
            q = len(queue)
            agg.observe_depth(q, batch, running_after, 1)
            if keep:
                runs.append(
                    StepRun(
                        kind=kind, start_s=start, end_s=end, dur_s=dur,
                        count=1, batch=batch, max_ctx=max_ctx, rids=rids,
                        queue_len=q, running_after=running_after, sample_t=t,
                    )
                )

        def finish_token(req: Request, now: float) -> bool:
            req.tokens_done += 1
            if req.first_token_s is None:
                req.first_token_s = now
            if req.tokens_done >= req.gen_len:
                req.state = RequestState.FINISHED
                req.finish_s = now
                if predictor is not None:
                    predictor.observe(req)
                return True
            return False

        def swap_to(slot: ModelSlot, reason: str) -> None:
            """Charge the swap and make ``slot`` resident.  Recorded as a
            ``"swap"`` step so timelines and step counters carry it."""
            nonlocal active, resident_since, t
            dur = self.swap_seconds(slot, t)
            start = t
            t += dur
            residency[active.name] += start - resident_since
            resident_since = t
            swaps.append(
                SwapRecord(
                    start_s=start, end_s=t, from_model=active.name,
                    to_model=slot.name, bytes_moved=slot.weight_bytes,
                    reason=reason,
                )
            )
            active = slot
            emit("swap", start, t, dur, 0, 0, (), len(running))
            if PROFILER.enabled:
                PROFILER.count("serving.steps.swap")

        while i < n_pending or queue.waiting or running:
            if not queue.waiting and not running:
                t = max(t, pending[i].arrival_s)
            while i < n_pending and pending[i].arrival_s <= t:
                queue.offer(pending[i], pending[i].arrival_s)
                i += 1
            queue.expire(t)

            # -- between-model scheduling + admission ----------------------
            admitted: list[Request] = []
            if queue.waiting:
                ordered = policy.order(list(queue.waiting), t)
                head_slot = self._slot_of(ordered[0])
                if not running:
                    # Swap-on-idle: the platform follows the policy's head.
                    if head_slot is not active:
                        swap_to(head_slot, "idle")
                elif (
                    policy.preemptive
                    and head_slot is not active
                    and ordered[0].priority
                    > max(r.priority for r in running)
                ):
                    # Cross-model preemption: evict the whole resident
                    # batch (another model's requests cannot share a step),
                    # then pay the swap.  Re-prefill on return is the
                    # standard preemption cost; the victims re-enter the
                    # queue with their tokens intact.
                    for victim in running:
                        victim.preemptions += 1
                        queue.requeue(victim, t)
                    running = []
                    swap_to(head_slot, "preempt")
                    ordered = policy.order(list(queue.waiting), t)
                candidates = [r for r in ordered if self._slot_of(r) is active]
                admitted = admit_batch(
                    policy, self._oracles[active.name], queue, running, t,
                    cfg.max_batch, candidates=candidates,
                )

            oracle = self._oracles[active.name]
            if admitted:
                max_ctx = max(r.context_len for r in admitted)
                dur = oracle.prefill_seconds(len(admitted), max_ctx)
                start = t
                t += dur
                for req in admitted:
                    req.state = RequestState.RUNNING
                    if req.admit_s is None:
                        req.admit_s = start
                    if not finish_token(req, t):
                        running.append(req)
                rids = tuple(r.rid for r in admitted) if keep else ()
                emit(
                    "prefill", start, t, dur,
                    len(admitted), max_ctx, rids, len(running),
                )
                if PROFILER.enabled:
                    PROFILER.count("serving.steps.prefill")

            if running:
                max_ctx = max(r.context_len for r in running)
                n = len(running)
                dur = oracle.decode_step_seconds(n, max_ctx)
                start = t
                t += dur
                rids = tuple(r.rid for r in running) if keep else ()
                running = [r for r in running if not finish_token(r, t)]
                emit("decode", start, t, dur, n, max_ctx, rids, len(running))
                if PROFILER.enabled:
                    PROFILER.count("serving.steps.decode")

        residency[active.name] += t - resident_since

        serving = ServingResult(
            engine=getattr(self.engine, "name", type(self.engine).__name__),
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            config=cfg,
            requests=all_requests,
            step_runs=runs,
            aggregates=agg,
            makespan_s=t,
        )
        return MultiModelResult(
            serving=serving,
            slots=self.slots,
            swaps=swaps,
            residency_s=residency,
        )
