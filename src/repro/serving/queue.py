"""Bounded admission queue with timeout/drop accounting.

The queue is where admission control happens: arrivals beyond
``capacity`` are rejected outright (``QUEUE_FULL``), and requests that
wait longer than ``timeout_s`` are expired at step boundaries
(``TIMEOUT``).  Both kinds of drop are stamped on the request and tallied
so the metrics layer can report exact drop accounting.

Two optional indexes accelerate the event-driven simulator without
changing any observable behaviour (the equivalence matrix pins both):

* ``use_heap=True`` maintains a lazy min-heap over unstarted requests'
  arrival times, so :meth:`expire` is O(1) when nothing can expire and
  O(log n) per drop, replacing the per-iteration linear scan.  Entries
  are never removed eagerly; a popped entry is validated against the
  request's live state (lazy deletion), and :meth:`requeue` pushes a
  fresh entry for still-unstarted requests so an aborted prefill cannot
  orphan its deadline.
* :meth:`attach_order` keeps a policy-ordered view of ``waiting``
  maintained incrementally by binary insertion, so admission reads a
  pre-sorted list instead of re-sorting the whole queue every step.
  Only valid for policies whose sort key is constant while a request
  waits (all built-ins: tokens_done never changes in QUEUED state).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServingError
from repro.serving.request import DropReason, Request, RequestState


@dataclass
class AdmissionQueue:
    """FIFO holding area between arrival and GPU admission."""

    capacity: int = 64
    timeout_s: float | None = None
    waiting: list[Request] = field(default_factory=list)
    dropped: list[Request] = field(default_factory=list)
    #: Maintain the lazy deadline heap (event-engine fast path).  The
    #: legacy linear scan remains the reference implementation.
    use_heap: bool = False

    _heap: list[tuple[float, int, Request]] = field(
        default_factory=list, repr=False
    )
    _seq: int = field(default=0, repr=False)
    _order_key: Callable[[Request], tuple] | None = field(
        default=None, repr=False
    )
    _ordered: list[Request] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ServingError("queue capacity must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServingError("queue timeout must be positive when set")

    def __len__(self) -> int:
        return len(self.waiting)

    # -- optional indexes ---------------------------------------------------

    def attach_order(self, key: Callable[[Request], tuple]) -> None:
        """Maintain ``waiting`` pre-sorted by ``key`` from now on.

        ``key`` must be a total order (break ties on ``rid``) that is
        constant while a request sits in the queue.
        """
        self._order_key = key
        self._ordered = sorted(self.waiting, key=key)

    def ordered_view(self) -> list[Request] | None:
        """The policy-ordered waiting list, or ``None`` if not attached.
        Callers must not mutate the returned list (snapshot before
        iterating if admission will take from the queue)."""
        if self._order_key is None:
            return None
        return self._ordered

    def _index_insert(self, req: Request) -> None:
        if self._order_key is not None:
            insort(self._ordered, req, key=self._order_key)

    def _index_remove(self, req: Request) -> None:
        if self._order_key is None:
            return
        # Keys are total orders (rid tiebreak), so bisect lands exactly
        # on the request; the identity scan is a same-key safety net.
        key = self._order_key(req)
        idx = bisect_left(self._ordered, key, key=self._order_key)
        while idx < len(self._ordered):
            if self._ordered[idx] is req:
                del self._ordered[idx]
                return
            if self._order_key(self._ordered[idx]) != key:
                break
            idx += 1
        # Last resort: an identity scan over the whole view.  The old
        # fallback was ``self._ordered.remove(req)``, which compares
        # mutable ``Request`` dataclasses by *value* — under a stale sort
        # key it could delete a different request that happened to look
        # equal, silently corrupting the ordered view.  A request that is
        # genuinely absent means the index and ``waiting`` have already
        # diverged; fail loudly instead of papering over it.
        for i, entry in enumerate(self._ordered):
            if entry is req:
                del self._ordered[i]
                return
        raise ServingError(
            f"admission queue ordered view lost request rid={req.rid}: the "
            "policy sort key changed while the request was queued (keys "
            "must be constant for waiting requests) or the view was "
            "mutated externally"
        )

    def _heap_push(self, req: Request) -> None:
        if self.use_heap and self.timeout_s is not None and req.tokens_done == 0:
            heapq.heappush(self._heap, (req.arrival_s, self._seq, req))
            self._seq += 1

    @staticmethod
    def _expirable(req: Request) -> bool:
        # Preempted requests (tokens_done > 0) are exempt: the timeout
        # models a user abandoning a request that never started.
        return req.state is RequestState.QUEUED and req.tokens_done == 0

    def next_expirable_arrival(self) -> float | None:
        """Arrival time of the earliest request the timeout can still
        expire (``None`` when no timeout or nothing unstarted waits).
        Purges dead heap heads; safe because every live unstarted request
        re-enters the heap on :meth:`requeue`."""
        if not self.use_heap or self.timeout_s is None:
            return None
        while self._heap:
            arrival, _, req = self._heap[0]
            if self._expirable(req):
                return arrival
            heapq.heappop(self._heap)
        return None

    # -- queue operations ---------------------------------------------------

    def _drop(self, req: Request, now: float, reason: DropReason) -> None:
        req.state = RequestState.DROPPED
        req.drop_s = now
        req.drop_reason = reason
        self.dropped.append(req)

    def offer(self, req: Request, now: float) -> bool:
        """Enqueue ``req``; ``False`` (and a QUEUE_FULL drop) when full."""
        if len(self.waiting) >= self.capacity:
            self._drop(req, now, DropReason.QUEUE_FULL)
            return False
        req.state = RequestState.QUEUED
        req.queued_since_s = now
        self.waiting.append(req)
        self._index_insert(req)
        self._heap_push(req)
        return True

    def requeue(self, req: Request, now: float) -> None:
        """Return a preempted request to the queue (never dropped: it has
        already been admitted once and holds generated tokens)."""
        req.state = RequestState.QUEUED
        req.queued_since_s = now
        self.waiting.append(req)
        self._index_insert(req)
        # An aborted prefill re-enters still unstarted: its original heap
        # entry may already have been consumed while it ran, so push a
        # fresh one (duplicates are harmless under lazy deletion).
        self._heap_push(req)

    def expire(self, now: float) -> list[Request]:
        """Drop requests whose *initial* wait exceeded the timeout."""
        if self.timeout_s is None:
            return []
        if self.use_heap:
            expired = []
            while self._heap:
                arrival, _, req = self._heap[0]
                if not self._expirable(req):
                    heapq.heappop(self._heap)
                    continue
                if not (now - arrival > self.timeout_s):
                    break
                heapq.heappop(self._heap)
                # Drop immediately so a duplicate heap entry for the same
                # request (requeue re-arms lazily) fails the liveness
                # check instead of expiring twice.
                self.waiting.remove(req)
                self._index_remove(req)
                self._drop(req, now, DropReason.TIMEOUT)
                expired.append(req)
            return expired
        expired = [
            r
            for r in self.waiting
            if r.tokens_done == 0 and now - r.arrival_s > self.timeout_s
        ]
        for req in expired:
            self.waiting.remove(req)
            self._index_remove(req)
            self._drop(req, now, DropReason.TIMEOUT)
        return expired

    def take(self, req: Request) -> Request:
        """Remove a specific request (the scheduler picked it)."""
        self.waiting.remove(req)
        self._index_remove(req)
        return req

    def drop_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for req in self.dropped:
            assert req.drop_reason is not None
            counts[req.drop_reason.value] = counts.get(req.drop_reason.value, 0) + 1
        return counts
