"""Bounded admission queue with timeout/drop accounting.

The queue is where admission control happens: arrivals beyond
``capacity`` are rejected outright (``QUEUE_FULL``), and requests that
wait longer than ``timeout_s`` are expired at step boundaries
(``TIMEOUT``).  Both kinds of drop are stamped on the request and tallied
so the metrics layer can report exact drop accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.serving.request import DropReason, Request, RequestState


@dataclass
class AdmissionQueue:
    """FIFO holding area between arrival and GPU admission."""

    capacity: int = 64
    timeout_s: float | None = None
    waiting: list[Request] = field(default_factory=list)
    dropped: list[Request] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ServingError("queue capacity must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServingError("queue timeout must be positive when set")

    def __len__(self) -> int:
        return len(self.waiting)

    def _drop(self, req: Request, now: float, reason: DropReason) -> None:
        req.state = RequestState.DROPPED
        req.drop_s = now
        req.drop_reason = reason
        self.dropped.append(req)

    def offer(self, req: Request, now: float) -> bool:
        """Enqueue ``req``; ``False`` (and a QUEUE_FULL drop) when full."""
        if len(self.waiting) >= self.capacity:
            self._drop(req, now, DropReason.QUEUE_FULL)
            return False
        req.state = RequestState.QUEUED
        req.queued_since_s = now
        self.waiting.append(req)
        return True

    def requeue(self, req: Request, now: float) -> None:
        """Return a preempted request to the queue (never dropped: it has
        already been admitted once and holds generated tokens)."""
        req.state = RequestState.QUEUED
        req.queued_since_s = now
        self.waiting.append(req)

    def expire(self, now: float) -> list[Request]:
        """Drop requests whose *initial* wait exceeded the timeout."""
        if self.timeout_s is None:
            return []
        expired = [
            r
            for r in self.waiting
            # Preempted requests (tokens_done > 0) are exempt: the timeout
            # models a user abandoning a request that never started.
            if r.tokens_done == 0 and now - r.arrival_s > self.timeout_s
        ]
        for req in expired:
            self.waiting.remove(req)
            self._drop(req, now, DropReason.TIMEOUT)
        return expired

    def take(self, req: Request) -> Request:
        """Remove a specific request (the scheduler picked it)."""
        self.waiting.remove(req)
        return req

    def drop_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for req in self.dropped:
            assert req.drop_reason is not None
            counts[req.drop_reason.value] = counts.get(req.drop_reason.value, 0) + 1
        return counts
