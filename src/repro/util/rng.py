"""Shared seeded-RNG helper: one ``--seed`` flag, many independent streams.

Every stochastic path in the package (arrival processes, length samplers,
what-if Monte-Carlo variants) derives its generator from here so a single
integer seed reproduces a whole run byte-for-byte.  Streams are named:
``seeded_rng(seed, "serving", "arrivals")`` and
``seeded_rng(seed, "whatif", 3)`` are statistically independent generators,
and adding a new consumer never perturbs existing streams (unlike sharing
one generator, where any extra draw shifts everything downstream).

Stream labels are folded into the :class:`numpy.random.SeedSequence`
entropy via CRC-32, which is stable across platforms and Python versions
(``hash()`` is salted per process and must not be used here).
"""

from __future__ import annotations

import zlib

import numpy as np


def spawn_seed(seed: int, *stream: str | int) -> list[int]:
    """Entropy list for ``SeedSequence``: the user seed + hashed labels."""
    entropy: list[int] = [int(seed) & 0xFFFFFFFF]
    for label in stream:
        if isinstance(label, int):
            entropy.append(label & 0xFFFFFFFF)
        else:
            entropy.append(zlib.crc32(str(label).encode("utf-8")))
    return entropy


def seeded_rng(seed: int, *stream: str | int) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for the named stream.

    Same ``(seed, *stream)`` -> identical generator, always; different
    stream labels -> independent generators.
    """
    return np.random.default_rng(np.random.SeedSequence(spawn_seed(seed, *stream)))
