"""Small shared utilities that belong to no single subsystem."""

from repro.util.rng import seeded_rng, spawn_seed

__all__ = ["seeded_rng", "spawn_seed"]
