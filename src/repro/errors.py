"""Exception hierarchy for the LM-Offload reproduction.

All errors raised by this package derive from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class MemoryCapacityError(ReproError):
    """A simulated memory pool would exceed its capacity.

    Attributes
    ----------
    pool:
        Name of the pool that overflowed.
    requested:
        Bytes requested by the failing allocation.
    available:
        Bytes that were still free in the pool.
    """

    def __init__(self, pool: str, requested: int, available: int) -> None:
        super().__init__(
            f"memory pool {pool!r}: requested {requested} B "
            f"but only {available} B available"
        )
        self.pool = pool
        self.requested = requested
        self.available = available


class PlacementError(ReproError):
    """A tensor operation was attempted on the wrong device."""


class ScheduleError(ReproError):
    """The asynchronous task schedule is malformed (cycle, missing dep...)."""


class QuantizationError(ReproError):
    """Invalid quantization parameters or corrupted packed payload."""


class PolicyError(ReproError):
    """No feasible offloading policy exists for the given constraints."""


class ServingError(ReproError):
    """The serving simulator was misconfigured or reached a dead end."""


class FaultError(ReproError):
    """A fault specification could not be applied to the platform.

    Attributes
    ----------
    kind:
        The fault kind (``FaultKind.value``) that failed to apply.
    detail:
        Human-readable reason (unknown device, missing link...).
    """

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"fault {kind}: {detail}")
        self.kind = kind
        self.detail = detail


class RetryExhaustedError(ReproError):
    """A request burned through its per-request retry budget.

    Attributes
    ----------
    rid:
        Request id whose budget ran out.
    attempts:
        Aborted attempts the request has accumulated.
    limit:
        The configured retry budget (``ServingConfig.retry_limit``).
    """

    def __init__(self, rid: int, attempts: int, limit: int) -> None:
        super().__init__(
            f"request {rid}: {attempts} aborted attempts exceed the "
            f"retry budget of {limit}"
        )
        self.rid = rid
        self.attempts = attempts
        self.limit = limit
