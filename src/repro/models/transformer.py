"""An executable decoder-only transformer with an explicit KV cache.

This is the reference implementation the offloading engines are tested
against: running a tiny model through :class:`Transformer` directly must
produce bit-identical logits to running it through the offloading runtime
(which moves and optionally quantizes the same arrays between simulated
device pools).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.models.layers import layer_norm, mlp, self_attention, split_heads


@dataclass
class LayerWeights:
    """All parameters of one transformer layer (fp32 NumPy arrays)."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_in: np.ndarray
    b_in: np.ndarray
    w_out: np.ndarray
    b_out: np.ndarray
    ln1_g: np.ndarray
    ln1_b: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray

    def as_dict(self) -> dict[str, np.ndarray]:
        """Name -> array view of every parameter (for offloading stores)."""
        return {k: v for k, v in self.__dict__.items()}


@dataclass
class TransformerWeights:
    """Embedding + per-layer weights for a whole model."""

    config: ModelConfig
    embed: np.ndarray
    lm_head: np.ndarray
    layers: list[LayerWeights]

    @classmethod
    def random(cls, config: ModelConfig, rng: np.random.Generator) -> "TransformerWeights":
        """Xavier-ish random initialisation (scale 1/sqrt(h1))."""
        h1, h2, v = config.hidden_size, config.intermediate_size, config.vocab_size
        scale = 1.0 / np.sqrt(h1)

        def mat(rows: int, cols: int) -> np.ndarray:
            return (rng.standard_normal((rows, cols)) * scale).astype(np.float32)

        layers = []
        for _ in range(config.num_layers):
            layers.append(
                LayerWeights(
                    wq=mat(h1, h1),
                    wk=mat(h1, h1),
                    wv=mat(h1, h1),
                    wo=mat(h1, h1),
                    w_in=mat(h1, h2),
                    b_in=np.zeros(h2, dtype=np.float32),
                    w_out=mat(h2, h1),
                    b_out=np.zeros(h1, dtype=np.float32),
                    ln1_g=np.ones(h1, dtype=np.float32),
                    ln1_b=np.zeros(h1, dtype=np.float32),
                    ln2_g=np.ones(h1, dtype=np.float32),
                    ln2_b=np.zeros(h1, dtype=np.float32),
                )
            )
        return cls(
            config=config,
            embed=mat(v, h1),
            lm_head=mat(h1, v),
            layers=layers,
        )


class KVCache:
    """Growable per-layer key/value cache.

    Semantics follow the paper's Figure 1: each generated token's K and V
    vectors are *concatenated* onto the cache, so the cache grows linearly
    with sequence length while attention compute grows quadratically.
    """

    def __init__(self, config: ModelConfig, batch: int, capacity: int) -> None:
        if capacity <= 0 or batch <= 0:
            raise ConfigError("KVCache: batch and capacity must be > 0")
        d = config.head_dim
        h = config.num_heads
        self._k = np.zeros((config.num_layers, batch, h, capacity, d), dtype=np.float32)
        self._v = np.zeros_like(self._k)
        self._len = 0
        self.capacity = capacity
        self.batch = batch

    def __len__(self) -> int:
        return self._len

    @property
    def nbytes(self) -> int:
        """Bytes of *live* cache entries (not the preallocated capacity)."""
        return int(self._k[:, :, :, : self._len].nbytes) * 2

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Concatenate new K/V (batch, heads, new_len, d) for ``layer``.

        The sequence-length counter advances when the *last* layer appends,
        so all layers must append the same number of tokens per step.
        """
        new = k.shape[2]
        if self._len + new > self.capacity:
            raise ConfigError(
                f"KVCache overflow: {self._len}+{new} > capacity {self.capacity}"
            )
        self._k[layer, :, :, self._len : self._len + new] = k
        self._v[layer, :, :, self._len : self._len + new] = v
        if layer == self._k.shape[0] - 1:
            self._len += new

    def get(self, layer: int, upto: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Views of the live K/V entries for ``layer``."""
        end = self._len if upto is None else upto
        return self._k[layer, :, :, :end], self._v[layer, :, :, :end]

    def set_slice(self, layer: int, start: int, k: np.ndarray, v: np.ndarray) -> None:
        """Overwrite a cache slice (used when dequantized KV is restored)."""
        end = start + k.shape[2]
        self._k[layer, :, :, start:end] = k
        self._v[layer, :, :, start:end] = v


class Transformer:
    """Reference forward pass with KV caching.

    ``forward`` processes any number of new tokens (prompt or single decode
    token) given the cache state, returning logits for the last position.
    """

    def __init__(self, weights: TransformerWeights) -> None:
        self.weights = weights
        self.config = weights.config

    def forward(self, token_ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Run new tokens through the stack.

        Parameters
        ----------
        token_ids:
            (batch, new_len) int array of token ids.
        cache:
            KV cache holding all previously processed positions; updated
            in place.

        Returns
        -------
        (batch, vocab) logits for the final position.
        """
        cfg = self.config
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, new_len)")
        if token_ids.shape[0] != cache.batch:
            raise ValueError("batch mismatch between token_ids and cache")
        x = self.weights.embed[token_ids]  # (b, new, h1)
        for li, lw in enumerate(self.weights.layers):
            x = x + self._attention_block(x, lw, cache, li)
            x = x + mlp(
                layer_norm(x, lw.ln2_g, lw.ln2_b), lw.w_in, lw.b_in, lw.w_out, lw.b_out
            )
        return x[:, -1, :] @ self.weights.lm_head

    def _attention_block(
        self, x: np.ndarray, lw: LayerWeights, cache: KVCache, layer: int
    ) -> np.ndarray:
        cfg = self.config
        normed = layer_norm(x, lw.ln1_g, lw.ln1_b)
        q = split_heads(normed @ lw.wq, cfg.num_heads)
        k_new = split_heads(normed @ lw.wk, cfg.num_heads)
        v_new = split_heads(normed @ lw.wv, cfg.num_heads)
        cache.append(layer, k_new, v_new)
        # All layers see the same key length this step: live cache plus the
        # tokens appended for this layer (the length counter only advances
        # at the last layer).
        seen = len(cache) + (0 if layer == cfg.num_layers - 1 else k_new.shape[2])
        k, v = cache.get(layer, upto=seen)
        out = self_attention(q, k, v, causal_mask=True)
        return out @ lw.wo

    def generate(
        self,
        prompt_ids: np.ndarray,
        gen_len: int,
        rng: np.random.Generator | None = None,
        temperature: float = 0.0,
    ) -> np.ndarray:
        """Autoregressive generation: prefill then ``gen_len`` decode steps.

        Returns (batch, gen_len) generated ids.  Greedy when
        ``temperature == 0``.
        """
        from repro.models.sampling import greedy_sample, temperature_sample

        batch, s = prompt_ids.shape
        cache = KVCache(self.config, batch, capacity=s + gen_len)
        out = np.empty((batch, gen_len), dtype=np.int64)
        logits = self.forward(prompt_ids, cache)
        for t in range(gen_len):
            if temperature > 0:
                if rng is None:
                    raise ValueError("temperature sampling requires an rng")
                nxt = temperature_sample(logits, temperature, rng)
            else:
                nxt = greedy_sample(logits)
            out[:, t] = nxt
            if t + 1 < gen_len:
                logits = self.forward(nxt[:, None], cache)
        return out
