"""Model configuration: the structural parameters of Table 2.

``h1`` is the hidden size and ``h2`` the intermediate (MLP) size; the paper
uses exactly these two symbols, and the per-layer weight count is

    num_weights = 4*h1^2 + 2*h1*h2          (paper §3.2)

— four h1 x h1 projections (Q, K, V, output) plus the two MLP matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ModelConfig:
    """Structural description of a decoder-only transformer.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"opt-30b"``.
    num_layers:
        ``l`` in the paper.
    hidden_size:
        ``h1``.
    intermediate_size:
        ``h2`` (4*h1 for OPT, ~2.7*h1 for LLaMA's gated MLP folded into the
        same two-matrix accounting the paper uses).
    num_heads:
        Attention head count; ``d_k = h1 / num_heads``.
    vocab_size:
        Output vocabulary (used by the executable model and for the
        embedding footprint).
    dtype:
        Storage dtype of the uncompressed weights ("fp16" at paper scale).
    """

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_heads: int
    vocab_size: int = 50272
    dtype: str = "fp16"

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ConfigError(f"{self.name}: num_layers must be > 0")
        if self.hidden_size <= 0 or self.intermediate_size <= 0:
            raise ConfigError(f"{self.name}: hidden sizes must be > 0")
        if self.num_heads <= 0 or self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"{self.name}: num_heads must divide hidden_size "
                f"({self.hidden_size} % {self.num_heads} != 0)"
            )
        if self.vocab_size <= 0:
            raise ConfigError(f"{self.name}: vocab_size must be > 0")

    @property
    def head_dim(self) -> int:
        """``d_k`` — per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def weights_per_layer(self) -> int:
        """``num_weights = 4*h1^2 + 2*h1*h2`` (paper §3.2)."""
        h1, h2 = self.hidden_size, self.intermediate_size
        return 4 * h1 * h1 + 2 * h1 * h2

    @property
    def total_weights(self) -> int:
        """Transformer-stack parameter count (embeddings excluded, as the
        paper's model does — they are a rounding error at 30B+ scale)."""
        return self.weights_per_layer * self.num_layers

    def scaled(self, name: str, layers: int, hidden: int, heads: int) -> "ModelConfig":
        """Derive a smaller config preserving the MLP expansion ratio.

        Used to make tiny, executable versions of paper-scale models for
        functional tests.
        """
        ratio = self.intermediate_size / self.hidden_size
        return ModelConfig(
            name=name,
            num_layers=layers,
            hidden_size=hidden,
            intermediate_size=int(round(hidden * ratio)),
            num_heads=heads,
            vocab_size=min(self.vocab_size, 512),
            dtype=self.dtype,
        )
