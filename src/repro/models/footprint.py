"""Byte footprints of weights, KV cache and activations.

These are the sizes the paper's performance model consumes (Eqs. 17-19 and
the motivation numbers in §1/§3.1: 55 GB of weights and up to 157 GB of KV
cache for OPT-30B at s=64, n=128, bls=640).

KV-cache accounting follows the paper exactly:

    pf_kv_cache  = 2 * (s+1)      * h1 * bls        (Eq. 17, elements/layer)
    old_kv_cache = 2 * (s + n/2)  * h1 * bls        (Eq. 18, per-token avg)
    new_kv_cache = 2 *              h1 * bls        (Eq. 19, per token)

(the *elements* counts; multiply by dtype width for bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.units import dtype_bytes


@dataclass(frozen=True)
class ModelFootprint:
    """Footprint calculator binding a model to a workload shape.

    Parameters
    ----------
    config:
        The transformer.
    prompt_len:
        ``s`` — input sequence length.
    gen_len:
        ``n`` — tokens generated per prompt.
    block_size:
        ``bls`` — zig-zag block size (sequences in flight per layer pass).
    kv_dtype / weight_dtype / act_dtype:
        Storage dtypes; defaults follow the paper (fp16 everywhere unless a
        quantization policy overrides them).
    """

    config: ModelConfig
    prompt_len: int
    gen_len: int
    block_size: int
    weight_dtype: str = "fp16"
    kv_dtype: str = "fp16"
    act_dtype: str = "fp16"

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.gen_len <= 0 or self.block_size <= 0:
            raise ValueError("prompt_len, gen_len, block_size must all be > 0")

    # -- weights -------------------------------------------------------------

    @property
    def weight_bytes_per_layer(self) -> float:
        return self.config.weights_per_layer * dtype_bytes(self.weight_dtype)

    @property
    def total_weight_bytes(self) -> float:
        """All transformer weights (paper: 55 GB for OPT-30B fp16)."""
        return self.weight_bytes_per_layer * self.config.num_layers

    # -- KV cache -------------------------------------------------------------

    @property
    def kv_elements_per_token_per_layer(self) -> int:
        """K and V vectors for one token of every sequence in the block."""
        return 2 * self.config.hidden_size * self.block_size

    @property
    def kv_bytes_per_token_per_layer(self) -> float:
        return self.kv_elements_per_token_per_layer * dtype_bytes(self.kv_dtype)

    @property
    def prefill_kv_bytes_per_layer(self) -> float:
        """Eq. 17: KV populated by the prefill phase (s+1 tokens)."""
        return (self.prompt_len + 1) * self.kv_bytes_per_token_per_layer

    @property
    def avg_old_kv_bytes_per_layer(self) -> float:
        """Eq. 18 (single-token average): KV context mid-way through decode."""
        return (self.prompt_len + self.gen_len / 2) * self.kv_bytes_per_token_per_layer

    def kv_bytes_per_layer_at(self, token_idx):
        """Exact KV size before generating decode token ``token_idx`` (0-based).

        Accepts a scalar or a NumPy array of token indices (the vectorized
        cost path evaluates every decode token at once); the bound check
        covers both.
        """
        import numpy as np

        if isinstance(token_idx, np.ndarray):
            if token_idx.size and not (
                (token_idx >= 0).all() and (token_idx < self.gen_len).all()
            ):
                raise ValueError(
                    f"token indices outside [0, {self.gen_len})"
                )
        elif not 0 <= token_idx < self.gen_len:
            raise ValueError(f"token_idx {token_idx} outside [0, {self.gen_len})")
        return (self.prompt_len + 1 + token_idx) * self.kv_bytes_per_token_per_layer

    @property
    def peak_kv_bytes(self) -> float:
        """Total KV cache at the end of generation, all layers.

        Paper §1: reaches 157 GB for OPT-30B, s=64, n=128, bls=640.
        """
        return (
            (self.prompt_len + self.gen_len)
            * self.kv_bytes_per_token_per_layer
            * self.config.num_layers
        )

    # -- activations -----------------------------------------------------------

    @property
    def activation_bytes_per_layer(self) -> float:
        """Hidden state handed between layers for the whole block (decode:
        one token per sequence)."""
        return self.config.hidden_size * self.block_size * dtype_bytes(self.act_dtype)

    @property
    def prefill_activation_bytes_per_layer(self) -> float:
        return self.activation_bytes_per_layer * self.prompt_len

    # -- totals ------------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """Weights + peak KV + one layer of activations (paper: ~214 GB for
        the motivating OPT-30B configuration)."""
        return (
            self.total_weight_bytes
            + self.peak_kv_bytes
            + self.activation_bytes_per_layer
        )

    def with_dtypes(
        self,
        *,
        weight_dtype: str | None = None,
        kv_dtype: str | None = None,
        act_dtype: str | None = None,
    ) -> "ModelFootprint":
        """Footprint under different storage dtypes (e.g. int4 weights)."""
        return ModelFootprint(
            config=self.config,
            prompt_len=self.prompt_len,
            gen_len=self.gen_len,
            block_size=self.block_size,
            weight_dtype=weight_dtype or self.weight_dtype,
            kv_dtype=kv_dtype or self.kv_dtype,
            act_dtype=act_dtype or self.act_dtype,
        )
