"""Output-quality metrics under quantization.

The paper treats 4-bit group-wise quantization as accuracy-neutral (citing
FlexGen's results); this module provides the tooling to *check* that claim
on the executable models: logit drift, top-k agreement, and KV-cache-
quantization sensitivity, all computed by running the same inputs through
a reference model and a policy-quantized one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.functional import FunctionalEngine
from repro.models.layers import softmax
from repro.models.transformer import KVCache, Transformer, TransformerWeights
from repro.offload.policy import OffloadPolicy


@dataclass(frozen=True)
class QualityReport:
    """Divergence of a quantized run from the fp32 reference."""

    logit_mae: float
    top1_agreement: float
    topk_overlap: float
    kl_divergence: float

    def acceptable(self, top1_threshold: float = 0.9) -> bool:
        """A crude pass/fail for regression testing."""
        return self.top1_agreement >= top1_threshold


def _reference_logits(
    weights: TransformerWeights, prompt_ids: np.ndarray
) -> np.ndarray:
    model = Transformer(weights)
    cache = KVCache(weights.config, prompt_ids.shape[0], capacity=prompt_ids.shape[1])
    return model.forward(prompt_ids, cache)


def _policy_logits(
    weights: TransformerWeights, policy: OffloadPolicy, prompt_ids: np.ndarray
) -> np.ndarray:
    engine = FunctionalEngine(weights=weights, policy=policy)
    cache = KVCache(weights.config, prompt_ids.shape[0], capacity=prompt_ids.shape[1])
    return engine.forward(prompt_ids, cache)


def compare_logits(
    reference: np.ndarray, candidate: np.ndarray, k: int = 5
) -> QualityReport:
    """All quality metrics between two (batch, vocab) logit tensors."""
    if reference.shape != candidate.shape:
        raise ValueError("logit shapes must match")
    ref64 = reference.astype(np.float64)
    cand64 = candidate.astype(np.float64)
    mae = float(np.mean(np.abs(ref64 - cand64)))

    top1 = float((reference.argmax(-1) == candidate.argmax(-1)).mean())

    k = min(k, reference.shape[-1])
    ref_topk = np.argsort(reference, axis=-1)[:, -k:]
    cand_topk = np.argsort(candidate, axis=-1)[:, -k:]
    overlaps = [
        len(set(r.tolist()) & set(c.tolist())) / k
        for r, c in zip(ref_topk, cand_topk)
    ]
    topk = float(np.mean(overlaps))

    p = softmax(ref64)
    q = softmax(cand64)
    kl = float(np.mean(np.sum(p * (np.log(p + 1e-12) - np.log(q + 1e-12)), axis=-1)))
    return QualityReport(
        logit_mae=mae, top1_agreement=top1, topk_overlap=topk, kl_divergence=kl
    )


def evaluate_policy_quality(
    weights: TransformerWeights,
    policy: OffloadPolicy,
    prompt_ids: np.ndarray,
    k: int = 5,
) -> QualityReport:
    """Run the prompt through reference and policy engines and compare."""
    reference = _reference_logits(weights, prompt_ids)
    candidate = _policy_logits(weights, policy, prompt_ids)
    return compare_logits(reference, candidate, k=k)


def bits_sweep(
    weights: TransformerWeights,
    prompt_ids: np.ndarray,
    bits_options: tuple[int, ...] = (8, 4, 2),
    group_size: int = 32,
    target: str = "weights",
) -> dict[int, QualityReport]:
    """Quality vs quantization width for weights or the KV cache."""
    from repro.quant.config import QuantConfig

    if target not in ("weights", "kv"):
        raise ValueError("target must be 'weights' or 'kv'")
    out: dict[int, QualityReport] = {}
    batch = prompt_ids.shape[0]
    for bits in bits_options:
        quant = QuantConfig(bits=bits, group_size=group_size)
        policy = OffloadPolicy(
            wg=0.0 if target == "weights" else 1.0,
            hg=1.0,
            attention_on_cpu=True,
            weight_quant=quant if target == "weights" else None,
            kv_quant=quant if target == "kv" else None,
            gpu_batch_size=batch,
            num_gpu_batches=1,
        )
        out[bits] = evaluate_policy_quality(weights, policy, prompt_ids)
    return out
