"""Vectorized NumPy transformer kernels: attention, MLP, layernorm.

These are *real* computations (not cost stubs): the functional engine runs
tiny models end to end through them, with the KV cache and quantized tensors
produced by :mod:`repro.quant`.  Shapes follow the usual convention

    hidden:  (batch, seq, h1)
    heads:   (batch, num_heads, seq, head_dim)

All kernels are pure functions over ``float32`` arrays and avoid Python
loops over elements (HPC guide: vectorize, use views, mind contiguity).
"""

from __future__ import annotations

import numpy as np


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """LayerNorm over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximate GELU (matches the OPT/GPT reference kernels)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(batch, seq, h1) -> (batch, heads, seq, head_dim)."""
    b, s, h1 = x.shape
    if h1 % num_heads:
        raise ValueError(f"hidden size {h1} not divisible by {num_heads} heads")
    return x.reshape(b, s, num_heads, h1 // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(batch, heads, seq, head_dim) -> (batch, seq, h1)."""
    b, h, s, d = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(b, s, h * d)


def attention_scores(
    q: np.ndarray, k: np.ndarray, causal_mask: bool = True
) -> np.ndarray:
    """Scaled dot-product scores ``softmax(QK^T / sqrt(d_k))``.

    ``q``: (batch, heads, q_len, d); ``k``: (batch, heads, k_len, d).
    When ``causal_mask`` is set, query position ``i`` may attend to key
    positions ``j <= i + (k_len - q_len)`` — the standard causal alignment
    for a KV cache holding ``k_len - q_len`` past tokens.
    """
    d_k = q.shape[-1]
    scores = q @ k.swapaxes(-1, -2) / np.sqrt(d_k)
    if causal_mask:
        q_len, k_len = q.shape[-2], k.shape[-2]
        offset = k_len - q_len
        if offset < 0:
            raise ValueError("key length must be >= query length under causal mask")
        j = np.arange(k_len)
        i = np.arange(q_len)[:, None]
        mask = j[None, :] > (i + offset)
        scores = np.where(mask, -np.inf, scores)
    return softmax(scores, axis=-1)


def self_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal_mask: bool = True,
) -> np.ndarray:
    """Full attention: probabilities times values, merged back to hidden.

    Inputs are head-split tensors; output is (batch, q_len, h1).
    """
    probs = attention_scores(q, k, causal_mask=causal_mask)
    return merge_heads(probs @ v)


def mlp(
    x: np.ndarray, w_in: np.ndarray, b_in: np.ndarray, w_out: np.ndarray, b_out: np.ndarray
) -> np.ndarray:
    """Two linear transforms with a GELU in between (paper §2.1)."""
    return gelu(x @ w_in + b_in) @ w_out + b_out
