"""Token sampling strategies for the executable model."""

from __future__ import annotations

import numpy as np

from repro.models.layers import softmax


def greedy_sample(logits: np.ndarray) -> np.ndarray:
    """Argmax over the vocabulary. ``logits``: (batch, vocab)."""
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, vocab)")
    return logits.argmax(axis=-1)


def temperature_sample(
    logits: np.ndarray, temperature: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample from ``softmax(logits / temperature)`` per batch row."""
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, vocab)")
    if temperature <= 0:
        raise ValueError("temperature must be > 0; use greedy_sample for 0")
    probs = softmax(logits / temperature, axis=-1)
    # Vectorized inverse-CDF sampling: one uniform per row.
    cdf = probs.cumsum(axis=-1)
    u = rng.random((logits.shape[0], 1))
    return (cdf < u).sum(axis=-1).clip(0, logits.shape[1] - 1)


def top_k_sample(
    logits: np.ndarray, k: int, rng: np.random.Generator, temperature: float = 1.0
) -> np.ndarray:
    """Restrict to the k highest-probability tokens, then sample."""
    if k <= 0:
        raise ValueError("k must be > 0")
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, vocab)")
    k = min(k, logits.shape[1])
    # Mask everything below each row's k-th largest logit.
    kth = np.partition(logits, -k, axis=-1)[:, -k][:, None]
    masked = np.where(logits < kth, -np.inf, logits)
    return temperature_sample(masked, temperature, rng)
