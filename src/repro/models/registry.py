"""Named model registry with the paper's evaluation models.

OPT shapes follow Zhang et al. 2022 (Table 1 of the OPT paper); LLaMA shapes
follow Touvron et al. 2023.  ``tiny-*`` configs are executable-scale models
for functional tests and examples.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.models.config import ModelConfig

_REGISTRY: dict[str, ModelConfig] = {}


def register_model(config: ModelConfig, *, overwrite: bool = False) -> None:
    """Add ``config`` under ``config.name``."""
    if config.name in _REGISTRY and not overwrite:
        raise ConfigError(f"model {config.name!r} already registered")
    _REGISTRY[config.name] = config


def get_model(name: str) -> ModelConfig:
    """Look up a registered model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def list_models() -> list[str]:
    """Sorted names of all registered models."""
    return sorted(_REGISTRY)


def _populate() -> None:
    # --- OPT family (h2 = 4*h1) -------------------------------------------
    for name, layers, hidden, heads in [
        ("opt-1.3b", 24, 2048, 32),
        ("opt-6.7b", 32, 4096, 32),
        ("opt-13b", 40, 5120, 40),
        ("opt-30b", 48, 7168, 56),
        ("opt-66b", 64, 9216, 72),
    ]:
        register_model(
            ModelConfig(
                name=name,
                num_layers=layers,
                hidden_size=hidden,
                intermediate_size=4 * hidden,
                num_heads=heads,
                vocab_size=50272,
            )
        )
    # --- LLaMA family ------------------------------------------------------
    # LLaMA's SwiGLU MLP has *three* h1 x h2 matrices; the paper's
    # two-matrix accounting (num_weights = 4*h1^2 + 2*h1*h2) absorbs the
    # third by using an effective intermediate size of 1.5x the released
    # one, which lands each model on its true parameter count.
    for name, layers, hidden, inter, heads in [
        ("llama-7b", 32, 4096, 11008, 32),
        ("llama-13b", 40, 5120, 13824, 40),
        ("llama-30b", 60, 6656, 17920, 52),
        ("llama-65b", 80, 8192, 22016, 64),
    ]:
        register_model(
            ModelConfig(
                name=name,
                num_layers=layers,
                hidden_size=hidden,
                intermediate_size=inter * 3 // 2,
                num_heads=heads,
                vocab_size=32000,
            )
        )
    # --- tiny executable models for tests/examples ------------------------
    register_model(
        ModelConfig(
            name="tiny-2l",
            num_layers=2,
            hidden_size=64,
            intermediate_size=256,
            num_heads=4,
            vocab_size=260,
            dtype="fp32",
        )
    )
    register_model(
        ModelConfig(
            name="tiny-4l",
            num_layers=4,
            hidden_size=128,
            intermediate_size=512,
            num_heads=8,
            vocab_size=260,
            dtype="fp32",
        )
    )


_populate()
