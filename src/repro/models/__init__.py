"""Transformer model descriptions and a real NumPy execution layer.

Two complementary layers live here:

* **Analytic**: :class:`ModelConfig` (layer count, hidden sizes...) plus
  :mod:`repro.models.footprint`, which computes the byte sizes that drive
  the paper's performance model (weights per layer, KV cache growth).
  Paper-scale models (OPT-30B/66B, LLaMA-30B/65B...) live in the registry.
* **Executable**: :mod:`repro.models.layers` / :mod:`~repro.models.transformer`
  implement real attention / MLP / KV-cache math in vectorized NumPy so the
  offloading and quantization machinery is exercised on genuine numbers at
  tiny scale.
"""

from repro.models.config import ModelConfig
from repro.models.registry import get_model, list_models, register_model
from repro.models.footprint import ModelFootprint
from repro.models.transformer import Transformer, TransformerWeights, KVCache
from repro.models.sampling import greedy_sample, temperature_sample
from repro.models.tokenizer import ByteTokenizer
from repro.models.quality import QualityReport, evaluate_policy_quality

__all__ = [
    "ModelConfig",
    "get_model",
    "list_models",
    "register_model",
    "ModelFootprint",
    "Transformer",
    "TransformerWeights",
    "KVCache",
    "greedy_sample",
    "temperature_sample",
    "ByteTokenizer",
    "QualityReport",
    "evaluate_policy_quality",
]
