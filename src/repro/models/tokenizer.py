"""A deterministic byte-level tokenizer for examples and tests.

The paper's experiments use synthetic prompts of a fixed token length; the
actual text is irrelevant to throughput.  This tokenizer exists so the
examples can run *real text* through the tiny executable models without any
external vocabulary files.
"""

from __future__ import annotations

import numpy as np


class ByteTokenizer:
    """Maps UTF-8 bytes to ids 0..255; ids >= 256 are reserved specials."""

    PAD = 256
    BOS = 257
    EOS = 258
    VOCAB_SIZE = 259

    def encode(self, text: str, *, add_bos: bool = True) -> np.ndarray:
        """Text -> 1-D int64 id array."""
        ids = list(text.encode("utf-8"))
        if add_bos:
            ids = [self.BOS] + ids
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: np.ndarray) -> str:
        """Id array -> text, skipping special tokens and invalid bytes."""
        payload = bytes(int(i) for i in np.asarray(ids).ravel() if 0 <= int(i) < 256)
        return payload.decode("utf-8", errors="replace")

    def encode_batch(self, texts: list[str], length: int) -> np.ndarray:
        """Encode and left-pad/truncate to a fixed ``length`` (batch, length)."""
        if length <= 0:
            raise ValueError("length must be > 0")
        out = np.full((len(texts), length), self.PAD, dtype=np.int64)
        for row, text in enumerate(texts):
            ids = self.encode(text)[:length]
            out[row, length - len(ids):] = ids
        return out
