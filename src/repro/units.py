"""Unit helpers: byte sizes, rates and dtype widths.

Everything in this package is expressed in *bytes*, *seconds* and
*tokens/second*.  These helpers keep magic numbers out of the code and make
call sites read like the paper's text (``55 * GB``, ``64 * GB_PER_S``).

The paper mixes decimal (GB) and binary (GiB) units loosely, as systems
papers do; we standardise on decimal GB = 1e9 bytes, which is what PCIe and
HBM bandwidth figures use, and provide GiB for memory-capacity contexts.
"""

from __future__ import annotations

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

#: Convenience aliases for bandwidths (bytes / second).
GB_PER_S = GB
MB_PER_S = MB

#: FLOP-rate aliases.
GFLOPS = 10**9
TFLOPS = 10**12

#: Clock-rate aliases.
MHZ = 10**6
GHZ = 10**9

#: Width in bytes of the element types used by the inference engine.
DTYPE_BYTES = {
    "fp32": 4,
    "fp16": 2,
    "bf16": 2,
    "int8": 1,
    "int4": 0.5,
}


def dtype_bytes(name: str) -> float:
    """Return the storage width in bytes of ``name``.

    ``int4`` intentionally returns ``0.5``: packed 4-bit payloads occupy half
    a byte per element and all capacity math in this package tolerates
    fractional per-element widths (totals are rounded up at allocation time).
    """
    try:
        return DTYPE_BYTES[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; expected one of {sorted(DTYPE_BYTES)}"
        ) from None


def fmt_bytes(n: float) -> str:
    """Human-readable decimal formatting of a byte count (``'55.0 GB'``)."""
    for unit, width in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= width:
            return f"{n / width:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(tokens_per_s: float) -> str:
    """Format a throughput value the way the paper's tables do."""
    return f"{tokens_per_s:.1f} tokens/s"
