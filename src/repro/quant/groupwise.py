"""Group-wise min/max quantization kernels (paper Algorithm 2).

Pipeline (matching the algorithm's four phases):

1. **Pad** the tensor along ``group_dim`` to a multiple of ``group_size``.
2. **Min/max** per group.
3. **Normalize** each element into ``[0, 2^b - 1]`` (Eq. 10) and clamp.
4. **Pack** codes into bytes and reshape.

Everything is vectorized NumPy; the bit-packing uses shift/or over a
reshaped view rather than per-element loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.config import QuantConfig


@dataclass(frozen=True)
class QuantizedTensor:
    """A packed payload plus the metadata needed to reverse it.

    Attributes
    ----------
    payload:
        uint8 array of packed codes, shape (num_groups, packed_group_bytes).
    mins, scales:
        Per-group float32 minimum and ``(max - min)`` range.
    shape:
        Original (unpadded) tensor shape.
    config:
        Quantizer parameters used.
    """

    payload: np.ndarray
    mins: np.ndarray
    scales: np.ndarray
    shape: tuple[int, ...]
    config: QuantConfig

    @property
    def nbytes(self) -> int:
        """Bytes that must cross an interconnect to move this tensor."""
        return int(self.payload.nbytes + self.mins.nbytes + self.scales.nbytes)

    @property
    def original_nbytes(self) -> int:
        """fp32 bytes of the source tensor (for ratio reporting)."""
        return int(np.prod(self.shape)) * 4


def _move_group_dim(shape: tuple[int, ...], group_dim: int) -> int:
    """Normalise ``group_dim`` to a positive axis index for ``shape``."""
    ndim = len(shape)
    axis = group_dim if group_dim >= 0 else ndim + group_dim
    if not 0 <= axis < ndim:
        raise QuantizationError(f"group_dim {group_dim} invalid for shape {shape}")
    return axis


def compress(tensor: np.ndarray, config: QuantConfig) -> QuantizedTensor:
    """Quantize ``tensor`` (any float dtype, any shape) per Algorithm 2."""
    if tensor.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    data = np.asarray(tensor, dtype=np.float32)
    axis = _move_group_dim(data.shape, config.group_dim)

    # Phase 1 — pad: move the grouped axis last, pad it to a multiple of
    # group_size (padding replicates the edge value so it never stretches
    # the group's min/max range).
    moved = np.moveaxis(data, axis, -1)
    length = moved.shape[-1]
    g = config.group_size
    pad = (-length) % g
    if pad:
        moved = np.concatenate([moved, np.repeat(moved[..., -1:], pad, axis=-1)], axis=-1)
    groups = moved.reshape(-1, g)

    # Phase 2 — per-group min/max.
    mins = groups.min(axis=1, keepdims=True)
    maxs = groups.max(axis=1, keepdims=True)
    scales = maxs - mins
    # Constant groups (scale 0) map every element to code 0.
    safe = np.where(scales == 0, 1.0, scales)

    # Phase 3 — normalise (Eq. 10) and clamp.
    qmax = config.levels - 1
    codes = np.rint((groups - mins) / safe * qmax)
    np.clip(codes, 0, qmax, out=codes)
    codes = codes.astype(np.uint8)

    # Phase 4 — pack: fold `codes_per_byte` codes into each byte.
    cpb = config.codes_per_byte
    if g % cpb:
        raise QuantizationError(
            f"group_size {g} must be a multiple of codes-per-byte {cpb}"
        )
    folded = codes.reshape(groups.shape[0], g // cpb, cpb)
    shifts = np.arange(cpb, dtype=np.uint8) * config.bits
    packed = np.bitwise_or.reduce(folded << shifts, axis=-1).astype(np.uint8)

    return QuantizedTensor(
        payload=packed,
        mins=mins.astype(np.float32).ravel(),
        scales=scales.astype(np.float32).ravel(),
        shape=data.shape,
        config=config,
    )


def decompress(qt: QuantizedTensor) -> np.ndarray:
    """Reverse :func:`compress` (Eq. 11); returns float32 of ``qt.shape``."""
    config = qt.config
    cpb = config.codes_per_byte
    g = config.group_size
    qmax = config.levels - 1

    # Unpack: each byte expands back into cpb codes.
    shifts = np.arange(cpb, dtype=np.uint8) * config.bits
    mask = np.uint8(qmax)
    codes = ((qt.payload[..., None] >> shifts) & mask).reshape(-1, g)

    # De-normalise (Eq. 11).
    values = codes.astype(np.float32) / qmax * qt.scales[:, None] + qt.mins[:, None]

    # Un-pad and restore the original axis order.
    axis = _move_group_dim(qt.shape, config.group_dim)
    moved_shape = list(qt.shape)
    moved_shape.append(moved_shape.pop(axis))
    length = moved_shape[-1]
    padded_len = length + ((-length) % g)
    values = values.reshape(*moved_shape[:-1], padded_len)[..., :length]
    return np.moveaxis(values, -1, axis)


def roundtrip(tensor: np.ndarray, config: QuantConfig) -> np.ndarray:
    """Compress-then-decompress convenience (what the engine applies to a
    tensor crossing the interconnect in compressed form)."""
    return decompress(compress(tensor, config))
