"""Quantization configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QuantConfig:
    """Parameters of the group-wise quantizer.

    Parameters
    ----------
    bits:
        Target width ``b``; codes occupy ``[0, 2^b - 1]``.  4 is the paper's
        (and FlexGen's) default; 8 is also supported.
    group_size:
        Elements per quantization group.  FlexGen's default is 64; smaller
        groups cost more metadata but bound the error better.
    group_dim:
        Axis along which groups are formed.  Grouping along the last
        (contiguous) axis keeps the min/max scan cache-friendly.
    """

    bits: int = 4
    group_size: int = 64
    group_dim: int = -1

    def __post_init__(self) -> None:
        if self.bits not in (2, 4, 8):
            raise QuantizationError(f"bits must be 2, 4 or 8, got {self.bits}")
        if self.group_size < 2:
            raise QuantizationError("group_size must be >= 2")

    @property
    def levels(self) -> int:
        """Number of representable codes, ``2^b``."""
        return 1 << self.bits

    @property
    def codes_per_byte(self) -> int:
        return 8 // self.bits

    def payload_bytes(self, num_elements: int) -> float:
        """Packed payload size for ``num_elements`` values, excluding
        per-group min/scale metadata."""
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        return num_elements * self.bits / 8

    def metadata_bytes(self, num_elements: int, scale_dtype_bytes: int = 2) -> float:
        """Per-group (min, scale) metadata bytes.

        Stored min/scale are fp16 on the wire (the in-memory
        :class:`~repro.quant.groupwise.QuantizedTensor` keeps fp32 for
        numeric headroom, but transport layers ship fp16 like FlexGen's).
        """
        import math

        groups = math.ceil(num_elements / self.group_size)
        return groups * 2 * scale_dtype_bytes

    def total_bytes(self, num_elements: int) -> float:
        """Payload + metadata: what actually crosses the interconnect."""
        return self.payload_bytes(num_elements) + self.metadata_bytes(num_elements)

    def compression_ratio(self, src_dtype_bytes: float = 2.0) -> float:
        """Approximate size reduction vs an uncompressed ``src_dtype``.

        Ignores metadata (asymptotically negligible for group_size >= 32).
        """
        return src_dtype_bytes * 8 / self.bits
