"""Quantization error metrics.

Used by tests to bound the numeric damage of the quantizer and by the
group-size ablation bench to show the accuracy/overhead tradeoff.
"""

from __future__ import annotations

import numpy as np

from repro.quant.config import QuantConfig
from repro.quant.groupwise import roundtrip


def max_abs_error(original: np.ndarray, restored: np.ndarray) -> float:
    """Worst-case absolute element error."""
    return float(np.max(np.abs(np.asarray(original, dtype=np.float64) - restored)))


def mean_abs_error(original: np.ndarray, restored: np.ndarray) -> float:
    """Mean absolute element error."""
    return float(np.mean(np.abs(np.asarray(original, dtype=np.float64) - restored)))


def quantization_snr(original: np.ndarray, restored: np.ndarray) -> float:
    """Signal-to-noise ratio in dB; +inf for an exact round-trip."""
    signal = float(np.mean(np.square(np.asarray(original, dtype=np.float64))))
    noise = float(np.mean(np.square(np.asarray(original, dtype=np.float64) - restored)))
    if noise == 0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)


def roundtrip_error_bound(config: QuantConfig, tensor: np.ndarray) -> float:
    """Analytic worst-case error: half a quantization step per group.

    For group-wise min/max quantization the error of any element is at most
    ``(max - min) / (2 * (2^b - 1))`` of its group.
    """
    data = np.asarray(tensor, dtype=np.float64)
    axis = config.group_dim if config.group_dim >= 0 else data.ndim + config.group_dim
    moved = np.moveaxis(data, axis, -1)
    length = moved.shape[-1]
    pad = (-length) % config.group_size
    if pad:
        moved = np.concatenate(
            [moved, np.repeat(moved[..., -1:], pad, axis=-1)], axis=-1
        )
    groups = moved.reshape(-1, config.group_size)
    ranges = groups.max(axis=1) - groups.min(axis=1)
    return float(ranges.max()) / (2 * (config.levels - 1))


def empirical_error(tensor: np.ndarray, config: QuantConfig) -> dict[str, float]:
    """Round-trip a tensor and report all metrics at once."""
    restored = roundtrip(tensor, config)
    return {
        "max_abs": max_abs_error(tensor, restored),
        "mean_abs": mean_abs_error(tensor, restored),
        "snr_db": quantization_snr(tensor, restored),
        "bound": roundtrip_error_bound(config, tensor),
    }
