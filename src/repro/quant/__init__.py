"""Group-wise min/max quantization (paper Algorithm 2, Eqs. 10-11).

This is a real, vectorized implementation: tensors are padded, grouped,
min/max-normalised into ``2^b - 1`` levels, clamped, and bit-packed (two
4-bit codes per byte).  Decompression reverses the pipeline (Eq. 11).  The
paper's performance model charges its three dominant phases — min/max scan,
normalisation, post-processing copy — and those phases correspond one-to-one
to stages of :func:`compress`.
"""

from repro.quant.config import QuantConfig
from repro.quant.groupwise import QuantizedTensor, compress, decompress
from repro.quant.error import max_abs_error, mean_abs_error, quantization_snr

__all__ = [
    "QuantConfig",
    "QuantizedTensor",
    "compress",
    "decompress",
    "max_abs_error",
    "mean_abs_error",
    "quantization_snr",
]
