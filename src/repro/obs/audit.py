"""Model-vs-runtime drift audit (``python -m repro audit``).

The paper's whole pipeline — policy search, parallelism control, serving
admission, step pricing — trusts the closed-form performance model
(Eqs. 1/2) to predict what the overlapped zig-zag runtime will do.  This
module is the standing cross-check: it sweeps a grid of (model, placement,
quantization, geometry) configurations, prices each with the analytic
:class:`~repro.perfmodel.latency.CostModel`, replays the *identical*
:class:`~repro.runtime.tasks.TaskCosts` through the discrete-event
:class:`~repro.runtime.executor.OverlappedExecutor`, and reports:

* per-config relative error of the Eq. 2 steady-state step prediction
  against the event-driven schedule (the simulator is ground truth);
* the whole-generation error of summed Eq. 1 decode time vs a full
  :class:`~repro.runtime.pipeline.DecodeLoop` run with a growing KV cache
  (full mode only — it is the slow half);
* which term of Eq. 2's ``max(...)`` dominated — both the resource-grouped
  view (h2d / d2h / compute) the executor enforces and the literal
  six-task view — plus how optimistic the paper's literal Eq. 2 is;
* the worst-case divergence across the grid.

``run_audit`` is deterministic end to end (no wall clocks, no RNG), so
``BENCH_audit.json`` is byte-identical across runs — CI diffs two
invocations to prove it.  The audit *fails* (nonzero CLI exit) when any
configuration's steady-state relative error exceeds the tolerance: a later
PR that bends the model or the executor must either fix the drift or
consciously raise the tolerance in review.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.obs.profiling import span
from repro.obs.registry import MetricsRegistry

SCHEMA_VERSION = 1

#: Steady-state Eq. 2 vs executor: the pipelined schedule converges to the
#: predicted marginal token time within a few percent (fill/drain effects
#: and H2D serialization granularity account for the slack).
DEFAULT_TOLERANCE = 0.10
#: Whole-generation Eq. 1 vs DecodeLoop: one extra pipeline fill/drain is
#: amortized over the run, so the bound is looser.
DEFAULT_E2E_TOLERANCE = 0.15
#: Faulted steady-state Eq. 2 vs executor: same drift mechanism as the
#: fault-free gate (fill/drain + H2D serialization granularity), so the
#: same bound applies — a degraded platform changes which term dominates,
#: not how the executor schedules it.
DEFAULT_FAULT_TOLERANCE = 0.10
#: Virtual horizon the audit builds each ``make_scenario`` bundle over.
#: Windows sit at fixed fractions of the horizon, so the value is
#: arbitrary — it only has to be positive and fixed for determinism.
FAULT_HORIZON_S = 120.0
#: Seed for the bundled scenarios' stochastic structure (flap timing).
FAULT_SCENARIO_SEED = 0


@dataclass(frozen=True)
class AuditCase:
    """One grid point: a workload/policy pair the model must predict."""

    name: str
    model: str
    prompt_len: int
    gen_len: int
    gpu_batch_size: int
    num_gpu_batches: int
    wg: float
    cg: float
    hg: float
    attention_on_cpu: bool = False
    weight_quant: bool = False
    kv_quant: bool = False
    #: Included in the ``--quick`` (CI smoke) sweep.
    quick: bool = False


#: The audit grid.  Cases are chosen to pin every regime the planner can
#: emit: weight-streaming, KV-streaming, CPU attention, quantized W/KV,
#: fully GPU-resident, and both small and paper-scale layer counts.
AUDIT_GRID: tuple[AuditCase, ...] = (
    AuditCase(
        "opt30b-weight-stream", "opt-30b", 64, 16, 64, 4,
        wg=0.4, cg=0.0, hg=0.0, quick=True,
    ),
    AuditCase(
        "opt30b-cpu-attn", "opt-30b", 64, 16, 64, 4,
        wg=0.4, cg=0.0, hg=1.0, attention_on_cpu=True, quick=True,
    ),
    AuditCase(
        "opt30b-kv-stream", "opt-30b", 64, 16, 32, 8,
        wg=0.0, cg=0.5, hg=0.0,
    ),
    AuditCase(
        "opt30b-kv-quant", "opt-30b", 64, 16, 64, 4,
        wg=0.2, cg=0.25, hg=0.0, kv_quant=True,
    ),
    AuditCase(
        "opt30b-w4-stream", "opt-30b", 64, 16, 64, 4,
        wg=0.2, cg=0.0, hg=0.0, weight_quant=True,
    ),
    AuditCase(
        "opt30b-long-ctx", "opt-30b", 512, 16, 32, 4,
        wg=0.4, cg=0.0, hg=0.0,
    ),
    AuditCase(
        "opt1.3b-resident", "opt-1.3b", 64, 16, 64, 2,
        wg=1.0, cg=1.0, hg=1.0, quick=True,
    ),
    AuditCase(
        "opt1.3b-cpu-attn", "opt-1.3b", 64, 16, 64, 2,
        wg=0.5, cg=0.0, hg=1.0, attention_on_cpu=True,
    ),
    AuditCase(
        "opt6.7b-mixed", "opt-6.7b", 64, 16, 32, 4,
        wg=0.6, cg=0.5, hg=0.0,
    ),
    AuditCase(
        "llama13b-w4kv4", "llama-13b", 64, 16, 32, 4,
        wg=0.3, cg=0.25, hg=0.0, weight_quant=True, kv_quant=True,
    ),
)


def _grouped_terms(costs) -> dict[str, float]:
    """Eq. 2's max(...) arguments under the resource grouping the
    executor enforces (three H2D loads serialize, two D2H stores do)."""
    return {
        "h2d": costs.load_weight + costs.load_cache + costs.load_activation,
        "d2h": costs.store_cache + costs.store_activation,
        "compute": costs.compute,
    }


def audit_case(
    case: AuditCase,
    hw,
    ctx,
    full: bool = True,
) -> dict[str, Any]:
    """Run one grid point; returns its JSON-ready audit record."""
    from repro.models import get_model
    from repro.offload.policy import OffloadPolicy
    from repro.perfmodel.latency import CostModel
    from repro.perfmodel.notation import Workload
    from repro.quant.config import QuantConfig
    from repro.runtime.executor import OverlappedExecutor
    from repro.runtime.pipeline import DecodeLoop

    model_cfg = get_model(case.model)
    workload = Workload(
        model_cfg, case.prompt_len, case.gen_len,
        case.gpu_batch_size, case.num_gpu_batches,
    )
    quant = QuantConfig(bits=4, group_size=64)
    policy = OffloadPolicy(
        wg=case.wg, cg=case.cg, hg=case.hg,
        attention_on_cpu=case.attention_on_cpu,
        weight_quant=quant if case.weight_quant else None,
        kv_quant=quant if case.kv_quant else None,
        gpu_batch_size=case.gpu_batch_size,
        num_gpu_batches=case.num_gpu_batches,
    )
    model = CostModel(workload, policy, hw, ctx)
    iters = model_cfg.num_layers * case.num_gpu_batches
    mid = max(0, (case.gen_len - 1) // 2)
    costs = model.decode_task_costs(mid)

    predicted = CostModel.step_seconds(costs) * iters
    predicted_literal = costs.step_time() * iters
    executor = OverlappedExecutor(
        num_layers=model_cfg.num_layers, num_gpu_batches=case.num_gpu_batches
    )
    simulated = executor.steady_state_token_time(costs, warmup=3)
    rel_err = abs(simulated - predicted) / simulated if simulated > 0 else 0.0

    terms = _grouped_terms(costs)
    dominant = max(terms, key=lambda k: (terms[k], k))
    record: dict[str, Any] = {
        "name": case.name,
        "config": {
            "model": case.model,
            "prompt_len": case.prompt_len,
            "gen_len": case.gen_len,
            "gpu_batch_size": case.gpu_batch_size,
            "num_gpu_batches": case.num_gpu_batches,
            "wg": case.wg,
            "cg": case.cg,
            "hg": case.hg,
            "attention_on_cpu": case.attention_on_cpu,
            "weight_quant": "w4g64" if case.weight_quant else None,
            "kv_quant": "w4g64" if case.kv_quant else None,
        },
        "steady_state": {
            "predicted_s": predicted,
            "simulated_s": simulated,
            "rel_err": rel_err,
            "dominant_term": dominant,
            "terms_s": {k: v * iters for k, v in terms.items()},
            "bottleneck_task": costs.bottleneck().value,
            #: How optimistic the paper's literal six-task max is vs the
            #: grouped reality (0 when no two same-direction tasks overlap).
            "literal_eq2_optimism": (
                (predicted - predicted_literal) / predicted if predicted > 0 else 0.0
            ),
        },
    }

    if full:
        loop = DecodeLoop(
            num_layers=model_cfg.num_layers, num_gpu_batches=case.num_gpu_batches
        )
        trace = loop.run(
            model.prefill_task_costs(),
            lambda t: model.decode_task_costs(t),
            case.gen_len,
        )
        predicted_decode = model.decode_seconds()
        e2e_err = (
            abs(trace.decode_seconds - predicted_decode) / trace.decode_seconds
            if trace.decode_seconds > 0
            else 0.0
        )
        record["full_generation"] = {
            "predicted_decode_s": predicted_decode,
            "simulated_decode_s": trace.decode_seconds,
            "rel_err": e2e_err,
        }
    return record


def _execution_context(platform):
    """(HardwareParams, CpuExecutionContext) the audit prices a platform
    with — rebuilt from scratch so a degraded platform re-derives its CPU
    topology, contention model and thread allocation like the serving
    watchdog does."""
    from repro.parallel.speedup import ContentionModel
    from repro.parallel.topology import CpuTopology
    from repro.perfmodel.latency import CpuExecutionContext
    from repro.perfmodel.notation import HardwareParams

    hw = HardwareParams.from_platform(platform)
    topology = CpuTopology.from_device(platform.cpu)
    contention = ContentionModel(topology, platform.cache)
    ctx = CpuExecutionContext.pytorch_default(topology, contention)
    return hw, ctx


def _faulted_sweep(
    platform,
    cases: list[AuditCase],
    registry: MetricsRegistry,
    fault_tolerance: float,
) -> dict[str, Any]:
    """Price the audit grid under every bundled chaos scenario.

    For each scenario the schedule is piecewise-constant, so the sweep
    enumerates its :func:`~repro.faults.overlay.capability_windows`,
    dedupes them by :func:`~repro.faults.overlay.fault_signature` (eight
    identical link flaps price once, tallied as occurrences), applies the
    overlay at the window midpoint, rebuilds the execution context from
    the degraded platform, and re-runs the steady-state Eq. 2 vs executor
    comparison for every case.  Whole-generation replays are skipped —
    the fault gate is about whether degradation changes *how well the
    model tracks the executor*, and steady state is where that shows.
    """
    from repro.faults import make_scenario
    from repro.faults.overlay import capability_windows, fault_signature
    from repro.faults.scenarios import SCENARIO_SWEEP_ORDER

    scenarios: list[dict[str, Any]] = []
    all_errs: list[float] = []
    kind_worst: dict[str, float] = {}
    over: list[str] = []
    worst_ref: tuple[float, str] | None = None

    for scenario_name in SCENARIO_SWEEP_ORDER:
        schedule = make_scenario(
            scenario_name, FAULT_HORIZON_S, seed=FAULT_SCENARIO_SEED
        )
        raw_windows = capability_windows(schedule)
        windows: list[dict[str, Any]] = []
        seen: dict[tuple, int] = {}
        for start, end, active in raw_windows:
            sig = fault_signature(active)
            if sig in seen:
                windows[seen[sig]]["window"]["occurrences"] += 1
                continue
            seen[sig] = len(windows)
            effective = platform.with_faults(schedule, (start + end) / 2.0)
            hw_f, ctx_f = _execution_context(effective)
            case_records = [
                audit_case(case, hw_f, ctx_f, full=False) for case in cases
            ]
            errs = {r["name"]: r["steady_state"]["rel_err"] for r in case_records}
            worst = max(errs, key=lambda k: (errs[k], k))
            kinds = sorted({f.kind.value for f in active})
            windows.append({
                "window": {
                    "start_s": start,
                    "end_s": end,
                    "occurrences": 1,
                    "kinds": kinds,
                },
                "cases": case_records,
                "worst_case": worst,
                "max_rel_err": errs[worst],
                "mean_rel_err": sum(errs.values()) / len(errs),
            })
            registry.counter("audit.faulted.windows").inc()
            for name, err in errs.items():
                all_errs.append(err)
                registry.histogram("audit.faulted.rel_err").observe(err)
                if err > fault_tolerance:
                    over.append(f"{scenario_name}/{len(windows) - 1}/{name}")
            for kind in kinds:
                kind_worst[kind] = max(kind_worst.get(kind, 0.0), errs[worst])

        worst_idx = max(
            range(len(windows)), key=lambda i: (windows[i]["max_rel_err"], -i)
        )
        scenario_max = windows[worst_idx]["max_rel_err"]
        ref = f"{scenario_name}/{worst_idx}/{windows[worst_idx]['worst_case']}"
        if worst_ref is None or (scenario_max, ref) > worst_ref:
            worst_ref = (scenario_max, ref)
        scenarios.append({
            "scenario": scenario_name,
            "schedule": schedule.to_dict(),
            "num_windows": len(raw_windows),
            "num_unique_windows": len(windows),
            "windows": windows,
            "worst_window": worst_idx,
            "max_rel_err": scenario_max,
        })
        registry.counter("audit.faulted.scenarios").inc()

    #: The fault kind whose windows drift the model most.  Compound
    #: windows credit every kind present — "dominates" means "was active
    #: when the worst drift happened", not a causal attribution.
    dominant = max(kind_worst, key=lambda k: (kind_worst[k], k))
    assert worst_ref is not None
    return {
        "horizon_s": FAULT_HORIZON_S,
        "seed": FAULT_SCENARIO_SEED,
        "tolerance": fault_tolerance,
        "scenarios": scenarios,
        "summary": {
            "num_scenarios": len(scenarios),
            "num_windows": sum(s["num_unique_windows"] for s in scenarios),
            "num_cases_priced": len(all_errs),
            "worst": worst_ref[1],
            "max_rel_err": worst_ref[0],
            "mean_rel_err": sum(all_errs) / len(all_errs),
            "dominant_fault": dominant,
            "by_fault_kind": {k: kind_worst[k] for k in sorted(kind_worst)},
            "over_tolerance": sorted(over),
            "ok": not over,
        },
    }


def run_audit(
    tolerance: float = DEFAULT_TOLERANCE,
    e2e_tolerance: float = DEFAULT_E2E_TOLERANCE,
    quick: bool = False,
    faults: bool = False,
    fault_tolerance: float = DEFAULT_FAULT_TOLERANCE,
) -> dict[str, Any]:
    """Sweep the grid; returns the ``BENCH_audit.json`` payload.

    ``quick`` restricts the sweep to the smoke subset and skips the (slow)
    whole-generation DecodeLoop replays; the steady-state check — the one
    the tolerance gate applies to — still runs for every included case.
    ``faults`` adds the faulted sweep: the same grid re-priced under each
    bundled chaos scenario's degraded platforms, gated by its own
    ``fault_tolerance``.  The zero-fault payload is byte-identical whether
    or not the flag exists — the ``faulted`` section only appears when
    requested.
    """
    from repro.hardware import single_a100

    platform = single_a100()
    hw, ctx = _execution_context(platform)

    cases = [c for c in AUDIT_GRID if (c.quick or not quick)]
    registry = MetricsRegistry(namespace="audit")
    records: list[dict[str, Any]] = []
    with span("obs.audit.sweep"):
        for case in cases:
            record = audit_case(case, hw, ctx, full=not quick)
            records.append(record)
            registry.counter("audit.cases").inc()
            registry.histogram("audit.steady_state.rel_err").observe(
                record["steady_state"]["rel_err"]
            )
            registry.counter(
                f"audit.dominant.{record['steady_state']['dominant_term']}"
            ).inc()
            if "full_generation" in record:
                registry.histogram("audit.full_generation.rel_err").observe(
                    record["full_generation"]["rel_err"]
                )

    faulted: dict[str, Any] | None = None
    if faults:
        with span("obs.audit.faulted_sweep"):
            faulted = _faulted_sweep(platform, cases, registry, fault_tolerance)

    steady_errs = {r["name"]: r["steady_state"]["rel_err"] for r in records}
    worst = max(steady_errs, key=lambda k: (steady_errs[k], k))
    over = sorted(n for n, e in steady_errs.items() if e > tolerance)
    e2e_over = sorted(
        r["name"]
        for r in records
        if "full_generation" in r and r["full_generation"]["rel_err"] > e2e_tolerance
    )
    ok = not over and not e2e_over
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "tolerance": tolerance,
        "e2e_tolerance": e2e_tolerance,
        "cases": records,
        "summary": {
            "num_cases": len(records),
            "worst_case": worst,
            "max_rel_err": steady_errs[worst],
            "mean_rel_err": sum(steady_errs.values()) / len(steady_errs),
            "over_tolerance": over,
            "e2e_over_tolerance": e2e_over,
            "ok": ok,
        },
        "metrics": registry.to_dict(),
    }
    if faulted is not None:
        payload["fault_tolerance"] = fault_tolerance
        payload["faulted"] = faulted
    return payload


def write_bench_audit(
    path: str = "BENCH_audit.json", **kwargs: Any
) -> dict[str, Any]:
    """Run the audit and write the payload to ``path`` (deterministic)."""
    payload = run_audit(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def audit_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten one audit payload into CLI table rows."""
    rows: list[dict[str, Any]] = []
    for record in payload["cases"]:
        ss = record["steady_state"]
        row = {
            "case": record["name"],
            "predicted_s": round(ss["predicted_s"], 4),
            "simulated_s": round(ss["simulated_s"], 4),
            "rel_err": round(ss["rel_err"], 4),
            "dominates": ss["dominant_term"],
            "task": ss["bottleneck_task"],
            "eq2_optimism": round(ss["literal_eq2_optimism"], 4),
        }
        fg = record.get("full_generation")
        row["e2e_err"] = round(fg["rel_err"], 4) if fg else "-"
        rows.append(row)
    return rows


def faulted_rows(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten the ``faulted`` section into CLI table rows (one per
    unique degraded-platform window)."""
    rows: list[dict[str, Any]] = []
    for scenario in payload["faulted"]["scenarios"]:
        for idx, win in enumerate(scenario["windows"]):
            w = win["window"]
            rows.append({
                "scenario": scenario["scenario"],
                "window": f"{w['start_s']:.1f}-{w['end_s']:.1f}s",
                "x": w["occurrences"],
                "faults": "+".join(w["kinds"]),
                "worst_case": win["worst_case"],
                "max_rel_err": round(win["max_rel_err"], 4),
                "mean_rel_err": round(win["mean_rel_err"], 4),
            })
    return rows
