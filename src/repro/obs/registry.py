"""Typed metrics registry: named Counter / Gauge / Histogram / TimeSeries.

One registry instance is the single place a layer's counters live, in
place of the ad-hoc ``dict`` accumulators that used to be scattered over
the serving metrics, the bench harnesses and the fault bookkeeping.
Four series types cover everything the repo records:

* :class:`Counter`  — monotone event tallies (steps run, drops by reason);
* :class:`Gauge`    — last-written point-in-time values that also track
  their running min/max (queue depth, batch size);
* :class:`Histogram` — full sample sets with exact nearest-rank
  percentiles (latency distributions, per-step durations).  Samples are
  kept raw — no bucketing error — because every producer in this repo is
  a simulator whose sample counts are small and whose serialized output
  must be bit-stable;
* :class:`TimeSeries` — ``(virtual_timestamp, value)`` samples in a
  bounded ring buffer, for quantities whose *trajectory* matters (queue
  depth over the run, per-step price, the active degradation rung) rather
  than just their end-of-run aggregate.  When the ring overflows, the
  oldest samples are evicted and counted in ``dropped`` — a run's tail is
  always retained and nothing ever grows without bound.

Serialization is deterministic by construction: ``to_dict`` orders series
by name, histograms summarize with the same nearest-rank arithmetic the
SLO metrics use, and nothing records wall-clock time.  The registry can
also render itself as Chrome-trace counter rows so a metrics export and a
timeline export stay one artifact (``export_chrome``).

The module is dependency-free (stdlib only) so every layer — including
``repro.runtime``, which ``repro.perfmodel`` imports — can use it without
import cycles.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from fractions import Fraction


def exact_nearest_rank(values: list[float], pct: float | int) -> float:
    """Nearest-rank percentile with *exact* rank arithmetic.

    The rank is ``ceil(n * pct / 100)`` computed over rationals, so float
    percentiles (99.9) are handled exactly: ``Fraction(str(pct))`` parses
    the decimal literal the caller wrote rather than the binary float it
    became, and the ceiling is taken without ever rounding through a
    float.  (The previous trick ``-(-n * pct // 100)`` ran in float
    arithmetic for float ``pct``; whenever ``n * pct / 100`` is
    mathematically an integer but the float product lands epsilon above
    it, the ceiling bumps the rank by one — e.g. n=250, pct=64.4 picked
    rank 162 instead of 161.)
    """
    if not values:
        return 0.0
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    n = len(ordered)
    rank = max(1, math.ceil(Fraction(n) * Fraction(str(pct)) / 100))
    return ordered[min(rank, n) - 1]


@dataclass
class Counter:
    """A monotonically increasing event tally."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value that remembers its running extremes."""

    name: str
    help: str = ""
    value: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.samples += 1

    def to_dict(self) -> dict:
        out: dict = {"type": "gauge", "value": self.value, "samples": self.samples}
        if self.samples:
            out["min"] = self.min
            out["max"] = self.max
        return out


@dataclass
class Histogram:
    """A raw-sample distribution with exact nearest-rank percentiles."""

    name: str
    help: str = ""
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    def percentile(self, pct: float | int) -> float:
        return exact_nearest_rank(self.values, pct)

    def summary(self, percentiles: tuple[float | int, ...] = (50, 95, 99)) -> dict:
        out = {f"p{p:g}": self.percentile(p) for p in percentiles}
        out["mean"] = self.mean
        return out

    def to_dict(self) -> dict:
        out: dict = {"type": "histogram", "count": self.count}
        if self.values:
            out["sum"] = self.sum
            out["mean"] = self.mean
            out["min"] = min(self.values)
            out["max"] = max(self.values)
            for p in (50, 95, 99):
                out[f"p{p:g}"] = self.percentile(p)
        return out


@dataclass
class TimeSeries:
    """Per-step samples at virtual timestamps, in a bounded ring buffer.

    ``sample(t_s, value)`` appends one point; once ``capacity`` points are
    held, each new sample evicts the oldest (``dropped`` counts the
    evictions).  Timestamps are virtual-clock seconds from the producer —
    nothing here reads a wall clock, so serialization is deterministic.
    """

    name: str
    help: str = ""
    capacity: int = 4096
    dropped: int = 0
    _points: list[tuple[float, float]] = field(default_factory=list, repr=False)
    _head: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(
                f"timeseries {self.name}: capacity must be positive "
                f"(got {self.capacity})"
            )

    def sample(self, t_s: float, value: float) -> None:
        """Record ``value`` at virtual time ``t_s`` (evicting when full)."""
        if len(self._points) < self.capacity:
            self._points.append((t_s, value))
        else:
            self._points[self._head] = (t_s, value)
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    @property
    def count(self) -> int:
        """Points currently held (<= capacity)."""
        return len(self._points)

    @property
    def total_samples(self) -> int:
        """Every sample ever recorded, including evicted ones."""
        return len(self._points) + self.dropped

    def points(self) -> list[tuple[float, float]]:
        """Retained points in chronological (recording) order."""
        return self._points[self._head :] + self._points[: self._head]

    def values(self) -> list[float]:
        return [v for _, v in self.points()]

    def to_dict(self) -> dict:
        out: dict = {
            "type": "timeseries",
            "count": self.count,
            "capacity": self.capacity,
            "dropped": self.dropped,
        }
        pts = self.points()
        if pts:
            vals = [v for _, v in pts]
            out["first_t_s"] = pts[0][0]
            out["last_t_s"] = pts[-1][0]
            out["min"] = min(vals)
            out["max"] = max(vals)
            out["last"] = vals[-1]
            out["points"] = [[t, v] for t, v in pts]
        return out


class MetricsRegistry:
    """Get-or-create home for named series, serialized deterministically.

    Series names are dotted paths (``serving.drops.queue_full``); a name
    maps to exactly one series type for the registry's lifetime —
    re-registering under a different type is a programming error and
    raises immediately rather than silently forking the series.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._series: dict[str, Counter | Gauge | Histogram | TimeSeries] = {}

    def _get(self, cls, name: str, help: str):
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = cls(name=name, help=help)
        elif not isinstance(series, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(series).__name__}, requested {cls.__name__}"
            )
        return series

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def timeseries(
        self, name: str, help: str = "", capacity: int = 4096
    ) -> TimeSeries:
        """Get-or-create a :class:`TimeSeries`.  ``capacity`` binds only at
        creation; later calls return the existing ring unchanged."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(
                name=name, help=help, capacity=capacity
            )
        elif not isinstance(series, TimeSeries):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(series).__name__}, requested TimeSeries"
            )
        return series

    def merge(self, other: "MetricsRegistry") -> None:
        """Adopt every series of ``other`` (by reference, not copied).

        Lets a producer-local registry (e.g. the serving loop's per-step
        time series) fold into the run-level export registry.  A name
        collision is a programming error — two owners for one series —
        and raises rather than silently overwriting either side.
        """
        for name, series in other._series.items():
            if name in self._series:
                raise ValueError(
                    f"metric {name!r} exists in both registries; refusing to "
                    "merge overlapping series"
                )
            self._series[name] = series

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> list[str]:
        return sorted(self._series)

    def to_dict(self) -> dict:
        """Deterministic document: series sorted by name, typed payloads."""
        doc: dict = {"series": {}}
        if self.namespace:
            doc["namespace"] = self.namespace
        for name in sorted(self._series):
            doc["series"][name] = self._series[name].to_dict()
        return doc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def export_chrome(self, builder, ts_s: float = 0.0, resource: str = "metrics") -> None:
        """Render every scalar series as Chrome-trace counter rows.

        Counters and gauges become one counter sample each; histograms
        emit their count and mean (the distribution itself belongs in the
        JSON export, not a trace row); time series emit one counter row
        *per retained point at that point's own timestamp*, so the viewer
        draws the actual curve over virtual time.  ``builder`` is a
        :class:`~repro.trace.chrome.ChromeTraceBuilder` (duck-typed to
        avoid an import cycle: trace imports nothing from here).
        """
        for name in sorted(self._series):
            series = self._series[name]
            if isinstance(series, (Counter, Gauge)):
                builder.add_counter(name, ts_s, resource=resource, value=series.value)
            elif isinstance(series, TimeSeries):
                for t, v in series.points():
                    builder.add_counter(name, t, resource=resource, value=v)
            else:
                builder.add_counter(
                    name, ts_s, resource=resource,
                    count=float(series.count), mean=series.mean,
                )
