"""Unified observability: metrics registry, profiling hooks, drift audit.

Three parts, one contract — *recording must never change the thing being
recorded*:

* :mod:`repro.obs.registry` — typed ``Counter``/``Gauge``/``Histogram``/
  ``TimeSeries`` series with deterministic serialization (JSON and
  Chrome-trace counter rows), replacing the ad-hoc dict accumulators that
  used to live in the serving metrics, the bench harnesses and the fault
  bookkeeping; ``TimeSeries`` holds bounded per-step samples at virtual
  timestamps so queue depth, step price and the degradation rung are
  inspectable as curves, not just end-of-run totals;
* :mod:`repro.obs.profiling` — ``span()`` scopes, call counts and cache
  hit rates instrumented through the planner, executor, serving loop and
  parallelism controller, zero-overhead when disabled (the default);
* :mod:`repro.obs.audit` — the model-vs-runtime drift audit behind
  ``python -m repro audit``: Eq. 1/2 closed forms vs the discrete-event
  executor on identical task costs, across a config grid, with a
  tolerance gate every later PR must keep green.

``repro.obs.registry`` and ``repro.obs.profiling`` are stdlib-only so any
layer can import them without cycles; the audit imports the model and
runtime lazily at run time.
"""

from repro.obs.profiling import (
    CacheStats,
    Profiler,
    PROFILER,
    Scope,
    ScopeStats,
    profiling_enabled,
    span,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    exact_nearest_rank,
)

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROFILER",
    "Profiler",
    "Scope",
    "ScopeStats",
    "TimeSeries",
    "exact_nearest_rank",
    "profiling_enabled",
    "span",
]
