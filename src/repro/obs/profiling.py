"""Profiling hooks: ``span()`` scopes, call counts, cache hit rates.

The planner, the executor, the serving loop and the parallelism
controller are all instrumented with these hooks; the instrumentation is
**off by default** and, when off, costs one attribute read and one branch
per call site — no context manager is constructed, no clock is read, no
dict is touched.  The zero-overhead contract is load-bearing: the serving
identity tests assert that enabling/disabling observability never changes
a simulation's output, and the perf harness relies on disabled hooks not
showing up in its medians.

Usage::

    from repro.obs import PROFILER, span

    with span("engine.plan"):            # no-op singleton when disabled
        ...
    if PROFILER.enabled:                 # guard for hot-path bookkeeping
        PROFILER.cache("oracle.step_cache", hit=True)

``PROFILER`` is the process-wide default instance (the CLI flips it on
with ``--profile``); tests construct private :class:`Profiler` instances
and swap them in with :func:`use_profiler` to avoid cross-test bleed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class ScopeStats:
    """Accumulated timings of one named scope."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def record(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        self.max_s = max(self.max_s, elapsed)

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.calls if self.calls else 0.0,
        }


@dataclass
class CacheStats:
    """Hit/miss tally of one named cache."""

    name: str
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


class _NullScope:
    """The shared do-nothing context manager handed out when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SCOPE = _NullScope()


class Scope:
    """An active timed scope (one per ``with span(...)`` entry)."""

    __slots__ = ("_stats", "_start")

    def __init__(self, stats: ScopeStats) -> None:
        self._stats = stats

    def __enter__(self) -> "Scope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stats.record(time.perf_counter() - self._start)


class Profiler:
    """Collects scope timings, call counts and cache hit rates.

    ``enabled`` gates everything: a disabled profiler's :meth:`span`
    returns a shared no-op singleton and its recording methods return
    immediately.  Reports are deterministic in *structure* (sorted names);
    the timings themselves are wall-clock and belong in diagnostics, never
    in committed artifacts.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._scopes: dict[str, ScopeStats] = {}
        self._caches: dict[str, CacheStats] = {}
        self._counts: dict[str, int] = {}

    # -- control -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._scopes.clear()
        self._caches.clear()
        self._counts.clear()

    # -- recording ---------------------------------------------------------

    def span(self, name: str):
        """Context manager timing one scope (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SCOPE
        stats = self._scopes.get(name)
        if stats is None:
            stats = self._scopes[name] = ScopeStats(name)
        return Scope(stats)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a bare call counter (no timing)."""
        if not self.enabled:
            return
        self._counts[name] = self._counts.get(name, 0) + amount

    def cache(self, name: str, hit: bool) -> None:
        """Record one cache lookup outcome."""
        if not self.enabled:
            return
        stats = self._caches.get(name)
        if stats is None:
            stats = self._caches[name] = CacheStats(name)
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1

    # -- reporting ---------------------------------------------------------

    def scope(self, name: str) -> ScopeStats | None:
        return self._scopes.get(name)

    def cache_stats(self, name: str) -> CacheStats | None:
        return self._caches.get(name)

    def report(self) -> dict:
        """JSON-ready snapshot: sorted scopes, caches and counters."""
        return {
            "enabled": self.enabled,
            "scopes": {n: self._scopes[n].to_dict() for n in sorted(self._scopes)},
            "caches": {n: self._caches[n].to_dict() for n in sorted(self._caches)},
            "counts": {n: self._counts[n] for n in sorted(self._counts)},
        }


#: The process-wide profiler every instrumented layer reports into.
#: There is exactly one instance — call sites bind it at import time, so
#: it is never swapped, only enabled/disabled (and reset).
PROFILER = Profiler(enabled=False)


def span(name: str):
    """Time a scope against the process profiler (no-op when disabled)."""
    return PROFILER.span(name)


@contextmanager
def profiling_enabled(reset: bool = True):
    """Enable the process profiler for a scope, restoring the prior flag.

    ``reset`` (default) clears previously accumulated stats first so the
    scope reads as one isolated measurement — what both the CLI
    ``--profile`` flag and the tests want.
    """
    prior = PROFILER.enabled
    if reset:
        PROFILER.reset()
    PROFILER.enabled = True
    try:
        yield PROFILER
    finally:
        PROFILER.enabled = prior
