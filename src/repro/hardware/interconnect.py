"""Interconnect links between devices (PCIe, NVLink, SATA...).

A :class:`Link` is directional-bandwidth aware: PCIe 4.0 x16 offers
32 GB/s *per direction* (the paper quotes the 64 GB/s bidirectional
aggregate).  Load (host-to-device) and store (device-to-host) tasks run on
opposite directions and therefore do not contend with each other, which is
what lets FlexGen/LM-Offload overlap them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Link:
    """A point-to-point link between two devices.

    Parameters
    ----------
    src, dst:
        Device names.  A link is usable in both directions; ``bandwidth``
        applies independently per direction (full duplex).
    bandwidth:
        Bytes/s per direction.
    latency:
        Fixed per-transfer latency in seconds (DMA setup, kernel launch).
    """

    src: str
    dst: str
    bandwidth: float
    latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError(f"link {self.src}->{self.dst}: bandwidth must be > 0")
        if self.latency < 0:
            raise ConfigError(f"link {self.src}->{self.dst}: latency must be >= 0")

    def connects(self, a: str, b: str) -> bool:
        """True if this link joins devices ``a`` and ``b`` (either order)."""
        return {self.src, self.dst} == {a, b}

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` one way across the link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth
