"""Simulated heterogeneous hardware: devices, links, memory pools.

The paper evaluates on physical machines (A100 + dual Xeon 6330, and a
POWER9 + 4xV100 node).  This package models those machines as parameter
bundles — peak FLOP rates, memory bandwidths, clock frequencies, capacities
and interconnects — which is exactly the set of inputs consumed by the
paper's analytic performance model (Table 2).

Use the presets for paper-faithful platforms::

    from repro.hardware import single_a100, power9_4xv100
    plat = single_a100()
    plat.gpu.peak_flops          # 312 TFLOPS (fp16 tensor core)
    plat.pcie.bandwidth          # 32 GB/s per direction
"""

from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.interconnect import Link
from repro.hardware.memory import MemoryPool
from repro.hardware.cache import CacheHierarchy
from repro.hardware.platform import (
    Platform,
    single_a100,
    power9_4xv100,
    small_test_platform,
)

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "Link",
    "MemoryPool",
    "CacheHierarchy",
    "Platform",
    "single_a100",
    "power9_4xv100",
    "small_test_platform",
]
