"""CPU cache-hierarchy model for LLC-miss estimation (paper Table 5).

The paper measures last-level-cache misses with hardware counters and shows
that parallelism control reduces them by ~38 %.  The mechanism it credits is
*cache thrash from co-running operations*: each concurrently running op
claims a slice of the shared LLC, and once the combined working set exceeds
the cache, every additional co-runner converts hits into misses.

We reproduce that mechanism with a standard working-set model: for a
streaming workload touching ``traffic`` bytes with per-op working set ``w``
and ``c`` co-running ops on a socket with LLC size ``S``, the effective
per-op cache share is ``S / c`` and the miss ratio rises smoothly from the
compulsory-miss floor toward 1 as ``w`` exceeds the share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MIB


@dataclass(frozen=True)
class CacheHierarchy:
    """Shared-cache parameters of one CPU socket.

    Parameters
    ----------
    llc_bytes:
        Last-level cache capacity per socket (Xeon 6330: 42 MiB).
    line_bytes:
        Cache-line size; misses = missed bytes / line size.
    compulsory_ratio:
        Miss-ratio floor for purely streaming data (first touch always
        misses at the granularity of the hardware prefetcher's coverage).
    """

    llc_bytes: float = 42 * MIB
    line_bytes: int = 64
    compulsory_ratio: float = 0.35

    def miss_ratio(self, working_set: float, co_runners: int) -> float:
        """Miss ratio in [compulsory_ratio, 1] for one op.

        ``working_set`` is the bytes the op re-touches within its reuse
        window; ``co_runners`` is the number of ops sharing this socket's
        LLC (>= 1).
        """
        if co_runners < 1:
            raise ValueError("co_runners must be >= 1")
        if working_set < 0:
            raise ValueError("working_set must be non-negative")
        if working_set == 0:
            return self.compulsory_ratio
        share = self.llc_bytes / co_runners
        # Smooth saturating curve: ratio -> compulsory floor when the share
        # covers the working set, -> 1 when it is many times too small.
        pressure = working_set / (working_set + share)
        return self.compulsory_ratio + (1.0 - self.compulsory_ratio) * pressure

    def misses(self, traffic: float, working_set: float, co_runners: int) -> float:
        """Estimated LLC miss *count* for ``traffic`` bytes streamed."""
        if traffic < 0:
            raise ValueError("traffic must be non-negative")
        return self.miss_ratio(working_set, co_runners) * traffic / self.line_bytes
