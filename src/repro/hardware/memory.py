"""Byte-accurate memory pools with capacity enforcement.

Each device owns a :class:`MemoryPool`.  Tensor placement decisions made by
the offloading policies are validated against these pools, so an infeasible
policy (e.g. ZeRO-Inference trying to keep 55 GB of weights on a 40 GB GPU)
fails loudly with :class:`~repro.errors.MemoryCapacityError` instead of
silently producing impossible throughput numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import MemoryCapacityError


@dataclass
class MemoryPool:
    """A fixed-capacity byte pool with named allocations.

    Allocations are tracked by handle name so tests can assert exactly which
    tensors live where, mirroring the "wg/cg/hg" placement columns of the
    paper's Table 3.
    """

    name: str
    capacity: int
    _allocations: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"pool {self.name}: capacity must be > 0")

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self.used / self.capacity

    def allocate(self, handle: str, nbytes: float) -> None:
        """Reserve ``nbytes`` (rounded up to whole bytes) under ``handle``.

        Raises
        ------
        MemoryCapacityError
            If the pool would overflow.
        ValueError
            If ``handle`` is already allocated (allocations are unique; use
            :meth:`resize` to grow one, as the KV cache does every token).
        """
        nbytes = math.ceil(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if handle in self._allocations:
            raise ValueError(f"pool {self.name}: handle {handle!r} already allocated")
        if nbytes > self.free:
            raise MemoryCapacityError(self.name, nbytes, self.free)
        self._allocations[handle] = nbytes

    def resize(self, handle: str, nbytes: float) -> None:
        """Grow or shrink an existing allocation to ``nbytes`` total."""
        nbytes = math.ceil(nbytes)
        if handle not in self._allocations:
            raise KeyError(f"pool {self.name}: unknown handle {handle!r}")
        delta = nbytes - self._allocations[handle]
        if delta > self.free:
            raise MemoryCapacityError(self.name, delta, self.free)
        self._allocations[handle] = nbytes

    def release(self, handle: str) -> int:
        """Free an allocation; returns the bytes released."""
        try:
            return self._allocations.pop(handle)
        except KeyError:
            raise KeyError(f"pool {self.name}: unknown handle {handle!r}") from None

    def size_of(self, handle: str) -> int:
        """Bytes held by ``handle``."""
        return self._allocations[handle]

    def holds(self, handle: str) -> bool:
        """True if ``handle`` is allocated in this pool."""
        return handle in self._allocations

    def handles(self) -> list[str]:
        """Sorted list of live allocation handles."""
        return sorted(self._allocations)

    def clear(self) -> None:
        """Drop every allocation (used between benchmark runs)."""
        self._allocations.clear()
