"""Platform = devices + links + per-device memory pools, with paper presets.

Two presets mirror the paper's Table 4:

* :func:`single_a100` — 1x NVIDIA A100-40GB, 2x Intel Xeon Gold 6330
  (56 cores / 112 threads total), 240 GB host memory, PCIe 4.0 x16.
* :func:`power9_4xv100` — 2x IBM POWER9 (44 cores), 4x V100-16GB,
  NVLink 2.0.

A third, :func:`small_test_platform`, is a scaled-down platform used by the
functional (real NumPy execution) tests so that tiny models genuinely hit
capacity limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hardware.cache import CacheHierarchy
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.interconnect import Link
from repro.hardware.memory import MemoryPool
from repro.units import GB, GB_PER_S, GHZ, GIB, MIB, TFLOPS


@dataclass
class Platform:
    """A machine: named devices, the links joining them, and memory pools."""

    name: str
    devices: dict[str, DeviceSpec]
    links: list[Link]
    cache: CacheHierarchy = field(default_factory=CacheHierarchy)
    pools: dict[str, MemoryPool] = field(init=False)

    def __post_init__(self) -> None:
        for link in self.links:
            for end in (link.src, link.dst):
                if end not in self.devices:
                    raise ConfigError(
                        f"platform {self.name}: link references unknown device {end!r}"
                    )
        self.pools = {
            name: MemoryPool(name=name, capacity=spec.memory_capacity)
            for name, spec in self.devices.items()
        }

    # -- lookup helpers ----------------------------------------------------

    def device(self, name: str) -> DeviceSpec:
        try:
            return self.devices[name]
        except KeyError:
            raise ConfigError(
                f"platform {self.name}: unknown device {name!r}"
            ) from None

    @property
    def gpus(self) -> list[DeviceSpec]:
        """All GPU devices, sorted by name (gpu0, gpu1, ...)."""
        return sorted(
            (d for d in self.devices.values() if d.is_gpu), key=lambda d: d.name
        )

    @property
    def gpu(self) -> DeviceSpec:
        """The unique GPU (convenience for single-GPU platforms)."""
        gpus = self.gpus
        if len(gpus) != 1:
            raise ConfigError(
                f"platform {self.name}: .gpu requires exactly one GPU, found {len(gpus)}"
            )
        return gpus[0]

    @property
    def cpu(self) -> DeviceSpec:
        cpus = [d for d in self.devices.values() if d.is_cpu]
        if len(cpus) != 1:
            raise ConfigError(
                f"platform {self.name}: expected exactly one CPU, found {len(cpus)}"
            )
        return cpus[0]

    def link_between(self, a: str, b: str) -> Link:
        """The link joining devices ``a`` and ``b``."""
        for link in self.links:
            if link.connects(a, b):
                return link
        raise ConfigError(f"platform {self.name}: no link between {a!r} and {b!r}")

    @property
    def pcie(self) -> Link:
        """The CPU<->(first) GPU link."""
        return self.link_between(self.cpu.name, self.gpus[0].name)

    def reset_pools(self) -> None:
        """Drop all allocations (between experiment runs)."""
        for pool in self.pools.values():
            pool.clear()

    def with_faults(self, faults, t: float) -> "Platform":
        """This platform as a fault schedule leaves it at time ``t``.

        Non-destructive: returns a new :class:`Platform` (or ``self`` when
        no capability fault is active at ``t``); the base specs are never
        mutated.  ``faults`` is a :class:`~repro.faults.FaultSchedule` or
        an iterable of :class:`~repro.faults.FaultSpec`.
        """
        from repro.faults.overlay import degraded_platform

        return degraded_platform(self, faults, t)


# ---------------------------------------------------------------------------
# Presets (paper Table 4)
# ---------------------------------------------------------------------------


def single_a100(host_memory: int = 360 * GB) -> Platform:
    """The paper's single-GPU platform.

    A100-40GB: 312 TFLOPS fp16 tensor core, 1555 GB/s HBM2, 1.41 GHz boost.
    2x Xeon Gold 6330: 56 cores / 112 HW threads, 2.0 GHz base,
    ~2.8 TFLOPS aggregate fp32 AVX-512, ~380 GB/s aggregate DDR4-2933
    (of which ~200 GB/s is realistically achievable from one NUMA-unaware
    process — we use the achievable figure since the paper's tasks are
    bandwidth-bound).

    The host *pool* defaults to 360 GB rather than the physical 240 GB:
    the paper's own Table 3 reports total memory consumption up to 326 GB
    on this machine, implying disk/NVMe spill beyond DRAM; a strict 240 GB
    pool would reject several of the paper's own configurations.
    """
    gpu = DeviceSpec(
        name="gpu0",
        kind=DeviceKind.GPU,
        peak_flops=312 * TFLOPS,
        mem_bandwidth=1555 * GB_PER_S,
        freq=1.41 * GHZ,
        memory_capacity=40 * GB,
    )
    cpu = DeviceSpec(
        name="cpu",
        kind=DeviceKind.CPU,
        peak_flops=2.8 * TFLOPS,
        mem_bandwidth=200 * GB_PER_S,
        freq=2.0 * GHZ,
        memory_capacity=host_memory,
        cores=56,
        smt=2,
        sockets=2,
    )
    disk = DeviceSpec(
        name="disk",
        kind=DeviceKind.DISK,
        peak_flops=1.0,  # disks do not compute
        mem_bandwidth=2 * GB_PER_S,
        freq=1.0,
        memory_capacity=4000 * GB,
    )
    links = [
        Link(src="cpu", dst="gpu0", bandwidth=32 * GB_PER_S),  # PCIe 4.0 x16
        Link(src="disk", dst="cpu", bandwidth=2 * GB_PER_S),
    ]
    return Platform(
        name="single-a100",
        devices={d.name: d for d in (gpu, cpu, disk)},
        links=links,
        cache=CacheHierarchy(llc_bytes=42 * MIB),
    )


def power9_4xv100(num_gpus: int = 4) -> Platform:
    """The paper's multi-GPU platform: 2x POWER9 + ``num_gpus`` V100-16GB.

    V100: 112 TFLOPS fp16, 900 GB/s HBM2.  NVLink 2.0 gives each GPU a
    150 GB/s per-direction path to the CPU on POWER9 (the paper quotes the
    300 GB/s bidirectional aggregate).
    """
    if not 1 <= num_gpus <= 4:
        raise ConfigError("power9_4xv100 supports 1..4 GPUs")
    cpu = DeviceSpec(
        name="cpu",
        kind=DeviceKind.CPU,
        peak_flops=1.6 * TFLOPS,
        mem_bandwidth=170 * GB_PER_S,
        freq=3.0 * GHZ,
        memory_capacity=280 * GB,
        cores=44,
        smt=4,
        sockets=2,
    )
    devices: dict[str, DeviceSpec] = {"cpu": cpu}
    links: list[Link] = []
    for i in range(num_gpus):
        gpu = DeviceSpec(
            name=f"gpu{i}",
            kind=DeviceKind.GPU,
            peak_flops=112 * TFLOPS,
            mem_bandwidth=900 * GB_PER_S,
            freq=1.53 * GHZ,
            memory_capacity=16 * GB,
        )
        devices[gpu.name] = gpu
        links.append(Link(src="cpu", dst=gpu.name, bandwidth=150 * GB_PER_S))
    # NVLink GPU<->GPU ring for pipeline-parallel activation handoff.
    for i in range(num_gpus - 1):
        links.append(Link(src=f"gpu{i}", dst=f"gpu{i+1}", bandwidth=150 * GB_PER_S))
    return Platform(
        name=f"power9-{num_gpus}xv100",
        devices=devices,
        links=links,
        cache=CacheHierarchy(llc_bytes=120 * MIB),
    )


def small_test_platform(
    gpu_memory: int = 64 * MIB, host_memory: int = 1 * GIB
) -> Platform:
    """A miniature platform for functional tests with real NumPy tensors.

    Deliberately tiny GPU memory so that small test models exercise the
    offloading machinery (placement, eviction, capacity errors) for real.
    """
    gpu = DeviceSpec(
        name="gpu0",
        kind=DeviceKind.GPU,
        peak_flops=1 * TFLOPS,
        mem_bandwidth=100 * GB_PER_S,
        freq=1.0 * GHZ,
        memory_capacity=gpu_memory,
    )
    cpu = DeviceSpec(
        name="cpu",
        kind=DeviceKind.CPU,
        peak_flops=0.1 * TFLOPS,
        mem_bandwidth=20 * GB_PER_S,
        freq=2.0 * GHZ,
        memory_capacity=host_memory,
        cores=8,
        smt=2,
        sockets=1,
    )
    links = [Link(src="cpu", dst="gpu0", bandwidth=8 * GB_PER_S)]
    return Platform(
        name="small-test",
        devices={d.name: d for d in (gpu, cpu)},
        links=links,
        cache=CacheHierarchy(llc_bytes=8 * MIB),
    )
