"""Device specifications (GPU / CPU) used by the performance model.

A :class:`DeviceSpec` is a plain parameter bundle.  The names follow the
paper's Table 2 notation: ``peak_flops`` maps to ``gpu_flops``/``cpu_flops``,
``mem_bandwidth`` to ``gpu_mem_bdw``/``cpu_mem_bdw`` and ``freq`` to
``gpu_freq``/``cpu_freq``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class DeviceKind(enum.Enum):
    """Classification of a device for placement decisions."""

    GPU = "gpu"
    CPU = "cpu"
    DISK = "disk"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one device.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`~repro.hardware.platform.Platform`
        (e.g. ``"gpu0"``, ``"cpu"``).
    kind:
        GPU, CPU or DISK.
    peak_flops:
        Peak floating-point throughput in FLOP/s for the matrix-multiply
        datatype the engine uses on this device (fp16 tensor-core rate for
        GPUs, fp32 SIMD rate for CPUs).
    mem_bandwidth:
        Peak attached-memory bandwidth in bytes/s (HBM for GPUs, aggregate
        DDR for CPUs).
    freq:
        Core clock in Hz.  The paper's min/max-scan cost (Eq. 13, 21) is
        charged per element against this clock.
    memory_capacity:
        Usable memory in bytes.
    cores:
        Physical core count (CPUs only; GPUs use 0 since the model never
        schedules per-SM).
    smt:
        Hardware threads per core (CPUs only).
    sockets:
        Socket count; threads spanning more than one socket pay the NUMA
        penalty in :mod:`repro.parallel.speedup`.
    """

    name: str
    kind: DeviceKind
    peak_flops: float
    mem_bandwidth: float
    freq: float
    memory_capacity: int
    cores: int = 0
    smt: int = 1
    sockets: int = 1
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 and self.kind is not DeviceKind.DISK:
            raise ConfigError(f"device {self.name}: peak_flops must be > 0")
        if self.mem_bandwidth <= 0:
            raise ConfigError(f"device {self.name}: mem_bandwidth must be > 0")
        if self.memory_capacity <= 0:
            raise ConfigError(f"device {self.name}: memory_capacity must be > 0")
        if self.kind is DeviceKind.CPU and self.cores <= 0:
            raise ConfigError(f"CPU device {self.name}: cores must be > 0")

    @property
    def hardware_threads(self) -> int:
        """Total schedulable hardware threads (cores x SMT)."""
        return self.cores * self.smt

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def is_cpu(self) -> bool:
        return self.kind is DeviceKind.CPU

    def matmul_time(self, flops: float, bytes_touched: float) -> float:
        """Roofline time for a GEMM-like op: max(compute, memory) seconds.

        The decode-phase GEMV workloads in LLM inference are memory-bound on
        GPUs (arithmetic intensity ~1 FLOP/byte), so the roofline max is the
        correct first-order model and is what makes batch size matter.
        """
        if flops < 0 or bytes_touched < 0:
            raise ValueError("flops and bytes_touched must be non-negative")
        return max(flops / self.peak_flops, bytes_touched / self.mem_bandwidth)

    def elementwise_time(self, elements: float, flops_per_element: float = 1.0) -> float:
        """Time for a streaming element-wise pass (normalisation etc.)."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        return elements * flops_per_element / self.peak_flops

    def scan_time(self, elements: float) -> float:
        """Per-element scan cost charged against the clock (Eqs. 13, 21)."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        return elements / self.freq

    def copy_time(self, nbytes: float) -> float:
        """Time for an in-memory copy of ``nbytes`` (Eqs. 15, 23)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.mem_bandwidth
