"""TensorStore: the placement ledger over a platform's memory pools.

Every tensor registered with the store is charged against the pool of the
device it lives on; moving a tensor releases it from the source pool and
charges the destination.  This is what makes infeasible policies fail the
same way they would on real hardware (CUDA OOM -> MemoryCapacityError).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import PlacementError
from repro.hardware.platform import Platform
from repro.offload.tensor import ManagedTensor


class TensorStore:
    """Registry of :class:`ManagedTensor` objects bound to a platform."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._tensors: dict[str, ManagedTensor] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._tensors

    def __iter__(self) -> Iterator[ManagedTensor]:
        return iter(self._tensors.values())

    def __len__(self) -> int:
        return len(self._tensors)

    def register(self, tensor: ManagedTensor) -> ManagedTensor:
        """Add a tensor and charge its bytes to its device pool."""
        if tensor.name in self._tensors:
            raise ValueError(f"tensor {tensor.name!r} already registered")
        pool = self.platform.pools[tensor.device]
        pool.allocate(tensor.name, tensor.nbytes)
        self._tensors[tensor.name] = tensor
        return tensor

    def get(self, name: str) -> ManagedTensor:
        try:
            return self._tensors[name]
        except KeyError:
            raise KeyError(f"unknown tensor {name!r}") from None

    def release(self, name: str) -> None:
        """Drop a tensor and free its pool bytes."""
        tensor = self.get(name)
        self.platform.pools[tensor.device].release(name)
        del self._tensors[name]

    def relocate(self, name: str, device: str) -> ManagedTensor:
        """Move a tensor's accounting (and payload ownership) to ``device``.

        The byte size is unchanged — transfers that change representation
        (quantize on store, dequantize on load) must swap the payload first
        via :meth:`replace_payload`.
        """
        tensor = self.get(name)
        if tensor.device == device:
            return tensor
        if device not in self.platform.pools:
            raise PlacementError(f"unknown device {device!r}")
        src_pool = self.platform.pools[tensor.device]
        dst_pool = self.platform.pools[device]
        dst_pool.allocate(name, tensor.nbytes)
        src_pool.release(name)
        tensor.device = device
        return tensor

    def replace_payload(self, name: str, tensor: ManagedTensor) -> ManagedTensor:
        """Swap a tensor in place (e.g. fp16 -> quantized), re-accounting bytes.

        ``tensor`` must carry the same name; its device is preserved from
        the existing entry unless it differs explicitly.
        """
        if tensor.name != name:
            raise ValueError("replacement tensor must keep the same name")
        old = self.get(name)
        pool = self.platform.pools[old.device]
        pool.resize(name, tensor.nbytes)
        tensor.device = old.device
        self._tensors[name] = tensor
        return tensor

    def resize(self, name: str, nbytes: float) -> None:
        """Grow/shrink a tensor (KV cache append)."""
        import math

        tensor = self.get(name)
        rounded = math.ceil(nbytes)
        self.platform.pools[tensor.device].resize(name, rounded)
        tensor.nbytes = rounded

    # -- queries -------------------------------------------------------------

    def bytes_on(self, device: str) -> int:
        """Total tensor bytes resident on ``device``."""
        return sum(t.nbytes for t in self._tensors.values() if t.device == device)

    def on_device(self, device: str) -> list[ManagedTensor]:
        """Tensors resident on ``device``, sorted by name."""
        return sorted(
            (t for t in self._tensors.values() if t.device == device),
            key=lambda t: t.name,
        )

    def array(self, name: str) -> np.ndarray:
        """The materialized payload of ``name`` (functional mode only)."""
        tensor = self.get(name)
        if not isinstance(tensor.payload, np.ndarray):
            raise PlacementError(
                f"tensor {name!r} has no materialized ndarray payload"
            )
        return tensor.payload
