"""Managed tensors: placement-tagged, optionally materialized payloads.

A :class:`ManagedTensor` always knows *where it lives* and *how many bytes
it occupies*; it may additionally hold a real NumPy array (functional runs)
or a :class:`~repro.quant.QuantizedTensor` (compressed form).  Analytic runs
at 30B+ scale create byte-only tensors — the placement and capacity
machinery behaves identically either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.errors import PlacementError
from repro.quant.groupwise import QuantizedTensor

Payload = Union[np.ndarray, QuantizedTensor, None]


@dataclass
class ManagedTensor:
    """A tensor tracked by the offloading runtime.

    Parameters
    ----------
    name:
        Unique handle, e.g. ``"layer3.wq"`` or ``"kv.12"``.
    nbytes:
        Size in bytes as stored (already reflects compression if the
        payload is quantized).
    device:
        Name of the owning device ("gpu0", "cpu", "disk").
    payload:
        Optional real data.
    pinned:
        Pinned tensors may not be evicted (e.g. resident weight shards).
    """

    name: str
    nbytes: int
    device: str
    payload: Payload = None
    pinned: bool = False
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nbytes = math.ceil(self.nbytes)
        if self.nbytes < 0:
            raise ValueError(f"tensor {self.name}: nbytes must be >= 0")

    @property
    def is_quantized(self) -> bool:
        return isinstance(self.payload, QuantizedTensor)

    @property
    def materialized(self) -> bool:
        """True when the tensor carries real data (functional mode)."""
        return self.payload is not None

    def require_on(self, device: str) -> None:
        """Assert placement before a device-local operation."""
        if self.device != device:
            raise PlacementError(
                f"tensor {self.name} is on {self.device!r}, required on {device!r}"
            )

    @classmethod
    def from_array(
        cls, name: str, array: np.ndarray, device: str, pinned: bool = False
    ) -> "ManagedTensor":
        """Wrap a real array."""
        return cls(
            name=name, nbytes=int(array.nbytes), device=device,
            payload=array, pinned=pinned,
        )

    @classmethod
    def from_quantized(
        cls, name: str, qt: QuantizedTensor, device: str, pinned: bool = False
    ) -> "ManagedTensor":
        """Wrap a quantized payload; ``nbytes`` is the compressed size."""
        return cls(
            name=name, nbytes=qt.nbytes, device=device, payload=qt, pinned=pinned
        )

    @classmethod
    def abstract(
        cls, name: str, nbytes: float, device: str, pinned: bool = False, **meta
    ) -> "ManagedTensor":
        """A byte-only tensor for analytic (paper-scale) runs."""
        return cls(
            name=name, nbytes=math.ceil(nbytes), device=device,
            payload=None, pinned=pinned, meta=dict(meta),
        )
