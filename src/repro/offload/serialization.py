"""JSON (de)serialization of policies and reports.

Policies found by an expensive planner run can be persisted and replayed;
reports can be archived for regression comparison across versions.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ConfigError
from repro.offload.policy import OffloadPolicy
from repro.quant.config import QuantConfig

SCHEMA_VERSION = 1


def quant_to_dict(quant: QuantConfig | None) -> dict[str, Any] | None:
    if quant is None:
        return None
    return {
        "bits": quant.bits,
        "group_size": quant.group_size,
        "group_dim": quant.group_dim,
    }


def quant_from_dict(data: dict[str, Any] | None) -> QuantConfig | None:
    if data is None:
        return None
    try:
        return QuantConfig(
            bits=int(data["bits"]),
            group_size=int(data["group_size"]),
            group_dim=int(data.get("group_dim", -1)),
        )
    except KeyError as exc:
        raise ConfigError(f"quant config missing key: {exc}") from None


def policy_to_dict(policy: OffloadPolicy) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "wg": policy.wg,
        "cg": policy.cg,
        "hg": policy.hg,
        "attention_on_cpu": policy.attention_on_cpu,
        "weight_quant": quant_to_dict(policy.weight_quant),
        "kv_quant": quant_to_dict(policy.kv_quant),
        "gpu_batch_size": policy.gpu_batch_size,
        "num_gpu_batches": policy.num_gpu_batches,
        "quantize_resident_weights": policy.quantize_resident_weights,
    }


def policy_from_dict(data: dict[str, Any]) -> OffloadPolicy:
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ConfigError(f"unsupported policy schema {schema}")
    try:
        return OffloadPolicy(
            wg=float(data["wg"]),
            cg=float(data["cg"]),
            hg=float(data["hg"]),
            attention_on_cpu=bool(data["attention_on_cpu"]),
            weight_quant=quant_from_dict(data.get("weight_quant")),
            kv_quant=quant_from_dict(data.get("kv_quant")),
            gpu_batch_size=int(data["gpu_batch_size"]),
            num_gpu_batches=int(data["num_gpu_batches"]),
            quantize_resident_weights=bool(
                data.get("quantize_resident_weights", False)
            ),
        )
    except KeyError as exc:
        raise ConfigError(f"policy dict missing key: {exc}") from None


def policy_to_json(policy: OffloadPolicy, indent: int | None = 2) -> str:
    return json.dumps(policy_to_dict(policy), indent=indent)


def policy_from_json(payload: str) -> OffloadPolicy:
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid policy JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigError("policy JSON must be an object")
    return policy_from_dict(data)


def report_to_dict(report) -> dict[str, Any]:
    """Serialise an :class:`~repro.core.report.InferenceReport` summary."""
    return {
        "schema": SCHEMA_VERSION,
        "engine": report.engine,
        "model": report.workload.model.name,
        "prompt_len": report.workload.prompt_len,
        "gen_len": report.workload.gen_len,
        "block_size": report.workload.block_size,
        "policy": policy_to_dict(report.policy),
        "throughput": report.throughput,
        "total_seconds": report.total_seconds,
        "gpu_bytes": report.gpu_bytes,
        "cpu_bytes": report.cpu_bytes,
        "bottleneck": report.breakdown.bottleneck,
        "task_totals": dict(report.breakdown.task_totals),
        "quant_overheads": dict(report.breakdown.quant_overheads),
    }


def report_to_json(report, indent: int | None = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent)
