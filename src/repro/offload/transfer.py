"""Transfer engine: simulated-time tensor movement with traffic accounting.

The per-direction :class:`TrafficLedger` is what regenerates the paper's
Table 1 (I/O traffic for one token generation with/without attention
offloading).  Directions are keyed ``(src, dst)`` so CPU->GPU and GPU->CPU
are independent, matching full-duplex PCIe.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.hardware.platform import Platform
from repro.offload.store import TensorStore


@dataclass
class TrafficLedger:
    """Cumulative bytes moved, keyed by (src, dst, category).

    Categories follow Table 1's rows: "weights", "kv_cache", "activation".
    """

    bytes_moved: dict[tuple[str, str, str], float] = field(
        default_factory=lambda: defaultdict(float)
    )

    def record(self, src: str, dst: str, category: str, nbytes: float) -> None:
        self.bytes_moved[(src, dst, category)] += nbytes

    def total(self, src: str | None = None, dst: str | None = None,
              category: str | None = None) -> float:
        """Sum over any subset of the key dimensions."""
        return sum(
            v
            for (s, d, c), v in self.bytes_moved.items()
            if (src is None or s == src)
            and (dst is None or d == dst)
            and (category is None or c == category)
        )

    def reset(self) -> None:
        self.bytes_moved.clear()

    def as_table(self) -> list[tuple[str, str, str, float]]:
        """Sorted (src, dst, category, bytes) rows for reporting."""
        return sorted(
            (s, d, c, v) for (s, d, c), v in self.bytes_moved.items()
        )


class TransferEngine:
    """Moves tensors between devices, charging link time and traffic."""

    def __init__(self, platform: Platform, store: TensorStore) -> None:
        self.platform = platform
        self.store = store
        self.ledger = TrafficLedger()

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst``."""
        if src == dst or nbytes == 0:
            return 0.0
        return self.platform.link_between(src, dst).transfer_time(nbytes)

    def move(self, name: str, dst: str, category: str = "other") -> float:
        """Relocate tensor ``name`` to ``dst``; returns simulated seconds."""
        tensor = self.store.get(name)
        src = tensor.device
        if src == dst:
            return 0.0
        seconds = self.transfer_time(src, dst, tensor.nbytes)
        self.ledger.record(src, dst, category, tensor.nbytes)
        self.store.relocate(name, dst)
        return seconds

    def charge(self, src: str, dst: str, nbytes: float, category: str) -> float:
        """Account a byte flow without a named tensor (analytic runs)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src == dst or nbytes == 0:
            return 0.0
        self.ledger.record(src, dst, category, nbytes)
        return self.transfer_time(src, dst, nbytes)
