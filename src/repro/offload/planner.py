"""Offloading policy search (FlexGen-style LP + grid, paper §2.2).

FlexGen formulates placement as a linear program: the six task times are
(piecewise) linear in the placement fractions ``wg``/``cg``/``hg``, the
objective is the overlapped max (Eq. 2), and GPU/CPU memory capacities are
linear constraints.  :class:`PolicyPlanner` implements:

* :meth:`lp_placement` — the LP relaxation via :func:`scipy.optimize.linprog`
  for a fixed (attention placement, quantization) choice;
* :meth:`search` — enumerate the discrete choices (attention placement x
  quantization menu when ``quant_aware``), solve/grid each, validate with
  the *true* cost model, and return the best feasible policy.

The FlexGen baseline uses ``quant_aware=False`` (it has no model of
quantization cost/benefit, per the paper's critique); LM-Offload uses
``quant_aware=True``.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np
from scipy.optimize import linprog

from repro.errors import PolicyError
from repro.obs.profiling import PROFILER, span
from repro.offload.policy import OffloadPolicy
from repro.perfmodel.latency import CostModel, CpuExecutionContext
from repro.perfmodel.notation import HardwareParams, Workload
from repro.quant.config import QuantConfig
from repro.units import dtype_bytes

logger = logging.getLogger(__name__)


class MemoryPrescreen:
    """Cheap memory-feasibility model for one search template.

    Mirrors :meth:`CostModel.gpu_bytes_required` / ``cpu_bytes_required``
    operation-for-operation, but binds every candidate-invariant
    sub-quantity (footprint, per-layer weight bytes, per-token KV bytes)
    once per template so the ``(wg, cg, hg)`` grid can be screened without
    constructing a :class:`CostModel` per candidate.  Memory requirements
    do not depend on the CPU execution context, so results may be shared
    across planner passes through ``cache`` (the engine reuses pass 1's
    verdicts to seed pass 2).

    This is a *pre*-screen: candidates that pass are still validated by
    the cost model's own ``check_feasible`` — a (hypothetical) optimistic
    disagreement costs one wasted evaluation, never a wrong plan.  The
    equivalence tests assert the mirrored formulas match exactly.
    """

    def __init__(
        self,
        workload: Workload,
        template: OffloadPolicy,
        hw: HardwareParams,
        cache: dict | None = None,
    ) -> None:
        self.w = workload
        self.t = template
        self.hw = hw
        fp = workload.footprint()
        self.l = workload.model.num_layers
        self.n_weights = workload.model.weights_per_layer
        self.fp16 = dtype_bytes("fp16")
        self.act_bytes = fp.activation_bytes_per_layer
        self.kv_elements = fp.kv_elements_per_token_per_layer
        self.total_tokens = workload.prompt_len + workload.gen_len
        if template.kv_quant is not None:
            self.kv_store_bytes = template.kv_quant.total_bytes(self.kv_elements)
        else:
            self.kv_store_bytes = self.kv_elements * self.fp16
        self.cache = cache if cache is not None else {}
        self._key = (
            workload.model.name,
            workload.prompt_len,
            workload.gen_len,
            template.gpu_batch_size,
            template.num_gpu_batches,
            template.attention_on_cpu,
            template.weight_quant,
            template.kv_quant,
            template.quantize_resident_weights,
        )
        self._weight_bytes: dict[float, tuple[float, float]] = {}

    def weight_bytes_per_layer(self, wg: float) -> tuple[float, float]:
        """(offloaded, resident) stored bytes of one layer at ``wg``."""
        cached = self._weight_bytes.get(wg)
        if cached is not None:
            return cached
        wc = 1.0 - wg
        n_off = self.n_weights * wc
        if n_off == 0:
            offloaded = 0.0
        elif self.t.weight_quant is not None:
            offloaded = self.t.weight_quant.total_bytes(n_off)
        else:
            offloaded = n_off * self.fp16
        n_res = self.n_weights * wg
        if self.t.quantize_resident_weights and self.t.weight_quant is not None:
            resident = self.t.weight_quant.total_bytes(n_res)
        else:
            resident = n_res * self.fp16
        self._weight_bytes[wg] = (offloaded, resident)
        return offloaded, resident

    def gpu_bytes(self, wg: float, cg: float, hg: float) -> float:
        """Peak GPU bytes — mirrors ``CostModel.gpu_bytes_required``."""
        key = (*self._key, "gpu", wg, cg, hg)
        cached = self.cache.get(key)
        if PROFILER.enabled:
            PROFILER.cache("planner.prescreen", hit=cached is not None)
        if cached is not None:
            return cached
        _, resident = self.weight_bytes_per_layer(wg)
        weights = resident * self.l
        working_layers = 2 if (1.0 - wg) > 0 else 1
        working = working_layers * self.n_weights * self.fp16
        kv = 0.0
        if not self.t.attention_on_cpu:
            kv_total = self.total_tokens * self.kv_store_bytes * self.l
            kv = cg * kv_total
            kv += (
                self.total_tokens
                * self.kv_elements
                * self.fp16
                / self.t.num_gpu_batches
            )
        act = self.act_bytes * (2 + 2 * hg)
        value = weights + working + kv + act
        self.cache[key] = value
        return value

    def cpu_bytes(self, wg: float, cg: float, hg: float, wd: float = 0.0) -> float:
        """Peak host bytes — mirrors ``CostModel.cpu_bytes_required``."""
        key = (*self._key, "cpu", wg, cg, hg, wd)
        cached = self.cache.get(key)
        if PROFILER.enabled:
            PROFILER.cache("planner.prescreen", hit=cached is not None)
        if cached is not None:
            return cached
        offloaded, _ = self.weight_bytes_per_layer(wg)
        weights = offloaded * self.l
        wc = 1.0 - wg
        if wc > 0 and wd > 0:
            disk_share = wd / wc
            resident = weights * (1.0 - disk_share)
            staging = 2 * offloaded
            weights = resident + min(staging, weights * disk_share)
        kv_total = self.total_tokens * self.kv_store_bytes * self.l
        kv = kv_total if self.t.attention_on_cpu else (1.0 - cg) * kv_total
        act = self.act_bytes * 2 * (1.0 - hg)
        value = weights + kv + act
        self.cache[key] = value
        return value

    def gpu_feasible(self, wg: float, cg: float, hg: float) -> bool:
        return self.gpu_bytes(wg, cg, hg) <= self.hw.gpu_mem_capacity

    def cpu_feasible(self, wg: float, cg: float, hg: float, wd: float = 0.0) -> bool:
        return self.cpu_bytes(wg, cg, hg, wd) <= self.hw.cpu_mem_capacity


class PlannerObjective(enum.Enum):
    """What the search maximises.

    THROUGHPUT — tokens/s for the whole block (the paper's offline
    setting).  LATENCY — minimise per-token decode latency for one batch
    (interactive serving: prefer small blocks and GPU residency even when
    that wastes aggregate throughput).
    """

    THROUGHPUT = "throughput"
    LATENCY = "latency"


@dataclass
class PolicyPlanner:
    """Searches placement/quantization for a workload on given hardware.

    Parameters
    ----------
    hw:
        Hardware rates and capacities.
    cpu_ctx:
        CPU execution context used to cost candidate policies.
    quant_aware:
        Whether the search may choose quantization (LM-Offload) or must
        leave tensors uncompressed (FlexGen's model-blind search).
    quant:
        The quantizer considered when ``quant_aware``.
    wg_step:
        Grid resolution for the weights-on-GPU fraction.
    mem_cache:
        Optional shared dict of memory-feasibility verdicts.  Memory
        requirements are independent of the CPU execution context, so a
        multi-pass caller (the engine's two-pass plan) hands the same dict
        to every pass and pass 2 reuses pass 1's prescreen work.
    """

    hw: HardwareParams
    cpu_ctx: CpuExecutionContext
    quant_aware: bool = True
    quant: QuantConfig = field(default_factory=lambda: QuantConfig(bits=4, group_size=64))
    wg_step: float = 0.05
    allow_gpu_attention: bool = True
    #: Degraded-mode lever: drop the unquantized candidate from the menu so
    #: the search must pick a quantized W/KV configuration (the ladder's
    #: "aggressive quantization" rung under memory/wire pressure).
    require_quant: bool = False
    objective: PlannerObjective = PlannerObjective.THROUGHPUT
    mem_cache: dict | None = None

    # -- quantization menu ---------------------------------------------------

    def _quant_menu(self) -> list[tuple[QuantConfig | None, QuantConfig | None]]:
        if not self.quant_aware:
            return [(None, None)]
        q = self.quant
        if self.require_quant:
            return [(q, None), (None, q), (q, q)]
        return [(None, None), (q, None), (None, q), (q, q)]

    def _attention_menu(self) -> list[bool]:
        return [True, False] if self.allow_gpu_attention else [True]

    # -- LP relaxation ---------------------------------------------------------

    def lp_placement(
        self,
        workload: Workload,
        template: OffloadPolicy,
    ) -> tuple[float, float, float]:
        """Solve the placement LP for a fixed discrete configuration.

        Variables ``x = (wg, cg, hg, t)``; minimise ``t`` subject to
        ``t >= h2d(x)``, ``t >= d2h(x)``, ``t >= compute`` and the two
        memory capacities, with coefficients extracted from the cost model
        by finite differencing (the model is linear in each fraction, so
        two evaluations per variable recover the exact coefficients).

        Returns the relaxed ``(wg, cg, hg)``.
        """
        base = dict(wg=0.0, cg=0.0, hg=0.0)

        def probe(**kw) -> CostModel:
            pol = template.with_(**{**base, **kw})
            return CostModel(workload, pol, self.hw, self.cpu_ctx)

        mid_token = max(0, (workload.gen_len - 1) // 2)

        def task_vec(model: CostModel) -> np.ndarray:
            c = model.decode_task_costs(mid_token)
            h2d = c.load_weight + c.load_cache + c.load_activation
            d2h = c.store_cache + c.store_activation
            return np.array([h2d, d2h, c.compute])

        def mem_vec(model: CostModel) -> np.ndarray:
            return np.array([model.gpu_bytes_required(), model.cpu_bytes_required()])

        if template.attention_on_cpu:
            # cg is pinned to 0 by the policy invariant.
            names = ["wg", "hg"]
        else:
            names = ["wg", "cg", "hg"]
        m0 = probe()
        t0, g0 = task_vec(m0), mem_vec(m0)
        t_cols, g_cols = [], []
        for name in names:
            m1 = probe(**{name: 1.0})
            t_cols.append(task_vec(m1) - t0)
            g_cols.append(mem_vec(m1) - g0)
        t_mat = np.column_stack(t_cols)  # (3, nvars)
        g_mat = np.column_stack(g_cols)  # (2, nvars)

        nvars = len(names)
        # Decision vector: [fractions..., t]; minimise t.
        c = np.zeros(nvars + 1)
        c[-1] = 1.0
        # t >= t0 + t_mat @ x  ->  t_mat @ x - t <= -t0
        a_ub = np.hstack([t_mat, -np.ones((3, 1))])
        b_ub = -t0
        # memory: g0 + g_mat @ x <= cap
        caps = np.array([self.hw.gpu_mem_capacity, self.hw.cpu_mem_capacity])
        a_ub = np.vstack([a_ub, np.hstack([g_mat, np.zeros((2, 1))])])
        b_ub = np.concatenate([b_ub, caps - g0])
        bounds = [(0.0, 1.0)] * nvars + [(0.0, None)]
        res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not res.success:
            raise PolicyError(f"placement LP infeasible: {res.message}")
        values = dict(zip(names, res.x[:nvars]))
        return (
            float(values.get("wg", 0.0)),
            float(values.get("cg", 0.0)),
            float(values.get("hg", 0.0)),
        )

    # -- grid + validation ---------------------------------------------------

    def _candidate_fractions(
        self,
        workload: Workload,
        template: OffloadPolicy,
        seed: tuple[float, float, float] | None = None,
    ) -> Iterable[tuple[float, float, float]]:
        """LP solution, its grid-snapped neighbours, and a coarse wg grid.

        ``seed`` (e.g. the fractions a previous planning pass settled on)
        is appended after the standard candidates when the grid does not
        already contain it, so a known-good point is never lost to LP
        failure or grid resolution.
        """
        seen: set[tuple[float, float, float]] = set()
        try:
            wg, cg, hg = self.lp_placement(workload, template)
            for dwg in (-self.wg_step, 0.0, self.wg_step):
                cand = (
                    float(np.clip(round((wg + dwg) / self.wg_step) * self.wg_step, 0, 1)),
                    round(cg, 2),
                    1.0 if hg >= 0.5 else 0.0,
                )
                if cand not in seen:
                    seen.add(cand)
                    yield cand
        except PolicyError:
            pass
        for wg in np.arange(0.0, 1.0 + 1e-9, self.wg_step):
            for hg in (0.0, 1.0):
                cgs = (0.0,) if template.attention_on_cpu else (0.0, 0.25, 0.5, 1.0)
                for cg in cgs:
                    cand = (round(float(wg), 2), cg, hg)
                    if cand not in seen:
                        seen.add(cand)
                        yield cand
        if seed is not None and seed not in seen:
            yield seed

    def evaluate(
        self, workload: Workload, policy: OffloadPolicy
    ) -> tuple[float, CostModel]:
        """Objective score of a policy (raises PolicyError when infeasible).

        THROUGHPUT returns tokens/s; LATENCY returns the negative
        steady-state per-token decode latency (so 'bigger is better' holds
        for both objectives).  Feasibility is established exactly once: the
        explicit ``check_feasible()`` memoizes its verdict on the model, and
        ``breakdown()`` replays it instead of recomputing the memory
        requirements.
        """
        model = CostModel(workload, policy, self.hw, self.cpu_ctx)
        model.check_feasible()
        if self.objective is PlannerObjective.LATENCY:
            mid = model.decode_task_costs(max(0, (workload.gen_len - 1) // 2))
            iters = workload.model.num_layers * policy.num_gpu_batches
            return -model.step_seconds(mid) * iters, model
        return model.breakdown().throughput(workload), model

    def search_batch_geometry(
        self,
        workload: Workload,
        batch_candidates: Iterable[int] = (4, 8, 16, 32, 64, 128, 256),
        num_batch_candidates: Iterable[int] = (1, 2, 4, 8, 12),
    ) -> tuple[OffloadPolicy, Workload, float]:
        """Jointly search placement *and* batch geometry.

        FlexGen's full policy search includes the block shape; this method
        sweeps (gpu_batch_size, num_gpu_batches) and runs :meth:`search`
        for each, returning the best (policy, reshaped workload, score).
        """
        best: tuple[float, OffloadPolicy, Workload] | None = None
        self.last_geometry_failures: list[tuple[int, int, str]] = []
        for bsz in batch_candidates:
            for k in num_batch_candidates:
                trial = workload.with_batches(bsz, k)
                try:
                    policy, score = self.search(trial)
                except PolicyError as exc:
                    logger.debug(
                        "batch geometry bsz=%d k=%d infeasible: %s", bsz, k, exc
                    )
                    self.last_geometry_failures.append((bsz, k, str(exc)))
                    continue
                if best is None or score > best[0]:
                    best = (score, policy, trial)
        if best is None:
            failures = self.last_geometry_failures
            detail = f"; e.g. bsz={failures[0][0]} k={failures[0][1]}: {failures[0][2]}" if failures else ""
            raise PolicyError(
                f"no feasible batch geometry for {workload.model.name} "
                f"({len(failures)} geometries rejected{detail})"
            )
        return best[1], best[2], best[0]

    def search_fixed(
        self,
        workload: Workload,
        attention_on_cpu: bool,
        weight_quant: QuantConfig | None,
        kv_quant: QuantConfig | None,
        seed_fractions: tuple[float, float, float] | None = None,
    ) -> tuple[OffloadPolicy, float]:
        """Best placement fractions for one fixed discrete strategy.

        Candidates are screened with :class:`MemoryPrescreen` before a
        :class:`CostModel` is built: GPU-infeasible fractions are pruned
        outright (the disk tier cannot relieve GPU pressure), and
        host-infeasible ones jump straight to the disk-spill retries.
        """
        template = OffloadPolicy(
            wg=0.0,
            cg=0.0,
            hg=0.0,
            attention_on_cpu=attention_on_cpu,
            weight_quant=weight_quant,
            kv_quant=kv_quant,
            gpu_batch_size=workload.gpu_batch_size,
            num_gpu_batches=workload.num_gpu_batches,
        )
        prescreen = MemoryPrescreen(workload, template, self.hw, self.mem_cache)
        best: tuple[float, OffloadPolicy] | None = None
        for wg, cg, hg in self._candidate_fractions(
            workload, template, seed_fractions
        ):
            if not prescreen.gpu_feasible(wg, cg, hg):
                continue
            score: float | None = None
            policy = template.with_(wg=wg, cg=cg, hg=hg)
            if prescreen.cpu_feasible(wg, cg, hg):
                try:
                    score, _ = self.evaluate(workload, policy)
                except PolicyError:
                    score = None
            if score is None:
                # Host memory is the binding constraint: retry with
                # part/all of the offloaded weights spilled to disk
                # (FlexGen's third tier).
                for spill in (0.5, 1.0):
                    wd = round((1.0 - wg) * spill, 4)
                    if not prescreen.cpu_feasible(wg, cg, hg, wd):
                        continue
                    try:
                        policy = template.with_(wg=wg, cg=cg, hg=hg, wd=wd)
                        score, _ = self.evaluate(workload, policy)
                        break
                    except PolicyError:
                        continue
            if score is not None and (best is None or score > best[0]):
                best = (score, policy)
        if best is None:
            raise PolicyError(
                f"no feasible placement for {workload.describe()} under "
                f"attn={'cpu' if attention_on_cpu else 'gpu'}"
            )
        return best[1], best[0]

    def search(
        self, workload: Workload, seed: OffloadPolicy | None = None
    ) -> tuple[OffloadPolicy, float]:
        """Best feasible policy for ``workload`` and its modelled tput.

        ``seed`` injects a known-good policy (e.g. the engine's pass-1
        result) as an extra candidate for its own discrete configuration;
        it never removes candidates, so the search space only grows.
        """
        with span("planner.search"):
            return self._search(workload, seed)

    def _search(
        self, workload: Workload, seed: OffloadPolicy | None = None
    ) -> tuple[OffloadPolicy, float]:
        best: tuple[float, OffloadPolicy] | None = None
        for attn_cpu in self._attention_menu():
            for wq, kq in self._quant_menu():
                if attn_cpu and kq is not None:
                    # KV never crosses the interconnect: quantizing it only
                    # costs time (Observation 1); skip.
                    continue
                seed_fractions = None
                if (
                    seed is not None
                    and seed.attention_on_cpu == attn_cpu
                    and seed.weight_quant == wq
                    and seed.kv_quant == kq
                ):
                    seed_fractions = (seed.wg, seed.cg, seed.hg)
                try:
                    policy, tput = self.search_fixed(
                        workload, attn_cpu, wq, kq, seed_fractions
                    )
                except PolicyError:
                    continue
                if best is None or tput > best[0]:
                    best = (tput, policy)
        if best is None:
            raise PolicyError(
                f"no feasible policy for {workload.describe()} on this hardware"
            )
        return best[1], best[0]

    def max_feasible_batch(
        self,
        workload: Workload,
        policy_for: Callable[[Workload], OffloadPolicy],
        candidates: Iterable[int],
    ) -> int:
        """Largest batch size from ``candidates`` whose policy fits memory."""
        best = 0
        for bsz in sorted(candidates):
            trial = workload.with_batches(bsz, workload.num_gpu_batches)
            try:
                model = CostModel(trial, policy_for(trial), self.hw, self.cpu_ctx)
                model.check_feasible()
                best = bsz
            except PolicyError:
                continue
        if best == 0:
            raise PolicyError("no candidate batch size fits in memory")
        return best
