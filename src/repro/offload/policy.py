"""Offloading policy: one point in the search space both engines explore.

A policy fixes, per the paper's Table 3 columns:

* ``wg`` / ``cg`` / ``hg`` — fraction of weights / KV cache / hidden
  activations resident on GPU memory (the paper reports percentages).
* ``attention_on_cpu`` — whether the attention computation is offloaded to
  the CPU (FlexGen's default during decode) or runs on the GPU.
* ``weight_quant`` / ``kv_quant`` — optional group-wise quantization of the
  weights / KV cache crossing the interconnect (the decision LM-Offload's
  performance model makes).
* batch geometry — GPU batch size and the number of batches per zig-zag
  block (``bls = gpu_batch_size * num_gpu_batches``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError
from repro.quant.config import QuantConfig


@dataclass(frozen=True)
class OffloadPolicy:
    """Placement + quantization + batching decisions."""

    wg: float = 1.0
    cg: float = 0.0
    hg: float = 1.0
    attention_on_cpu: bool = True
    weight_quant: Optional[QuantConfig] = None
    kv_quant: Optional[QuantConfig] = None
    gpu_batch_size: int = 64
    num_gpu_batches: int = 1
    #: Store the GPU-resident weight share compressed too (ZeRO-Inference's
    #: 4-bit mode).  Saves GPU memory but pays per-use dequantization on
    #: the compute stream.
    quantize_resident_weights: bool = False
    #: Fraction of weights resident on *disk* (third offloading tier,
    #: FlexGen's --disk path).  Streams disk -> host -> GPU per use; only
    #: worthwhile when the model overflows host memory.  wg + wd <= 1.
    wd: float = 0.0

    def __post_init__(self) -> None:
        for name in ("wg", "cg", "hg", "wd"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"policy: {name} must be in [0, 1], got {v}")
        if self.wg + self.wd > 1.0 + 1e-9:
            raise ConfigError(
                f"policy: wg + wd must not exceed 1 (got {self.wg} + {self.wd})"
            )
        if self.gpu_batch_size <= 0 or self.num_gpu_batches <= 0:
            raise ConfigError("policy: batch geometry must be positive")
        if self.quantize_resident_weights and self.weight_quant is None:
            raise ConfigError(
                "policy: quantize_resident_weights requires weight_quant"
            )
        if self.attention_on_cpu and self.cg > 0.0:
            # With CPU attention the KV cache lives (entirely) in host
            # memory; a nonzero GPU share would never be touched.
            raise ConfigError(
                "policy: cg must be 0 when attention runs on the CPU "
                "(the KV cache stays in host memory)"
            )

    @property
    def wc(self) -> float:
        """Fraction of weights *not* GPU-resident (the paper's
        ``wc = 1 - wg``); includes any disk-resident share."""
        return 1.0 - self.wg

    @property
    def w_cpu(self) -> float:
        """Fraction of weights resident in host memory."""
        return max(0.0, 1.0 - self.wg - self.wd)

    @property
    def block_size(self) -> int:
        """``bls`` — sequences per zig-zag block."""
        return self.gpu_batch_size * self.num_gpu_batches

    @property
    def quantizes_weights(self) -> bool:
        return self.weight_quant is not None

    @property
    def quantizes_kv(self) -> bool:
        return self.kv_quant is not None

    def with_(self, **changes) -> "OffloadPolicy":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary in the paper's table vocabulary."""
        quant = []
        if self.weight_quant:
            quant.append(f"W{self.weight_quant.bits}")
        if self.kv_quant:
            quant.append(f"KV{self.kv_quant.bits}")
        return (
            f"wg={self.wg:.0%} cg={self.cg:.0%} hg={self.hg:.0%} "
            f"attn={'cpu' if self.attention_on_cpu else 'gpu'} "
            f"quant={'+'.join(quant) or 'none'} "
            f"bsz={self.gpu_batch_size}x{self.num_gpu_batches}"
        )
