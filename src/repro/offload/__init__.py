"""Tensor offloading substrate: placement, transfer, policy.

This package provides the machinery both engines (FlexGen baseline and
LM-Offload) are built on:

* :class:`ManagedTensor` / :class:`TensorStore` — tensors with an explicit
  device placement, backed by byte-accurate :class:`~repro.hardware.MemoryPool`
  accounting (and optionally by real NumPy arrays for functional runs).
* :class:`TransferEngine` — charges simulated time for moves across links
  and tracks cumulative per-direction traffic (reproduces Table 1).
* :class:`OffloadPolicy` — the percentage split (wg/cg/hg), quantization
  choices and attention placement; i.e. one point in the search space.
* :mod:`repro.offload.planner` — FlexGen-style policy search under memory
  constraints (linear-programming relaxation + feasibility repair).
"""

from repro.offload.tensor import ManagedTensor
from repro.offload.store import TensorStore
from repro.offload.transfer import TransferEngine, TrafficLedger
from repro.offload.policy import OffloadPolicy


def __getattr__(name: str):
    # The planner depends on repro.perfmodel, which itself imports
    # repro.offload.policy; resolve it lazily to avoid the import cycle.
    if name in ("PolicyPlanner", "PlannerObjective"):
        from repro.offload import planner

        return getattr(planner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ManagedTensor",
    "TensorStore",
    "TransferEngine",
    "TrafficLedger",
    "OffloadPolicy",
    "PolicyPlanner",
    "PlannerObjective",
]
