"""Execution-trace capture and Chrome-trace export.

Wraps the discrete-event runtime so a decode schedule can be inspected in
``chrome://tracing`` / Perfetto: one row per resource (H2D, D2H, GPU
compute, CPU), one slice per task, exactly as the overlapped zig-zag
schedule executed it.
"""

from repro.trace.chrome import ChromeTraceBuilder, trace_decode_schedule

__all__ = ["ChromeTraceBuilder", "trace_decode_schedule"]
