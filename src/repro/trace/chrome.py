"""Chrome-trace (``chrome://tracing``) export of simulated schedules.

The JSON produced follows the Trace Event Format's complete-event ("X")
records: ``{"name", "ph": "X", "ts", "dur", "pid", "tid"}`` with
microsecond timestamps.  Load the file in Perfetto or chrome://tracing to
see the six tasks overlapping across the H2D / D2H / compute rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.runtime.events import EventSim
from repro.runtime.streams import StreamSet
from repro.runtime.tasks import TASK_RESOURCE, TaskCosts, TaskKind

#: Resource rows the repo's exporters use, in their canonical display
#: order.  Row numbering starts from this order, then falls back to
#: alphabetical for anything unlisted, so a trace's tid layout is a
#: function of *which* resources appear — never of which one happened to
#: log first.
CANONICAL_RESOURCES = (
    "h2d",
    "d2h",
    "compute",
    "gpu",
    "requests",
    "faults",
    "metrics",
    "counters",
)


@dataclass
class ChromeTraceBuilder:
    """Accumulates trace slices and serialises them.

    Resources map to ``tid`` rows under a single ``pid``; slice name is
    the task label.  Events carry their resource *name* until
    serialization, when tids are materialized from the deterministic
    resource ordering (:meth:`resource_tids`) — first-touch order used to
    leak into the numbering, so two traces of the same run could disagree
    just because their exporters emitted rows in a different order.
    Counter events ("C") carry an explicit ``tid`` too; some viewers
    misgroup counters that omit it.
    """

    process_name: str = "lm-offload-sim"
    #: (resource, event-without-tid) in emission order.
    _events: list[tuple[str, dict]] = field(default_factory=list)

    def add_slice(
        self,
        name: str,
        resource: str,
        start_s: float,
        duration_s: float,
        **args,
    ) -> None:
        """Record one task execution (seconds in, microseconds out)."""
        if duration_s < 0:
            raise ScheduleError("duration must be non-negative")
        self._events.append(
            (
                resource,
                {
                    "name": name,
                    "ph": "X",
                    "ts": start_s * 1e6,
                    "dur": duration_s * 1e6,
                    "pid": 0,
                    "args": args,
                },
            )
        )

    def add_instant(self, name: str, resource: str, ts_s: float, **args) -> None:
        """Record an instant event ("i") — lifecycle markers like request
        arrival/finish that have a time but no duration."""
        self._events.append(
            (
                resource,
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",  # thread-scoped marker
                    "ts": ts_s * 1e6,
                    "pid": 0,
                    "args": args,
                },
            )
        )

    def add_counter(
        self, name: str, ts_s: float, resource: str = "counters", **series: float
    ) -> None:
        """Record a counter sample ("C") — e.g. queue depth over time."""
        self._events.append(
            (
                resource,
                {
                    "name": name,
                    "ph": "C",
                    "ts": ts_s * 1e6,
                    "pid": 0,
                    "args": dict(series),
                },
            )
        )

    @property
    def num_slices(self) -> int:
        return sum(1 for _, e in self._events if e.get("ph") == "X")

    def resource_tids(self) -> dict[str, int]:
        """Deterministic resource -> tid map for the resources present:
        canonical rows first (in :data:`CANONICAL_RESOURCES` order), any
        others after, alphabetically."""
        present = {res for res, _ in self._events}
        ordered = [r for r in CANONICAL_RESOURCES if r in present]
        ordered.extend(sorted(present.difference(CANONICAL_RESOURCES)))
        return {res: tid for tid, res in enumerate(ordered)}

    def build_events(self) -> list[dict]:
        """Final event list: all thread_name metadata up front (tid
        order), then the recorded events in emission order with their
        materialized tids."""
        tids = self.resource_tids()
        events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": res},
            }
            for res, tid in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        for res, event in self._events:
            events.append({**event, "tid": tids[res]})
        return events

    def to_json(self, indent: int | None = None) -> str:
        doc = {
            "traceEvents": self.build_events(),
            "displayTimeUnit": "ms",
            "otherData": {"process": self.process_name},
        }
        return json.dumps(doc, indent=indent)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


class _TracingStreams(StreamSet):
    """StreamSet whose resources report into a ChromeTraceBuilder."""


def trace_decode_schedule(
    costs_per_token: list[TaskCosts],
    num_layers: int,
    num_gpu_batches: int,
    builder: ChromeTraceBuilder | None = None,
) -> ChromeTraceBuilder:
    """Replay Algorithm 1 for the given per-token costs, capturing slices.

    A faithful re-run of :class:`~repro.runtime.executor.OverlappedExecutor`'s
    schedule with per-slice capture (the executor itself stays lean).
    """
    if num_layers <= 0 or num_gpu_batches <= 0:
        raise ScheduleError("num_layers and num_gpu_batches must be positive")
    builder = builder or ChromeTraceBuilder()
    sim = EventSim()

    def run(kind: TaskKind, duration: float, ready: float, label: str) -> float:
        if duration == 0:
            return ready
        resource = TASK_RESOURCE[kind]
        start, end = sim.resource(resource).run(duration, ready)
        builder.add_slice(label, resource, start, duration)
        return end

    prev_compute_done = 0.0
    for token, costs in enumerate(costs_per_token):
        for layer in range(num_layers):
            for k in range(num_gpu_batches):
                tag = f"t{token}.l{layer}.b{k}"
                run(TaskKind.LOAD_WEIGHT, costs.load_weight, 0.0, f"load_weight {tag}")
                cache_ready = run(
                    TaskKind.LOAD_CACHE, costs.load_cache, 0.0, f"load_cache {tag}"
                )
                act_ready = run(
                    TaskKind.LOAD_ACTIVATION, costs.load_activation, 0.0,
                    f"load_activation {tag}",
                )
                ready = max(cache_ready, act_ready)
                start, end = sim.resource("compute").run(costs.compute, ready)
                builder.add_slice(f"compute {tag}", "compute", start, costs.compute)
                run(
                    TaskKind.STORE_CACHE, costs.store_cache, prev_compute_done,
                    f"store_cache {tag}",
                )
                run(
                    TaskKind.STORE_ACTIVATION, costs.store_activation,
                    prev_compute_done, f"store_activation {tag}",
                )
                prev_compute_done = end
    return builder
