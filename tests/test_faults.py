"""Fault layer: spec validation, overlay algebra, retry/backoff, ladder."""

import pytest

from repro.errors import ConfigError, FaultError, RetryExhaustedError
from repro.faults import (
    LADDER,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    RetryPolicy,
    SCENARIOS,
    degraded_platform,
    make_scenario,
    relative_drift,
    zero_schedule,
)
from repro.hardware import single_a100
from repro.perfmodel import HardwareParams


# -- FaultSpec / FaultSchedule validation ----------------------------------


def test_spec_rejects_negative_start():
    with pytest.raises(ConfigError, match="start_s"):
        FaultSpec(FaultKind.PCIE_DEGRADE, -1.0, 5.0, 0.5)


def test_spec_rejects_zero_duration():
    with pytest.raises(ConfigError, match="duration_s"):
        FaultSpec(FaultKind.PCIE_DEGRADE, 0.0, 0.0, 0.5)


@pytest.mark.parametrize("severity", [-0.1, 1.5])
def test_spec_rejects_out_of_range_severity(severity):
    with pytest.raises(ConfigError, match="severity"):
        FaultSpec(FaultKind.GPU_THROTTLE, 0.0, 1.0, severity)


def test_spec_rejects_total_core_loss():
    with pytest.raises(ConfigError, match="at least one core"):
        FaultSpec(FaultKind.CORE_LOSS, 0.0, 1.0, 1.0)


def test_schedule_rejects_same_target_overlap():
    with pytest.raises(ConfigError, match="overlap"):
        FaultSchedule(
            name="bad",
            faults=(
                FaultSpec(FaultKind.PCIE_DEGRADE, 0.0, 10.0, 0.5),
                FaultSpec(FaultKind.PCIE_DEGRADE, 5.0, 10.0, 0.3),
            ),
        )


def test_schedule_allows_cross_kind_overlap():
    sched = FaultSchedule(
        name="ok",
        faults=(
            FaultSpec(FaultKind.PCIE_DEGRADE, 0.0, 10.0, 0.5),
            FaultSpec(FaultKind.CPU_THROTTLE, 5.0, 10.0, 0.3),
        ),
    )
    assert len(sched.active(7.0)) == 2


def test_schedule_time_structure():
    sched = FaultSchedule(
        name="s",
        faults=(
            FaultSpec(FaultKind.PCIE_DEGRADE, 2.0, 3.0, 0.5),
            FaultSpec(FaultKind.TRANSIENT_ERROR, 4.0, 2.0, 0.5),
        ),
    )
    assert sched.change_points() == [2.0, 4.0, 5.0, 6.0]
    assert sched.next_change_after(4.0) == 5.0
    assert sched.next_change_after(6.0) is None
    assert sched.segment_key(1.0) == ()
    assert sched.segment_key(4.5) == (0, 1)


def test_transient_probability_composes_independently():
    sched = FaultSchedule(
        name="s",
        faults=(
            FaultSpec(FaultKind.TRANSIENT_ERROR, 0.0, 10.0, 0.5),
            FaultSpec(FaultKind.TRANSIENT_ERROR, 0.0, 10.0, 0.5, device="gpu0"),
        ),
    )
    assert sched.transient_abort_probability(5.0) == pytest.approx(0.75)
    assert sched.transient_abort_probability(15.0) == 0.0


# -- overlay ---------------------------------------------------------------


@pytest.fixture(scope="module")
def a100_platform():
    return single_a100()


def test_overlay_identity_when_inactive(a100_platform):
    sched = make_scenario("pcie-degrade", horizon_s=100.0, seed=0)
    assert a100_platform.with_faults(sched, 0.0) is a100_platform
    assert a100_platform.with_faults(zero_schedule(), 50.0) is a100_platform


def test_overlay_scales_link_bandwidth_nondestructively(a100_platform):
    sched = make_scenario("pcie-degrade", horizon_s=100.0, seed=0)
    base_bw = a100_platform.links[0].bandwidth
    degraded = a100_platform.with_faults(sched, 50.0)
    assert degraded is not a100_platform
    assert degraded.links[0].bandwidth == pytest.approx(base_bw * 0.4)
    # The base platform is untouched — overlays never mutate.
    assert a100_platform.links[0].bandwidth == base_bw


def test_overlay_core_loss_keeps_at_least_one_core(a100_platform):
    sched = FaultSchedule(
        name="s", faults=(FaultSpec(FaultKind.CORE_LOSS, 0.0, 10.0, 0.99),)
    )
    degraded = degraded_platform(a100_platform, sched, 5.0)
    assert degraded.cpu.cores >= 1


def test_overlay_mem_shrink(a100_platform):
    sched = FaultSchedule(
        name="s", faults=(FaultSpec(FaultKind.HOST_MEM_SHRINK, 0.0, 10.0, 0.7),)
    )
    degraded = degraded_platform(a100_platform, sched, 5.0)
    assert degraded.cpu.memory_capacity == pytest.approx(
        a100_platform.cpu.memory_capacity * 0.3, rel=1e-6
    )


def test_overlay_unknown_link_is_fault_error(a100_platform):
    sched = FaultSchedule(
        name="s",
        faults=(
            FaultSpec(
                FaultKind.PCIE_DEGRADE, 0.0, 10.0, 0.5, link=("cpu", "nope")
            ),
        ),
    )
    with pytest.raises(FaultError, match="no link"):
        degraded_platform(a100_platform, sched, 5.0)


def test_relative_drift_detects_overlay(a100_platform):
    sched = make_scenario("pcie-degrade", horizon_s=100.0, seed=0)
    base_hw = HardwareParams.from_platform(a100_platform)
    degraded_hw = HardwareParams.from_platform(
        a100_platform.with_faults(sched, 50.0)
    )
    assert relative_drift(base_hw, base_hw) == 0.0
    assert relative_drift(base_hw, degraded_hw) == pytest.approx(0.6, rel=1e-6)


# -- retry policy ----------------------------------------------------------


def test_backoff_monotone_and_capped_with_jitter():
    policy = RetryPolicy(base_s=0.5, cap_s=8.0, jitter=0.1, limit=10)
    # Worst case for monotonicity: maximal jitter early, none later.
    delays = [policy.delay(k, u=1.0 if k % 2 else 0.0) for k in range(1, 11)]
    assert all(b >= a for a, b in zip(delays, delays[1:]))
    assert all(d <= 8.0 for d in delays)
    assert delays[-1] == 8.0


def test_backoff_doubles_without_jitter():
    policy = RetryPolicy(base_s=0.5, cap_s=100.0, jitter=0.0)
    assert [policy.delay(k) for k in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]


def test_retry_policy_rejects_zero_base():
    with pytest.raises(ConfigError, match="tight loop"):
        RetryPolicy(base_s=0.0)


def test_retry_policy_rejects_cap_below_base():
    with pytest.raises(ConfigError, match="cap"):
        RetryPolicy(base_s=2.0, cap_s=1.0)


def test_retry_policy_rejects_nonpositive_max_elapsed():
    with pytest.raises(ConfigError, match="max_elapsed_s"):
        RetryPolicy(max_elapsed_s=0.0)
    with pytest.raises(ConfigError, match="max_elapsed_s"):
        RetryPolicy(max_elapsed_s=-1.0)


def test_max_elapsed_clamps_delay_to_remaining_budget():
    policy = RetryPolicy(base_s=1.0, cap_s=8.0, jitter=0.0, max_elapsed_s=10.0)
    assert policy.delay(4) == 8.0  # no elapsed time: the plain cap
    assert policy.delay(4, elapsed_s=7.0) == 3.0  # clamped to remaining
    assert policy.delay(4, elapsed_s=12.0) == 0.0  # floored, never negative
    unbounded = RetryPolicy(base_s=1.0, cap_s=8.0, jitter=0.0)
    assert unbounded.delay(4, elapsed_s=100.0) == 8.0  # None disables it


def test_retry_budget_raises_structured_error():
    policy = RetryPolicy(limit=2)
    policy.check_budget(rid=7, attempts=2)
    with pytest.raises(RetryExhaustedError) as exc_info:
        policy.check_budget(rid=7, attempts=3)
    err = exc_info.value
    assert err.rid == 7 and err.attempts == 3 and err.limit == 2


# -- ladder + scenarios ----------------------------------------------------


def test_ladder_orders_mitigations():
    names = [r.name for r in LADDER]
    assert names[0] == "nominal" and names[-1] == "backpressure"
    assert all(r.admit for r in LADDER[:-1]) and not LADDER[-1].admit
    # Batch ceilings only shrink as rungs get more drastic.
    divisors = [r.batch_divisor for r in LADDER]
    assert divisors == sorted(divisors)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenarios_are_seed_deterministic(name):
    s1 = make_scenario(name, horizon_s=30.0, seed=3)
    s2 = make_scenario(name, horizon_s=30.0, seed=3)
    assert s1.to_json() == s2.to_json()


def test_flaky_scenario_varies_with_seed():
    s1 = make_scenario("flaky-pcie", horizon_s=30.0, seed=0)
    s2 = make_scenario("flaky-pcie", horizon_s=30.0, seed=1)
    assert s1.to_json() != s2.to_json()


def test_unknown_scenario_is_config_error():
    with pytest.raises(ConfigError, match="unknown chaos scenario"):
        make_scenario("nope", horizon_s=30.0)


# -- overlay metamorphic properties ----------------------------------------


@pytest.mark.parametrize(
    "kind",
    [
        FaultKind.PCIE_DEGRADE,
        FaultKind.LINK_FLAP,
        FaultKind.CPU_THROTTLE,
        FaultKind.CORE_LOSS,
        FaultKind.GPU_THROTTLE,
        FaultKind.HOST_MEM_SHRINK,
    ],
)
def test_zero_magnitude_fault_leaves_platform_byte_identical(
    a100_platform, kind
):
    """severity=0 takes nothing away: every spec and link of the overlay
    equals the base value for value (only the platform name differs)."""
    sched = FaultSchedule(
        name="noop", faults=(FaultSpec(kind, 0.0, 10.0, severity=0.0),)
    )
    degraded = a100_platform.with_faults(sched, 5.0)
    assert degraded.devices == a100_platform.devices
    assert list(degraded.links) == list(a100_platform.links)
    assert HardwareParams.from_platform(degraded) == HardwareParams.from_platform(
        a100_platform
    )


def test_disjoint_fault_windows_compose_like_singletons(a100_platform):
    """A schedule holding two disjoint windows degrades each instant
    exactly as the matching single-fault schedule would."""
    pcie = FaultSpec(FaultKind.PCIE_DEGRADE, 0.0, 10.0, severity=0.5)
    cpu = FaultSpec(FaultKind.CPU_THROTTLE, 20.0, 10.0, severity=0.4)
    both = FaultSchedule(name="both", faults=(pcie, cpu))
    only_pcie = FaultSchedule(name="p", faults=(pcie,))
    only_cpu = FaultSchedule(name="c", faults=(cpu,))
    for t, singleton in ((5.0, only_pcie), (25.0, only_cpu)):
        composed = a100_platform.with_faults(both, t)
        alone = a100_platform.with_faults(singleton, t)
        assert composed.devices == alone.devices
        assert list(composed.links) == list(alone.links)
    # Between the windows, the overlay steps aside entirely.
    assert a100_platform.with_faults(both, 15.0) is a100_platform


def test_fault_declaration_order_commutes(a100_platform):
    """Overlapping cross-kind faults compose multiplicatively, so the
    declaration order in the schedule cannot matter."""
    specs = (
        FaultSpec(FaultKind.CPU_THROTTLE, 0.0, 10.0, severity=0.5),
        FaultSpec(FaultKind.CORE_LOSS, 0.0, 10.0, severity=0.5),
        FaultSpec(FaultKind.PCIE_DEGRADE, 0.0, 10.0, severity=0.3),
    )
    forward = a100_platform.with_faults(
        FaultSchedule(name="f", faults=specs), 5.0
    )
    reverse = a100_platform.with_faults(
        FaultSchedule(name="r", faults=specs[::-1]), 5.0
    )
    assert forward.devices == reverse.devices
    assert list(forward.links) == list(reverse.links)
    assert HardwareParams.from_platform(forward) == HardwareParams.from_platform(
        reverse
    )


def test_overlay_never_mutates_base_and_shares_untouched_objects(
    a100_platform,
):
    """with_faults is an overlay, not an edit: the base keeps its exact
    spec objects, and sub-objects the fault does not touch are shared by
    identity with the degraded view."""
    before_devices = dict(a100_platform.devices)
    before_links = list(a100_platform.links)
    sched = FaultSchedule(
        name="cpu-only",
        faults=(FaultSpec(FaultKind.CPU_THROTTLE, 0.0, 10.0, severity=0.5),),
    )
    degraded = a100_platform.with_faults(sched, 5.0)
    # Base is untouched, object for object.
    for name, spec in before_devices.items():
        assert a100_platform.devices[name] is spec
    for i, link in enumerate(before_links):
        assert a100_platform.links[i] is link
    # The overlay rebuilds only what the fault touches: GPU specs, links
    # and the cache hierarchy are the very same objects.
    cpu_name = a100_platform.cpu.name
    assert degraded.devices[cpu_name] is not a100_platform.devices[cpu_name]
    for name, spec in degraded.devices.items():
        if name != cpu_name:
            assert spec is a100_platform.devices[name]
    for i, link in enumerate(degraded.links):
        assert link is a100_platform.links[i]
    assert degraded.cache is a100_platform.cache


def test_capability_windows_enumerate_piecewise_regimes():
    """multi-fault at horizon 100: pcie [20,60), cpu [40,90), transient
    [30,70) -> capability segments split at every change point, with the
    transient-only structure contributing boundaries but no windows."""
    from repro.faults.overlay import capability_windows

    sched = make_scenario("multi-fault", horizon_s=100.0, seed=0)
    windows = capability_windows(sched)
    spans = [(a, b, sorted({f.kind.value for f in active}))
             for a, b, active in windows]
    assert spans == [
        (20.0, 30.0, ["pcie_degrade"]),
        (30.0, 40.0, ["pcie_degrade"]),
        (40.0, 60.0, ["cpu_throttle", "pcie_degrade"]),
        (60.0, 70.0, ["cpu_throttle"]),
        (70.0, 90.0, ["cpu_throttle"]),
    ]


def test_fault_signature_dedupes_identical_regimes():
    """flaky-pcie's flaps all carry the same (kind, severity, target), so
    every capability window collapses to one signature — the faulted
    audit prices it once and tallies occurrences."""
    from repro.faults.overlay import capability_windows, fault_signature

    sched = make_scenario("flaky-pcie", horizon_s=100.0, seed=0)
    windows = capability_windows(sched)
    assert len(windows) >= 2
    signatures = {fault_signature(active) for _, _, active in windows}
    assert len(signatures) == 1
    # And the signature is order-independent.
    _, _, active = windows[0]
    assert fault_signature(active) == fault_signature(tuple(reversed(active)))
