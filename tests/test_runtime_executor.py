import pytest

from repro.errors import ScheduleError
from repro.runtime import DecodeLoop, OverlappedExecutor, TaskCosts


def test_steady_state_matches_resource_grouped_eq2():
    """In steady state, the marginal token cost equals
    max(h2d-sum, d2h-sum, compute) x layers x batches — the
    resource-grouped form of the paper's Eq. 2."""
    costs = TaskCosts(
        load_weight=0.004, load_cache=0.002, load_activation=0.0001,
        store_cache=0.003, store_activation=0.0001, compute=0.005,
    )
    ex = OverlappedExecutor(num_layers=4, num_gpu_batches=3)
    marginal = ex.steady_state_token_time(costs, warmup=3)
    h2d = costs.load_weight + costs.load_cache + costs.load_activation
    d2h = costs.store_cache + costs.store_activation
    expected = max(h2d, d2h, costs.compute) * 4 * 3
    assert marginal == pytest.approx(expected, rel=0.05)


@pytest.mark.parametrize("bottleneck", ["h2d", "compute", "d2h"])
def test_bottleneck_resource_saturates(bottleneck):
    values = {"h2d": 0.001, "compute": 0.001, "d2h": 0.001}
    values[bottleneck] = 0.01
    costs = TaskCosts(
        load_weight=values["h2d"], store_cache=values["d2h"],
        compute=values["compute"],
    )
    ex = OverlappedExecutor(num_layers=3, num_gpu_batches=2)
    ex.steady_state_token_time(costs, warmup=4)
    sim = ex.streams.sim
    resource = {"h2d": "h2d", "d2h": "d2h", "compute": "compute"}[bottleneck]
    assert sim.utilization(resource) > 0.85


def test_overlap_beats_serial():
    costs = TaskCosts(load_weight=0.01, store_cache=0.01, compute=0.01)
    ex = OverlappedExecutor(num_layers=4, num_gpu_batches=2)
    overlapped = ex.steady_state_token_time(costs)
    assert overlapped < costs.serial_time() * 4 * 2 * 0.6


def test_invalid_geometry():
    with pytest.raises(ScheduleError):
        OverlappedExecutor(num_layers=0, num_gpu_batches=1)


def test_decode_loop_trace():
    loop = DecodeLoop(num_layers=2, num_gpu_batches=2)
    prefill = TaskCosts(compute=0.05, load_weight=0.01)
    decode = TaskCosts(compute=0.01, load_weight=0.005)
    trace = loop.run(prefill, lambda t: decode, gen_len=4)
    assert trace.prefill_seconds > 0
    assert trace.decode_seconds > 0
    assert len(trace.per_token_seconds) == 3  # (n - 1) decode steps
    assert trace.total_seconds == pytest.approx(
        trace.prefill_seconds + trace.decode_seconds
    )


def test_decode_loop_throughput():
    loop = DecodeLoop(num_layers=2, num_gpu_batches=1)
    trace = loop.run(TaskCosts(compute=0.1), lambda t: TaskCosts(compute=0.01), 4)
    tput = trace.throughput(block_size=8, gen_len=4)
    assert tput == pytest.approx(32 / trace.total_seconds)


def test_decode_loop_growing_costs():
    """Per-token costs that grow (KV cache growth) show up in the trace."""
    loop = DecodeLoop(num_layers=2, num_gpu_batches=1)
    trace = loop.run(
        TaskCosts(compute=0.01),
        lambda t: TaskCosts(compute=0.01 * (1 + t)),
        gen_len=4,
    )
    assert trace.per_token_seconds[0] < trace.per_token_seconds[-1]


def test_decode_loop_invalid_gen_len():
    loop = DecodeLoop(num_layers=1, num_gpu_batches=1)
    with pytest.raises(ScheduleError):
        loop.run(TaskCosts(), lambda t: TaskCosts(), 0)
