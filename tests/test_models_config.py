import pytest

from repro.errors import ConfigError
from repro.models import get_model, list_models, register_model
from repro.models.config import ModelConfig


def test_weights_per_layer_formula():
    # Paper §3.2: num_weights = 4*h1^2 + 2*h1*h2.
    cfg = get_model("opt-30b")
    h1, h2 = cfg.hidden_size, cfg.intermediate_size
    assert cfg.weights_per_layer == 4 * h1 * h1 + 2 * h1 * h2


def test_opt_30b_parameter_count_near_30b():
    cfg = get_model("opt-30b")
    assert 28e9 < cfg.total_weights < 31e9


def test_opt_66b_parameter_count_near_66b():
    cfg = get_model("opt-66b")
    assert 60e9 < cfg.total_weights < 68e9


def test_llama_65b_parameter_count():
    cfg = get_model("llama-65b")
    assert 60e9 < cfg.total_weights < 68e9


def test_head_dim_divides():
    for name in list_models():
        cfg = get_model(name)
        assert cfg.head_dim * cfg.num_heads == cfg.hidden_size


def test_invalid_heads_rejected():
    with pytest.raises(ConfigError, match="num_heads"):
        ModelConfig(name="bad", num_layers=2, hidden_size=100,
                    intermediate_size=400, num_heads=3)


def test_invalid_layers_rejected():
    with pytest.raises(ConfigError):
        ModelConfig(name="bad", num_layers=0, hidden_size=64,
                    intermediate_size=256, num_heads=4)


def test_registry_contains_paper_models():
    names = list_models()
    for required in ("opt-30b", "opt-66b", "llama-30b", "llama-65b",
                     "opt-13b", "llama-13b", "tiny-2l"):
        assert required in names


def test_registry_unknown_model():
    with pytest.raises(ConfigError, match="unknown model"):
        get_model("gpt-5")


def test_registry_duplicate_rejected():
    cfg = get_model("tiny-2l")
    with pytest.raises(ConfigError, match="already registered"):
        register_model(cfg)


def test_scaled_preserves_mlp_ratio():
    base = get_model("llama-30b")
    small = base.scaled("llama-tiny", layers=2, hidden=64, heads=4)
    assert small.num_layers == 2
    ratio = base.intermediate_size / base.hidden_size
    assert small.intermediate_size == pytest.approx(64 * ratio, abs=1)
