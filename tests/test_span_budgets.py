"""The CI span-budget gate (scripts/check_span_budgets.py) itself."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_span_budgets.py"


@pytest.fixture(scope="module")
def budgets_mod():
    spec = importlib.util.spec_from_file_location("check_span_budgets", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _report(**totals):
    return {
        "scopes": {
            name: {"calls": 3, "total_s": t, "max_s": t, "mean_s": t / 3}
            for name, t in totals.items()
        }
    }


def test_passes_within_budget(budgets_mod):
    report = _report(**{
        "obs.audit.sweep": 0.01, "obs.audit.faulted_sweep": 0.05,
    })
    assert budgets_mod.check(report, dict(budgets_mod.DEFAULT_BUDGETS)) == []


def test_flags_overrun_and_missing_required_span(budgets_mod):
    report = _report(**{"obs.audit.sweep": 99.0})
    problems = budgets_mod.check(report, dict(budgets_mod.DEFAULT_BUDGETS))
    assert any("obs.audit.sweep" in p and "99.000s" in p for p in problems)
    assert any("obs.audit.faulted_sweep" in p and "missing" in p for p in problems)


def test_unbudgeted_spans_are_ignored(budgets_mod):
    report = _report(**{
        "obs.audit.sweep": 0.01, "obs.audit.faulted_sweep": 0.01,
        "some.other.span": 1e9,
    })
    assert budgets_mod.check(report, dict(budgets_mod.DEFAULT_BUDGETS)) == []


def test_custom_required_set_replaces_audit_spans(budgets_mod):
    report = _report(**{"serving.run": 0.2})
    assert budgets_mod.check(
        report, dict(budgets_mod.DEFAULT_BUDGETS), required=("serving.run",)
    ) == []
    problems = budgets_mod.check(
        _report(**{"obs.audit.sweep": 0.01}),
        dict(budgets_mod.DEFAULT_BUDGETS),
        required=("serving.run",),
    )
    assert any("serving.run" in p and "missing" in p for p in problems)


def test_serving_run_budget_is_enforced(budgets_mod):
    report = _report(**{"serving.run": 99.0})
    problems = budgets_mod.check(
        report, dict(budgets_mod.DEFAULT_BUDGETS), required=("serving.run",)
    )
    assert any("serving.run" in p and "99.000s" in p for p in problems)


def test_main_end_to_end(budgets_mod, tmp_path, capsys):
    path = tmp_path / "report.json"
    path.write_text(json.dumps(_report(**{
        "obs.audit.sweep": 0.01, "obs.audit.faulted_sweep": 0.05,
    })))
    assert budgets_mod.main([str(path)]) == 0
    assert budgets_mod.main([str(path), "--budget", "obs.audit.sweep=0.001"]) == 1
    assert budgets_mod.main([str(path), "--budget", "nonsense"]) == 2
    assert budgets_mod.main([str(tmp_path / "absent.json")]) == 2
    serving = tmp_path / "serving.json"
    serving.write_text(json.dumps(_report(**{"serving.run": 0.2})))
    assert budgets_mod.main([str(serving), "--require", "serving.run"]) == 0
    assert budgets_mod.main([str(serving)]) == 1  # audit spans missing
    capsys.readouterr()
