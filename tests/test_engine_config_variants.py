"""Engine configuration variants and multi-GPU runner options."""

import pytest

from repro.core import EngineConfig, LMOffloadEngine
from repro.hardware import single_a100
from repro.models import get_model
from repro.multigpu import PipelineParallelRunner
from repro.perfmodel import Workload
from repro.perfmodel.constants import EngineCalibration
from repro.quant import QuantConfig


@pytest.fixture(scope="module")
def workload():
    return Workload(get_model("opt-30b"), 64, 8, 64, 10)


def test_custom_quant_bits_respected(workload):
    engine = LMOffloadEngine(
        single_a100(),
        config=EngineConfig(quant=QuantConfig(bits=8, group_size=64)),
    )
    report = engine.run(workload)
    for q in (report.policy.weight_quant, report.policy.kv_quant):
        if q is not None:
            assert q.bits == 8


def test_gpu_attention_can_be_disallowed(workload):
    engine = LMOffloadEngine(
        single_a100(), config=EngineConfig(allow_gpu_attention=False)
    )
    report = engine.run(workload)
    assert report.policy.attention_on_cpu


def test_custom_calibration_changes_results(workload):
    default = LMOffloadEngine(single_a100()).run(workload)
    ideal = LMOffloadEngine(
        single_a100(),
        config=EngineConfig(calibration=EngineCalibration.ideal_kernels()),
    ).run(workload)
    assert ideal.throughput > default.throughput * 1.5


def test_coarser_wg_step_still_feasible(workload):
    engine = LMOffloadEngine(single_a100(), config=EngineConfig(wg_step=0.25))
    report = engine.run(workload)
    assert report.throughput > 0
    assert report.gpu_bytes <= single_a100().gpu.memory_capacity


def test_multigpu_parallelism_control_helps():
    """The controlled-threading stage option never hurts the pipeline."""
    model = get_model("opt-13b")
    workload = Workload(model, 256, 64, 32, 4)
    plain = PipelineParallelRunner(engine_name="a", use_quant=True)
    controlled = PipelineParallelRunner(
        engine_name="b", use_quant=True, parallelism_control=True
    )
    t_plain = plain.run(model, 1, workload).throughput
    t_ctrl = controlled.run(model, 1, workload).throughput
    assert t_ctrl >= t_plain * 0.999


def test_engine_report_includes_breakdown_detail(workload):
    report = LMOffloadEngine(single_a100()).run(workload)
    b = report.breakdown
    assert b.total_seconds > 0
    assert sum(b.task_totals.values()) > 0
    # Quant overheads are consistent with the chosen policy.
    if not (report.policy.quantizes_weights or report.policy.quantizes_kv):
        assert b.total_quant_seconds == 0.0
