import numpy as np
import pytest

from repro.models.layers import (
    attention_scores,
    gelu,
    layer_norm,
    merge_heads,
    mlp,
    self_attention,
    softmax,
    split_heads,
)


def test_softmax_rows_sum_to_one(rng):
    x = rng.standard_normal((4, 7)).astype(np.float32)
    s = softmax(x)
    assert np.allclose(s.sum(axis=-1), 1.0, atol=1e-6)


def test_softmax_stable_for_large_inputs():
    x = np.array([[1e4, 1e4 + 1.0]], dtype=np.float32)
    s = softmax(x)
    assert np.all(np.isfinite(s))
    assert s[0, 1] > s[0, 0]


def test_layer_norm_normalizes(rng):
    x = rng.standard_normal((2, 3, 16)).astype(np.float32) * 10 + 5
    y = layer_norm(x, np.ones(16, np.float32), np.zeros(16, np.float32))
    assert np.allclose(y.mean(-1), 0.0, atol=1e-4)
    assert np.allclose(y.var(-1), 1.0, atol=1e-2)


def test_gelu_limits():
    assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
    assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
    assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


def test_split_merge_roundtrip(rng):
    x = rng.standard_normal((2, 5, 32)).astype(np.float32)
    assert np.array_equal(merge_heads(split_heads(x, 4)), x)


def test_split_heads_requires_divisibility(rng):
    with pytest.raises(ValueError):
        split_heads(rng.standard_normal((1, 2, 30)).astype(np.float32), 4)


def test_causal_mask_blocks_future(rng):
    q = rng.standard_normal((1, 2, 4, 8)).astype(np.float32)
    k = rng.standard_normal((1, 2, 4, 8)).astype(np.float32)
    probs = attention_scores(q, k, causal_mask=True)
    # Upper triangle (future positions) must carry zero probability.
    upper = np.triu(np.ones((4, 4)), k=1).astype(bool)
    assert np.all(probs[..., upper] == 0.0)


def test_causal_mask_with_kv_cache_offset(rng):
    # One new query over 5 cached keys: it may attend to all of them.
    q = rng.standard_normal((1, 2, 1, 8)).astype(np.float32)
    k = rng.standard_normal((1, 2, 5, 8)).astype(np.float32)
    probs = attention_scores(q, k, causal_mask=True)
    assert np.all(probs > 0)
    assert probs.shape == (1, 2, 1, 5)


def test_causal_mask_rejects_short_keys(rng):
    q = rng.standard_normal((1, 1, 5, 8)).astype(np.float32)
    k = rng.standard_normal((1, 1, 3, 8)).astype(np.float32)
    with pytest.raises(ValueError):
        attention_scores(q, k)


def test_self_attention_shape(rng):
    q = rng.standard_normal((2, 4, 3, 8)).astype(np.float32)
    k = rng.standard_normal((2, 4, 7, 8)).astype(np.float32)
    v = rng.standard_normal((2, 4, 7, 8)).astype(np.float32)
    out = self_attention(q, k, v)
    assert out.shape == (2, 3, 32)


def test_attention_is_convex_combination_of_values(rng):
    # With a single head and value vectors in [0,1], outputs stay in [0,1].
    q = rng.standard_normal((1, 1, 2, 4)).astype(np.float32)
    k = rng.standard_normal((1, 1, 2, 4)).astype(np.float32)
    v = rng.random((1, 1, 2, 4)).astype(np.float32)
    out = self_attention(q, k, v, causal_mask=False)
    assert out.min() >= 0.0 - 1e-6
    assert out.max() <= 1.0 + 1e-6


def test_mlp_shapes(rng):
    x = rng.standard_normal((2, 3, 8)).astype(np.float32)
    w_in = rng.standard_normal((8, 32)).astype(np.float32)
    w_out = rng.standard_normal((32, 8)).astype(np.float32)
    y = mlp(x, w_in, np.zeros(32, np.float32), w_out, np.zeros(8, np.float32))
    assert y.shape == x.shape
