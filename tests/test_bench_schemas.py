"""Golden-schema tests for the committed ``BENCH_*.json`` artifacts.

The seven benchmark documents (``BENCH_timing.json``, ``BENCH_serving.json``,
``BENCH_chaos.json``, ``BENCH_audit.json``, ``BENCH_fleet.json``,
``BENCH_multimodel.json``, ``BENCH_spec.json``) are the repo's public contract
with downstream dashboards and the CI gates — a key silently disappearing
is a breaking change that no numeric tolerance catches.  These tests pin
the contract three ways:

* every artifact still carries its *required* top-level keys;
* no key path present in the checked-in snapshot
  (``tests/data/bench_schemas.json``, the full recursive key skeleton of
  each artifact at the time it was frozen) has disappeared — new keys are
  fine, removals fail;
* every float anywhere in every document is finite (no NaN/Inf smuggled
  through ``json.dumps``, which happily emits both).

When a PR legitimately extends a schema, regenerate the snapshot with::

    python - <<'EOF'
    import json
    from tests.test_bench_schemas import ARTIFACTS, key_paths, load_artifact
    snap = {n: sorted(key_paths(load_artifact(n))) for n in ARTIFACTS}
    with open("tests/data/bench_schemas.json", "w") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    EOF

(run from the repo root with ``PYTHONPATH=src:.``) and review the diff —
removals should be deliberate and called out in the PR.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = Path(__file__).resolve().parent / "data" / "bench_schemas.json"
ARTIFACTS = ("timing", "serving", "chaos", "audit", "fleet", "multimodel", "spec")

#: The minimum top-level contract of each artifact, independent of the
#: snapshot (so a wholesale snapshot regeneration cannot hide losing one
#: of these).
REQUIRED_TOP_LEVEL = {
    "timing": {"policy", "quick", "schema_version", "targets", "workload"},
    "serving": {
        "comparison", "config", "engines", "model", "scheduler",
        "schema_version", "trace",
    },
    "chaos": {
        "all_accounting_ok", "config", "engines", "model", "scenarios",
        "scheduler", "schema_version", "seed", "trace",
    },
    "audit": {
        "cases", "e2e_tolerance", "metrics", "quick", "schema_version",
        "summary", "tolerance",
    },
    "fleet": {
        "all_accounting_ok", "config", "fleets", "model", "quick",
        "scenarios", "scheduler", "schema_version", "seed",
    },
    "multimodel": {
        "config", "engine", "mixes", "models", "preset", "schema_version",
        "seed", "slo_classes",
    },
    "spec": {
        "cells", "comparison", "model", "schema_version", "spec", "sweep",
    },
}


def key_paths(doc: object, prefix: str = "") -> set[str]:
    """Every dotted key path in ``doc``; list elements collapse to ``[]``
    (so variable-length lists compare by element shape, not length)."""
    paths: set[str] = set()
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.add(path)
            paths |= key_paths(value, path)
    elif isinstance(doc, list):
        for item in doc:
            paths |= key_paths(item, prefix + "[]")
    return paths


def iter_floats(doc: object, prefix: str = ""):
    """Yield ``(path, value)`` for every float anywhere in ``doc``."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            yield from iter_floats(value, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            yield from iter_floats(item, f"{prefix}[{i}]")
    elif isinstance(doc, float):
        yield prefix, doc


def load_artifact(name: str) -> dict:
    path = REPO_ROOT / f"BENCH_{name}.json"
    # json.loads accepts NaN/Infinity by default; the finiteness test
    # walks the parsed floats, so lenient parsing is what we want here.
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def snapshot() -> dict[str, list[str]]:
    return json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", ARTIFACTS)
def test_artifact_exists_and_has_required_top_level_keys(name):
    doc = load_artifact(name)
    missing = REQUIRED_TOP_LEVEL[name] - doc.keys()
    assert not missing, f"BENCH_{name}.json lost required keys: {sorted(missing)}"
    assert doc["schema_version"] == 1


@pytest.mark.parametrize("name", ARTIFACTS)
def test_no_key_path_disappears_vs_snapshot(name, snapshot):
    current = key_paths(load_artifact(name))
    missing = sorted(set(snapshot[name]) - current)
    assert not missing, (
        f"BENCH_{name}.json dropped {len(missing)} key path(s) present in "
        f"tests/data/bench_schemas.json (first few: {missing[:5]}); if the "
        "removal is intentional, regenerate the snapshot (see module "
        "docstring) and flag it in the PR"
    )


@pytest.mark.parametrize("name", ARTIFACTS)
def test_snapshot_covers_required_top_level(name, snapshot):
    """The snapshot itself must subsume the explicit top-level contract —
    guards against regenerating it from a truncated artifact."""
    assert REQUIRED_TOP_LEVEL[name] <= set(snapshot[name])


@pytest.mark.parametrize("name", ARTIFACTS)
def test_all_floats_finite(name):
    bad = [
        (path, value)
        for path, value in iter_floats(load_artifact(name))
        if not math.isfinite(value)
    ]
    assert not bad, f"BENCH_{name}.json contains non-finite floats: {bad[:5]}"


# -- the producers still emit the contract ---------------------------------


def test_quick_timing_payload_keeps_contract():
    from repro.bench.timing import run_bench_timing

    payload = run_bench_timing(quick=True)
    assert REQUIRED_TOP_LEVEL["timing"] <= payload.keys()
    assert payload["quick"] is True
    # quick skips tab3 by design; the two cheap targets keep full stats.
    for target in ("plan", "breakdown"):
        stats = payload["targets"][target]
        assert {
            "median_s", "best_s", "mean_s", "repeats",
            "baseline_median_s", "speedup_vs_baseline",
        } <= stats.keys()
        assert all(
            math.isfinite(v) for _, v in iter_floats(stats)
        )


@pytest.fixture(scope="module")
def quick_audit_payload():
    from repro.obs.audit import run_audit

    return run_audit(quick=True)


def test_quick_multimodel_payload_keeps_contract_and_is_deterministic():
    from repro.bench.multimodel import CORESIDENT_SCHEDULERS, run_multimodel_bench

    kwargs = dict(
        preset="opt-1.3b,opt-6.7b",
        engine="zero-inference",
        mixes=("balanced",),
        quick=True,
        seed=0,
    )
    p1 = run_multimodel_bench(**kwargs)
    p2 = run_multimodel_bench(**kwargs)
    assert json.dumps(p1, sort_keys=True) == json.dumps(p2, sort_keys=True)
    assert REQUIRED_TOP_LEVEL["multimodel"] <= p1.keys()
    assert p1["models"] == ["opt-1.3b", "opt-6.7b"]
    mix = p1["mixes"]["balanced"]
    assert set(mix["coresident"]) == set(CORESIDENT_SCHEDULERS)
    assert mix["dedicated"]["replicas"] == 2
    assert set(mix["consolidation_ratio"]) == set(CORESIDENT_SCHEDULERS)
    # The learned-predictor run carries its mispredict ledger.
    assert "predictor" in mix["coresident"]["sjf-predict"]
    assert all(math.isfinite(v) for _, v in iter_floats(p1))


def test_quick_spec_payload_keeps_contract_and_is_deterministic():
    from repro.bench.spec import run_spec_sweep

    p1 = run_spec_sweep(quick=True)
    p2 = run_spec_sweep(quick=True)
    assert json.dumps(p1, sort_keys=True) == json.dumps(p2, sort_keys=True)
    assert REQUIRED_TOP_LEVEL["spec"] <= p1.keys()
    assert all(math.isfinite(v) for _, v in iter_floats(p1))
    for cell in p1["cells"]:
        assert {
            "context", "alpha", "base_tokens_per_s", "spec_tokens_per_s",
            "speedup", "chosen_depth", "tokens_per_step",
        } <= cell.keys()


def test_quick_audit_payload_keeps_contract(quick_audit_payload):
    payload = quick_audit_payload
    assert REQUIRED_TOP_LEVEL["audit"] <= payload.keys()
    assert payload["quick"] is True
    assert "faulted" not in payload  # fault sweep is strictly opt-in
    assert all(math.isfinite(v) for _, v in iter_floats(payload))


def test_faulted_audit_payload_only_adds_keys(quick_audit_payload):
    """``audit --faults`` extends the document; it never rewrites the
    fault-free schema (zero-fault byte-identity is tested elsewhere —
    this is the key-skeleton half of that contract)."""
    from repro.obs.audit import run_audit

    faulted = run_audit(quick=True, faults=True)
    base_paths = key_paths(quick_audit_payload)
    faulted_paths = key_paths(faulted)
    assert base_paths <= faulted_paths
    extra_top = set(faulted.keys()) - set(quick_audit_payload.keys())
    assert extra_top == {"fault_tolerance", "faulted"}
    assert all(math.isfinite(v) for _, v in iter_floats(faulted))
