"""Property-based tests on the scheduler and overlap model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ZeroInferenceEngine
from repro.hardware import single_a100
from repro.models import get_model
from repro.parallel.controller import schedule_makespan
from repro.runtime.graph import OpGraph, OpNode
from repro.runtime.tasks import TaskCosts
from repro.runtime.executor import OverlappedExecutor
from repro.serving import (
    ServingConfig,
    ServingSimulator,
    make_policy,
    poisson_trace,
    replay_trace,
)


@st.composite
def random_dag(draw):
    """A random DAG with positive op durations (edges only point forward)."""
    n = draw(st.integers(2, 15))
    durations = draw(
        st.lists(
            st.floats(0.001, 1.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    edges = []
    for j in range(1, n):
        preds = draw(
            st.lists(st.integers(0, j - 1), unique=True, max_size=min(j, 3))
        )
        edges.append(preds)
    g = OpGraph()
    for i in range(n):
        deps = [f"op{p}" for p in (edges[i - 1] if i >= 1 else [])]
        g.add_op(OpNode(f"op{i}", work=durations[i]), deps=deps)
    return g, durations


@given(data=random_dag(), slots=st.integers(1, 8))
@settings(max_examples=80, deadline=None)
def test_makespan_bounds(data, slots):
    """Any list schedule satisfies the classic bounds:
    max(critical path, total/slots) <= makespan <= total work."""
    graph, durations = data
    makespan = schedule_makespan(graph, slots, lambda n: graph.node(n).work)
    total = sum(durations)
    critical = graph.critical_path_work()
    assert makespan <= total + 1e-9
    assert makespan >= critical - 1e-9
    assert makespan >= total / slots - 1e-9


@given(data=random_dag())
@settings(max_examples=40, deadline=None)
def test_more_slots_never_hurt(data):
    graph, _ = data
    times = [
        schedule_makespan(graph, s, lambda n: graph.node(n).work)
        for s in (1, 2, 4, 16)
    ]
    # Greedy list scheduling on a fixed priority order is monotone here
    # because op durations don't depend on the slot count.
    assert times[0] >= times[-1] - 1e-9
    assert times[0] == pytest.approx(graph.total_work())


task_floats = st.floats(0.0, 0.1, allow_nan=False)


@given(
    lw=task_floats, lc=task_floats, la=task_floats,
    sc=task_floats, sa=task_floats, comp=task_floats,
    layers=st.integers(1, 4), batches=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_executor_bounded_by_serial_and_bottleneck(
    lw, lc, la, sc, sa, comp, layers, batches
):
    """The overlapped executor's steady-state token time always lies
    between the bottleneck-resource bound and the fully-serial bound."""
    costs = TaskCosts(
        load_weight=lw, load_cache=lc, load_activation=la,
        store_cache=sc, store_activation=sa, compute=comp,
    )
    if costs.serial_time() == 0:
        return
    ex = OverlappedExecutor(num_layers=layers, num_gpu_batches=batches)
    marginal = ex.steady_state_token_time(costs, warmup=3)
    iters = layers * batches
    h2d = lw + lc + la
    d2h = sc + sa
    lower = max(h2d, d2h, comp) * iters
    upper = costs.serial_time() * iters
    assert marginal >= lower * (1 - 1e-6)
    assert marginal <= upper * (1 + 1e-6) + 1e-9


@given(
    values=st.lists(st.floats(0.001, 1.0, allow_nan=False), min_size=6, max_size=6)
)
@settings(max_examples=50, deadline=None)
def test_step_time_max_property(values):
    costs = TaskCosts(*values)
    assert costs.step_time() == max(values)
    assert costs.serial_time() == pytest.approx(sum(values))


# -- scheduler metamorphic properties (seeded traces, no hypothesis) -------
#
# These run a real ServingSimulator end to end, so they use the frozen
# seeded traces directly instead of hypothesis strategies: the property is
# asserted on a pinned workload (part of the test), keeping runtime and
# replays byte-identical.


@pytest.fixture(scope="module")
def sched_engine():
    # ZeRO-Inference plans instantly (no LP search) — the properties under
    # test are the scheduler's, not the planner's.
    return ZeroInferenceEngine(single_a100())


@pytest.fixture(scope="module")
def sched_model():
    return get_model("opt-1.3b")


def _run_policy(engine, model, trace, scheduler, **cfg):
    return ServingSimulator(
        engine=engine,
        model=model,
        trace=trace,
        policy=make_policy(scheduler),
        config=ServingConfig(**cfg),
    ).run()


def test_sjf_mean_queue_wait_never_worse_than_fcfs(sched_engine, sched_model):
    """Shortest-job-first is the canonical mean-wait optimiser: on a
    drop-free seeded Poisson trace, its mean time-to-first-token cannot
    exceed FCFS's (both policies see byte-identical arrivals)."""
    trace = poisson_trace(rate=2.0, horizon_s=20.0, seed=7)
    waits = {}
    for scheduler in ("fcfs", "sjf"):
        result = _run_policy(
            sched_engine, sched_model, trace, scheduler,
            queue_capacity=4 * len(trace),
        )
        assert not result.dropped, (
            f"{scheduler}: the no-drop precondition failed — "
            f"{len(result.dropped)} drops; the property only compares "
            "completed waits"
        )
        assert len(result.finished) == len(trace)
        ttfts = [r.ttft_s for r in result.finished]
        assert all(t is not None and t >= 0.0 for t in ttfts)
        waits[scheduler] = sum(ttfts) / len(ttfts)
    assert waits["sjf"] <= waits["fcfs"] + 1e-9, (
        f"SJF mean wait {waits['sjf']:.4f}s worse than FCFS "
        f"{waits['fcfs']:.4f}s on the pinned trace"
    )


def test_priority_policy_never_inverts_same_arrival_requests(
    sched_engine, sched_model
):
    """Among requests that arrive at the same instant, the priority policy
    must start a strictly-higher-priority request no later than a lower
    one — for every same-arrival pair, at every arrival burst."""
    bursts = [
        (0.0, [0, 3, 1, 2]),
        (40.0, [2, 0, 2, 1]),
        (80.0, [1, 1, 3, 0]),
    ]
    entries = [
        (at, 16, 8, prio) for at, prios in bursts for prio in prios
    ]
    trace = replay_trace(entries, name="priority-bursts")
    # max_batch=2 forces each burst to admit in waves, so ordering within
    # a burst is actually observable in first-token times.
    result = _run_policy(
        sched_engine, sched_model, trace, "priority",
        max_batch=2, queue_capacity=64,
    )
    assert not result.dropped
    by_arrival: dict[float, list] = {}
    for r in result.finished:
        by_arrival.setdefault(r.arrival_s, []).append(r)
    assert len(by_arrival) == len(bursts)
    for arrival, requests in by_arrival.items():
        for a in requests:
            for b in requests:
                if a.priority > b.priority:
                    assert a.first_token_s <= b.first_token_s, (
                        f"burst at t={arrival}: priority {a.priority} "
                        f"(rid {a.rid}) started at {a.first_token_s} after "
                        f"priority {b.priority} (rid {b.rid}) at "
                        f"{b.first_token_s}"
                    )
