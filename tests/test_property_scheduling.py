"""Property-based tests on the scheduler and overlap model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.controller import schedule_makespan
from repro.runtime.graph import OpGraph, OpNode
from repro.runtime.tasks import TaskCosts
from repro.runtime.executor import OverlappedExecutor


@st.composite
def random_dag(draw):
    """A random DAG with positive op durations (edges only point forward)."""
    n = draw(st.integers(2, 15))
    durations = draw(
        st.lists(
            st.floats(0.001, 1.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    edges = []
    for j in range(1, n):
        preds = draw(
            st.lists(st.integers(0, j - 1), unique=True, max_size=min(j, 3))
        )
        edges.append(preds)
    g = OpGraph()
    for i in range(n):
        deps = [f"op{p}" for p in (edges[i - 1] if i >= 1 else [])]
        g.add_op(OpNode(f"op{i}", work=durations[i]), deps=deps)
    return g, durations


@given(data=random_dag(), slots=st.integers(1, 8))
@settings(max_examples=80, deadline=None)
def test_makespan_bounds(data, slots):
    """Any list schedule satisfies the classic bounds:
    max(critical path, total/slots) <= makespan <= total work."""
    graph, durations = data
    makespan = schedule_makespan(graph, slots, lambda n: graph.node(n).work)
    total = sum(durations)
    critical = graph.critical_path_work()
    assert makespan <= total + 1e-9
    assert makespan >= critical - 1e-9
    assert makespan >= total / slots - 1e-9


@given(data=random_dag())
@settings(max_examples=40, deadline=None)
def test_more_slots_never_hurt(data):
    graph, _ = data
    times = [
        schedule_makespan(graph, s, lambda n: graph.node(n).work)
        for s in (1, 2, 4, 16)
    ]
    # Greedy list scheduling on a fixed priority order is monotone here
    # because op durations don't depend on the slot count.
    assert times[0] >= times[-1] - 1e-9
    assert times[0] == pytest.approx(graph.total_work())


task_floats = st.floats(0.0, 0.1, allow_nan=False)


@given(
    lw=task_floats, lc=task_floats, la=task_floats,
    sc=task_floats, sa=task_floats, comp=task_floats,
    layers=st.integers(1, 4), batches=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_executor_bounded_by_serial_and_bottleneck(
    lw, lc, la, sc, sa, comp, layers, batches
):
    """The overlapped executor's steady-state token time always lies
    between the bottleneck-resource bound and the fully-serial bound."""
    costs = TaskCosts(
        load_weight=lw, load_cache=lc, load_activation=la,
        store_cache=sc, store_activation=sa, compute=comp,
    )
    if costs.serial_time() == 0:
        return
    ex = OverlappedExecutor(num_layers=layers, num_gpu_batches=batches)
    marginal = ex.steady_state_token_time(costs, warmup=3)
    iters = layers * batches
    h2d = lw + lc + la
    d2h = sc + sa
    lower = max(h2d, d2h, comp) * iters
    upper = costs.serial_time() * iters
    assert marginal >= lower * (1 - 1e-6)
    assert marginal <= upper * (1 + 1e-6) + 1e-9


@given(
    values=st.lists(st.floats(0.001, 1.0, allow_nan=False), min_size=6, max_size=6)
)
@settings(max_examples=50, deadline=None)
def test_step_time_max_property(values):
    costs = TaskCosts(*values)
    assert costs.step_time() == max(values)
    assert costs.serial_time() == pytest.approx(sum(values))
