"""Exit-code contract of ``python -m repro``, tested through a real
subprocess so the mapping survives everything between ``main()`` and the
shell: argparse's own exits, the typed-error handlers, and the module
``__main__`` plumbing.

Contract (documented in ``repro.cli``):

* 0 — success
* 1 — a command-level gate failed (audit drift, chaos accounting)
* 2 — argparse usage error
* 3 — ``ConfigError``
* 4 — ``PolicyError`` / ``MemoryCapacityError`` (infeasible)
* 5 — ``ScheduleError``
* 6 — any other ``ReproError``
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_repro(*argv, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_success_is_zero():
    proc = run_repro("models")
    assert proc.returncode == 0
    assert "opt-30b" in proc.stdout


def test_usage_error_is_two():
    proc = run_repro("no-such-command")
    assert proc.returncode == 2
    assert "invalid choice" in proc.stderr


def test_config_error_is_three():
    proc = run_repro("run", "--model", "no-such-model", "--gen-len", "8")
    assert proc.returncode == 3
    assert "config error" in proc.stderr


def test_missing_trace_file_is_config_error():
    proc = run_repro("serve-sim", "--arrival", "replay")
    assert proc.returncode == 3
    assert "--trace-file" in proc.stderr


def test_infeasible_plan_is_four():
    proc = run_repro(
        "plan", "--batch", "4096", "--num-batches", "12", "--gen-len", "8"
    )
    assert proc.returncode == 4
    assert "infeasible" in proc.stderr


def test_schedule_error_is_five():
    proc = run_repro("trace", "--layers", "0", "--gen-len", "8")
    assert proc.returncode == 5
    assert "schedule error" in proc.stderr


def test_audit_quick_passes_and_artifact_is_deterministic(tmp_path):
    out1 = tmp_path / "a1.json"
    out2 = tmp_path / "a2.json"
    for out in (out1, out2):
        proc = run_repro("audit", "--quick", "--output", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "drift audit (quick)" in proc.stdout
        assert "worst:" in proc.stdout
    assert out1.read_bytes() == out2.read_bytes()
    doc = json.loads(out1.read_text())
    assert doc["summary"]["ok"]
    assert doc["summary"]["num_cases"] == len(doc["cases"])


def test_audit_drift_gate_is_one(tmp_path):
    proc = run_repro(
        "audit", "--quick", "--tolerance", "1e-18",
        "--output", str(tmp_path / "a.json"),
    )
    assert proc.returncode == 1
    assert "DRIFT" in proc.stderr


def test_profile_flag_reports_to_stderr(tmp_path):
    proc = run_repro(
        "--profile", "audit", "--quick", "--output", str(tmp_path / "a.json")
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stderr[proc.stderr.index("{"):])
    assert report["scopes"]  # spans were captured
    assert "executor.run_token" in report["scopes"]
