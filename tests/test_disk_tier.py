"""The disk offloading tier (FlexGen's third tier)."""

import dataclasses

import pytest

from repro.errors import ConfigError, PolicyError
from repro.models import get_model
from repro.offload import OffloadPolicy
from repro.offload.planner import PolicyPlanner
from repro.perfmodel import CostModel, Workload


def P(**kw):
    return OffloadPolicy(gpu_batch_size=64, num_gpu_batches=10, **kw)


def test_wd_validation():
    with pytest.raises(ConfigError):
        OffloadPolicy(wg=0.8, wd=0.3)
    with pytest.raises(ConfigError):
        OffloadPolicy(wd=1.5)
    p = OffloadPolicy(wg=0.2, wd=0.5)
    assert p.w_cpu == pytest.approx(0.3)
    assert p.wc == pytest.approx(0.8)


def test_disk_share_slows_weight_loads(opt30b_workload, hw, default_ctx):
    in_ram = CostModel(opt30b_workload, P(wg=0.2, hg=1.0), hw, default_ctx)
    on_disk = CostModel(
        opt30b_workload, P(wg=0.2, wd=0.8, hg=1.0), hw, default_ctx
    )
    # 2 GB/s disk vs ~8.6 GB/s effective PCIe: the disk leg dominates.
    assert on_disk.decode_task_costs(0).load_weight > 2.5 * in_ram.decode_task_costs(
        0
    ).load_weight


def test_disk_share_frees_host_memory(opt30b_workload, hw, default_ctx):
    in_ram = CostModel(opt30b_workload, P(wg=0.2, hg=1.0), hw, default_ctx)
    on_disk = CostModel(
        opt30b_workload, P(wg=0.2, wd=0.8, hg=1.0), hw, default_ctx
    )
    # The host no longer holds the ~47 GB of offloaded weights (only a
    # 2-layer staging window); the KV cache stays host-resident either way.
    saved = in_ram.cpu_bytes_required() - on_disk.cpu_bytes_required()
    assert saved > 40e9


def test_disk_traffic_accounted(opt30b_workload, hw, default_ctx):
    model = CostModel(opt30b_workload, P(wg=0.2, wd=0.4, hg=1.0), hw, default_ctx)
    traffic = model._traffic_totals()
    assert traffic[("disk", "cpu", "weights")] > 0
    # Half of the offloaded share comes from disk in this policy.
    assert traffic[("disk", "cpu", "weights")] == pytest.approx(
        traffic[("cpu", "gpu", "weights")] * 0.5
    )


def test_planner_spills_to_disk_when_host_too_small(default_ctx, hw):
    """On a host too small for OPT-30B's weights + KV, the planner falls
    back to disk-resident weights instead of failing."""
    small_host = dataclasses.replace(hw, cpu_mem_capacity=100e9)
    planner = PolicyPlanner(hw=small_host, cpu_ctx=default_ctx, quant_aware=True)
    workload = Workload(get_model("opt-30b"), 64, 8, 64, 2)  # modest block
    policy, score = planner.search(workload)
    assert score > 0
    model = CostModel(workload, policy, small_host, default_ctx)
    assert model.cpu_bytes_required() <= 100e9


def test_no_spill_when_host_sufficient(hw, default_ctx):
    planner = PolicyPlanner(hw=hw, cpu_ctx=default_ctx, quant_aware=True)
    workload = Workload(get_model("opt-30b"), 64, 8, 64, 10)
    policy, _ = planner.search(workload)
    assert policy.wd == 0.0
