import pytest

from repro.errors import PolicyError
from repro.offload import OffloadPolicy
from repro.perfmodel import CostModel, Workload
from repro.perfmodel.constants import EngineCalibration
from repro.quant import QuantConfig
from repro.models import get_model

Q4 = QuantConfig(bits=4, group_size=64)


def P(**kw):
    return OffloadPolicy(gpu_batch_size=64, num_gpu_batches=10, **kw)


@pytest.fixture
def cpu_attn_model(opt30b_workload, hw, default_ctx):
    return CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0, attention_on_cpu=True), hw, default_ctx
    )


@pytest.fixture
def gpu_attn_model(opt30b_workload, hw, default_ctx):
    return CostModel(
        opt30b_workload,
        P(wg=0.55, cg=0.0, hg=0.0, attention_on_cpu=False),
        hw,
        default_ctx,
    )


def test_batch_geometry_must_match(opt30b_workload, hw, default_ctx):
    bad = OffloadPolicy(gpu_batch_size=32, num_gpu_batches=10)
    with pytest.raises(PolicyError):
        CostModel(opt30b_workload, bad, hw, default_ctx)


def test_cpu_attention_zeroes_cache_tasks(cpu_attn_model):
    """Observation 1's premise: with attention offloading the KV cache
    never crosses the interconnect."""
    costs = cpu_attn_model.decode_task_costs(0)
    assert costs.load_cache == 0.0
    assert costs.store_cache == 0.0


def test_gpu_attention_streams_cache(gpu_attn_model):
    costs = gpu_attn_model.decode_task_costs(0)
    assert costs.load_cache > 0
    assert costs.store_cache > 0


def test_decode_costs_grow_with_kv(gpu_attn_model):
    early = gpu_attn_model.decode_task_costs(0)
    late = gpu_attn_model.decode_task_costs(100)
    assert late.load_cache > early.load_cache
    assert late.compute > early.compute


def test_weight_quant_shrinks_wire_but_adds_dequant(
    opt30b_workload, hw, default_ctx
):
    plain = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0), hw, default_ctx
    )
    quant = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0, weight_quant=Q4), hw, default_ctx
    )
    # Stored bytes drop ~3.5x...
    assert quant.offloaded_weight_bytes_per_layer() < (
        plain.offloaded_weight_bytes_per_layer() / 3
    )
    # ...but the effective load_weight task is *slower* at FlexGen's codec
    # rates (the paper's Observation: W4 alone hurts).
    assert quant.decode_task_costs(0).load_weight > plain.decode_task_costs(
        0
    ).load_weight


def test_kv_quant_under_cpu_attention_burdens_compute(
    opt30b_workload, hw, default_ctx
):
    """Observation 1: quantization with attention offloading always loses —
    the CPU pays the codec on every token."""
    plain = CostModel(opt30b_workload, P(wg=0.55, hg=0.0), hw, default_ctx)
    quant = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0, kv_quant=Q4), hw, default_ctx
    )
    assert quant.decode_task_costs(10).compute > plain.decode_task_costs(10).compute


def test_kv_quant_under_gpu_attention_shrinks_cache_wire(
    opt30b_workload, hw, default_ctx
):
    plain = CostModel(
        opt30b_workload, P(wg=0.3, attention_on_cpu=False, hg=0.0), hw, default_ctx
    )
    quant = CostModel(
        opt30b_workload,
        P(wg=0.3, attention_on_cpu=False, hg=0.0, kv_quant=Q4),
        hw,
        default_ctx,
    )
    # Wire + codec still beats raw fp16 streaming for the big KV flow.
    assert quant.decode_task_costs(100).load_cache < plain.decode_task_costs(
        100
    ).load_cache


def test_step_seconds_literal_vs_grouped():
    from repro.runtime.tasks import TaskCosts

    costs = TaskCosts(load_weight=1, load_cache=1, load_activation=1, compute=2)
    assert CostModel.step_seconds(costs, literal_eq2=True) == 2
    # Grouped: the three loads share the H2D direction and sum to 3.
    assert CostModel.step_seconds(costs) == 3


def test_breakdown_eq1_structure(cpu_attn_model, opt30b_workload):
    b = cpu_attn_model.breakdown()
    assert b.total_seconds == pytest.approx(b.t_init + b.t_prefill + b.t_decode)
    assert b.t_decode > b.t_prefill  # n-1 decode passes vs one prefill
    assert b.throughput(opt30b_workload) > 0
    assert set(b.task_totals) == {
        "load_weight", "load_cache", "load_activation",
        "store_cache", "store_activation", "compute",
    }


def test_t_init_includes_weight_quant(opt30b_workload, hw, default_ctx):
    plain = CostModel(opt30b_workload, P(wg=0.55, hg=0.0), hw, default_ctx)
    quant = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0, weight_quant=Q4), hw, default_ctx
    )
    assert plain.t_init_seconds() == 0.0
    assert quant.t_init_seconds() > 0.0


def test_t_init_disk_load(opt30b_workload, hw, default_ctx):
    m = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0), hw, default_ctx,
        weights_preloaded=False,
    )
    # ~60 GB over a 2 GB/s disk link.
    assert m.t_init_seconds() > 25.0


def test_gpu_memory_feasibility(opt30b_workload, hw, default_ctx):
    infeasible = P(wg=1.0, hg=0.0)  # 59 GB of weights on a 40 GB GPU
    with pytest.raises(PolicyError, match="GPU memory"):
        CostModel(opt30b_workload, infeasible, hw, default_ctx).check_feasible()


def test_quantized_resident_weights_fit(opt30b_workload, hw, default_ctx):
    policy = P(wg=1.0, hg=1.0, weight_quant=Q4, quantize_resident_weights=True,
               attention_on_cpu=True)
    model = CostModel(opt30b_workload, policy, hw, default_ctx)
    model.check_feasible()  # 4-bit resident weights fit in 40 GB
    # And they pay per-use dequantization on the compute stream.
    plain_like = CostModel(
        opt30b_workload, P(wg=0.55, hg=1.0), hw, default_ctx
    )
    assert model.decode_task_costs(0).compute > plain_like.decode_task_costs(0).compute


def test_traffic_totals_match_table1_structure(cpu_attn_model, gpu_attn_model):
    with_offload = cpu_attn_model._traffic_totals()
    without = gpu_attn_model._traffic_totals()
    assert with_offload[("cpu", "gpu", "kv_cache")] == 0.0
    assert without[("cpu", "gpu", "kv_cache")] > 0
    # KV dominates every other flow when attention is not offloaded.
    assert without[("cpu", "gpu", "kv_cache")] > without[("cpu", "gpu", "weights")]


def test_calibration_pcie_efficiency(opt30b_workload, hw, default_ctx):
    import dataclasses

    # Strip staging limits so the comparison isolates the wire time.
    ctx = dataclasses.replace(default_ctx, io_staging_threads={})
    fast = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0), hw, ctx,
        calibration=EngineCalibration(pcie_efficiency=1.0),
    )
    slow = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0), hw, ctx,
        calibration=EngineCalibration(pcie_efficiency=0.25),
    )
    assert slow.decode_task_costs(0).load_weight > 3.5 * fast.decode_task_costs(0).load_weight


def test_ideal_kernels_make_quant_cheap(opt30b_workload, hw, default_ctx):
    """Ablation: with near-peak codec kernels, weight quantization becomes
    a clear win (the paper's tradeoff exists only because real codec
    kernels are slow)."""
    cal = EngineCalibration.ideal_kernels()
    plain = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0), hw, default_ctx, calibration=cal
    )
    quant = CostModel(
        opt30b_workload, P(wg=0.55, hg=0.0, weight_quant=Q4), hw, default_ctx,
        calibration=cal,
    )
    assert quant.decode_task_costs(0).load_weight < plain.decode_task_costs(0).load_weight
