import pytest

from repro.models import ModelFootprint, get_model
from repro.units import GB


@pytest.fixture
def opt30b_fp() -> ModelFootprint:
    """The paper's motivating configuration (§1, §3.1)."""
    return ModelFootprint(get_model("opt-30b"), prompt_len=64, gen_len=128,
                          block_size=640)


def test_weight_bytes_match_paper_scale(opt30b_fp):
    # Paper: ~55 GB of fp16 weights for OPT-30B.
    assert 50 * GB < opt30b_fp.total_weight_bytes < 65 * GB


def test_peak_kv_matches_paper_scale(opt30b_fp):
    # Paper: KV cache reaches ~157 GB at s=64, n=128, bls=640.
    assert 140 * GB < opt30b_fp.peak_kv_bytes < 180 * GB


def test_total_matches_paper_scale(opt30b_fp):
    # Paper: ~214 GB total.
    assert 195 * GB < opt30b_fp.total_bytes < 240 * GB


def test_kv_grows_linearly_with_tokens(opt30b_fp):
    a = opt30b_fp.kv_bytes_per_layer_at(0)
    b = opt30b_fp.kv_bytes_per_layer_at(1)
    step = opt30b_fp.kv_bytes_per_token_per_layer
    assert b - a == pytest.approx(step)


def test_eq17_prefill_kv(opt30b_fp):
    # Eq. 17: 2*(s+1)*h1*bls elements.
    cfg = get_model("opt-30b")
    elements = 2 * (64 + 1) * cfg.hidden_size * 640
    assert opt30b_fp.prefill_kv_bytes_per_layer == pytest.approx(elements * 2)


def test_eq18_average_old_kv(opt30b_fp):
    cfg = get_model("opt-30b")
    elements = 2 * (64 + 128 / 2) * cfg.hidden_size * 640
    assert opt30b_fp.avg_old_kv_bytes_per_layer == pytest.approx(elements * 2)


def test_kv_index_bounds(opt30b_fp):
    with pytest.raises(ValueError):
        opt30b_fp.kv_bytes_per_layer_at(-1)
    with pytest.raises(ValueError):
        opt30b_fp.kv_bytes_per_layer_at(128)


def test_with_dtypes_int4_shrinks_weights(opt30b_fp):
    q = opt30b_fp.with_dtypes(weight_dtype="int4")
    assert q.total_weight_bytes == pytest.approx(opt30b_fp.total_weight_bytes / 4)
    # KV untouched.
    assert q.peak_kv_bytes == opt30b_fp.peak_kv_bytes


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        ModelFootprint(get_model("opt-30b"), prompt_len=0, gen_len=1, block_size=1)


def test_activation_is_tiny_relative_to_kv(opt30b_fp):
    # Paper Table 1: activation flow is ~99.5% smaller than the KV cache.
    assert opt30b_fp.activation_bytes_per_layer < 0.01 * opt30b_fp.avg_old_kv_bytes_per_layer * 10
