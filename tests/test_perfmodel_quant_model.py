import pytest

from repro.models import get_model
from repro.perfmodel import Workload
from repro.perfmodel.constants import CodecRates
from repro.perfmodel.quant_model import (
    NORM_FLOPS_PER_ELEMENT,
    kv_quant_overheads,
    weight_quant_overheads,
)


@pytest.fixture
def workload() -> Workload:
    return Workload(get_model("opt-30b"), 64, 128, 64, 10)


def test_weight_overheads_scale_with_wc(workload):
    half = weight_quant_overheads(workload, wc=0.5)
    full = weight_quant_overheads(workload, wc=1.0)
    assert full.quantize_seconds == pytest.approx(2 * half.quantize_seconds)
    assert full.dequantize_seconds == pytest.approx(2 * half.dequantize_seconds)


def test_weight_overheads_zero_when_nothing_offloaded(workload):
    over = weight_quant_overheads(workload, wc=0.0)
    assert over.quantize_seconds == 0.0
    assert over.dequantize_seconds == 0.0


def test_weight_wc_bounds(workload):
    with pytest.raises(ValueError):
        weight_quant_overheads(workload, wc=1.5)


def test_eq13_minmax_structure(workload):
    """Eq. 13: scan cost = elements / rate."""
    rates = CodecRates(cpu_scan_eps=1e9)
    over = weight_quant_overheads(workload, wc=1.0, rates=rates)
    expected = workload.model.weights_per_layer / 1e9
    assert over.minmax_seconds == pytest.approx(expected)


def test_eq14_norm_is_three_flops_per_element(workload):
    rates = CodecRates(cpu_norm_flops=1e12)
    over = weight_quant_overheads(workload, wc=1.0, rates=rates)
    expected = workload.model.weights_per_layer * NORM_FLOPS_PER_ELEMENT / 1e12
    assert over.norm_seconds == pytest.approx(expected)


def test_eq16_dequant_has_no_minmax(workload):
    over = weight_quant_overheads(workload, wc=1.0)
    assert over.dequantize_seconds == pytest.approx(
        over.de_norm_seconds + over.de_postprocess_seconds
    )


def test_kv_prefill_vs_new_ratio(workload):
    """Eq. 17 vs Eq. 19: prefill covers s+1 tokens, 'new' covers one."""
    over = kv_quant_overheads(workload)
    ratio = over.prefill_quant_seconds / over.new_quant_seconds
    assert ratio == pytest.approx(workload.prompt_len + 1, rel=0.01)


def test_kv_old_cache_grows_with_token_index(workload):
    early = kv_quant_overheads(workload, token_idx=0)
    late = kv_quant_overheads(workload, token_idx=100)
    assert late.old_dequant_seconds > early.old_dequant_seconds


def test_kv_average_matches_eq18(workload):
    """The default (token_idx=None) uses the s + n/2 average of Eq. 18."""
    avg = kv_quant_overheads(workload).old_dequant_seconds
    mid = kv_quant_overheads(workload, token_idx=63).old_dequant_seconds
    assert avg == pytest.approx(mid, rel=0.05)


def test_kv_cpu_device_slower_than_gpu(workload):
    gpu = kv_quant_overheads(workload, device="gpu")
    cpu = kv_quant_overheads(workload, device="cpu")
    assert cpu.old_dequant_seconds > gpu.old_dequant_seconds


def test_kv_invalid_device(workload):
    with pytest.raises(ValueError):
        kv_quant_overheads(workload, device="tpu")


def test_kv_overheads_scale_with_block_size():
    small = kv_quant_overheads(Workload(get_model("opt-30b"), 64, 8, 64, 1))
    large = kv_quant_overheads(Workload(get_model("opt-30b"), 64, 8, 64, 10))
    assert large.new_quant_seconds == pytest.approx(10 * small.new_quant_seconds)
