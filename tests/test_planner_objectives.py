import pytest

from repro.models import get_model
from repro.offload.planner import PlannerObjective, PolicyPlanner
from repro.perfmodel import CostModel, Workload


@pytest.fixture
def latency_planner(hw, default_ctx):
    return PolicyPlanner(
        hw=hw, cpu_ctx=default_ctx, quant_aware=True,
        objective=PlannerObjective.LATENCY,
    )


@pytest.fixture
def tput_planner(hw, default_ctx):
    return PolicyPlanner(hw=hw, cpu_ctx=default_ctx, quant_aware=True)


def test_latency_objective_score_is_negative_latency(latency_planner, hw, default_ctx):
    w = Workload(get_model("opt-30b"), 64, 16, 64, 10)
    policy, score = latency_planner.search(w)
    assert score < 0  # negative seconds
    model = CostModel(w, policy, hw, default_ctx)
    mid = model.decode_task_costs(7)
    iters = w.model.num_layers * policy.num_gpu_batches
    assert -score == pytest.approx(model.step_seconds(mid) * iters)


def test_latency_policy_no_slower_per_token(latency_planner, tput_planner, hw, default_ctx):
    """The latency-optimal policy's per-token latency is <= the
    throughput-optimal policy's."""
    w = Workload(get_model("opt-30b"), 64, 16, 64, 10)
    lat_policy, lat_score = latency_planner.search(w)
    tput_policy, _ = tput_planner.search(w)

    def per_token(policy):
        m = CostModel(w, policy, hw, default_ctx)
        iters = w.model.num_layers * policy.num_gpu_batches
        return m.step_seconds(m.decode_task_costs(7)) * iters

    assert per_token(lat_policy) <= per_token(tput_policy) * 1.001


def test_batch_geometry_search_finds_feasible(tput_planner):
    w = Workload(get_model("opt-30b"), 64, 8, 64, 1)
    policy, shaped, score = tput_planner.search_batch_geometry(
        w, batch_candidates=(16, 64), num_batch_candidates=(1, 4)
    )
    assert score > 0
    assert shaped.block_size == policy.block_size
    assert shaped.block_size in {16, 64, 64 * 4, 16 * 4}


def test_batch_geometry_search_prefers_bigger_blocks(tput_planner):
    """Throughput grows with block size until memory binds, so the search
    must not return the smallest candidate."""
    w = Workload(get_model("opt-30b"), 64, 8, 64, 1)
    _, shaped, _ = tput_planner.search_batch_geometry(
        w, batch_candidates=(4, 64), num_batch_candidates=(1, 8)
    )
    assert shaped.block_size > 4
