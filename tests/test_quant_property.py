"""Property-based tests (hypothesis) on the quantizer and memory pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.errors import MemoryCapacityError
from repro.hardware.memory import MemoryPool
from repro.quant import QuantConfig
from repro.quant.error import roundtrip_error_bound
from repro.quant.groupwise import roundtrip

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=32
)


@given(
    data=arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=40),
        elements=finite_floats,
    ),
    bits=st.sampled_from([2, 4, 8]),
    group=st.sampled_from([8, 16, 64]),
)
@settings(max_examples=80, deadline=None)
def test_quant_roundtrip_bounded_error(data, bits, group):
    """For any finite tensor, the round-trip error never exceeds half a
    quantization step of its group's range."""
    cfg = QuantConfig(bits=bits, group_size=group)
    restored = roundtrip(data, cfg)
    assert restored.shape == data.shape
    bound = roundtrip_error_bound(cfg, data)
    assert np.abs(data.astype(np.float64) - restored).max() <= bound * (1 + 1e-5) + 1e-5


@given(
    data=arrays(
        dtype=np.float32,
        shape=st.tuples(st.integers(1, 8), st.integers(1, 100)),
        elements=finite_floats,
    )
)
@settings(max_examples=50, deadline=None)
def test_quant_idempotent_on_quantized_values(data):
    """Quantizing an already-quantized tensor is a fixed point."""
    cfg = QuantConfig(bits=4, group_size=16)
    once = roundtrip(data, cfg)
    twice = roundtrip(once, cfg)
    assert np.allclose(once, twice, atol=1e-5)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 9),
                  st.integers(1, 200)),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_memory_pool_conservation(ops):
    """used + free == capacity after any operation sequence, and used is
    always the sum of live allocations."""
    pool = MemoryPool(name="p", capacity=1000)
    live: dict[str, int] = {}
    for kind, idx, size in ops:
        handle = f"h{idx}"
        if kind == "alloc" and handle not in live:
            try:
                pool.allocate(handle, size)
                live[handle] = size
            except MemoryCapacityError:
                assert size > pool.capacity - sum(live.values())
        elif kind == "free" and handle in live:
            pool.release(handle)
            del live[handle]
        assert pool.used == sum(live.values())
        assert pool.used + pool.free == pool.capacity
