"""Integration tests asserting the paper's headline result *shapes*.

These are the claims DESIGN.md commits to reproducing.  Bands are
deliberately loose: the substrate is a calibrated simulator, so orderings
and rough ratios are asserted, not absolute numbers.
"""

import pytest

from repro.bench import (
    run_fig3_quant_strategies,
    run_fig5_parallelism_sweep,
    run_fig8_parallelism_control,
    run_tab1_io_traffic,
    run_tab5_llc_misses,
)


@pytest.fixture(scope="module")
def fig3():
    rows = run_fig3_quant_strategies()
    return {r["strategy"]: r["tokens_per_s"] for r in rows}


class TestObservation1:
    """Attention offloading flips the sign of quantization's benefit."""

    def test_quant_hurts_with_attention_offload(self, fig3):
        # Paper: 41 -> 32 tokens/s (KV quantization under CPU attention).
        assert fig3["cpu/kv4"] < fig3["cpu/none"] * 0.9
        assert fig3["cpu/w4+kv4"] < fig3["cpu/none"] * 0.9
        assert fig3["cpu/w4"] <= fig3["cpu/none"] * 1.02

    def test_quant_helps_without_attention_offload(self, fig3):
        # Paper: 46 -> 82 tokens/s with KV4.
        assert fig3["gpu/kv4"] > fig3["gpu/none"] * 1.4

    def test_placements_comparable_without_quant(self, fig3):
        # Paper: 41 vs 46 tokens/s.
        ratio = fig3["cpu/none"] / fig3["gpu/none"]
        assert 0.6 < ratio < 1.4


class TestObservation2:
    """Different tensors deserve different quantization decisions."""

    def test_kv_only_is_best_gpu_strategy(self, fig3):
        assert fig3["gpu/kv4"] == max(
            fig3[s] for s in ("gpu/none", "gpu/w4", "gpu/kv4", "gpu/w4+kv4")
        )

    def test_weight_only_is_worst_gpu_quant(self, fig3):
        # Paper: W4 (35) < none (46) < both (55) < KV4 (82).
        assert fig3["gpu/w4"] < fig3["gpu/none"]
        assert fig3["gpu/w4"] < fig3["gpu/w4+kv4"] < fig3["gpu/kv4"]


class TestTable1:
    def test_io_traffic_shape(self):
        rows = {
            (r["case"], r["direction"], r["tensor"]): r["gb_per_token"]
            for r in run_tab1_io_traffic()
        }
        # KV never crosses the link with attention offloaded.
        assert rows[("with_offload", "cpu->gpu", "kv_cache")] == 0.0
        # Without offloading, KV dominates everything (paper: 78.72 GB).
        kv = rows[("without_offload", "cpu->gpu", "kv_cache")]
        assert kv > 50
        assert kv > rows[("without_offload", "cpu->gpu", "weights")]
        # Activations are ~two orders of magnitude smaller than KV.
        assert rows[("without_offload", "cpu->gpu", "activation")] < kv / 50
        # Offloading attention loads *fewer* weights (more GPU residency).
        assert (
            rows[("with_offload", "cpu->gpu", "weights")]
            < rows[("without_offload", "cpu->gpu", "weights")]
        )


class TestFigure5:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_fig5_parallelism_sweep()

    def test_intra_rises_then_saturates(self, sweep):
        tput = {r["threads"]: r["tokens_per_s"] for r in sweep["intra"]}
        assert tput[4] > tput[1] * 1.3
        # Past the saturation point gains are small / negative (paper:
        # stable beyond 8 threads).
        assert abs(tput[56] - tput[8]) < tput[8] * 0.35

    def test_inter_has_interior_optimum(self, sweep):
        tput = {r["threads"]: r["tokens_per_s"] for r in sweep["inter"]}
        best = max(tput, key=tput.get)
        # Paper's optimum is 12; our contention model places it lower but
        # strictly inside (1, 112) — and the default 112 is clearly bad.
        assert 1 < best < 112
        assert tput[best] > tput[112] * 1.2

    def test_default_settings_suboptimal(self, sweep):
        """The motivating claim of §4: defaults leave performance on the
        table (up to ~40% variance observed in the paper)."""
        intra = {r["threads"]: r["tokens_per_s"] for r in sweep["intra"]}
        best = max(intra.values())
        assert best > intra[56] * 1.15


class TestFigure8AndTable5:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8_parallelism_control()

    def test_compute_benefits_most(self, fig8):
        reductions = {
            k: 1 - fig8["controlled_tasks_s"][k] / v
            for k, v in fig8["default_tasks_s"].items()
            if v > 0
        }
        assert max(reductions, key=reductions.get) == "compute"

    def test_compute_reduction_band(self, fig8):
        # Paper: -32%; accept a generous band around it.
        assert 0.15 < fig8["compute_reduction"] < 0.65

    def test_end_to_end_reduction_band(self, fig8):
        # Paper: -38%.
        assert 0.15 < fig8["end_to_end_reduction"] < 0.6

    def test_llc_misses_drop(self):
        tab5 = run_tab5_llc_misses()
        # Paper: -38% for loads and stores alike.
        assert 0.2 < tab5["reduction"] < 0.6
        assert tab5["controlled"]["load"] < tab5["default"]["load"]
        assert tab5["controlled"]["store"] < tab5["default"]["store"]

    def test_llc_store_load_ratio(self):
        tab5 = run_tab5_llc_misses()
        # Paper Table 5: stores miss ~1.9x more than loads.
        ratio = tab5["default"]["store"] / tab5["default"]["load"]
        assert 1.5 < ratio < 2.3
