import pytest

from repro.offload import OffloadPolicy
from repro.perfmodel import PerformanceAnalyzer, Workload
from repro.models import get_model


@pytest.fixture
def analyzer(opt30b_workload, hw, default_ctx):
    return PerformanceAnalyzer(opt30b_workload, hw, default_ctx)


def cpu_base():
    return OffloadPolicy(
        wg=0.55, hg=0.0, attention_on_cpu=True, gpu_batch_size=64, num_gpu_batches=10
    )


def gpu_base():
    return OffloadPolicy(
        wg=0.55, cg=0.0, hg=0.0, attention_on_cpu=False,
        gpu_batch_size=64, num_gpu_batches=10,
    )


def test_weight_quant_not_beneficial_with_cpu_attention(analyzer):
    """§3.2 decision 1 + Observation 1: with attention offloaded, weight
    quantization does not pay (compute-bound; codec only adds cost)."""
    decision = analyzer.weight_quant_benefit(cpu_base())
    assert not decision.beneficial


def test_weight_quant_not_beneficial_gpu_attention_flexgen_codec(analyzer):
    """Figure 3: W4 alone *hurts* even without attention offloading at
    FlexGen's codec rates (35 vs 46 tokens/s in the paper)."""
    decision = analyzer.weight_quant_benefit(gpu_base())
    assert not decision.beneficial


def test_kv_quant_beneficial_only_without_attention_offload(analyzer):
    """§3.2 decision 2 / Observation 1: KV quantization wins when the
    cache streams over PCIe, and loses when attention is offloaded."""
    with_offload = analyzer.kv_quant_benefit(cpu_base())
    without_offload = analyzer.kv_quant_benefit(gpu_base())
    assert not with_offload.beneficial
    assert without_offload.beneficial
    # Paper: +78% from KV4 without offloading; allow a wide band.
    assert 1.2 < without_offload.speedup < 3.0


def test_attention_offload_decision_long_generation(analyzer):
    """§3.2 decision 3: each placement evaluated at its own best
    quantization.  At n=128 with KV4 available, GPU attention wins
    (Figure 3: 82 vs 41 tokens/s)."""
    decision = analyzer.attention_offload_benefit(cpu_base())
    assert not decision.beneficial  # CPU attention is NOT beneficial here


def test_decision_speedup_metric(analyzer):
    d = analyzer.kv_quant_benefit(gpu_base())
    assert d.speedup == pytest.approx(d.seconds_without / d.seconds_with)
