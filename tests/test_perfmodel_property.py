"""Property tests for the Eq. 1/2 cost model on seeded randomized grids.

Unlike ``test_perfmodel_vectorized.py`` (fixed configurations, all
quantization menus), these tests draw *random* (workload, policy) grid
points from the shared seeded-stream helper and assert structural
properties that must hold everywhere, not just at the pinned configs:

* ``decode_seconds`` is monotone non-increasing in link bandwidth and
  non-decreasing in tensor volume (context length, batch size);
* the literal Eq. 2 step time is exactly the max of its six task terms,
  and the resource-grouped step time never undercuts it;
* the vectorized cost paths match the scalar reference row for row;
* the speculative price transform is structurally safe: expected accepted
  tokens are monotone in ``alpha`` and bounded by the tree depth, the
  per-token price never exceeds the base engine's (at ``alpha=1`` or
  anywhere else), is nondecreasing in context length, and the vec/scalar
  pricer paths agree bitwise.

No hypothesis dependency — draws come from :func:`repro.util.rng.seeded_rng`
so every run sees the identical grid.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models import get_model
from repro.offload import OffloadPolicy
from repro.perfmodel import CostModel, SpecConfig, SpecStepPricer, Workload
from repro.quant import QuantConfig
from repro.runtime.tasks import TASK_FIELD_NAMES, TaskCosts
from repro.util.rng import seeded_rng

Q4 = QuantConfig(bits=4, group_size=64)
#: One fixed seed for the whole module: the grid is part of the test.
SEED = 20240805
MODELS = ("opt-1.3b", "opt-6.7b", "opt-30b")


def random_grid(n: int, *labels: str) -> list[tuple[Workload, OffloadPolicy]]:
    """``n`` seeded (workload, policy) grid points for this module."""
    rng = seeded_rng(SEED, "perfmodel-property", *labels)
    grid: list[tuple[Workload, OffloadPolicy]] = []
    for _ in range(n):
        model = get_model(MODELS[int(rng.integers(len(MODELS)))])
        prompt_len = int(rng.integers(16, 257))
        gen_len = int(rng.integers(4, 17))
        bsz = int(2 ** rng.integers(3, 7))
        k = int(2 ** rng.integers(0, 3))
        attn = bool(rng.random() < 0.3)
        workload = Workload(model, prompt_len, gen_len, bsz, k)
        policy = OffloadPolicy(
            wg=float(rng.random()),
            cg=0.0 if attn else float(rng.random()),
            hg=1.0 if attn else float(rng.random()),
            attention_on_cpu=attn,
            weight_quant=Q4 if rng.random() < 0.5 else None,
            kv_quant=Q4 if rng.random() < 0.5 else None,
            gpu_batch_size=bsz,
            num_gpu_batches=k,
        )
        grid.append((workload, policy))
    return grid


def test_decode_seconds_monotone_nonincreasing_in_link_bandwidth(
    hw, default_ctx
):
    """More PCIe bandwidth can never make decode slower (Eq. 2 terms are
    wire-time / bandwidth; staging and compute terms are unaffected)."""
    for workload, policy in random_grid(10, "bandwidth"):
        previous = None
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
            hw_f = dataclasses.replace(hw, pcie_bdw=hw.pcie_bdw * factor)
            seconds = CostModel(
                workload, policy, hw_f, default_ctx
            ).decode_seconds()
            if previous is not None:
                assert seconds <= previous * (1.0 + 1e-12), (
                    f"{workload.describe()} / {policy.describe()}: decode "
                    f"got slower when PCIe sped up ({previous} -> {seconds})"
                )
            previous = seconds


def test_decode_seconds_nondecreasing_in_context_length(hw, default_ctx):
    """A longer prompt only adds KV/attention volume to every decode step."""
    for workload, policy in random_grid(10, "context"):
        previous = None
        for scale in (1, 2, 4, 8):
            scaled = Workload(
                workload.model,
                workload.prompt_len * scale,
                workload.gen_len,
                workload.gpu_batch_size,
                workload.num_gpu_batches,
            )
            seconds = CostModel(
                scaled, policy, hw, default_ctx
            ).decode_seconds()
            if previous is not None:
                assert seconds >= previous * (1.0 - 1e-12), (
                    f"{scaled.describe()}: decode got cheaper with a longer "
                    f"context ({previous} -> {seconds})"
                )
            previous = seconds


def test_decode_seconds_nondecreasing_in_batch_size(hw, default_ctx):
    """Doubling the GPU batch doubles activation/KV/FLOP volume per step —
    total decode time cannot shrink."""
    for workload, policy in random_grid(10, "batch"):
        previous = None
        for scale in (1, 2, 4):
            bsz = workload.gpu_batch_size * scale
            scaled = Workload(
                workload.model,
                workload.prompt_len,
                workload.gen_len,
                bsz,
                workload.num_gpu_batches,
            )
            seconds = CostModel(
                scaled,
                policy.with_(gpu_batch_size=bsz),
                hw,
                default_ctx,
            ).decode_seconds()
            if previous is not None:
                assert seconds >= previous * (1.0 - 1e-12)
            previous = seconds


def test_literal_eq2_is_max_of_six_on_random_costs():
    """Eq. 2's T_gen is *exactly* the max over the six task terms, for any
    non-negative cost vector — not just ones a model can produce."""
    rng = seeded_rng(SEED, "perfmodel-property", "raw-costs")
    for _ in range(200):
        values = rng.random(6) * (10.0 ** rng.integers(-6, 3))
        costs = TaskCosts(**dict(zip(TASK_FIELD_NAMES, map(float, values))))
        literal = CostModel.step_seconds(costs, literal_eq2=True)
        assert literal == max(costs.as_tuple())
        assert literal == costs.step_time()


def test_literal_eq2_is_max_of_six_on_model_costs(hw, default_ctx):
    """Same identity on costs the model actually emits, for every decode
    token of every random grid point."""
    for workload, policy in random_grid(8, "model-costs"):
        model = CostModel(workload, policy, hw, default_ctx)
        for t in range(workload.gen_len - 1):
            costs = model.decode_task_costs(t)
            literal = CostModel.step_seconds(costs, literal_eq2=True)
            assert literal == max(costs.as_tuple())
            assert literal == max(
                getattr(costs, name) for name in TASK_FIELD_NAMES
            )


def test_grouped_step_never_undercuts_literal_eq2(hw, default_ctx):
    """The executor-matching grouping (H2D loads serialize, D2H stores
    serialize) can only be slower than the paper's literal six-way max."""
    for workload, policy in random_grid(8, "grouping"):
        model = CostModel(workload, policy, hw, default_ctx)
        for t in range(workload.gen_len - 1):
            costs = model.decode_task_costs(t)
            assert CostModel.step_seconds(costs) >= CostModel.step_seconds(
                costs, literal_eq2=True
            )


def test_step_seconds_vec_matches_scalar_on_random_matrices():
    """Both groupings of the vectorized aggregator, row for row against
    the scalar one, on arbitrary non-negative cost matrices."""
    rng = seeded_rng(SEED, "perfmodel-property", "vec-agg")
    mat = rng.random((64, 6)) * (10.0 ** rng.integers(-6, 3, size=(64, 1)))
    for literal in (False, True):
        vec = CostModel.step_seconds_vec(mat, literal_eq2=literal)
        for i in range(mat.shape[0]):
            costs = TaskCosts(
                **dict(zip(TASK_FIELD_NAMES, map(float, mat[i])))
            )
            assert vec[i] == CostModel.step_seconds(costs, literal_eq2=literal)


def test_decode_task_costs_vec_matches_scalar_on_random_grid(hw, default_ctx):
    """The one-pass NumPy trajectory equals the per-token scalar loop on
    every random grid point (same formulas, same operation order)."""
    for workload, policy in random_grid(8, "vec-costs"):
        model = CostModel(workload, policy, hw, default_ctx)
        tokens = np.arange(workload.gen_len - 1, dtype=np.float64)
        mat = model.decode_task_costs_vec(tokens)
        assert mat.shape == (workload.gen_len - 1, 6)
        for t in range(workload.gen_len - 1):
            ref = np.array(model.decode_task_costs(t).as_tuple())
            np.testing.assert_allclose(mat[t], ref, rtol=1e-9, atol=0.0)


def test_decode_seconds_vectorized_matches_scalar_on_random_grid(
    hw, default_ctx
):
    for workload, policy in random_grid(8, "vec-decode"):
        model = CostModel(workload, policy, hw, default_ctx)
        for literal in (False, True):
            fast = model.decode_seconds(literal, vectorized=True)
            ref = model.decode_seconds(literal, vectorized=False)
            assert abs(fast - ref) <= 1e-9 * max(abs(ref), 1e-12)


# -- speculative price transform -------------------------------------------


def random_trees(n: int, *labels: str) -> list[SpecConfig]:
    """``n`` seeded random tree shapes for this module."""
    rng = seeded_rng(SEED, "perfmodel-property", *labels)
    return [
        SpecConfig(
            tree_size=int(rng.integers(1, 33)),
            max_width=int(rng.integers(1, 9)),
            draft_compute_ratio=float(rng.random() * 0.2),
            kv_retrieval_budget=int(2 ** rng.integers(6, 13)),
        )
        for _ in range(n)
    ]


def test_spec_expected_accepted_monotone_in_alpha_and_bounded():
    """More agreeable drafts can only accept more; acceptance cannot
    exceed one token per tree level (or the draft-node count)."""
    for spec in random_trees(40, "spec-tree"):
        previous = 0.0
        for alpha in np.linspace(0.0, 1.0, 11):
            expected = spec.expected_accepted(float(alpha))
            assert expected >= previous - 1e-12
            assert expected <= spec.tree_depth + 1e-12
            assert spec.tree_depth <= spec.tree_size - 1 or spec.tree_size == 1
            previous = expected
        # alpha=1 accepts every level: the bound is attained exactly.
        assert abs(spec.expected_accepted(1.0) - spec.tree_depth) <= 1e-12


def _decode_rows(model: CostModel):
    toks = np.arange(model.w.gen_len - 1, dtype=np.float64)
    costs = model.decode_task_costs_vec(toks)
    return toks, costs, CostModel.step_seconds_vec(costs)


def test_spec_price_never_exceeds_base(hw, default_ctx):
    """The min over tree prefixes includes the empty prefix, so the
    modeled per-token latency can never exceed the non-speculative
    engine's — at alpha=1 (the required property) or any other alpha."""
    for (workload, policy), spec in zip(
        random_grid(6, "spec-price"), random_trees(6, "spec-price-tree")
    ):
        model = CostModel(workload, policy, hw, default_ctx)
        toks, costs, base = _decode_rows(model)
        for alpha in (0.0, 0.5, 1.0):
            pricer = SpecStepPricer(
                model, dataclasses.replace(spec, alpha=alpha)
            )
            priced = pricer.step_seconds_vec(toks, costs, base)
            assert np.all(priced <= base * (1.0 + 1e-12))


def test_spec_price_nondecreasing_in_context_length(hw, default_ctx):
    """Every speculative term grows (or holds) with context — longer
    prompts cannot make the speculative step cheaper."""
    for workload, policy in random_grid(6, "spec-context"):
        previous = None
        for scale in (1, 2, 4, 8):
            scaled = Workload(
                workload.model,
                workload.prompt_len * scale,
                workload.gen_len,
                workload.gpu_batch_size,
                workload.num_gpu_batches,
            )
            model = CostModel(scaled, policy, hw, default_ctx)
            toks = np.array([0.0])
            costs = model.decode_task_costs_vec(toks)
            base = CostModel.step_seconds_vec(costs)
            priced = SpecStepPricer(model, SpecConfig()).step_seconds_vec(
                toks, costs, base
            )
            if previous is not None:
                assert priced[0] >= previous * (1.0 - 1e-12)
            previous = priced[0]


def test_spec_pricer_vec_matches_scalar_bitwise(hw, default_ctx):
    """The scalar pricer is the vectorized pricer on one row — equality
    is exact, same discipline as the base cost paths."""
    for (workload, policy), spec in zip(
        random_grid(6, "spec-vec"), random_trees(6, "spec-vec-tree")
    ):
        model = CostModel(workload, policy, hw, default_ctx)
        toks, costs, base = _decode_rows(model)
        pricer = SpecStepPricer(model, spec)
        vec = pricer.step_seconds_vec(toks, costs, base)
        for t in range(len(toks)):
            row = TaskCosts(**dict(zip(TASK_FIELD_NAMES, map(float, costs[t]))))
            assert vec[t] == pricer.step_seconds(t, row, float(base[t]))
