import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import KVCache, Transformer, TransformerWeights, get_model


@pytest.fixture
def tiny(rng):
    return TransformerWeights.random(get_model("tiny-2l"), rng)


def test_random_weights_shapes(tiny):
    cfg = tiny.config
    lw = tiny.layers[0]
    assert lw.wq.shape == (cfg.hidden_size, cfg.hidden_size)
    assert lw.w_in.shape == (cfg.hidden_size, cfg.intermediate_size)
    assert tiny.embed.shape == (cfg.vocab_size, cfg.hidden_size)
    assert len(tiny.layers) == cfg.num_layers


def test_forward_logits_shape(tiny, rng):
    model = Transformer(tiny)
    cache = KVCache(tiny.config, batch=3, capacity=10)
    ids = rng.integers(0, 256, size=(3, 4))
    logits = model.forward(ids, cache)
    assert logits.shape == (3, tiny.config.vocab_size)
    assert len(cache) == 4


def test_incremental_decoding_matches_full_forward(tiny, rng):
    """The KV cache must make token-by-token decoding equal one-shot."""
    model = Transformer(tiny)
    ids = rng.integers(0, 256, size=(2, 6))

    full_cache = KVCache(tiny.config, 2, capacity=6)
    full_logits = model.forward(ids, full_cache)

    inc_cache = KVCache(tiny.config, 2, capacity=6)
    logits = None
    for t in range(6):
        logits = model.forward(ids[:, t : t + 1], inc_cache)
    assert np.allclose(full_logits, logits, atol=1e-4)


def test_generation_deterministic_greedy(tiny, rng):
    model = Transformer(tiny)
    ids = rng.integers(0, 256, size=(2, 5))
    a = model.generate(ids.copy(), 6)
    b = model.generate(ids.copy(), 6)
    assert np.array_equal(a, b)
    assert a.shape == (2, 6)


def test_generation_temperature_reproducible(tiny, rng):
    model = Transformer(tiny)
    ids = rng.integers(0, 256, size=(1, 4))
    a = model.generate(ids.copy(), 5, rng=np.random.default_rng(7), temperature=0.8)
    b = model.generate(ids.copy(), 5, rng=np.random.default_rng(7), temperature=0.8)
    assert np.array_equal(a, b)


def test_generation_requires_rng_for_temperature(tiny, rng):
    model = Transformer(tiny)
    ids = rng.integers(0, 256, size=(1, 3))
    with pytest.raises(ValueError):
        model.generate(ids, 2, temperature=0.5)


def test_cache_overflow_raises(tiny, rng):
    model = Transformer(tiny)
    cache = KVCache(tiny.config, 1, capacity=3)
    with pytest.raises(ConfigError, match="overflow"):
        model.forward(rng.integers(0, 256, size=(1, 4)), cache)


def test_cache_batch_mismatch(tiny, rng):
    model = Transformer(tiny)
    cache = KVCache(tiny.config, 2, capacity=4)
    with pytest.raises(ValueError, match="batch"):
        model.forward(rng.integers(0, 256, size=(3, 2)), cache)


def test_kv_cache_nbytes_grows(tiny, rng):
    model = Transformer(tiny)
    cache = KVCache(tiny.config, 1, capacity=8)
    assert cache.nbytes == 0
    model.forward(rng.integers(0, 256, size=(1, 2)), cache)
    first = cache.nbytes
    model.forward(rng.integers(0, 256, size=(1, 2)), cache)
    assert cache.nbytes == 2 * first


def test_kv_cache_invalid_params(tiny):
    with pytest.raises(ConfigError):
        KVCache(tiny.config, batch=0, capacity=4)
    with pytest.raises(ConfigError):
        KVCache(tiny.config, batch=1, capacity=0)


def test_kv_cache_set_slice_roundtrip(tiny, rng):
    cache = KVCache(tiny.config, 1, capacity=4)
    cfg = tiny.config
    k = rng.standard_normal((1, cfg.num_heads, 2, cfg.head_dim)).astype(np.float32)
    v = rng.standard_normal(k.shape).astype(np.float32)
    for layer in range(cfg.num_layers):
        cache.append(layer, k, v)
    cache.set_slice(0, 0, k * 2, v)
    got_k, _ = cache.get(0)
    assert np.allclose(got_k, k * 2)
