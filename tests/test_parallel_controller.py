import pytest

from repro.errors import ConfigError
from repro.parallel import build_default_profiles
from repro.parallel.controller import (
    IO_TASKS,
    ParallelismController,
    schedule_makespan,
)
from repro.parallel.speedup import ParallelismSetting
from repro.runtime.graph import OpGraph, OpNode, build_attention_graph


@pytest.fixture
def controller(topo, contention):
    return ParallelismController(
        topology=topo,
        contention=contention,
        profiles=build_default_profiles(contention),
        io_volumes={
            "load_weight": 30e6, "load_cache": 0.0, "load_activation": 1e5,
            "store_cache": 0.0, "store_activation": 1e5,
        },
    )


def test_schedule_makespan_serial_chain():
    g = OpGraph()
    g.add_op(OpNode("a", work=1))
    g.add_op(OpNode("b", work=1), deps=["a"])
    assert schedule_makespan(g, 4, lambda n: 1.0) == pytest.approx(2.0)


def test_schedule_makespan_parallel_ops():
    g = OpGraph()
    for i in range(4):
        g.add_op(OpNode(f"op{i}", work=1))
    assert schedule_makespan(g, 4, lambda n: 1.0) == pytest.approx(1.0)
    assert schedule_makespan(g, 2, lambda n: 1.0) == pytest.approx(2.0)
    assert schedule_makespan(g, 1, lambda n: 1.0) == pytest.approx(4.0)


def test_schedule_makespan_invalid_slots():
    with pytest.raises(ConfigError):
        schedule_makespan(OpGraph(), 0, lambda n: 1.0)


def test_plan_reserves_io_threads(controller):
    plan = controller.plan(build_attention_graph(4))
    assert plan.compute.total_threads <= 112 - 5
    assert set(plan.io_threads) == set(IO_TASKS)
    assert all(v >= 1 for v in plan.io_threads.values())
    assert sum(plan.io_threads.values()) == 112 - plan.compute.total_threads


def test_plan_inter_op_bounded_by_graph_width(controller):
    plan = controller.plan(build_attention_graph(4))
    assert 1 <= plan.compute.inter_op <= 12
    assert plan.inter_op_total == plan.compute.inter_op + 5


def test_plan_beats_default_threading(controller):
    """The whole point of Algorithm 3: the chosen setting's compute time
    beats the PyTorch default on the same (bundled) graph."""
    from repro.parallel.bundling import bundle_operators

    graph = build_attention_graph(4)
    bundled, _ = bundle_operators(graph)
    plan = controller.plan(graph)
    default = ParallelismSetting(intra_op=56, inter_op=112)
    assert plan.predicted_compute_seconds < controller.compute_seconds(
        bundled, default
    )


def test_io_thread_split_proportional(controller):
    threads = controller.split_io_threads(30)
    # load_weight has ~300x the volume of activation flows.
    assert threads["load_weight"] > threads["load_activation"]
    assert sum(threads.values()) == 30


def test_io_thread_split_minimum_one_each(controller):
    threads = controller.split_io_threads(5)
    assert all(v == 1 for v in threads.values())
    with pytest.raises(ConfigError):
        controller.split_io_threads(4)


def test_io_task_seconds_wire_floor(controller):
    # Plenty of threads: the wire time is the floor.
    t = controller.io_task_seconds("load_weight", threads=64, wire_seconds=0.01)
    assert t == pytest.approx(0.01)
    # One thread: staging dominates. volume=30e6 / 6e9 = 5ms > 1ms wire.
    t = controller.io_task_seconds("load_weight", threads=1, wire_seconds=0.001)
    assert t == pytest.approx(0.005)


def test_plan_infeasible_when_no_threads(contention, controller):
    from repro.parallel.topology import CpuTopology

    tiny = CpuTopology(sockets=1, cores_per_socket=2, smt=1)
    controller.topology = tiny
    with pytest.raises(ConfigError):
        controller.plan(build_attention_graph(1))
