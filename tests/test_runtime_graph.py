import pytest

from repro.errors import ScheduleError
from repro.runtime.graph import (
    OpGraph,
    OpNode,
    build_attention_graph,
    kahn_levels,
    max_concurrency,
)


def chain(n: int) -> OpGraph:
    g = OpGraph()
    prev = None
    for i in range(n):
        g.add_op(OpNode(f"op{i}", work=1.0), deps=[prev] if prev else [])
        prev = f"op{i}"
    return g


def test_chain_has_unit_concurrency():
    g = chain(5)
    assert max_concurrency(g) == 1
    assert len(kahn_levels(g)) == 5


def test_fan_out_width():
    g = OpGraph()
    g.add_op(OpNode("root"))
    for i in range(7):
        g.add_op(OpNode(f"leaf{i}"), deps=["root"])
    assert max_concurrency(g) == 7
    levels = kahn_levels(g)
    assert levels[0] == ["root"]
    assert len(levels[1]) == 7


def test_cycle_detected():
    g = OpGraph()
    g.add_op(OpNode("a"))
    g.add_op(OpNode("b"), deps=["a"])
    # Force a back edge through the underlying graph.
    g.networkx().add_edge("b", "a")
    with pytest.raises(ScheduleError, match="cycle"):
        kahn_levels(g)


def test_duplicate_op_rejected():
    g = OpGraph()
    g.add_op(OpNode("a"))
    with pytest.raises(ScheduleError, match="duplicate"):
        g.add_op(OpNode("a"))


def test_unknown_dep_rejected():
    g = OpGraph()
    with pytest.raises(ScheduleError, match="unknown"):
        g.add_op(OpNode("b"), deps=["ghost"])


def test_critical_path_work():
    g = OpGraph()
    g.add_op(OpNode("a", work=1.0))
    g.add_op(OpNode("b", work=2.0), deps=["a"])
    g.add_op(OpNode("c", work=5.0), deps=["a"])
    g.add_op(OpNode("d", work=1.0), deps=["b", "c"])
    assert g.critical_path_work() == pytest.approx(7.0)
    assert g.total_work() == pytest.approx(9.0)


def test_attention_graph_width_is_3_per_batch():
    # Paper Figure 6: Q/K/V projections are independent; 4 co-scheduled
    # batches give inter-op concurrency 12 (the Fig. 5 optimum).
    assert max_concurrency(build_attention_graph(1)) == 3
    assert max_concurrency(build_attention_graph(4)) == 12


def test_attention_graph_fine_grained_doubles_width():
    assert max_concurrency(build_attention_graph(4, fine_grained=True)) == 24


def test_attention_graph_same_total_work_both_granularities():
    coarse = build_attention_graph(2).total_work()
    fine = build_attention_graph(2, fine_grained=True).total_work()
    assert coarse == pytest.approx(fine)


def test_attention_graph_dependency_order():
    g = build_attention_graph(1)
    assert set(g.predecessors("b0.scores")) == {"b0.q_proj", "b0.concat_kv"}
    assert g.successors("b0.context") == ["b0.out_proj"]


def test_attention_graph_custom_work():
    g = build_attention_graph(1, per_batch_work={"scores": 10.0})
    assert g.node("b0.scores").work == 10.0


def test_attention_graph_invalid_batches():
    with pytest.raises(ScheduleError):
        build_attention_graph(0)
