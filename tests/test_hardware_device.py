import pytest

from repro.errors import ConfigError
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.units import GB, GHZ, TFLOPS


def make_gpu(**overrides) -> DeviceSpec:
    base = dict(
        name="gpu0",
        kind=DeviceKind.GPU,
        peak_flops=312 * TFLOPS,
        mem_bandwidth=1555 * GB,
        freq=1.41 * GHZ,
        memory_capacity=40 * GB,
    )
    base.update(overrides)
    return DeviceSpec(**base)


def test_gpu_flags():
    gpu = make_gpu()
    assert gpu.is_gpu and not gpu.is_cpu


def test_cpu_requires_cores():
    with pytest.raises(ConfigError, match="cores"):
        DeviceSpec(
            name="cpu", kind=DeviceKind.CPU, peak_flops=1e12,
            mem_bandwidth=1e11, freq=2e9, memory_capacity=1e11, cores=0,
        )


def test_invalid_flops_rejected():
    with pytest.raises(ConfigError):
        make_gpu(peak_flops=0)


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigError):
        make_gpu(memory_capacity=0)


def test_hardware_threads():
    cpu = DeviceSpec(
        name="cpu", kind=DeviceKind.CPU, peak_flops=1e12,
        mem_bandwidth=1e11, freq=2e9, memory_capacity=1e11,
        cores=56, smt=2, sockets=2,
    )
    assert cpu.hardware_threads == 112


def test_matmul_time_is_roofline_max():
    gpu = make_gpu()
    compute_bound = gpu.matmul_time(flops=1e15, bytes_touched=1)
    assert compute_bound == pytest.approx(1e15 / gpu.peak_flops)
    memory_bound = gpu.matmul_time(flops=1, bytes_touched=1e12)
    assert memory_bound == pytest.approx(1e12 / gpu.mem_bandwidth)


def test_matmul_time_rejects_negative():
    with pytest.raises(ValueError):
        make_gpu().matmul_time(-1, 0)


def test_scan_time_uses_clock():
    gpu = make_gpu()
    assert gpu.scan_time(gpu.freq) == pytest.approx(1.0)


def test_copy_time_uses_bandwidth():
    gpu = make_gpu()
    assert gpu.copy_time(gpu.mem_bandwidth) == pytest.approx(1.0)


def test_elementwise_time():
    gpu = make_gpu()
    assert gpu.elementwise_time(gpu.peak_flops, 1.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        gpu.elementwise_time(-5)
