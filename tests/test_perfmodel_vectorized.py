"""Vectorized cost path vs the scalar reference implementation.

The NumPy fast path (``decode_task_costs_vec`` and the ``vectorized=True``
defaults of ``decode_seconds``/``breakdown``/``_quant_overhead_totals``)
must agree with the per-token scalar loops to 1e-9 relative tolerance on
every discrete configuration — all four quantization menus crossed with
both attention placements — and the planner built on top of it must pick
the same policy either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LMOffloadEngine
from repro.errors import PolicyError
from repro.hardware import single_a100
from repro.models import get_model
from repro.offload import OffloadPolicy
from repro.offload.planner import MemoryPrescreen, PolicyPlanner
from repro.perfmodel import CostModel, HardwareParams, Workload
from repro.perfmodel.quant_model import kv_quant_overheads, kv_quant_overheads_vec
from repro.quant import QuantConfig

Q4 = QuantConfig(bits=4, group_size=64)

#: All four quantization menus (paper Fig. 3) x both attention placements.
MENUS = [(None, None), (Q4, None), (None, Q4), (Q4, Q4)]
CONFIGS = [
    pytest.param(attn, wq, kq, id=f"{'cpu' if attn else 'gpu'}-"
                 f"w{'4' if wq else '16'}kv{'4' if kq else '16'}")
    for attn in (True, False)
    for wq, kq in MENUS
]


@pytest.fixture(scope="module")
def engine():
    return LMOffloadEngine(single_a100())


@pytest.fixture(scope="module")
def workload():
    return Workload(get_model("opt-30b"), 64, 32, 64, 10)


def _model(engine, workload, attn, wq, kq) -> CostModel:
    policy = OffloadPolicy(
        wg=0.1,
        cg=0.0 if attn else 0.25,
        hg=1.0,
        attention_on_cpu=attn,
        weight_quant=wq,
        kv_quant=kq,
        gpu_batch_size=64,
        num_gpu_batches=10,
    )
    return CostModel(
        workload, policy, engine.hw, engine.default_context(),
        engine.config.calibration,
    )


def _assert_close(a: float, b: float, what: str) -> None:
    assert abs(a - b) <= 1e-9 * max(abs(b), 1e-12), f"{what}: {a} vs {b}"


@pytest.mark.parametrize("attn,wq,kq", CONFIGS)
def test_decode_task_costs_vec_matches_scalar(engine, workload, attn, wq, kq):
    m = _model(engine, workload, attn, wq, kq)
    tokens = np.arange(workload.gen_len - 1, dtype=np.float64)
    mat = m.decode_task_costs_vec(tokens)
    assert mat.shape == (workload.gen_len - 1, 6)
    for t in range(workload.gen_len - 1):
        ref = np.array(m.decode_task_costs(t).as_tuple())
        np.testing.assert_allclose(mat[t], ref, rtol=1e-9, atol=0.0)


@pytest.mark.parametrize("attn,wq,kq", CONFIGS)
@pytest.mark.parametrize("literal_eq2", [False, True])
def test_decode_seconds_equivalence(engine, workload, attn, wq, kq, literal_eq2):
    m = _model(engine, workload, attn, wq, kq)
    fast = m.decode_seconds(literal_eq2, vectorized=True)
    ref = m.decode_seconds(literal_eq2, vectorized=False)
    _assert_close(fast, ref, "decode_seconds")


@pytest.mark.parametrize("attn,wq,kq", CONFIGS)
def test_breakdown_equivalence(engine, workload, attn, wq, kq):
    m = _model(engine, workload, attn, wq, kq)
    fast = m.breakdown(vectorized=True)
    ref = m.breakdown(vectorized=False)
    _assert_close(fast.total_seconds, ref.total_seconds, "total_seconds")
    assert fast.bottleneck == ref.bottleneck
    assert set(fast.task_totals) == set(ref.task_totals)
    for name in ref.task_totals:
        _assert_close(fast.task_totals[name], ref.task_totals[name], name)
    assert set(fast.quant_overheads) == set(ref.quant_overheads)
    for name in ref.quant_overheads:
        _assert_close(
            fast.quant_overheads[name], ref.quant_overheads[name], name
        )


@pytest.mark.parametrize("attn,wq,kq", CONFIGS)
def test_quant_overhead_totals_equivalence(engine, workload, attn, wq, kq):
    m = _model(engine, workload, attn, wq, kq)
    fast = m._quant_overhead_totals(vectorized=True)
    ref = m._quant_overhead_totals(vectorized=False)
    assert set(fast) == set(ref)
    for name in ref:
        _assert_close(fast[name], ref[name], name)


@pytest.mark.parametrize("device", ["gpu", "cpu"])
def test_kv_quant_overheads_vec_matches_scalar(workload, device):
    tokens = np.arange(workload.gen_len - 1, dtype=np.float64)
    vec = kv_quant_overheads_vec(workload, tokens, device=device)
    for t in range(workload.gen_len - 1):
        ref = kv_quant_overheads(workload, token_idx=t, device=device)
        _assert_close(vec.prefill_quant_seconds, ref.prefill_quant_seconds,
                      "prefill_quant")
        _assert_close(vec.new_quant_seconds, ref.new_quant_seconds, "new_quant")
        _assert_close(float(vec.old_dequant_seconds[t]),
                      ref.old_dequant_seconds, f"old_dequant[{t}]")


def test_plan_policy_unchanged_scalar_vs_vectorized(workload, monkeypatch):
    """The planner must choose the identical policy on either cost path."""
    fast_policy, _, _ = LMOffloadEngine(single_a100()).plan(workload)

    orig_breakdown = CostModel.breakdown
    orig_decode = CostModel.decode_seconds
    monkeypatch.setattr(
        CostModel, "breakdown",
        lambda self, literal_eq2=False, vectorized=True:
            orig_breakdown(self, literal_eq2, vectorized=False),
    )
    monkeypatch.setattr(
        CostModel, "decode_seconds",
        lambda self, literal_eq2=False, vectorized=True:
            orig_decode(self, literal_eq2, vectorized=False),
    )
    slow_policy, _, _ = LMOffloadEngine(single_a100()).plan(workload)
    assert slow_policy == fast_policy


@pytest.mark.parametrize("attn,wq,kq", CONFIGS)
def test_memory_prescreen_matches_cost_model(engine, workload, attn, wq, kq):
    """The planner's cheap prescreen mirrors the cost model byte-for-byte."""
    template = OffloadPolicy(
        wg=0.0, cg=0.0, hg=0.0,
        attention_on_cpu=attn, weight_quant=wq, kv_quant=kq,
        gpu_batch_size=64, num_gpu_batches=10,
    )
    prescreen = MemoryPrescreen(workload, template, engine.hw)
    for wg in (0.0, 0.1, 0.55, 1.0):
        for cg in ((0.0,) if attn else (0.0, 0.5, 1.0)):
            for hg in (0.0, 1.0):
                for wd in (0.0, round((1.0 - wg) * 0.5, 4)):
                    policy = template.with_(wg=wg, cg=cg, hg=hg, wd=wd)
                    m = CostModel(
                        workload, policy, engine.hw,
                        engine.default_context(), engine.config.calibration,
                    )
                    assert prescreen.gpu_bytes(wg, cg, hg) == m.gpu_bytes_required()
                    assert prescreen.cpu_bytes(wg, cg, hg, wd) == m.cpu_bytes_required()


def test_search_batch_geometry_records_failures(engine, workload):
    planner = PolicyPlanner(hw=engine.hw, cpu_ctx=engine.default_context())
    with pytest.raises(PolicyError) as excinfo:
        planner.search_batch_geometry(
            workload, batch_candidates=(100000,), num_batch_candidates=(10,)
        )
    assert "geometries rejected" in str(excinfo.value)
    assert planner.last_geometry_failures
    bsz, k, reason = planner.last_geometry_failures[0]
    assert (bsz, k) == (100000, 10)
    assert reason


def test_bench_timing_quick_smoke(tmp_path):
    from repro.bench.timing import write_bench_timing

    out = tmp_path / "BENCH_timing.json"
    payload = write_bench_timing(path=str(out), quick=True)
    assert out.exists()
    assert payload["quick"] is True
    assert set(payload["targets"]) == {"plan", "breakdown", "serve_sim"}
    for result in payload["targets"].values():
        assert result["median_s"] > 0
        assert result["speedup_vs_baseline"] > 0
    serve = payload["targets"]["serve_sim"]
    assert serve["sim_requests"] > 0
    assert serve["sim_steps"] > 0
    assert serve["sim_steps_per_s"] > 0
    assert serve["requests_per_s_of_simulation"] > 0
