"""Fleet simulator: single-replica equivalence, conservation under
failover/hedging, breaker determinism, crash re-prefill accounting,
schedule validation, bench determinism."""

import json

import pytest

from repro.baselines import ZeroInferenceEngine
from repro.errors import ConfigError
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.hardware import single_a100
from repro.models import get_model
from repro.serving import (
    BreakerState,
    CircuitBreaker,
    FleetConfig,
    FleetSimulator,
    ReplicaSpec,
    RequestState,
    ServingConfig,
    ServingSimulator,
    compute_fleet_metrics,
    compute_metrics,
    default_trace,
    make_fleet,
    make_fleet_scenario,
    make_policy,
    poisson_trace,
)


@pytest.fixture(scope="module")
def model():
    # opt-1.3b + zero-inference replicas: instant planning, fast steps —
    # the CLI/CI smoke exercises the full lm-offload preset path.
    return get_model("opt-1.3b")


def zi_specs(n, num_domains=3):
    return tuple(
        ReplicaSpec(
            name=f"r{i}",
            engine="zero-inference",
            fault_domain=f"d{i % num_domains}",
        )
        for i in range(n)
    )


def run_fleet(model, specs, trace, faults=None, seed=0, config=None,
              collect_steps=True):
    return FleetSimulator(
        specs=specs,
        model=model,
        trace=trace,
        policy=make_policy("fcfs"),
        config=config or FleetConfig(),
        faults=faults,
        seed=seed,
        collect_steps=collect_steps,
    ).run()


# -- 1-replica zero-fault equivalence --------------------------------------


def test_single_replica_zero_fault_byte_identical_to_serving_sim(model):
    """The acceptance pin: a 1-replica fleet with no faults IS the
    single-engine simulator — requests, steps, queue depths, makespan and
    the full metrics document, byte for byte."""
    trace = default_trace(quick=True, seed=0)
    ss = ServingSimulator(
        engine=ZeroInferenceEngine(single_a100()),
        model=model,
        trace=trace,
        policy=make_policy("fcfs"),
        config=ServingConfig(),
    ).run()
    fleet = run_fleet(
        model, (ReplicaSpec(name="solo", engine="zero-inference"),), trace
    )
    assert fleet.accounting()["ok"]
    view = fleet.single_replica_result()
    assert view.makespan_s == ss.makespan_s
    assert view.requests == ss.requests
    assert view.steps == ss.steps
    assert view.queue_depth == ss.queue_depth
    assert json.dumps(compute_metrics(view), sort_keys=True) == json.dumps(
        compute_metrics(ss), sort_keys=True
    )


def test_single_replica_result_rejects_multi_replica_fleet(model):
    trace = poisson_trace(rate=4.0, horizon_s=2.0, seed=0)
    fleet = run_fleet(model, zi_specs(2), trace)
    with pytest.raises(ConfigError, match="1-replica"):
        fleet.single_replica_result()


# -- conservation under chaos ----------------------------------------------


@pytest.fixture(scope="module")
def stress_setup(model):
    """A loaded 6-replica fleet and its fault-free makespan (the horizon
    the scenario windows scale to, so outages always overlap work)."""
    trace = poisson_trace(rate=6.0, horizon_s=10.0, seed=7)
    specs = zi_specs(6)
    baseline = run_fleet(model, specs, trace, collect_steps=False)
    assert baseline.accounting()["ok"]
    return trace, specs, baseline.makespan_s


@pytest.mark.parametrize(
    "scenario",
    ["replica-crash", "domain-outage", "flaky-replica", "rolling-restart"],
)
def test_conservation_under_stress(model, stress_setup, scenario):
    """Every admitted request reaches exactly one terminal outcome
    fleet-wide — with small batches, hedging and a tight migration budget
    forcing the failover/hedge machinery to actually run."""
    trace, specs, horizon = stress_setup
    schedule = make_fleet_scenario(scenario, horizon, seed=3)
    config = FleetConfig(
        serving=ServingConfig(max_batch=4),
        migration_budget=1,
        hedge_after_s=5.0,
        breaker_threshold=2,
        breaker_cooldown_s=2.0,
    )
    result = run_fleet(
        model, specs, trace, faults=schedule, config=config,
        collect_steps=False,
    )
    acc = result.accounting()
    assert acc["ok"], acc
    # Terminal attribution is a partition: replicas + fleet-level == all.
    assert sum(acc["per_replica"].values()) + acc["fleet_level"] == acc["total"]
    s = result.stats
    assert s.hedges_launched == (
        s.hedges_won + s.hedges_cancelled + s.hedges_dropped
    )


def test_hedges_fire_and_ledger_balances(model, stress_setup):
    trace, specs, horizon = stress_setup
    schedule = make_fleet_scenario("replica-crash", horizon, seed=3)
    # A tight hedge deadline + single-sequence batches: plenty of
    # requests are still token-less when the hedge timer fires.
    config = FleetConfig(
        serving=ServingConfig(max_batch=1),
        hedge_after_s=0.05,
        migration_budget=2,
    )
    result = run_fleet(
        model, specs, trace, faults=schedule, config=config,
        collect_steps=False,
    )
    s = result.stats
    assert s.hedges_launched > 0
    assert s.hedges_launched == (
        s.hedges_won + s.hedges_cancelled + s.hedges_dropped
    )
    assert result.accounting()["ok"]
    # Wasted tokens only accrue when a racer actually generated tokens.
    if s.hedge_wasted_tokens:
        assert s.hedges_won + s.hedges_cancelled > 0


def test_fleet_runs_are_deterministic(model, stress_setup):
    trace, specs, horizon = stress_setup
    schedule = make_fleet_scenario("replica-crash", horizon, seed=3)
    config = FleetConfig(
        serving=ServingConfig(max_batch=4),
        hedge_after_s=2.0,
    )

    def one_run():
        result = run_fleet(
            model, specs, trace, faults=schedule, config=config,
            collect_steps=False,
        )
        return json.dumps(compute_fleet_metrics(result), sort_keys=True)

    assert one_run() == one_run()


# -- crash semantics -------------------------------------------------------


def test_crash_destroys_in_flight_work_and_migrates(model):
    """A mid-run domain crash fires, displaces work, and every displaced
    request re-prefills on its new replica (visible as a second prefill
    step carrying the rid)."""
    trace = poisson_trace(rate=6.0, horizon_s=6.0, seed=5)
    specs = zi_specs(4, num_domains=2)
    baseline = run_fleet(model, specs, trace, collect_steps=False)
    horizon = baseline.makespan_s
    schedule = FaultSchedule(
        name="mid-crash",
        faults=(
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH,
                start_s=0.2 * horizon,
                duration_s=0.4 * horizon,
                severity=1.0,
                domain="d0",
            ),
        ),
        seed=0,
    )
    result = run_fleet(model, specs, trace, faults=schedule)
    assert result.accounting()["ok"]
    assert result.stats.crash_events > 0
    assert result.stats.migrations > 0
    migrated_done = [
        r for r in result.requests
        if r.migrations > 0 and r.state is RequestState.FINISHED
    ]
    assert migrated_done
    # Crash wipes KV state: a migrated-and-finished request must appear
    # in prefill steps on at least two distinct replicas.
    for req in migrated_done[:3]:
        hosts = {
            rr.spec.name
            for rr in result.replicas
            for step in rr.serving.steps
            if step.kind == "prefill" and req.rid in step.rids
        }
        assert len(hosts) >= 2, (req.rid, hosts)
    # A crash only fires (and accrues outage time) on a replica that was
    # busy when the window opened — idle members retire it silently.
    crashed = [rr for rr in result.replicas if rr.crashes > 0]
    assert crashed
    assert all(rr.spec.fault_domain == "d0" for rr in crashed)
    assert all(rr.down_s > 0 for rr in crashed)


def test_domain_correlation_targets_every_member(model):
    """A domain-targeted fault lands on every replica in the domain and
    no replica outside it (checked via the derived per-replica view)."""
    specs = zi_specs(4, num_domains=2)
    schedule = FaultSchedule(
        name="one-domain",
        faults=(
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH, start_s=1.0, duration_s=2.0,
                severity=1.0, domain="d1",
            ),
        ),
        seed=0,
    )
    for spec in specs:
        derived = FleetSimulator._derive_schedule(schedule, spec)
        if spec.fault_domain == "d1":
            assert derived is not None and len(derived.faults) == 1
        else:
            assert derived is None or len(derived.faults) == 0


# -- circuit breaker -------------------------------------------------------


def test_breaker_trip_halfopen_close_cycle_is_deterministic():
    b = CircuitBreaker(threshold=2, cooldown_s=5.0)
    assert b.allow(0.0)
    b.on_abort(1.0)
    assert b.state is BreakerState.CLOSED
    b.on_abort(2.0)
    assert b.state is BreakerState.OPEN and b.trips == 1
    assert not b.allow(6.9)
    assert b.allow(7.0)  # cooldown passed -> HALF_OPEN, admits one probe
    assert b.state is BreakerState.HALF_OPEN
    b.note_placed(7.0, rid=42)
    assert not b.allow(7.5)  # probe in flight: nobody else enters
    b.on_success(8.0, rids=(42,))
    assert b.state is BreakerState.CLOSED
    assert b.transitions == [
        (2.0, "closed", "open", "threshold"),
        (7.0, "open", "half_open", "cooldown"),
        (8.0, "half_open", "closed", "probe-success"),
    ]


def test_breaker_probe_failure_reopens():
    b = CircuitBreaker(threshold=1, cooldown_s=1.0)
    b.on_abort(0.0)
    assert b.allow(1.0)
    b.note_placed(1.0, rid=7)
    b.on_abort(1.5)
    assert b.state is BreakerState.OPEN and b.trips == 2
    assert b.transitions[-1] == (1.5, "half_open", "open", "probe-failure")


def test_breaker_crash_backdates_cooldown_to_window_end():
    b = CircuitBreaker(threshold=3, cooldown_s=10.0)
    b.on_crash(5.0, restart_at=8.0)
    assert b.state is BreakerState.OPEN
    assert not b.allow(7.9)
    assert b.allow(8.0)  # probe available the moment the replica is back
    assert b.state is BreakerState.HALF_OPEN


def test_breaker_zero_threshold_disables():
    b = CircuitBreaker(threshold=0, cooldown_s=1.0)
    for t in range(10):
        b.on_abort(float(t))
    assert b.state is BreakerState.CLOSED and b.allow(100.0)
    assert b.transitions == []


def test_breaker_forget_clears_probe():
    b = CircuitBreaker(threshold=1, cooldown_s=1.0)
    b.on_abort(0.0)
    assert b.allow(1.0)
    b.note_placed(1.0, rid=9)
    assert not b.allow(1.1)
    b.forget(9)
    assert b.allow(1.2)  # a new probe may enter; HALF_OPEN cannot wedge


# -- validation ------------------------------------------------------------


def test_serving_simulator_rejects_replica_faults(model):
    schedule = FaultSchedule(
        name="bad",
        faults=(
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH, start_s=1.0, duration_s=1.0,
                severity=1.0,
            ),
        ),
        seed=0,
    )
    with pytest.raises(ConfigError, match="fleet"):
        ServingSimulator(
            engine=ZeroInferenceEngine(single_a100()),
            model=model,
            trace=poisson_trace(rate=1.0, horizon_s=1.0, seed=0),
            faults=schedule,
        )


def test_fleet_simulator_rejects_capability_faults(model):
    schedule = FaultSchedule(
        name="bad",
        faults=(
            FaultSpec(
                kind=FaultKind.PCIE_DEGRADE, start_s=1.0, duration_s=1.0,
                severity=0.5,
            ),
        ),
        seed=0,
    )
    with pytest.raises(ConfigError, match="ServingSimulator"):
        FleetSimulator(
            specs=zi_specs(2),
            model=model,
            trace=poisson_trace(rate=1.0, horizon_s=1.0, seed=0),
            faults=schedule,
        )


def test_fleet_simulator_rejects_unknown_fault_domain(model):
    schedule = FaultSchedule(
        name="bad",
        faults=(
            FaultSpec(
                kind=FaultKind.REPLICA_CRASH, start_s=1.0, duration_s=1.0,
                severity=1.0, domain="nowhere",
            ),
        ),
        seed=0,
    )
    with pytest.raises(ConfigError, match="nowhere"):
        FleetSimulator(
            specs=zi_specs(2),
            model=model,
            trace=poisson_trace(rate=1.0, horizon_s=1.0, seed=0),
            faults=schedule,
        )


def test_fleet_rejects_duplicate_replica_names(model):
    specs = (ReplicaSpec(name="r0"), ReplicaSpec(name="r0"))
    with pytest.raises(ConfigError, match="unique"):
        FleetSimulator(
            specs=specs,
            model=model,
            trace=poisson_trace(rate=1.0, horizon_s=1.0, seed=0),
        )


def test_replica_spec_validation():
    with pytest.raises(ConfigError, match="engine"):
        ReplicaSpec(name="r0", engine="vllm")
    with pytest.raises(ConfigError, match="platform"):
        ReplicaSpec(name="r0", platform="tpu")
    with pytest.raises(ConfigError, match="rung"):
        ReplicaSpec(name="r0", degradation="warp-speed")
    with pytest.raises(ConfigError, match="backpressure"):
        ReplicaSpec(name="r0", degradation="backpressure")


def test_fleet_config_validation():
    with pytest.raises(ConfigError, match="migration_budget"):
        FleetConfig(migration_budget=-1)
    with pytest.raises(ConfigError, match="hedge_after_s"):
        FleetConfig(hedge_after_s=0.0)
    with pytest.raises(ConfigError, match="breaker_cooldown_s"):
        FleetConfig(breaker_cooldown_s=0.0)


def test_make_fleet_presets_and_scenarios():
    for name, size in (("uniform-6", 6), ("hetero-8", 8), ("uniform-16", 16)):
        specs = make_fleet(name)
        assert len(specs) == size
        assert len({s.name for s in specs}) == size
    with pytest.raises(ConfigError, match="preset"):
        make_fleet("mega-fleet")
    with pytest.raises(ConfigError, match="scenario"):
        make_fleet_scenario("asteroid", 10.0)
    assert len(make_fleet_scenario("none", 10.0).faults) == 0


# -- bench determinism -----------------------------------------------------


def test_fleet_bench_quick_payload_deterministic():
    from repro.bench.fleet import run_fleet_bench

    kwargs = dict(
        model_name="opt-1.3b",
        presets=("uniform-6",),
        scenarios=("none", "replica-crash"),
        quick=True,
        seed=0,
    )
    p1, _ = run_fleet_bench(**kwargs)
    p2, _ = run_fleet_bench(**kwargs)
    assert p1["all_accounting_ok"]
    assert json.dumps(p1, sort_keys=True) == json.dumps(p2, sort_keys=True)
