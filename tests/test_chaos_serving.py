"""Fault-aware serving: zero-fault identity, determinism, typed drops,
retry/backoff schedules, degraded-mode replanning and the chaos bench."""

import json

import pytest

from repro.baselines import ZeroInferenceEngine
from repro.core import LMOffloadEngine
from repro.errors import ConfigError
from repro.faults import (
    FaultKind,
    FaultSchedule,
    FaultSpec,
    make_scenario,
    zero_schedule,
)
from repro.hardware import single_a100
from repro.models import get_model
from repro.serving import (
    DropReason,
    RequestState,
    ServingConfig,
    ServingSimulator,
    compute_metrics,
    default_trace,
)


@pytest.fixture(scope="module")
def model():
    return get_model("opt-1.3b")


@pytest.fixture(scope="module")
def trace():
    return default_trace(quick=True, seed=0)


def simulate(model, trace, faults=None, seed=0, **cfg):
    # Fresh engine per run: chaos runs retarget the engine mid-flight and
    # a shared fixture would let restore bugs leak between tests.
    return ServingSimulator(
        engine=ZeroInferenceEngine(single_a100()),
        model=model,
        trace=trace,
        config=ServingConfig(**cfg),
        faults=faults,
        seed=seed,
    ).run()


def metrics_json(result):
    return json.dumps(compute_metrics(result), sort_keys=True)


# -- zero-fault identity ---------------------------------------------------


def test_empty_schedule_reproduces_fault_free_run(model, trace):
    """The fault layer's identity element: an empty schedule must take the
    exact fault-free code path, byte for byte (PR 2's numbers)."""
    plain = simulate(model, trace)
    zeroed = simulate(model, trace, faults=zero_schedule())
    assert plain.fault_stats is None and zeroed.fault_stats is None
    assert metrics_json(plain) == metrics_json(zeroed)


def test_fault_free_metrics_have_no_faults_section(model, trace):
    doc = compute_metrics(simulate(model, trace))
    assert "faults" not in doc
    assert "aborted" not in doc["steps"]


# -- determinism -----------------------------------------------------------

def _horizon(model, trace):
    return simulate(model, trace).makespan_s


@pytest.mark.parametrize("scenario", ["pcie-degrade", "flaky-pcie", "multi-fault"])
def test_same_seed_identical_chaos_run(model, trace, scenario):
    horizon = _horizon(model, trace)
    sched = make_scenario(scenario, horizon_s=horizon, seed=0)
    r1 = simulate(model, trace, faults=sched, seed=0)
    r2 = simulate(model, trace, faults=sched, seed=0)
    assert metrics_json(r1) == metrics_json(r2)
    assert [
        (s.kind, s.start_s, s.end_s, s.rids) for s in r1.steps
    ] == [(s.kind, s.start_s, s.end_s, s.rids) for s in r2.steps]
    assert r1.fault_stats.backoffs == r2.fault_stats.backoffs
    assert r1.fault_stats.replans == r2.fault_stats.replans


def test_different_seed_changes_abort_timeline(model, trace):
    horizon = _horizon(model, trace)
    sched = make_scenario("flaky-pcie", horizon_s=horizon, seed=0)
    r1 = simulate(model, trace, faults=sched, seed=0)
    r2 = simulate(model, trace, faults=sched, seed=99)
    assert r1.fault_stats.aborts != r2.fault_stats.aborts


# -- retry/backoff semantics ----------------------------------------------


def _always_abort(duration_s=1e9, severity=1.0):
    return FaultSchedule(
        name="always-abort",
        faults=(FaultSpec(FaultKind.TRANSIENT_ERROR, 0.0, duration_s, severity),),
    )


def test_persistent_transient_fault_exhausts_retries(model, trace):
    result = simulate(model, trace, faults=_always_abort(), retry_limit=2)
    assert result.finished == []
    assert all(
        r.drop_reason is DropReason.RETRY_EXHAUSTED for r in result.dropped
    )
    assert all(r.retries > 2 for r in result.dropped)
    assert all("retry budget" in (r.drop_detail or "") or r.drop_detail
               for r in result.dropped)


def test_backoff_delays_monotone_and_capped(model, trace):
    cap = 4.0
    result = simulate(
        model, trace, faults=_always_abort(), retry_limit=6,
        backoff_base_s=0.5, backoff_cap_s=cap, backoff_jitter=0.1,
    )
    backoffs = result.fault_stats.backoffs
    assert backoffs, "a persistent transient fault must force backoffs"
    # Consecutive aborts: attempts count up, delays never shrink, cap holds.
    for (s0, e0, a0), (s1, e1, a1) in zip(backoffs, backoffs[1:]):
        if a1 == a0 + 1:  # same consecutive-abort streak
            assert e1 - s1 >= e0 - s0 - 1e-12
    assert all(e - s <= cap + 1e-12 for s, e, _ in backoffs)


def test_deadline_produces_fault_abort_drops(model, trace):
    result = simulate(
        model, trace, faults=_always_abort(), retry_limit=50,
        request_deadline_s=5.0,
    )
    assert result.finished == []
    assert all(r.drop_reason is DropReason.FAULT_ABORT for r in result.dropped)
    assert all("deadline" in r.drop_detail for r in result.dropped)


def test_aborted_steps_recorded_and_clock_advances(model, trace):
    result = simulate(model, trace, faults=_always_abort(), retry_limit=1)
    kinds = {s.kind for s in result.steps}
    assert kinds <= {"abort-prefill", "abort-decode"}
    stats = result.fault_stats
    assert stats.lost_s > 0
    assert stats.availability(result.makespan_s) < 1.0
    # Conservation: every arrival is finished or dropped with a reason.
    assert all(
        r.state in (RequestState.FINISHED, RequestState.DROPPED)
        for r in result.requests
    )
    assert all(r.drop_reason is not None for r in result.dropped)


# -- degraded-mode replanning ---------------------------------------------


def test_capability_fault_triggers_replan_and_recovery(model, trace):
    horizon = _horizon(model, trace)
    sched = make_scenario("pcie-degrade", horizon_s=horizon, seed=0)
    result = simulate(model, trace, faults=sched, seed=0)
    causes = [cause for _, cause, _ in result.fault_stats.replans]
    assert "drift" in causes
    assert result.fault_stats.degraded_s > 0
    # All work still completes on this small model.
    assert not result.dropped


def test_mem_shrink_routes_through_prescreen_not_exception(model, trace):
    horizon = _horizon(model, trace)
    sched = make_scenario("mem-crunch", horizon_s=horizon, seed=0)
    result = simulate(model, trace, faults=sched, seed=0)  # must not raise
    assert all(
        r.state in (RequestState.FINISHED, RequestState.DROPPED)
        for r in result.requests
    )


def test_lm_offload_replans_under_pcie_degrade(trace):
    """Acceptance criterion: LM-Offload replans at least once under
    pcie-degrade and completes without crashing."""
    base = single_a100()
    engine = LMOffloadEngine(base)
    sched = FaultSchedule(
        name="pcie-degrade-long",
        faults=(FaultSpec(FaultKind.PCIE_DEGRADE, 20.0, 1e9, severity=0.6),),
    )
    result = ServingSimulator(
        engine=engine,
        model=get_model("opt-30b"),
        trace=trace,
        config=ServingConfig(),
        faults=sched,
        seed=0,
    ).run()
    assert len(result.fault_stats.replans) >= 1
    admitted_or_resolved = [
        r
        for r in result.requests
        if r.state in (RequestState.FINISHED, RequestState.DROPPED)
    ]
    assert len(admitted_or_resolved) == len(result.requests)
    assert all(r.drop_reason is not None for r in result.dropped)
    # The engine is restored for reuse after a chaos run.
    assert engine.platform is base
    assert engine._degradation is None


# -- config validation -----------------------------------------------------


def test_serving_config_rejects_zero_backoff_base():
    with pytest.raises(ConfigError, match="tight loop"):
        ServingConfig(backoff_base_s=0.0)


def test_serving_config_rejects_bad_drift_tolerance():
    with pytest.raises(ConfigError, match="drift_tolerance"):
        ServingConfig(drift_tolerance=0.0)


def test_serving_config_rejects_negative_deadline():
    with pytest.raises(ConfigError, match="request_deadline_s"):
        ServingConfig(request_deadline_s=-1.0)


def test_serving_config_rejects_cap_below_base():
    with pytest.raises(ConfigError, match="cap"):
        ServingConfig(backoff_base_s=4.0, backoff_cap_s=1.0)


# -- chaos bench -----------------------------------------------------------


def test_chaos_bench_payload_deterministic_and_accounted(model):
    from repro.bench.chaos import run_chaos

    kwargs = dict(
        model_name="opt-1.3b",
        scheduler="fcfs",
        engines=("zero-inference",),
        scenarios=("pcie-degrade", "flaky-pcie"),
        quick=True,
        seed=0,
    )
    p1, _ = run_chaos(**kwargs)
    p2, _ = run_chaos(**kwargs)
    assert json.dumps(p1, sort_keys=True) == json.dumps(p2, sort_keys=True)
    assert p1["all_accounting_ok"]
    runs = p1["engines"]["zero-inference"]
    assert set(runs) == {"baseline", "pcie-degrade", "flaky-pcie"}
    assert "faults" not in runs["baseline"]["metrics"]
    assert runs["pcie-degrade"]["metrics"]["faults"]["replans"] >= 1
    # Both drift gates are strictly opt-in: the default payload (and its
    # byte identity with pre-gate artifacts) is untouched.
    assert "drift" not in p1 and "serving_drift" not in p1


def test_serving_drift_gate_reprices_executed_steps(model):
    from repro.bench.chaos import DEFAULT_SERVING_DRIFT_TOLERANCE, run_chaos

    payload, _ = run_chaos(
        model_name="opt-1.3b",
        scheduler="fcfs",
        engines=("zero-inference",),
        scenarios=("pcie-degrade", "flaky-pcie"),
        quick=True,
        seed=0,
        serving_drift_gate=True,
    )
    assert payload["all_serving_drift_ok"]
    gate = payload["serving_drift"]
    assert gate["tolerance"] == DEFAULT_SERVING_DRIFT_TOLERANCE
    summary = gate["summary"]
    assert summary["ok"] and not summary["over_tolerance"]
    assert summary["num_step_groups_priced"] > 0
    # Fresh fault-retargeted engines reprice the executed steps through
    # the same cost model, so agreement is near-exact, far inside the
    # tolerance that absorbs legitimate watchdog staleness.
    assert summary["max_rel_err"] < 1e-6
    for scenario in ("pcie-degrade", "flaky-pcie"):
        run = gate["engines"]["zero-inference"][scenario]
        assert run["num_step_groups"] > 0
        assert not run["over_tolerance"]
