import pytest

from repro.errors import ConfigError
from repro.models import get_model
from repro.multigpu import PipelineParallelRunner, weak_scaling_sweep
from repro.multigpu.pipeline_parallel import _split_layers
from repro.perfmodel import Workload


def test_split_layers_near_equal():
    assert _split_layers(40, 4) == (10, 10, 10, 10)
    assert _split_layers(41, 4) == (11, 10, 10, 10)
    assert sum(_split_layers(60, 3)) == 60


@pytest.fixture(scope="module")
def sweep():
    return weak_scaling_sweep(get_model("opt-13b"), gpu_counts=(1, 2, 4))


def test_weak_scaling_batch_doubles(sweep):
    blocks = [r.workload.block_size for r in sweep["flexgen"]]
    assert blocks[1] == 2 * blocks[0]
    assert blocks[2] == 4 * blocks[0]


def test_lm_offload_never_slower(sweep):
    for fg, lm in zip(sweep["flexgen"], sweep["lm-offload"]):
        assert lm.throughput >= fg.throughput * 0.99


def test_gap_grows_with_gpus(sweep):
    """Figure 9's headline: the LM-Offload/FlexGen gap widens as GPUs are
    added (shared host DRAM feeds saturate FlexGen's uncompressed
    streams first)."""
    gains = [
        lm.throughput / fg.throughput
        for fg, lm in zip(sweep["flexgen"], sweep["lm-offload"])
    ]
    assert gains[2] > gains[1] >= gains[0] * 0.99
    assert gains[2] > 1.3


def test_lm_offload_scales_better(sweep):
    fg_scaling = sweep["flexgen"][2].throughput / sweep["flexgen"][0].throughput
    lm_scaling = sweep["lm-offload"][2].throughput / sweep["lm-offload"][0].throughput
    assert lm_scaling > fg_scaling


def test_stage_layers_cover_model(sweep):
    model = get_model("opt-13b")
    for report in sweep["flexgen"]:
        assert sum(report.stage_layers) == model.num_layers


def test_invalid_gpu_count():
    runner = PipelineParallelRunner(engine_name="x")
    model = get_model("opt-13b")
    workload = Workload(model, 256, 64, 32, 4)
    with pytest.raises(ConfigError):
        runner.run(model, 0, workload)


def test_single_gpu_no_fill_latency():
    runner = PipelineParallelRunner(engine_name="x")
    model = get_model("opt-13b")
    workload = Workload(model, 256, 64, 32, 4)
    report = runner.run(model, 1, workload)
    assert report.fill_seconds == 0.0
    assert report.per_token_seconds > 0
