"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import single_a100, small_test_platform
from repro.models import get_model
from repro.parallel import ContentionModel, CpuTopology
from repro.perfmodel import CpuExecutionContext, HardwareParams, Workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def a100():
    return single_a100()


@pytest.fixture
def tiny_platform():
    return small_test_platform()


@pytest.fixture
def hw(a100) -> HardwareParams:
    return HardwareParams.from_platform(a100)


@pytest.fixture
def topo(a100) -> CpuTopology:
    return CpuTopology.from_device(a100.cpu)


@pytest.fixture
def contention(a100, topo) -> ContentionModel:
    return ContentionModel(topo, a100.cache)


@pytest.fixture
def default_ctx(topo, contention) -> CpuExecutionContext:
    return CpuExecutionContext.pytorch_default(topo, contention)


@pytest.fixture
def opt30b_workload() -> Workload:
    """The paper's motivating workload: OPT-30B, s=64, n=128, bls=640."""
    return Workload(get_model("opt-30b"), 64, 128, 64, 10)


@pytest.fixture
def short_workload() -> Workload:
    """Same model, gen_len=8 (the parallelism-control experiments)."""
    return Workload(get_model("opt-30b"), 64, 8, 64, 10)
