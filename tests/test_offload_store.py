import numpy as np
import pytest

from repro.errors import MemoryCapacityError, PlacementError
from repro.hardware import small_test_platform
from repro.offload import ManagedTensor, TensorStore, TransferEngine
from repro.quant import QuantConfig, compress
from repro.units import MIB


@pytest.fixture
def store():
    return TensorStore(small_test_platform())


def test_register_charges_pool(store):
    store.register(ManagedTensor.abstract("w", 10 * MIB, "gpu0"))
    assert store.platform.pools["gpu0"].used == 10 * MIB
    assert store.bytes_on("gpu0") == 10 * MIB


def test_register_duplicate_rejected(store):
    store.register(ManagedTensor.abstract("w", 1, "gpu0"))
    with pytest.raises(ValueError, match="already registered"):
        store.register(ManagedTensor.abstract("w", 1, "cpu"))


def test_capacity_enforced(store):
    cap = store.platform.pools["gpu0"].capacity
    with pytest.raises(MemoryCapacityError):
        store.register(ManagedTensor.abstract("big", cap + 1, "gpu0"))


def test_relocate_moves_accounting(store):
    store.register(ManagedTensor.abstract("w", 5 * MIB, "cpu"))
    store.relocate("w", "gpu0")
    assert store.platform.pools["cpu"].used == 0
    assert store.platform.pools["gpu0"].used == 5 * MIB
    assert store.get("w").device == "gpu0"


def test_relocate_same_device_noop(store):
    t = store.register(ManagedTensor.abstract("w", 1 * MIB, "cpu"))
    assert store.relocate("w", "cpu") is t


def test_relocate_unknown_device(store):
    store.register(ManagedTensor.abstract("w", 1, "cpu"))
    with pytest.raises(PlacementError):
        store.relocate("w", "tpu9")


def test_release_frees_bytes(store):
    store.register(ManagedTensor.abstract("w", 2 * MIB, "cpu"))
    store.release("w")
    assert "w" not in store
    assert store.platform.pools["cpu"].used == 0


def test_resize_tracks_kv_growth(store):
    store.register(ManagedTensor.abstract("kv", 1 * MIB, "cpu"))
    store.resize("kv", 3 * MIB)
    assert store.get("kv").nbytes == 3 * MIB
    assert store.platform.pools["cpu"].used == 3 * MIB


def test_replace_payload_reaccounts(rng, store):
    arr = rng.standard_normal((256, 256)).astype(np.float32)
    store.register(ManagedTensor.from_array("w", arr, "cpu"))
    before = store.platform.pools["cpu"].used
    qt = compress(arr, QuantConfig(bits=4, group_size=64))
    store.replace_payload("w", ManagedTensor.from_quantized("w", qt, "cpu"))
    after = store.platform.pools["cpu"].used
    assert after < before / 4
    assert store.get("w").is_quantized


def test_replace_payload_name_mismatch(store):
    store.register(ManagedTensor.abstract("w", 1, "cpu"))
    with pytest.raises(ValueError):
        store.replace_payload("w", ManagedTensor.abstract("v", 1, "cpu"))


def test_array_accessor(rng, store):
    arr = rng.standard_normal((4, 4)).astype(np.float32)
    store.register(ManagedTensor.from_array("w", arr, "cpu"))
    assert np.array_equal(store.array("w"), arr)
    store.register(ManagedTensor.abstract("ghost", 1, "cpu"))
    with pytest.raises(PlacementError):
        store.array("ghost")


def test_on_device_listing(store):
    store.register(ManagedTensor.abstract("b", 1, "cpu"))
    store.register(ManagedTensor.abstract("a", 1, "cpu"))
    store.register(ManagedTensor.abstract("g", 1, "gpu0"))
    assert [t.name for t in store.on_device("cpu")] == ["a", "b"]


def test_require_on(store):
    t = store.register(ManagedTensor.abstract("w", 1, "cpu"))
    t.require_on("cpu")
    with pytest.raises(PlacementError):
        t.require_on("gpu0")


def test_transfer_engine_moves_and_records(store):
    engine = TransferEngine(store.platform, store)
    store.register(ManagedTensor.abstract("w", 8 * MIB, "cpu"))
    seconds = engine.move("w", "gpu0", category="weights")
    assert seconds > 0
    assert store.get("w").device == "gpu0"
    assert engine.ledger.total(src="cpu", dst="gpu0", category="weights") == 8 * MIB


def test_transfer_engine_charge_without_tensor(store):
    engine = TransferEngine(store.platform, store)
    t = engine.charge("cpu", "gpu0", 16 * MIB, "kv_cache")
    assert t > 0
    assert engine.ledger.total(category="kv_cache") == 16 * MIB
    assert engine.charge("cpu", "cpu", 5, "x") == 0.0


def test_ledger_totals_and_reset(store):
    engine = TransferEngine(store.platform, store)
    engine.charge("cpu", "gpu0", 10, "weights")
    engine.charge("gpu0", "cpu", 30, "kv_cache")
    assert engine.ledger.total() == 40
    assert engine.ledger.total(src="gpu0") == 30
    rows = engine.ledger.as_table()
    assert len(rows) == 2
    engine.ledger.reset()
    assert engine.ledger.total() == 0
