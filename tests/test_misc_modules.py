"""Coverage for small supporting modules: errors, notation, profiles,
tables, paper_data, tensor helpers."""

import numpy as np
import pytest

from repro.bench import paper_data
from repro.bench.tables import format_table
from repro.errors import (
    ConfigError,
    MemoryCapacityError,
    PolicyError,
    QuantizationError,
    ReproError,
    ScheduleError,
)
from repro.hardware import single_a100
from repro.models import get_model
from repro.offload.tensor import ManagedTensor
from repro.parallel import ContentionModel, CpuTopology, build_default_profiles
from repro.parallel.profiles import DEFAULT_OP_PROFILES, OpProfile, ProfileTable
from repro.perfmodel import HardwareParams, Workload
from repro.quant import QuantConfig, compress


def test_error_hierarchy():
    for exc in (ConfigError, PolicyError, QuantizationError, ScheduleError,
                MemoryCapacityError):
        assert issubclass(exc, ReproError)
    err = MemoryCapacityError("gpu0", 100, 40)
    assert err.pool == "gpu0" and err.requested == 100 and err.available == 40


def test_workload_validation():
    with pytest.raises(ConfigError):
        Workload(get_model("opt-30b"), 0, 8, 64, 1)
    with pytest.raises(ConfigError):
        Workload(get_model("opt-30b"), 64, 8, 0, 1)


def test_workload_describe_and_with_batches():
    w = Workload(get_model("opt-30b"), 64, 8, 64, 10)
    assert "bls=640" in w.describe()
    w2 = w.with_batches(32, 4)
    assert w2.block_size == 128
    assert w2.model is w.model


def test_hardware_params_from_platform():
    hw = HardwareParams.from_platform(single_a100())
    assert hw.gpu_flops == pytest.approx(312e12)
    assert hw.pcie_bdw == pytest.approx(32e9)
    assert hw.cpu_mem_capacity > 200e9
    with pytest.raises(ConfigError):
        HardwareParams(
            gpu_flops=0, gpu_mem_bdw=1, gpu_freq=1,
            cpu_flops=1, cpu_mem_bdw=1, cpu_freq=1, pcie_bdw=1,
        )


def test_profile_table_nearest_lookup():
    table = ProfileTable()
    table.record("scores", 1, 0.010)
    table.record("scores", 8, 0.002)
    assert table.lookup("scores", 8) == 0.002
    assert table.lookup("scores", 6) == 0.002   # nearest is 8
    assert table.lookup("scores", 2) == 0.010   # nearest is 1
    with pytest.raises(KeyError):
        table.lookup("ghost", 1)
    with pytest.raises(ConfigError):
        table.record("x", 1, 0.0)


def test_default_profiles_monotone_in_threads():
    topo = CpuTopology(sockets=2, cores_per_socket=28, smt=2)
    cm = ContentionModel(topo, single_a100().cache)
    table = build_default_profiles(cm, thread_counts=[1, 2, 4, 8])
    for kind in DEFAULT_OP_PROFILES:
        times = [table.lookup(kind, t) for t in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)
    assert set(table.kinds()) == set(DEFAULT_OP_PROFILES)


def test_op_profile_validation():
    with pytest.raises(ConfigError):
        OpProfile("bad", serial_seconds=0)


def test_format_table_alignment():
    rows = [{"a": 1, "b": "xy"}, {"a": 123456.0, "b": "z"}]
    out = format_table(rows, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="E")


def test_paper_data_complete():
    # Every model has all five generation lengths and all three systems.
    for model, rows in paper_data.TAB3.items():
        assert set(rows) == {8, 16, 32, 64, 128}
        for cfg in rows.values():
            assert set(cfg) == {"flexgen", "zero-inference", "lm-offload"}
    # The block-size splitter returns exact factorizations.
    for model, rows in paper_data.TAB3.items():
        for n, cfg in rows.items():
            bls = cfg["flexgen"][0]
            b, k = paper_data.bls_split(bls)
            assert b * k == bls


def test_managed_tensor_constructors(rng):
    arr = rng.standard_normal((8, 8)).astype(np.float32)
    t = ManagedTensor.from_array("w", arr, "cpu")
    assert t.nbytes == arr.nbytes and t.materialized and not t.is_quantized
    qt = compress(arr, QuantConfig(bits=4, group_size=8))
    q = ManagedTensor.from_quantized("wq", qt, "cpu")
    assert q.is_quantized and q.nbytes == qt.nbytes
    a = ManagedTensor.abstract("big", 1e9, "cpu", role="weights")
    assert not a.materialized and a.meta["role"] == "weights"
    with pytest.raises(ValueError):
        ManagedTensor.abstract("neg", -1, "cpu")
