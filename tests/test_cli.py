import json

import pytest

from repro.cli import EXIT_CONFIG, build_parser, main


def run_cli(capsys, *argv) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def test_models_command(capsys):
    out = run_cli(capsys, "models")
    assert "opt-30b" in out
    assert "llama-65b" in out
    assert "29.6" in out  # OPT-30B parameter count in billions


def test_run_single_engine(capsys):
    out = run_cli(capsys, "run", "--engine", "flexgen", "--gen-len", "8")
    assert "flexgen" in out
    assert "tput" in out


def test_run_all_engines(capsys):
    out = run_cli(capsys, "run", "--gen-len", "8")
    for name in ("lm-offload", "flexgen", "zero-inference"):
        assert name in out


def test_plan_command_saves_policy(capsys, tmp_path):
    path = tmp_path / "policy.json"
    out = run_cli(
        capsys, "plan", "--gen-len", "8", "--save", str(path)
    )
    assert "policy:" in out
    from repro.offload.serialization import policy_from_json

    policy = policy_from_json(path.read_text())
    assert policy.block_size == 640


def test_experiment_command_tab1(capsys):
    out = run_cli(capsys, "experiment", "tab1")
    assert "kv_cache" in out


def test_experiment_command_fig5(capsys):
    out = run_cli(capsys, "experiment", "fig5")
    assert "[intra]" in out and "[inter]" in out


def test_experiment_command_fig8_json(capsys):
    out = run_cli(capsys, "experiment", "fig8")
    assert "compute_reduction" in out


def test_whatif_command(capsys):
    out = run_cli(capsys, "whatif", "--gen-len", "8")
    assert "pcie3-x16" in out
    assert "h100-like" in out


def test_trace_command(capsys, tmp_path):
    path = tmp_path / "trace.json"
    out = run_cli(
        capsys, "trace", "--gen-len", "8", "--tokens", "1", "--layers", "2",
        "--output", str(path),
    )
    assert "slices" in out
    doc = json.loads(path.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_plan_search_geometry_reports_failures(capsys):
    out = run_cli(capsys, "plan", "--gen-len", "8", "--search-geometry")
    assert "geometry searched" in out
    assert "rejected geometries:" in out


def test_serve_sim_quick_single_engine(capsys, tmp_path):
    bench = tmp_path / "bench.json"
    trace = tmp_path / "timeline.json"
    out = run_cli(
        capsys, "serve-sim", "--model", "opt-1.3b", "--engine", "zero-inference",
        "--quick", "--seed", "0",
        "--output", str(bench), "--chrome-trace", str(trace),
    )
    assert "serve-sim: opt-1.3b" in out
    assert "ttft_p50" in out and "goodput_rps" in out
    doc = json.loads(bench.read_text())
    assert doc["schema_version"] == 1
    assert "zero-inference" in doc["engines"]
    m = doc["engines"]["zero-inference"]
    assert {"p50", "p95", "p99", "mean"} <= set(m["latency_s"]["ttft"])
    tl = json.loads(trace.read_text())
    assert any(e.get("ph") == "X" for e in tl["traceEvents"])


def test_serve_sim_metrics_out_writes_registry_document(capsys, tmp_path):
    metrics = tmp_path / "metrics.json"
    run_cli(
        capsys, "serve-sim", "--model", "opt-1.3b", "--engine", "zero-inference",
        "--quick", "--seed", "0",
        "--output", str(tmp_path / "b.json"), "--metrics-out", str(metrics),
    )
    doc = json.loads(metrics.read_text())
    series = doc["zero-inference"]["series"]
    assert series["requests.finished"]["type"] == "counter"
    assert series["latency.ttft_s"]["type"] == "histogram"
    assert series["latency.ttft_s"]["count"] > 0
    assert "p50" in series["latency.ttft_s"]


def test_serve_sim_replay_requires_trace_file(capsys):
    assert main(["serve-sim", "--arrival", "replay"]) == EXIT_CONFIG
    assert "config error" in capsys.readouterr().err


def test_serve_sim_replay_round_trip(capsys, tmp_path):
    from repro.serving import replay_trace

    path = tmp_path / "trace.json"
    replay_trace([(0.0, 16, 4), (0.2, 16, 8)], name="mini").save(str(path))
    out = run_cli(
        capsys, "serve-sim", "--model", "opt-1.3b", "--engine", "zero-inference",
        "--arrival", "replay", "--trace-file", str(path),
        "--output", str(tmp_path / "b.json"),
    )
    assert "mini: 2 requests" in out


def test_serve_sim_seed_changes_default_trace(capsys, tmp_path):
    outs = []
    for seed in ("0", "0", "1"):
        run_cli(
            capsys, "serve-sim", "--model", "opt-1.3b", "--engine",
            "zero-inference", "--quick", "--seed", seed,
            "--output", str(tmp_path / f"b{len(outs)}.json"),
        )
        outs.append((tmp_path / f"b{len(outs)}.json").read_text())
    assert outs[0] == outs[1]  # same seed: byte-identical document
    assert outs[0] != outs[2]
